// Tier-1 coverage for the checkpoint/resume subsystem: byte-identity of a
// resumed run against the uninterrupted one (across thread counts, the
// fastpath toggle, and fault plans), wire-format round-trips, and strict
// rejection of corrupted/truncated/mismatched snapshots.
#include "snapshot/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "faults/fault_plan.hpp"
#include "mobility/trace_gen.hpp"
#include "obs/journal.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace perdnn {
namespace {

struct RunResult {
  std::string metrics_json;
  std::string timeseries_csv;
};

/// Restores the fast-path toggle even when an EXPECT fails mid-test.
struct FastPathGuard {
  explicit FastPathGuard(bool enable) : previous(fastpath::enabled()) {
    fastpath::set_enabled(enable);
  }
  ~FastPathGuard() { fastpath::set_enabled(previous); }
  bool previous;
};

class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CampusTraceConfig train_config;
    train_config.num_users = 8;
    train_config.duration = 1.0 * 3600.0;
    train_config.sample_interval = 20.0;
    train_config.seed = 100;
    CampusTraceConfig test_config = train_config;
    test_config.num_users = 5;
    test_config.seed = 200;

    config_ = new SimulationConfig;
    config_->model = ModelName::kMobileNet;
    config_->policy = MigrationPolicy::kProactive;
    config_->migration_radius_m = 100.0;
    config_->routing_fallback = true;
    config_->bandwidth_jitter_sigma = 0.3;
    config_->seed = 5;

    world_ = new SimulationWorld(
        build_world(*config_, generate_campus_traces(train_config),
                    generate_campus_traces(test_config)));
  }

  static void TearDownTestSuite() {
    delete world_;
    delete config_;
    world_ = nullptr;
    config_ = nullptr;
    par::set_num_threads(0);
  }

  /// Fault plan with a total backhaul outage so the dispatcher queue is
  /// non-empty at the checkpoint, plus a crash, a telemetry dropout and a
  /// client disconnect.
  static SimulationConfig faulted_config() {
    SimulationConfig config = *config_;
    config.fault_plan = FaultPlan({
        {.kind = FaultKind::kServerCrash,
         .at_interval = 2,
         .duration_intervals = 3,
         .server = 0},
        {.kind = FaultKind::kBackhaulDegrade,
         .at_interval = 1,
         .duration_intervals = 6,
         .server = 1,
         .peer = kAllServers,
         .severity = 1.0},
        {.kind = FaultKind::kTelemetryDropout,
         .at_interval = 0,
         .duration_intervals = 8,
         .server = 2},
        {.kind = FaultKind::kClientDisconnect,
         .at_interval = 4,
         .duration_intervals = 2,
         .client = 1},
    });
    config.migration_retry = {.max_attempts = 6,
                              .initial_backoff_intervals = 1,
                              .max_backoff_intervals = 8};
    return config;
  }

  static RunResult full_run(const SimulationConfig& config, int threads) {
    par::set_num_threads(threads);
    obs::SimTimeseries timeseries;
    const SimulationMetrics metrics =
        run_simulation(config, *world_, &timeseries, {});
    std::ostringstream csv;
    timeseries.write_csv(csv);
    return {snapshot::metrics_to_json(metrics), csv.str()};
  }

  /// Runs intervals [0, stop_after], capturing the checkpoint in memory.
  static snapshot::SimSnapshot checkpoint_at(const SimulationConfig& config,
                                             int stop_after, int threads) {
    par::set_num_threads(threads);
    obs::SimTimeseries timeseries;
    snapshot::SimSnapshot snap;
    SimulationRunOptions options;
    options.stop_after_interval = stop_after;
    options.capture_out = &snap;
    run_simulation(config, *world_, &timeseries, options);
    return snap;
  }

  static RunResult resume_from(const SimulationConfig& config,
                               const snapshot::SimSnapshot& snap,
                               int threads) {
    par::set_num_threads(threads);
    obs::SimTimeseries timeseries;
    SimulationRunOptions options;
    options.resume_from = &snap;
    const SimulationMetrics metrics =
        run_simulation(config, *world_, &timeseries, options);
    std::ostringstream csv;
    timeseries.write_csv(csv);
    return {snapshot::metrics_to_json(metrics), csv.str()};
  }

  static SimulationConfig* config_;
  static SimulationWorld* world_;
};

SimulationConfig* SnapshotTest::config_ = nullptr;
SimulationWorld* SnapshotTest::world_ = nullptr;

TEST_F(SnapshotTest, ResumeIsByteIdenticalAcrossThreadsAndFastpath) {
  const RunResult reference = full_run(*config_, 2);
  const snapshot::SimSnapshot snap = checkpoint_at(*config_, 5, 2);
  ASSERT_GT(snap.next_interval, 0);
  ASSERT_TRUE(snap.has_timeseries);

  for (const int threads : {1, 2, 8}) {
    for (const bool fast : {true, false}) {
      FastPathGuard guard(fast);
      const RunResult resumed = resume_from(*config_, snap, threads);
      EXPECT_EQ(resumed.metrics_json, reference.metrics_json)
          << "threads=" << threads << " fastpath=" << fast;
      EXPECT_EQ(resumed.timeseries_csv, reference.timeseries_csv)
          << "threads=" << threads << " fastpath=" << fast;
    }
  }
}

TEST_F(SnapshotTest, ResumeUnderFaultPlanIsByteIdentical) {
  const SimulationConfig config = faulted_config();
  const RunResult reference = full_run(config, 2);
  // Checkpoint at a boundary inside the total backhaul outage (intervals
  // 1..6) where the retry queue is actually non-empty, so the snapshot
  // must carry live mid-backoff dispatcher state. Which boundary that is
  // depends on when a migration first crosses the dead link, so probe.
  snapshot::SimSnapshot snap;
  bool queued = false;
  for (int stop = 1; stop <= 7 && !queued; ++stop) {
    snap = checkpoint_at(config, stop, 2);
    queued = !snap.dispatcher.queue.empty();
  }
  ASSERT_TRUE(queued)
      << "outage never deferred a migration; the scenario lost its bite";
  EXPECT_GT(snap.dispatcher.backlog_bytes, 0);

  for (const int threads : {1, 2, 8}) {
    const RunResult resumed = resume_from(config, snap, threads);
    EXPECT_EQ(resumed.metrics_json, reference.metrics_json)
        << "threads=" << threads;
    EXPECT_EQ(resumed.timeseries_csv, reference.timeseries_csv)
        << "threads=" << threads;
  }
  const RunResult no_fast = [&] {
    FastPathGuard guard(false);
    return resume_from(config, snap, 8);
  }();
  EXPECT_EQ(no_fast.metrics_json, reference.metrics_json);
  EXPECT_EQ(no_fast.timeseries_csv, reference.timeseries_csv);
}

TEST_F(SnapshotTest, EveryCheckpointIntervalResumesIdentically) {
  // Not just one lucky interval: a checkpoint taken at *any* boundary of a
  // short faulted run must resume byte-identically (this sweeps boundaries
  // where the retry queue is empty, mid-backoff, and drained).
  const SimulationConfig config = faulted_config();
  const RunResult reference = full_run(config, 2);
  for (const int stop : {0, 1, 4, 8}) {
    const snapshot::SimSnapshot snap = checkpoint_at(config, stop, 2);
    EXPECT_EQ(snap.next_interval, stop + 1);
    const RunResult resumed = resume_from(config, snap, 2);
    EXPECT_EQ(resumed.metrics_json, reference.metrics_json) << "stop=" << stop;
    EXPECT_EQ(resumed.timeseries_csv, reference.timeseries_csv)
        << "stop=" << stop;
  }
}

TEST_F(SnapshotTest, WireFormatRoundTripsExactly) {
  const snapshot::SimSnapshot snap = checkpoint_at(faulted_config(), 3, 2);
  const std::string bytes = snapshot::encode(snap);
  const snapshot::SimSnapshot decoded = snapshot::decode(bytes);
  // Field-level spot checks...
  EXPECT_EQ(decoded.config_fingerprint, snap.config_fingerprint);
  EXPECT_EQ(decoded.next_interval, snap.next_interval);
  EXPECT_EQ(decoded.num_intervals, snap.num_intervals);
  EXPECT_EQ(decoded.rng, snap.rng);
  EXPECT_EQ(decoded.link_rng, snap.link_rng);
  EXPECT_EQ(decoded.caches, snap.caches);
  EXPECT_EQ(decoded.attached, snap.attached);
  EXPECT_EQ(decoded.dispatcher.queue.size(), snap.dispatcher.queue.size());
  EXPECT_EQ(decoded.estimate_cache_hits, snap.estimate_cache_hits);
  EXPECT_EQ(decoded.timeseries_rows.size(), snap.timeseries_rows.size());
  // ...and the strong form: re-encoding reproduces the exact bytes.
  EXPECT_EQ(snapshot::encode(decoded), bytes);
}

TEST_F(SnapshotTest, JournalStateRoundTripsThroughTheWire) {
  // A checkpoint taken while journaling carries the journal prefix; the
  // wire codec must reproduce it exactly (events, chain counter, bindings).
  par::set_num_threads(2);
  obs::Journal journal;
  snapshot::SimSnapshot snap;
  SimulationRunOptions options;
  options.journal = &journal;
  options.stop_after_interval = 3;
  options.capture_out = &snap;
  run_simulation(faulted_config(), *world_, nullptr, options);

  ASSERT_TRUE(snap.has_journal);
  ASSERT_GT(snap.journal.events.size(), 0u);
  EXPECT_EQ(snap.journal.events, journal.events());
  EXPECT_FALSE(snap.journal.client_chains.empty());

  const std::string bytes = snapshot::encode(snap);
  const snapshot::SimSnapshot decoded = snapshot::decode(bytes);
  EXPECT_TRUE(decoded.has_journal);
  EXPECT_EQ(decoded.journal.events, snap.journal.events);
  EXPECT_EQ(decoded.journal.next_chain, snap.journal.next_chain);
  EXPECT_EQ(decoded.journal.dropped, snap.journal.dropped);
  EXPECT_EQ(decoded.journal.client_chains, snap.journal.client_chains);
  EXPECT_EQ(snapshot::encode(decoded), bytes);

  // Journal-free snapshots keep the flag off end to end.
  const snapshot::SimSnapshot bare = checkpoint_at(*config_, 2, 1);
  EXPECT_FALSE(bare.has_journal);
  EXPECT_FALSE(snapshot::decode(snapshot::encode(bare)).has_journal);
}

TEST_F(SnapshotTest, SaveLoadRoundTripsThroughAFile) {
  const snapshot::SimSnapshot snap = checkpoint_at(*config_, 2, 1);
  const std::string path = ::testing::TempDir() + "perdnn_snapshot_test.ckpt";
  snapshot::save(snap, path);
  const snapshot::SimSnapshot loaded = snapshot::load(path);
  EXPECT_EQ(snapshot::encode(loaded), snapshot::encode(snap));
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, CorruptedInputsAreRejectedNotCrashed) {
  const std::string bytes = snapshot::encode(checkpoint_at(*config_, 2, 1));

  // Truncations at every structurally interesting length.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{12}, std::size_t{19}, std::size_t{20},
        bytes.size() / 2, bytes.size() - 9, bytes.size() - 1}) {
    EXPECT_THROW(snapshot::decode(bytes.substr(0, len)),
                 snapshot::SnapshotError)
        << "truncated to " << len << " bytes";
  }
  // Trailing garbage.
  EXPECT_THROW(snapshot::decode(bytes + "x"), snapshot::SnapshotError);
  // Bad magic.
  {
    std::string bad = bytes;
    bad[0] = 'X';
    EXPECT_THROW(snapshot::decode(bad), snapshot::SnapshotError);
  }
  // Unknown version.
  {
    std::string bad = bytes;
    bad[8] = static_cast<char>(0x7f);
    EXPECT_THROW(snapshot::decode(bad), snapshot::SnapshotError);
  }
  // Byte flips throughout the payload and in the checksum.
  for (const std::size_t off :
       {std::size_t{21}, std::size_t{40}, bytes.size() / 3, bytes.size() / 2,
        bytes.size() - 4}) {
    std::string bad = bytes;
    bad[off] = static_cast<char>(bad[off] ^ 0x5a);
    EXPECT_THROW(snapshot::decode(bad), snapshot::SnapshotError)
        << "byte flip at " << off;
  }
  // A claimed payload size larger than the file must not allocate wildly.
  {
    std::string bad = bytes;
    for (int i = 0; i < 8; ++i) bad[12 + i] = static_cast<char>(0xff);
    EXPECT_THROW(snapshot::decode(bad), snapshot::SnapshotError);
  }
}

TEST_F(SnapshotTest, LoadOfMissingFileThrows) {
  EXPECT_THROW(snapshot::load("/nonexistent/dir/nothing.ckpt"),
               snapshot::SnapshotError);
}

/// Reads one golden fixture from tests/snapshot/data (checked-in files
/// written by earlier kSnapshotVersion writers).
std::string read_fixture(const std::string& name) {
  const std::string path = std::string(PERDNN_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::uint32_t declared_version(const std::string& bytes) {
  // Wire layout: magic (8 bytes), then a little-endian u32 version.
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(bytes[8 + static_cast<std::size_t>(i)]);
  return v;
}

TEST_F(SnapshotTest, GoldenVersion2FixtureStillDecodes) {
  const std::string bytes = read_fixture("v2.snap");
  ASSERT_EQ(declared_version(bytes), 2u);
  const snapshot::SimSnapshot snap = snapshot::decode(bytes);
  EXPECT_GT(snap.next_interval, 0);
  EXPECT_FALSE(snap.has_shard);
  EXPECT_TRUE(snap.has_journal);
  EXPECT_FALSE(snap.journal.events.empty());
  ASSERT_FALSE(snap.caches.empty());
  // Pre-v5 files carry no per-entry byte counts; they default to zero and
  // are recomputed from the cost model on restore.
  for (const auto& server_cache : snap.caches)
    for (const auto& entry : server_cache) EXPECT_EQ(entry.bytes, 0);
  // A decoded golden file re-encodes as a valid current-version snapshot.
  const std::string reencoded = snapshot::encode(snap);
  EXPECT_EQ(declared_version(reencoded), snapshot::kSnapshotVersion);
  EXPECT_NO_THROW(snapshot::decode(reencoded));
}

TEST_F(SnapshotTest, GoldenVersion3ShardFixtureStillDecodes) {
  const std::string bytes = read_fixture("v3.snap");
  ASSERT_EQ(declared_version(bytes), 3u);
  const snapshot::SimSnapshot snap = snapshot::decode(bytes);
  EXPECT_GT(snap.next_interval, 0);
  EXPECT_TRUE(snap.has_shard);
  // Version 3 predates the shard retry queue: it decodes empty.
  EXPECT_TRUE(snap.shard.retry_client.empty());
  EXPECT_FALSE(snap.shard.x.empty());
  EXPECT_NO_THROW(snapshot::decode(snapshot::encode(snap)));
}

TEST_F(SnapshotTest, GoldenVersion4FixturesStillDecode) {
  const std::string classic_bytes = read_fixture("v4_classic.snap");
  ASSERT_EQ(declared_version(classic_bytes), 4u);
  const snapshot::SimSnapshot classic = snapshot::decode(classic_bytes);
  EXPECT_GT(classic.next_interval, 0);
  EXPECT_FALSE(classic.has_shard);
  EXPECT_TRUE(classic.has_journal);
  EXPECT_FALSE(classic.caches.empty());
  // Version 4 predates the budgeted-cache counters: they decode zero.
  EXPECT_EQ(classic.metrics.cache_evictions, 0);
  EXPECT_EQ(classic.metrics.cache_partial_stores, 0);
  EXPECT_EQ(classic.metrics.peak_cache_bytes, 0);

  const std::string shard_bytes = read_fixture("v4_shard.snap");
  ASSERT_EQ(declared_version(shard_bytes), 4u);
  const snapshot::SimSnapshot shard = snapshot::decode(shard_bytes);
  EXPECT_GT(shard.next_interval, 0);
  EXPECT_TRUE(shard.has_shard);
  EXPECT_FALSE(shard.shard.x.empty());
  EXPECT_NO_THROW(snapshot::decode(snapshot::encode(shard)));
}

TEST_F(SnapshotTest, FingerprintMismatchIsRejectedOnResume) {
  const snapshot::SimSnapshot snap = checkpoint_at(*config_, 2, 1);
  SimulationConfig other = *config_;
  other.seed = config_->seed + 1;  // a different scenario
  obs::SimTimeseries timeseries;
  SimulationRunOptions options;
  options.resume_from = &snap;
  EXPECT_THROW(run_simulation(other, *world_, &timeseries, options),
               snapshot::SnapshotError);
  EXPECT_NE(snapshot::config_fingerprint(other, *world_),
            snap.config_fingerprint);
}

TEST_F(SnapshotTest, FingerprintIgnoresPerformanceKnobs) {
  // Thread count and the fastpath toggle are byte-identity-neutral, so they
  // must not be part of the fingerprint: a checkpoint taken at 8 threads
  // with the fastpath on resumes at 1 thread with it off.
  const std::uint64_t fp = snapshot::config_fingerprint(*config_, *world_);
  par::set_num_threads(8);
  EXPECT_EQ(snapshot::config_fingerprint(*config_, *world_), fp);
  {
    FastPathGuard guard(false);
    EXPECT_EQ(snapshot::config_fingerprint(*config_, *world_), fp);
  }
  SimulationConfig tweaked = *config_;
  tweaked.ttl_intervals += 1;
  EXPECT_NE(snapshot::config_fingerprint(tweaked, *world_), fp);
}

TEST_F(SnapshotTest, MetricsJsonRoundTripsEveryField) {
  obs::SimTimeseries timeseries;
  const SimulationMetrics metrics =
      run_simulation(faulted_config(), *world_, &timeseries, {});
  const std::string json = snapshot::metrics_to_json(metrics);
  const SimulationMetrics parsed = snapshot::metrics_from_json(json);
  EXPECT_EQ(snapshot::metrics_to_json(parsed), json);
  EXPECT_EQ(parsed.cold_window_queries, metrics.cold_window_queries);
  EXPECT_EQ(parsed.migrations_deferred, metrics.migrations_deferred);
  EXPECT_EQ(parsed.server_peak_uplink_mbps, metrics.server_peak_uplink_mbps);
  EXPECT_THROW(snapshot::metrics_from_json("{}"), snapshot::SnapshotError);
}

TEST_F(SnapshotTest, PeriodicCheckpointingIsOutputNeutral) {
  const RunResult reference = full_run(*config_, 2);
  par::set_num_threads(2);
  obs::SimTimeseries timeseries;
  const std::string path =
      ::testing::TempDir() + "perdnn_snapshot_periodic.ckpt";
  SimulationRunOptions options;
  options.checkpoint_every = 3;
  options.checkpoint_path = path;
  const SimulationMetrics metrics =
      run_simulation(*config_, *world_, &timeseries, options);
  std::ostringstream csv;
  timeseries.write_csv(csv);
  EXPECT_EQ(snapshot::metrics_to_json(metrics), reference.metrics_json);
  EXPECT_EQ(csv.str(), reference.timeseries_csv);
  // The last periodic checkpoint is on disk and loadable.
  const snapshot::SimSnapshot last = snapshot::load(path);
  EXPECT_EQ(last.num_intervals, metrics.num_intervals);
  EXPECT_LT(last.next_interval, last.num_intervals);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace perdnn
