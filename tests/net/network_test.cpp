#include "net/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace perdnn {
namespace {

TEST(LabWifi, MatchesPaperNumbers) {
  const NetworkCondition net = lab_wifi();
  EXPECT_DOUBLE_EQ(net.uplink_bytes_per_sec, mbps_to_bytes_per_sec(35.0));
  EXPECT_DOUBLE_EQ(net.downlink_bytes_per_sec, mbps_to_bytes_per_sec(50.0));
}

TEST(UnitHelpers, RoundTrip) {
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_sec(8.0), 1e6);
  EXPECT_DOUBLE_EQ(bytes_to_mbps(1e6, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(bytes_to_mbps(1e6, 0.0), 0.0);
  EXPECT_EQ(mb_to_bytes(1.0), 1024 * 1024);
  EXPECT_DOUBLE_EQ(bytes_to_mb(mb_to_bytes(128.0)), 128.0);
}

TEST(Traffic, AttributesUplinkAndDownlink) {
  TrafficAccountant traffic(3, 20.0);
  traffic.begin_interval();
  traffic.record_transfer(0, 1, 1000);
  traffic.record_transfer(0, 2, 500);
  traffic.record_transfer(2, 1, 200);
  traffic.finish();
  EXPECT_EQ(traffic.total_bytes(), 1700);
  EXPECT_GT(traffic.peak_uplink_mbps(0), traffic.peak_uplink_mbps(2));
  EXPECT_DOUBLE_EQ(traffic.peak_uplink_mbps(1), 0.0);
  EXPECT_GT(traffic.peak_downlink_mbps(1), 0.0);
}

TEST(Traffic, PeakIsMaxAcrossIntervals) {
  TrafficAccountant traffic(2, 10.0);
  traffic.begin_interval();
  traffic.record_transfer(0, 1, 100);
  traffic.begin_interval();  // implicitly closes the previous interval
  traffic.record_transfer(0, 1, 900);
  traffic.finish();
  EXPECT_EQ(traffic.num_intervals(), 2);
  EXPECT_DOUBLE_EQ(traffic.peak_uplink_mbps(0),
                   bytes_to_mbps(900.0, 10.0));
}

TEST(Traffic, SelfAndZeroTransfersIgnored) {
  TrafficAccountant traffic(2, 10.0);
  traffic.begin_interval();
  traffic.record_transfer(0, 0, 1000);
  traffic.record_transfer(0, 1, 0);
  traffic.finish();
  EXPECT_EQ(traffic.total_bytes(), 0);
  EXPECT_DOUBLE_EQ(traffic.global_peak_uplink_mbps(), 0.0);
}

TEST(Traffic, RecordOutsideIntervalThrows) {
  TrafficAccountant traffic(2, 10.0);
  EXPECT_THROW(traffic.record_transfer(0, 1, 10), std::logic_error);
  traffic.begin_interval();
  EXPECT_THROW(traffic.record_transfer(0, 5, 10), std::logic_error);
  EXPECT_THROW(traffic.record_transfer(0, 1, -1), std::logic_error);
}

TEST(Traffic, FractionWithinThreshold) {
  TrafficAccountant traffic(4, 1.0);
  traffic.begin_interval();
  // Server 0 sends 100 Mbps worth (12.5 MB over 1 s); others idle.
  traffic.record_transfer(0, 1, static_cast<Bytes>(200e6 / 8));
  traffic.finish();
  // Server 0 exceeds 100 Mbps uplink; server 1's downlink also exceeds it.
  EXPECT_DOUBLE_EQ(traffic.fraction_servers_within(100.0), 0.5);
  EXPECT_DOUBLE_EQ(traffic.fraction_servers_within(1e9), 1.0);
}

TEST(Traffic, ServersByPeakUplinkDescending) {
  TrafficAccountant traffic(3, 1.0);
  traffic.begin_interval();
  traffic.record_transfer(1, 0, 5000);
  traffic.record_transfer(2, 0, 1000);
  traffic.finish();
  const auto ranked = traffic.servers_by_peak_uplink();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], 1);
  EXPECT_EQ(ranked[1], 2);
  EXPECT_EQ(ranked[2], 0);
}

TEST(Traffic, BusiestIntervalAndPeakSnapshot) {
  TrafficAccountant traffic(3, 1.0);
  traffic.begin_interval();  // interval 0: light
  traffic.record_transfer(0, 1, 1000);
  traffic.begin_interval();  // interval 1: heavy
  traffic.record_transfer(0, 1, static_cast<Bytes>(200e6 / 8));
  traffic.record_transfer(2, 1, 500);
  traffic.finish();
  EXPECT_EQ(traffic.busiest_interval(), 1);
  // At the busiest interval, server 0 (uplink) and 1 (downlink) exceed
  // 100 Mbps; server 2 stays under.
  EXPECT_NEAR(traffic.fraction_servers_within_at_peak(100.0), 1.0 / 3.0,
              1e-12);
  EXPECT_DOUBLE_EQ(traffic.fraction_servers_within_at_peak(1e9), 1.0);
}

TEST(Traffic, EmptyAccountantPeakSnapshotIsVacuouslyFull) {
  TrafficAccountant traffic(2, 1.0);
  EXPECT_EQ(traffic.busiest_interval(), -1);
  EXPECT_DOUBLE_EQ(traffic.fraction_servers_within_at_peak(1.0), 1.0);
}

TEST(Traffic, LastIntervalBytesAreInThePeaks) {
  // Regression: the peaks are maintained incrementally at finish() now; the
  // final (possibly busiest) interval must be folded in before queries.
  TrafficAccountant traffic(2, 10.0);
  traffic.begin_interval();
  traffic.record_transfer(0, 1, 100);
  traffic.begin_interval();
  traffic.record_transfer(0, 1, 9000);  // busiest interval is the last one
  traffic.finish();
  EXPECT_DOUBLE_EQ(traffic.peak_uplink_mbps(0), bytes_to_mbps(9000.0, 10.0));
  EXPECT_DOUBLE_EQ(traffic.peak_downlink_mbps(1),
                   bytes_to_mbps(9000.0, 10.0));
  EXPECT_DOUBLE_EQ(traffic.global_peak_uplink_mbps(),
                   bytes_to_mbps(9000.0, 10.0));
}

TEST(Traffic, RunningPeaksMatchFullHistoryScan) {
  // The O(1) running peaks must agree with a from-scratch scan of the
  // per-interval history for every server and both directions.
  TrafficAccountant traffic(3, 5.0);
  const Bytes sends[][3] = {{0, 1, 700}, {1, 2, 300}, {2, 0, 900},
                            {0, 2, 100}, {1, 0, 800}, {2, 1, 50}};
  for (int interval = 0; interval < 4; ++interval) {
    traffic.begin_interval();
    for (const auto& s : sends)
      traffic.record_transfer(static_cast<ServerId>(s[0]),
                              static_cast<ServerId>(s[1]),
                              s[2] * (interval + 1));
  }
  traffic.finish();
  const TrafficAccountant::State state = traffic.state();
  for (ServerId sid = 0; sid < 3; ++sid) {
    // History is [interval][server]: scan every interval's row by hand.
    Bytes up = 0, down = 0;
    for (const auto& interval : state.uplink_history)
      up = std::max(up, interval[static_cast<std::size_t>(sid)]);
    for (const auto& interval : state.downlink_history)
      down = std::max(down, interval[static_cast<std::size_t>(sid)]);
    EXPECT_DOUBLE_EQ(traffic.peak_uplink_mbps(sid),
                     bytes_to_mbps(static_cast<double>(up), 5.0));
    EXPECT_DOUBLE_EQ(traffic.peak_downlink_mbps(sid),
                     bytes_to_mbps(static_cast<double>(down), 5.0));
  }
}

TEST(Traffic, StateRoundTripPreservesPeaksAndTotals) {
  TrafficAccountant traffic(2, 10.0);
  traffic.begin_interval();
  traffic.record_transfer(0, 1, 4000);
  traffic.begin_interval();
  traffic.record_transfer(1, 0, 2500);  // open interval, not yet finished

  TrafficAccountant resumed(2, 10.0);
  resumed.restore(traffic.state());
  traffic.finish();
  resumed.finish();
  EXPECT_EQ(resumed.total_bytes(), traffic.total_bytes());
  EXPECT_EQ(resumed.num_intervals(), traffic.num_intervals());
  for (ServerId sid = 0; sid < 2; ++sid) {
    EXPECT_DOUBLE_EQ(resumed.peak_uplink_mbps(sid),
                     traffic.peak_uplink_mbps(sid));
    EXPECT_DOUBLE_EQ(resumed.peak_downlink_mbps(sid),
                     traffic.peak_downlink_mbps(sid));
  }
  EXPECT_EQ(resumed.busiest_interval(), traffic.busiest_interval());
}

TEST(Traffic, RestoreRejectsMismatchedServerCount) {
  TrafficAccountant traffic(2, 10.0);
  traffic.begin_interval();
  traffic.record_transfer(0, 1, 10);
  TrafficAccountant other(3, 10.0);
  EXPECT_THROW(other.restore(traffic.state()), std::logic_error);
}

TEST(Traffic, FinishIsIdempotent) {
  TrafficAccountant traffic(1, 1.0);
  traffic.begin_interval();
  traffic.finish();
  traffic.finish();
  EXPECT_EQ(traffic.num_intervals(), 1);
}

}  // namespace
}  // namespace perdnn
