#include "ml/gbt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace perdnn::ml {
namespace {

Dataset nonlinear_data(Rng& rng, int n) {
  Dataset data;
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    data.add({a, b}, std::sin(3.0 * a) * b + 0.5 * a);
  }
  return data;
}

TEST(GradientBoostedTrees, BeatsMeanBaseline) {
  Rng rng(1);
  const Dataset train = nonlinear_data(rng, 1200);
  const Dataset test = nonlinear_data(rng, 300);
  GradientBoostedTrees model;
  model.fit(train, rng);

  std::vector<double> pred, actual, baseline;
  const double train_mean = mean(train.y);
  for (std::size_t i = 0; i < test.size(); ++i) {
    pred.push_back(model.predict(test.rows[i]));
    actual.push_back(test.y[i]);
    baseline.push_back(train_mean);
  }
  EXPECT_LT(mean_absolute_error(pred, actual),
            0.4 * mean_absolute_error(baseline, actual));
}

TEST(GradientBoostedTrees, MoreRoundsFitTighter) {
  Rng rng(2);
  const Dataset train = nonlinear_data(rng, 800);
  GbtConfig few;
  few.num_rounds = 5;
  GbtConfig many;
  many.num_rounds = 120;
  GradientBoostedTrees small(few), large(many);
  Rng rng_a(3), rng_b(3);
  small.fit(train, rng_a);
  large.fit(train, rng_b);
  std::vector<double> pred_small, pred_large;
  for (std::size_t i = 0; i < train.size(); ++i) {
    pred_small.push_back(small.predict(train.rows[i]));
    pred_large.push_back(large.predict(train.rows[i]));
  }
  EXPECT_LT(mean_absolute_error(pred_large, train.y),
            mean_absolute_error(pred_small, train.y));
}

TEST(GradientBoostedTrees, ConstantTargetIsExact) {
  Rng rng(4);
  Dataset data;
  for (int i = 0; i < 50; ++i) data.add({rng.normal()}, 7.25);
  GradientBoostedTrees model;
  model.fit(data, rng);
  EXPECT_NEAR(model.predict({0.0}), 7.25, 1e-9);
}

TEST(GradientBoostedTrees, DeterministicWithSeed) {
  Rng data_rng(5);
  const Dataset data = nonlinear_data(data_rng, 400);
  GradientBoostedTrees a, b;
  Rng ra(9), rb(9);
  a.fit(data, ra);
  b.fit(data, rb);
  Rng probe(6);
  for (int i = 0; i < 30; ++i) {
    const Vector x = {probe.uniform(-1.0, 1.0), probe.uniform(-1.0, 1.0)};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(GradientBoostedTrees, InvalidConfigAndUsageRejected) {
  GbtConfig bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW(GradientBoostedTrees{bad}, std::logic_error);
  bad = GbtConfig{};
  bad.subsample = 1.5;
  EXPECT_THROW(GradientBoostedTrees{bad}, std::logic_error);
  GradientBoostedTrees model;
  EXPECT_THROW(model.predict({1.0}), std::logic_error);
}

}  // namespace
}  // namespace perdnn::ml
