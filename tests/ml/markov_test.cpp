#include "ml/markov.hpp"

#include <gtest/gtest.h>

namespace perdnn::ml {
namespace {

TEST(Markov, LearnsDeterministicCycle) {
  PredictionSuffixTree tree;
  // 1 -> 2 -> 3 -> 1 -> ...
  tree.add_sequence({1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3});
  EXPECT_EQ(tree.predict_top({1}, 1), std::vector<int>{2});
  EXPECT_EQ(tree.predict_top({2}, 1), std::vector<int>{3});
  EXPECT_EQ(tree.predict_top({3, 1, 2}, 1), std::vector<int>{3});
}

TEST(Markov, DistributionReflectsFrequencies) {
  PredictionSuffixTree tree;
  // After 5: goes to 6 three times, to 7 once.
  tree.add_sequence({5, 6, 5, 6, 5, 7, 5, 6});
  const auto dist = tree.predict_distribution({5});
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_EQ(dist[0].first, 6);
  EXPECT_NEAR(dist[0].second, 0.75, 1e-9);
  EXPECT_EQ(dist[1].first, 7);
  EXPECT_NEAR(dist[1].second, 0.25, 1e-9);
}

TEST(Markov, TopNOrdering) {
  PredictionSuffixTree tree;
  tree.add_sequence({0, 1, 0, 1, 0, 2, 0, 1, 0, 3});
  const auto top2 = tree.predict_top({0}, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 1);  // most frequent successor of 0
}

TEST(Markov, UnseenContextFallsBackToShorterSuffix) {
  PredictionSuffixTree tree;
  tree.add_sequence({1, 2, 3, 4});
  // Context {9, 9, 3} has an unseen prefix but suffix {3} is known.
  EXPECT_EQ(tree.predict_top({9, 9, 3}, 1), std::vector<int>{4});
}

TEST(Markov, CompletelyUnseenSymbolsYieldEmpty) {
  PredictionSuffixTree tree;
  tree.add_sequence({1, 2, 3});
  EXPECT_TRUE(tree.predict_top({42}, 1).empty());
  EXPECT_TRUE(tree.predict_distribution({}).empty());
}

TEST(Markov, VariableOrderDisambiguates) {
  // Order-1 cannot separate these, order-2 can: after (1,2) comes 7;
  // after (3,2) comes 8.
  PredictionSuffixTree tree;
  for (int i = 0; i < 5; ++i) {
    tree.add_sequence({1, 2, 7});
    tree.add_sequence({3, 2, 8});
  }
  // Subsequence ratio 0.7 keeps floor(2 * 0.7) = 1 symbol... use ratio 1.0
  // to exercise the full context.
  PredictionSuffixTree full_tree({.max_order = 5, .subsequence_ratio = 1.0});
  for (int i = 0; i < 5; ++i) {
    full_tree.add_sequence({1, 2, 7});
    full_tree.add_sequence({3, 2, 8});
  }
  EXPECT_EQ(full_tree.predict_top({1, 2}, 1), std::vector<int>{7});
  EXPECT_EQ(full_tree.predict_top({3, 2}, 1), std::vector<int>{8});
}

TEST(Markov, SubsequenceRatioShortensContext) {
  // With ratio 0.5 a matched context of length 4 is cut to length 2.
  PredictionSuffixTree tree({.max_order = 5, .subsequence_ratio = 0.5});
  tree.add_sequence({1, 2, 3, 4, 5});
  tree.add_sequence({9, 9, 3, 4, 6});  // same length-2 suffix (3, 4) -> 6
  const auto dist = tree.predict_distribution({1, 2, 3, 4});
  // Longest match is (1,2,3,4) -> cut to (3,4): both 5 and 6 seen.
  ASSERT_EQ(dist.size(), 2u);
}

TEST(Markov, MaxOrderBoundsContexts) {
  PredictionSuffixTree tree({.max_order = 2, .subsequence_ratio = 1.0});
  tree.add_sequence({1, 2, 3, 4});
  // Contexts of length up to 2 exist for positions in the sequence:
  // {1},{2},{3},{1,2},{2,3}  -> 5 contexts total.
  EXPECT_EQ(tree.num_contexts(), 5u);
}

TEST(Markov, InvalidConfigRejected) {
  EXPECT_THROW(PredictionSuffixTree({.max_order = 0}), std::logic_error);
  EXPECT_THROW(
      PredictionSuffixTree({.max_order = 3, .subsequence_ratio = 0.0}),
      std::logic_error);
}

}  // namespace
}  // namespace perdnn::ml
