#include "ml/linear_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace perdnn::ml {
namespace {

TEST(RidgeRegression, RecoversLinearFunction) {
  Rng rng(1);
  Dataset data;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-5.0, 5.0);
    const double b = rng.uniform(-5.0, 5.0);
    data.add({a, b}, 3.0 * a - 2.0 * b + 7.0);
  }
  RidgeRegression model;
  model.fit(data);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(-5.0, 5.0);
    const double b = rng.uniform(-5.0, 5.0);
    EXPECT_NEAR(model.predict({a, b}), 3.0 * a - 2.0 * b + 7.0, 1e-6);
  }
}

TEST(RidgeRegression, HandlesNoisyData) {
  Rng rng(2);
  Dataset data;
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    data.add({a}, 2.0 * a + 1.0 + rng.normal(0.0, 0.5));
  }
  RidgeRegression model;
  model.fit(data);
  EXPECT_NEAR(model.predict({4.0}), 9.0, 0.15);
}

TEST(RidgeRegression, LogFeaturesHelpMultiplicativeTargets) {
  // y = log(1+x) is exactly representable with the log expansion but not
  // with a plain linear model over a wide range.
  Rng rng(3);
  Dataset data;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(0.0, 1000.0);
    data.add({x}, std::log1p(x));
  }
  RidgeRegression plain({.ridge = 1e-6, .log_features = false});
  RidgeRegression logged({.ridge = 1e-6, .log_features = true});
  plain.fit(data);
  logged.fit(data);
  double err_plain = 0.0, err_logged = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.0, 1000.0);
    err_plain += std::abs(plain.predict({x}) - std::log1p(x));
    err_logged += std::abs(logged.predict({x}) - std::log1p(x));
  }
  EXPECT_LT(err_logged, 0.1 * err_plain);
}

TEST(RidgeRegression, PredictBeforeFitThrows) {
  RidgeRegression model;
  EXPECT_THROW(model.predict({1.0}), std::logic_error);
}

TEST(RidgeRegression, FeatureArityChecked) {
  Rng rng(4);
  Dataset data;
  for (int i = 0; i < 10; ++i) data.add({rng.normal(), rng.normal()}, 1.0);
  RidgeRegression model;
  model.fit(data);
  EXPECT_THROW(model.predict({1.0}), std::logic_error);
}

TEST(RidgeRegression, CollinearFeaturesStayStable) {
  // Duplicate feature columns would make plain normal equations singular;
  // the ridge floor must keep the solve finite.
  Rng rng(5);
  Dataset data;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    data.add({x, x}, 5.0 * x);
  }
  RidgeRegression model({.ridge = 1e-6, .log_features = false});
  EXPECT_NO_THROW(model.fit(data));
  EXPECT_NEAR(model.predict({0.5, 0.5}), 2.5, 0.05);
}

}  // namespace
}  // namespace perdnn::ml
