#include "ml/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace perdnn::ml {
namespace {

LstmConfig small_config() {
  LstmConfig config;
  config.input_dim = 2;
  config.hidden_dim = 8;
  config.output_dim = 2;
  config.epochs = 60;
  config.batch_size = 8;
  return config;
}

TEST(Lstm, OutputShapeAndDeterminism) {
  Rng rng(1);
  LstmRegressor model(small_config(), rng);
  const std::vector<Vector> seq = {{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}};
  const Vector a = model.predict(seq);
  const Vector b = model.predict(seq);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_DOUBLE_EQ(a[1], b[1]);
}

TEST(Lstm, RejectsWrongInputWidth) {
  Rng rng(2);
  LstmRegressor model(small_config(), rng);
  EXPECT_THROW(model.predict({{1.0}}), std::logic_error);
  EXPECT_THROW(model.predict({}), std::logic_error);
}

TEST(Lstm, LearnsLinearExtrapolation) {
  // Sequences of points moving at constant velocity; target = next point.
  // This is the structure mobility prediction exploits.
  Rng rng(3);
  std::vector<std::vector<Vector>> sequences;
  std::vector<Vector> targets;
  for (int i = 0; i < 400; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double y0 = rng.uniform(-1.0, 1.0);
    const double vx = rng.uniform(-0.1, 0.1);
    const double vy = rng.uniform(-0.1, 0.1);
    std::vector<Vector> seq;
    for (int t = 0; t < 5; ++t) seq.push_back({x0 + vx * t, y0 + vy * t});
    sequences.push_back(std::move(seq));
    targets.push_back({x0 + vx * 5, y0 + vy * 5});
  }
  LstmRegressor model(small_config(), rng);
  const double before = model.evaluate_mae(sequences, targets);
  model.fit(sequences, targets, rng);
  const double after = model.evaluate_mae(sequences, targets);
  EXPECT_LT(after, 0.5 * before);
  EXPECT_LT(after, 0.08);
}

TEST(Lstm, TrainingReducesLossOnStationaryTask) {
  // Target = last input element (the "copy" task).
  Rng rng(4);
  std::vector<std::vector<Vector>> sequences;
  std::vector<Vector> targets;
  for (int i = 0; i < 300; ++i) {
    std::vector<Vector> seq;
    for (int t = 0; t < 4; ++t)
      seq.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
    targets.push_back(seq.back());
    sequences.push_back(std::move(seq));
  }
  LstmRegressor model(small_config(), rng);
  const double before = model.evaluate_mae(sequences, targets);
  model.fit(sequences, targets, rng);
  EXPECT_LT(model.evaluate_mae(sequences, targets), 0.6 * before);
}

TEST(Lstm, InvalidConfigRejected) {
  LstmConfig config = small_config();
  config.hidden_dim = 0;
  Rng rng(5);
  EXPECT_THROW(LstmRegressor(config, rng), std::logic_error);
}

TEST(Lstm, MismatchedFitInputsRejected) {
  Rng rng(6);
  LstmRegressor model(small_config(), rng);
  std::vector<std::vector<Vector>> sequences = {{{0.0, 0.0}}};
  std::vector<Vector> targets;  // size mismatch
  EXPECT_THROW(model.fit(sequences, targets, rng), std::logic_error);
}

}  // namespace
}  // namespace perdnn::ml
