#include "ml/svr.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace perdnn::ml {
namespace {

TEST(LinearSvr, FitsLinearFunction) {
  Rng rng(1);
  Dataset data;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    data.add({a, b}, 2.0 * a - b + 0.5);
  }
  LinearSvr model;
  model.fit(data, rng);
  double err = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    err += std::abs(model.predict({a, b}) - (2.0 * a - b + 0.5));
  }
  EXPECT_LT(err / 100.0, 0.05);
}

TEST(LinearSvr, EpsilonTubeIgnoresSmallNoise) {
  Rng rng(2);
  Dataset data;
  for (int i = 0; i < 800; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    data.add({a}, a + rng.uniform(-0.05, 0.05));
  }
  SvrConfig config;
  config.epsilon = 0.05;
  LinearSvr model(config);
  model.fit(data, rng);
  EXPECT_NEAR(model.predict({0.5}), 0.5, 0.08);
}

TEST(LinearSvr, RobustToOutliersComparedToSquaredLoss) {
  // The epsilon-insensitive (L1-like) loss should keep the slope near 1
  // even with a handful of gross outliers.
  Rng rng(3);
  Dataset data;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    data.add({a}, a);
  }
  for (int i = 0; i < 10; ++i) data.add({0.5}, 50.0);  // outliers
  LinearSvr model;
  model.fit(data, rng);
  EXPECT_NEAR(model.predict({-0.5}), -0.5, 0.2);
}

TEST(LinearSvr, PredictBeforeFitThrows) {
  LinearSvr model;
  EXPECT_THROW(model.predict({1.0}), std::logic_error);
}

TEST(LinearSvr, InvalidConfigRejected) {
  SvrConfig config;
  config.epochs = 0;
  EXPECT_THROW(LinearSvr{config}, std::logic_error);
}

TEST(MultiOutputSvr, PredictsBothOutputs) {
  Rng rng(4);
  std::vector<Vector> features;
  std::vector<Vector> targets;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    features.push_back({a, b});
    targets.push_back({a + b, a - b});
  }
  MultiOutputSvr model(2);
  EXPECT_FALSE(model.trained());
  model.fit(features, targets, rng);
  EXPECT_TRUE(model.trained());
  const Vector out = model.predict({0.3, 0.1});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0], 0.4, 0.08);
  EXPECT_NEAR(out[1], 0.2, 0.08);
}

TEST(MultiOutputSvr, RejectsMismatchedTargets) {
  MultiOutputSvr model(2);
  Rng rng(5);
  std::vector<Vector> features = {{1.0}};
  std::vector<Vector> targets = {{1.0}};  // needs 2 outputs
  EXPECT_THROW(model.fit(features, targets, rng), std::logic_error);
}

}  // namespace
}  // namespace perdnn::ml
