#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace perdnn::ml {
namespace {

Dataset make_dataset(int n, Rng& rng) {
  Dataset data;
  for (int i = 0; i < n; ++i)
    data.add({rng.normal(10.0, 3.0), rng.normal(-5.0, 0.5)}, rng.normal());
  return data;
}

TEST(Dataset, AddRejectsArityChange) {
  Dataset data;
  data.add({1.0, 2.0}, 0.0);
  EXPECT_THROW(data.add({1.0}, 0.0), std::logic_error);
}

TEST(Dataset, ToMatrixRoundTrips) {
  Dataset data;
  data.add({1.0, 2.0}, 0.0);
  data.add({3.0, 4.0}, 1.0);
  const Matrix m = data.to_matrix();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Dataset, TrainTestSplitPartitions) {
  Rng rng(1);
  const Dataset data = make_dataset(100, rng);
  const auto [train, test] = train_test_split(data, 0.25, rng);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.size(), 75u);
  // Together they hold exactly the original targets (as a multiset sum).
  double total = 0.0;
  for (double y : data.y) total += y;
  double split_total = 0.0;
  for (double y : train.y) split_total += y;
  for (double y : test.y) split_total += y;
  EXPECT_NEAR(total, split_total, 1e-9);
}

TEST(Dataset, SplitRejectsDegenerateFractions) {
  Rng rng(2);
  const Dataset data = make_dataset(10, rng);
  EXPECT_THROW(train_test_split(data, 0.0, rng), std::logic_error);
  EXPECT_THROW(train_test_split(data, 1.0, rng), std::logic_error);
}

TEST(Scaler, ProducesStandardScores) {
  Rng rng(3);
  const Dataset data = make_dataset(2000, rng);
  StandardScaler scaler;
  scaler.fit(data.rows);
  const auto scaled = scaler.transform(data.rows);
  // Column means ~0, variances ~1.
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (const auto& row : scaled) {
      sum += row[c];
      sq += row[c] * row[c];
    }
    const double mean = sum / static_cast<double>(scaled.size());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(sq / static_cast<double>(scaled.size()) - mean * mean, 1.0,
                1e-6);
  }
}

TEST(Scaler, InverseSingleRoundTrips) {
  Rng rng(5);
  const Dataset data = make_dataset(100, rng);
  StandardScaler scaler;
  scaler.fit(data.rows);
  for (const auto& row : data.rows) {
    const Vector t = scaler.transform(row);
    EXPECT_NEAR(scaler.inverse_single(0, t[0]), row[0], 1e-9);
    EXPECT_NEAR(scaler.inverse_single(1, t[1]), row[1], 1e-9);
  }
}

TEST(Scaler, ConstantFeatureStaysFinite) {
  StandardScaler scaler;
  scaler.fit({{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}});
  const Vector t = scaler.transform({5.0, 2.0});
  EXPECT_TRUE(std::isfinite(t[0]));
  EXPECT_DOUBLE_EQ(t[0], 0.0);
}

TEST(Scaler, TransformBeforeFitThrows) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(Vector{1.0}), std::logic_error);
}

}  // namespace
}  // namespace perdnn::ml
