// FlatForest must reproduce the pointer-walking ensembles bit for bit —
// the estimator fast path substitutes it silently, so any ULP drift would
// break the fastpath-on/off byte-identical guarantee downstream.
#include "ml/flat_forest.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace perdnn::ml {
namespace {

Dataset random_dataset(Rng& rng, int n, int num_features) {
  Dataset data;
  for (int i = 0; i < n; ++i) {
    Vector x(static_cast<std::size_t>(num_features));
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);
    // A lumpy nonlinear target so trees actually split on every feature.
    double y = 0.0;
    for (std::size_t f = 0; f < x.size(); ++f)
      y += (f % 2 == 0 ? 1.0 : -0.5) * x[f] * x[f] + (x[f] > 0.3 ? 1.0 : 0.0);
    data.add(std::move(x), y + rng.uniform(-0.1, 0.1));
  }
  return data;
}

std::vector<Vector> random_queries(Rng& rng, int n, int num_features) {
  std::vector<Vector> queries;
  for (int i = 0; i < n; ++i) {
    Vector x(static_cast<std::size_t>(num_features));
    for (auto& v : x) v = rng.uniform(-3.0, 3.0);  // includes extrapolation
    queries.push_back(std::move(x));
  }
  return queries;
}

TEST(FlatForest, SingleTreeBitIdentical) {
  Rng rng(11);
  for (int features : {1, 3, 7}) {
    const Dataset data = random_dataset(rng, 300, features);
    RegressionTree tree;
    tree.fit(data, rng);
    const FlatForest flat = FlatForest::compile(tree);
    EXPECT_EQ(flat.num_trees(), 1u);
    EXPECT_EQ(flat.num_nodes(), tree.num_nodes());
    for (const Vector& q : random_queries(rng, 200, features))
      EXPECT_EQ(flat.predict(q), tree.predict(q));  // exact, not NEAR
  }
}

TEST(FlatForest, RandomForestBitIdentical) {
  Rng rng(12);
  for (int seed = 0; seed < 3; ++seed) {
    Rng fit_rng(100 + seed);
    const Dataset data = random_dataset(rng, 400, 5);
    ForestConfig config;
    config.num_trees = 12;
    RandomForest forest(config);
    forest.fit(data, fit_rng);
    const FlatForest flat = FlatForest::compile(forest);
    EXPECT_EQ(flat.num_trees(), 12u);
    for (const Vector& q : random_queries(rng, 300, 5))
      EXPECT_EQ(flat.predict(q), forest.predict(q));
  }
}

TEST(FlatForest, GradientBoostedBitIdentical) {
  Rng rng(13);
  for (int seed = 0; seed < 3; ++seed) {
    Rng fit_rng(200 + seed);
    const Dataset data = random_dataset(rng, 400, 4);
    GbtConfig config;
    config.num_rounds = 25;
    GradientBoostedTrees gbt(config);
    gbt.fit(data, fit_rng);
    const FlatForest flat = FlatForest::compile(gbt);
    EXPECT_EQ(flat.num_trees(), 25u);
    for (const Vector& q : random_queries(rng, 300, 4))
      EXPECT_EQ(flat.predict(q), gbt.predict(q));
  }
}

TEST(FlatForest, PredictBatchMatchesPredictPerRow) {
  Rng rng(14);
  const Dataset data = random_dataset(rng, 400, 6);
  Rng fit_rng(42);
  ForestConfig config;
  config.num_trees = 8;
  RandomForest forest(config);
  forest.fit(data, fit_rng);
  const FlatForest flat = FlatForest::compile(forest);

  const auto queries = random_queries(rng, 64, 6);
  Matrix rows(queries.size(), 6);
  for (std::size_t r = 0; r < queries.size(); ++r)
    for (std::size_t c = 0; c < 6; ++c) rows(r, c) = queries[r][c];

  const Vector batch = flat.predict_batch(rows);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t r = 0; r < queries.size(); ++r) {
    EXPECT_EQ(batch[r], flat.predict(queries[r]));
    EXPECT_EQ(batch[r], forest.predict(queries[r]));
  }
}

TEST(FlatForest, EmptyAndAccessors) {
  const FlatForest flat;
  EXPECT_TRUE(flat.empty());
  EXPECT_EQ(flat.num_trees(), 0u);
  EXPECT_EQ(flat.num_nodes(), 0u);
}

}  // namespace
}  // namespace perdnn::ml
