// SIMD-vs-scalar kernel equivalence gate: FlatForest::predict_batch_into
// with the AVX2 kernel enabled must be bit-identical — not approximately
// equal — to the forced-scalar path on the same rows, for RF and GBT
// ensembles, for batch sizes off the SIMD width, and for feature values at
// the edges of the double range (subnormals, huge magnitudes, signed
// zeros). On builds or machines without AVX2 the forced-on leg clamps back
// to scalar and the comparisons become trivially true, which keeps the test
// meaningful exactly where a divergence could exist.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "ml/dataset.hpp"
#include "ml/flat_forest.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"

namespace perdnn::ml {
namespace {

struct SimdGuard {
  explicit SimdGuard(bool enable) : previous(simd::enabled()) {
    simd::set_enabled(enable);
  }
  ~SimdGuard() { simd::set_enabled(previous); }
  bool previous;
};

Dataset random_dataset(Rng& rng, int n, int num_features) {
  Dataset data;
  for (int i = 0; i < n; ++i) {
    Vector x(static_cast<std::size_t>(num_features));
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);
    double y = 0.0;
    for (std::size_t f = 0; f < x.size(); ++f)
      y += (f % 2 == 0 ? 1.0 : -0.5) * x[f] * x[f] + (x[f] > 0.3 ? 1.0 : 0.0);
    data.add(std::move(x), y + rng.uniform(-0.1, 0.1));
  }
  return data;
}

FlatForest train_rf(int num_features, int num_trees) {
  Rng rng(17);
  const Dataset data = random_dataset(rng, 400, num_features);
  ForestConfig config;
  config.num_trees = num_trees;
  RandomForest forest(config);
  Rng fit_rng(29);
  forest.fit(data, fit_rng);
  return FlatForest::compile(forest);
}

FlatForest train_gbt(int num_features) {
  Rng rng(19);
  const Dataset data = random_dataset(rng, 400, num_features);
  GbtConfig config;
  GradientBoostedTrees gbt(config);
  Rng fit_rng(31);
  gbt.fit(data, fit_rng);
  return FlatForest::compile(gbt);
}

/// Row-major feature matrix with a mix of ordinary, boundary and edge-case
/// values: subnormals, near-max magnitudes, signed zeros and values close to
/// real split thresholds.
std::vector<double> edge_case_rows(Rng& rng, std::size_t n,
                                   std::size_t num_features) {
  const double specials[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min() / 4.0,  // subnormal
      std::numeric_limits<double>::min(),
      1e300,
      -1e300,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      1e-308,
      -1e-308,
  };
  constexpr std::size_t kNumSpecials = sizeof(specials) / sizeof(specials[0]);
  std::vector<double> rows(n * num_features);
  std::size_t k = 0;
  for (double& v : rows) {
    // Every 3rd value is drawn from the specials; the rest span the trained
    // range plus extrapolation.
    v = (k % 3 == 0) ? specials[(k / 3) % kNumSpecials]
                     : rng.uniform(-3.0, 3.0);
    ++k;
  }
  return rows;
}

void expect_bit_identical(const FlatForest& forest, const double* rows,
                          std::size_t num_features, std::size_t n) {
  std::vector<double> scalar_out(n, -1.0), simd_out(n, -2.0);
  {
    SimdGuard guard(false);
    forest.predict_batch_into(rows, num_features, n, scalar_out.data());
  }
  {
    SimdGuard guard(true);
    forest.predict_batch_into(rows, num_features, n, simd_out.data());
  }
  // memcmp, not ==: NaN-safe and catches -0.0 vs 0.0 drift.
  EXPECT_EQ(std::memcmp(scalar_out.data(), simd_out.data(),
                        n * sizeof(double)),
            0)
      << "batch size " << n;
  // Both must also match per-row predict() (the scalar reference).
  for (std::size_t i = 0; i < n; ++i) {
    Vector row(rows + i * num_features, rows + (i + 1) * num_features);
    EXPECT_EQ(forest.predict(row), scalar_out[i]) << "row " << i;
  }
}

TEST(FlatForestSimd, ReportsDispatchState) {
  // enabled() can never exceed what the build and CPU provide.
  if (!simd::compiled_in() || !simd::cpu_supported())
    EXPECT_FALSE(simd::enabled());
  SimdGuard on(true);
  EXPECT_EQ(simd::enabled(), simd::compiled_in() && simd::cpu_supported());
  EXPECT_STREQ(simd::active_kernel(), simd::enabled() ? "avx2" : "scalar");
}

TEST(FlatForestSimd, RandomForestBitIdenticalAcrossBatchSizes) {
  const FlatForest forest = train_rf(5, 12);
  Rng rng(41);
  // Off-width sizes on both sides of kSimdWidth, plus exact multiples.
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                              std::size_t{7}, std::size_t{8}, std::size_t{9},
                              std::size_t{16}, std::size_t{17},
                              std::size_t{67}, std::size_t{256}}) {
    const auto rows = edge_case_rows(rng, n, forest.num_features());
    expect_bit_identical(forest, rows.data(), forest.num_features(), n);
  }
}

TEST(FlatForestSimd, GradientBoostedBitIdenticalAcrossBatchSizes) {
  const FlatForest forest = train_gbt(4);
  Rng rng(43);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                              std::size_t{9}, std::size_t{67},
                              std::size_t{128}}) {
    const auto rows = edge_case_rows(rng, n, forest.num_features());
    expect_bit_identical(forest, rows.data(), forest.num_features(), n);
  }
}

TEST(FlatForestSimd, EmptyBatchIsANoOp) {
  const FlatForest forest = train_rf(3, 4);
  double sentinel = 123.5;
  SimdGuard guard(true);
  forest.predict_batch_into(nullptr, forest.num_features(), 0, &sentinel);
  EXPECT_EQ(sentinel, 123.5);
}

TEST(FlatForestSimd, WideStrideRowsMatch) {
  // stride > num_features: the kernel must only read the leading columns.
  const FlatForest forest = train_rf(4, 8);
  Rng rng(47);
  const std::size_t n = 24;
  const std::size_t stride = forest.num_features() + 3;
  std::vector<double> rows(n * stride,
                           std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t f = 0; f < forest.num_features(); ++f)
      rows[i * stride + f] = rng.uniform(-3.0, 3.0);
  std::vector<double> scalar_out(n), simd_out(n);
  {
    SimdGuard guard(false);
    forest.predict_batch_into(rows.data(), stride, n, scalar_out.data());
  }
  {
    SimdGuard guard(true);
    forest.predict_batch_into(rows.data(), stride, n, simd_out.data());
  }
  EXPECT_EQ(std::memcmp(scalar_out.data(), simd_out.data(),
                        n * sizeof(double)),
            0);
}

TEST(FlatForestSimd, PredictBatchMatrixMatchesForcedScalar) {
  const FlatForest forest = train_rf(5, 10);
  Rng rng(53);
  const std::size_t n = 37;
  Matrix rows(n, forest.num_features());
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < forest.num_features(); ++c)
      rows(r, c) = rng.uniform(-3.0, 3.0);
  Vector scalar_out, simd_out;
  {
    SimdGuard guard(false);
    scalar_out = forest.predict_batch(rows);
  }
  {
    SimdGuard guard(true);
    simd_out = forest.predict_batch(rows);
  }
  ASSERT_EQ(scalar_out.size(), simd_out.size());
  EXPECT_EQ(std::memcmp(scalar_out.data(), simd_out.data(),
                        n * sizeof(double)),
            0);
}

}  // namespace
}  // namespace perdnn::ml
