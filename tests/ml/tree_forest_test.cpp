#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"

namespace perdnn::ml {
namespace {

Dataset step_function_data(Rng& rng, int n) {
  // y = 1 if x0 > 0 else -1; x1 is pure noise.
  Dataset data;
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    data.add({x0, rng.uniform(-1.0, 1.0)}, x0 > 0.0 ? 1.0 : -1.0);
  }
  return data;
}

TEST(RegressionTree, FitsStepFunctionExactly) {
  Rng rng(1);
  const Dataset data = step_function_data(rng, 400);
  RegressionTree tree;
  tree.fit(data, rng);
  for (int i = 0; i < 100; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    if (std::abs(x0) < 0.05) continue;  // skip the boundary band
    EXPECT_NEAR(tree.predict({x0, rng.uniform(-1.0, 1.0)}),
                x0 > 0 ? 1.0 : -1.0, 0.2);
  }
}

TEST(RegressionTree, ImportanceConcentratesOnInformativeFeature) {
  Rng rng(2);
  const Dataset data = step_function_data(rng, 400);
  RegressionTree tree;
  tree.fit(data, rng);
  const Vector& imp = tree.impurity_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 10.0 * (imp[1] + 1e-12));
}

TEST(RegressionTree, RespectsMaxDepth) {
  Rng rng(3);
  Dataset data;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    data.add({x}, std::sin(20.0 * x));
  }
  TreeConfig config;
  config.max_depth = 2;
  RegressionTree tree(config);
  tree.fit(data, rng);
  EXPECT_LE(tree.depth(), 2);
  EXPECT_LE(tree.num_nodes(), 7u);
}

TEST(RegressionTree, ConstantTargetMakesSingleLeaf) {
  Rng rng(4);
  Dataset data;
  for (int i = 0; i < 50; ++i) data.add({rng.normal()}, 3.5);
  RegressionTree tree;
  tree.fit(data, rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({0.0}), 3.5);
}

TEST(RegressionTree, PredictBeforeFitThrows) {
  RegressionTree tree;
  EXPECT_THROW(tree.predict({1.0}), std::logic_error);
}

TEST(RegressionTree, InvalidConfigRejected) {
  TreeConfig config;
  config.min_samples_split = 1;  // must be >= 2 * min_samples_leaf
  EXPECT_THROW(RegressionTree{config}, std::logic_error);
}

TEST(RandomForest, BeatsMeanBaselineOnNonlinearTarget) {
  Rng rng(5);
  auto target = [](double a, double b) { return std::sin(3.0 * a) * b; };
  Dataset train, test;
  for (int i = 0; i < 1500; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    (i < 1200 ? train : test).add({a, b}, target(a, b));
  }
  RandomForest forest;
  forest.fit(train, rng);

  std::vector<double> pred, actual, baseline;
  const double train_mean = mean(train.y);
  for (std::size_t i = 0; i < test.size(); ++i) {
    pred.push_back(forest.predict(test.rows[i]));
    actual.push_back(test.y[i]);
    baseline.push_back(train_mean);
  }
  EXPECT_LT(mean_absolute_error(pred, actual),
            0.5 * mean_absolute_error(baseline, actual));
}

TEST(RandomForest, ImportanceNormalisedAndInformative) {
  Rng rng(6);
  const Dataset data = step_function_data(rng, 600);
  RandomForest forest;
  forest.fit(data, rng);
  const Vector imp = forest.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
  EXPECT_GT(imp[0], 0.9);
}

TEST(RandomForest, DeterministicWithSeed) {
  Rng data_rng(7);
  const Dataset data = step_function_data(data_rng, 300);
  RandomForest a, b;
  Rng rng_a(99), rng_b(99);
  a.fit(data, rng_a);
  b.fit(data, rng_b);
  Rng probe(8);
  for (int i = 0; i < 50; ++i) {
    const Vector x = {probe.uniform(-1.0, 1.0), probe.uniform(-1.0, 1.0)};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(RandomForest, RejectsTinyDatasets) {
  RandomForest forest;
  Dataset data;
  data.add({1.0}, 1.0);
  Rng rng(9);
  EXPECT_THROW(forest.fit(data, rng), std::logic_error);
}

}  // namespace
}  // namespace perdnn::ml
