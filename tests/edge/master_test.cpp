#include "edge/master.hpp"

#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

/// Shared fixture: a small fleet of servers, a trained RF estimator over the
/// toy model, an SVR predictor on straight-line traces.
class MasterServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto servers = std::make_shared<ServerMap>(50.0);
    for (double x = 0.0; x <= 800.0; x += 100.0)
      servers->allocate_at({x, 0.0});

    gpu_ = new GpuContentionModel(titan_xp_profile());
    model_ = new DnnModel(build_toy_model(4));
    ConcurrencyProfiler profiler(gpu_, Rng(1));
    const DnnModel* models[] = {model_};
    ProfilerConfig prof_config;
    prof_config.max_clients = 6;
    prof_config.samples_per_level = 4;
    const auto records = profiler.profile_models(models, prof_config);
    auto estimator = std::make_shared<RandomForestEstimator>();
    Rng rng(2);
    estimator->train(records, rng);

    // Straight-line east-bound trajectories for SVR training.
    std::vector<Trajectory> train;
    Rng traj_rng(3);
    for (int u = 0; u < 20; ++u) {
      Trajectory traj;
      traj.interval = 20.0;
      Point pos{traj_rng.uniform(0.0, 100.0), 0.0};
      const double v = traj_rng.uniform(20.0, 40.0);
      for (int t = 0; t < 20; ++t) {
        traj.points.push_back(pos);
        pos.x += v;
      }
      train.push_back(std::move(traj));
    }
    auto predictor = std::make_shared<SvrPredictor>(3);
    Rng fit_rng(4);
    predictor->fit(train, fit_rng);

    MasterServer::Config config;
    config.migration_radius_m = 120.0;
    master_ = new MasterServer(servers, estimator, predictor, config);
    servers_ = new std::shared_ptr<const ServerMap>(servers);
  }

  static void TearDownTestSuite() {
    delete master_;
    delete gpu_;
    delete model_;
    delete servers_;
    master_ = nullptr;
    gpu_ = nullptr;
    model_ = nullptr;
    servers_ = nullptr;
  }

  static ClientId register_toy_client() {
    DnnModel model = build_toy_model(4);
    DnnProfile profile = profile_on_client(model, odroid_xu4_profile());
    return master_->register_client(std::move(model), std::move(profile));
  }

  static GpuStats stats_at_load(int load) {
    Rng rng(500 + load);
    return gpu_->stats_for_load(load, static_cast<double>(load), rng);
  }

  static MasterServer* master_;
  static GpuContentionModel* gpu_;
  static DnnModel* model_;
  static std::shared_ptr<const ServerMap>* servers_;
};

MasterServer* MasterServerTest::master_ = nullptr;
GpuContentionModel* MasterServerTest::gpu_ = nullptr;
DnnModel* MasterServerTest::model_ = nullptr;
std::shared_ptr<const ServerMap>* MasterServerTest::servers_ = nullptr;

TEST_F(MasterServerTest, RegistrationValidatesProfileArity) {
  DnnModel model = build_toy_model(2);
  DnnProfile bad;
  bad.client_time = {0.0};  // wrong length
  EXPECT_THROW(master_->register_client(std::move(model), std::move(bad)),
               std::logic_error);
  const ClientId id = register_toy_client();
  EXPECT_GE(id, 0);
  EXPECT_EQ(master_->client_model(id).name(), "Toy");
  EXPECT_THROW(master_->client_model(9999), std::logic_error);
}

TEST_F(MasterServerTest, TrajectoryAccumulates) {
  const ClientId id = register_toy_client();
  master_->report_location(id, {1.0, 2.0});
  master_->report_location(id, {3.0, 4.0});
  const auto traj = master_->trajectory(id);
  ASSERT_EQ(traj.size(), 2u);
  EXPECT_DOUBLE_EQ(traj[1].x, 3.0);
}

TEST_F(MasterServerTest, CurrentPlanBeatsLocalExecution) {
  const ClientId id = register_toy_client();
  const PartitionPlan plan = master_->current_plan(id, stats_at_load(1));
  EXPECT_GT(plan.num_server_layers(), 0);
  const UploadSchedule schedule =
      master_->upload_schedule(id, plan, stats_at_load(1));
  EXPECT_EQ(schedule.order.size(),
            static_cast<std::size_t>(plan.num_server_layers()));
}

TEST_F(MasterServerTest, SelectServerPrefersIdleOne) {
  const ClientId id = register_toy_client();
  const std::vector<ServerId> candidates = {0, 1, 2};
  // Server 1 is idle; 0 and 2 are slammed.
  const auto choice = master_->select_server(
      id, candidates, [&](ServerId s) { return stats_at_load(s == 1 ? 1 : 6); });
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->server, 1);
  EXPECT_FALSE(master_->select_server(id, {}, [](ServerId) {
    return GpuStats{};
  }).has_value());
}

TEST_F(MasterServerTest, MigrationOrdersTargetPredictedNeighbourhood) {
  const ClientId id = register_toy_client();
  // East-bound at 30 m per interval near x=300: next location ~x=330.
  for (int t = 0; t < 4; ++t)
    master_->report_location(id, {240.0 + 30.0 * t, 0.0});

  const auto n = static_cast<std::size_t>(
      master_->client_model(id).num_layers());
  const std::vector<bool> all(n, true);
  const ServerId current = (*servers_)->server_at({330.0, 0.0});
  const auto orders = master_->plan_migrations(
      id, current, all, [&](ServerId) { return stats_at_load(1); });
  ASSERT_FALSE(orders.empty());
  for (const auto& order : orders) {
    EXPECT_NE(order.target, current);
    EXPECT_GT(order.bytes, 0);
    EXPECT_FALSE(order.layers.empty());
    // Targets cluster around the predicted position (~x=330, radius 120).
    const Point center = (*servers_)->server_center(order.target);
    EXPECT_NEAR(center.x, 330.0, 200.0);
  }
}

TEST_F(MasterServerTest, MigrationRespectsSourceAvailabilityAndBudget) {
  const ClientId id = register_toy_client();
  for (int t = 0; t < 4; ++t)
    master_->report_location(id, {240.0 + 30.0 * t, 0.0});

  const auto n = static_cast<std::size_t>(
      master_->client_model(id).num_layers());
  // Source has nothing: nothing can be migrated.
  const std::vector<bool> none(n, false);
  for (const auto& order : master_->plan_migrations(
           id, kNoServer, none, [&](ServerId) { return stats_at_load(1); })) {
    EXPECT_TRUE(order.layers.empty());
    EXPECT_EQ(order.bytes, 0);
  }
  // Byte budget caps each order.
  const std::vector<bool> all(n, true);
  const Bytes budget = 4096;
  for (const auto& order : master_->plan_migrations(
           id, kNoServer, all, [&](ServerId) { return stats_at_load(1); },
           budget)) {
    EXPECT_LE(order.bytes, budget);
  }
}

TEST_F(MasterServerTest, MigrationNeedsEnoughTrajectory) {
  const ClientId id = register_toy_client();
  master_->report_location(id, {0.0, 0.0});  // shorter than n=3
  const auto n = static_cast<std::size_t>(
      master_->client_model(id).num_layers());
  const std::vector<bool> all(n, true);
  EXPECT_TRUE(master_
                  ->plan_migrations(id, kNoServer, all,
                                    [&](ServerId) { return stats_at_load(1); })
                  .empty());
}

TEST(MasterServerConstruction, RejectsNullDependencies) {
  auto servers = std::make_shared<ServerMap>(50.0);
  auto estimator = std::make_shared<RandomForestEstimator>();
  auto predictor = std::make_shared<SvrPredictor>(3);
  EXPECT_THROW(MasterServer(nullptr, estimator, predictor), std::logic_error);
  EXPECT_THROW(MasterServer(servers, nullptr, predictor), std::logic_error);
  EXPECT_THROW(MasterServer(servers, estimator, nullptr), std::logic_error);
}

}  // namespace
}  // namespace perdnn
