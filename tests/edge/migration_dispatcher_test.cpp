#include "edge/migration_dispatcher.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perdnn {
namespace {

TEST(MigrationDispatcherTest, ValidatesConfig) {
  EXPECT_THROW(MigrationDispatcher({.max_attempts = 0}), std::logic_error);
  EXPECT_THROW(MigrationDispatcher({.initial_backoff_intervals = 0}),
               std::logic_error);
  EXPECT_THROW(MigrationDispatcher({.initial_backoff_intervals = 8,
                                    .max_backoff_intervals = 4}),
               std::logic_error);
  EXPECT_NO_THROW(MigrationDispatcher{});
}

TEST(MigrationDispatcherTest, BackoffDoublesPerFailureUpToTheCap) {
  MigrationDispatcher dispatcher(
      {.max_attempts = 6, .initial_backoff_intervals = 1,
       .max_backoff_intervals = 4});
  dispatcher.defer(/*client=*/0, /*source=*/0, /*target=*/1, {2, 3},
                   /*bytes=*/100, /*now_interval=*/10);

  // First retry after the initial backoff: due at 11, not 10.
  EXPECT_TRUE(dispatcher.due(10).empty());
  auto due = dispatcher.due(11);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].attempts, 2);

  // Each failure doubles the wait: 1, 2, 4, then capped at 4.
  int expected_backoff = 2;
  int now = 11;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(dispatcher.fail(std::move(due[0]), now));
    EXPECT_TRUE(dispatcher.due(now + expected_backoff - 1).empty());
    due = dispatcher.due(now + expected_backoff);
    ASSERT_EQ(due.size(), 1u);
    now += expected_backoff;
    expected_backoff = std::min(expected_backoff * 2, 4);
  }
  EXPECT_EQ(due[0].attempts, 5);
}

TEST(MigrationDispatcherTest, AbandonsAfterAttemptBudgetAndTracksBytes) {
  MigrationDispatcher dispatcher(
      {.max_attempts = 3, .initial_backoff_intervals = 1,
       .max_backoff_intervals = 16});
  dispatcher.defer(0, 0, 1, {5}, 40, 0);
  dispatcher.defer(1, 2, 3, {6}, 60, 0);
  EXPECT_EQ(dispatcher.backlog_bytes(), 100);
  EXPECT_EQ(dispatcher.backlog_orders(), 2);
  EXPECT_EQ(dispatcher.total_deferred_bytes(), 100);
  EXPECT_EQ(dispatcher.deferred_orders(), 2);

  // Attempt 2 for both: one succeeds, one fails (re-parked).
  auto due = dispatcher.due(1);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(dispatcher.backlog_bytes(), 0);  // popped orders leave the backlog
  EXPECT_EQ(dispatcher.retries(), 2);
  dispatcher.succeed(due[0]);
  EXPECT_TRUE(dispatcher.fail(std::move(due[1]), 1));
  EXPECT_EQ(dispatcher.backlog_bytes(), 60);

  // Attempt 3 fails too: the budget is spent, the order is abandoned.
  due = dispatcher.due(10);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].attempts, 3);
  EXPECT_FALSE(dispatcher.fail(std::move(due[0]), 10));
  EXPECT_EQ(dispatcher.backlog_bytes(), 0);
  EXPECT_EQ(dispatcher.backlog_orders(), 0);
  EXPECT_EQ(dispatcher.abandoned_bytes(), 60);
  EXPECT_EQ(dispatcher.abandoned_orders(), 1);
  EXPECT_EQ(dispatcher.total_deferred_bytes(), 100);
}

TEST(MigrationDispatcherTest, MaxAttemptsOneAbandonsImmediately) {
  MigrationDispatcher dispatcher({.max_attempts = 1});
  dispatcher.defer(0, 0, 1, {2}, 25, 0);
  EXPECT_EQ(dispatcher.backlog_orders(), 0);
  EXPECT_EQ(dispatcher.backlog_bytes(), 0);
  EXPECT_EQ(dispatcher.abandoned_orders(), 1);
  EXPECT_EQ(dispatcher.abandoned_bytes(), 25);
  EXPECT_EQ(dispatcher.total_deferred_bytes(), 25);
  EXPECT_TRUE(dispatcher.due(100).empty());
}

TEST(MigrationDispatcherTest, DueIsFifoStable) {
  MigrationDispatcher dispatcher;
  dispatcher.defer(0, 0, 1, {1}, 10, 0);
  dispatcher.defer(1, 0, 1, {2}, 10, 0);
  dispatcher.defer(2, 0, 1, {3}, 10, 0);
  const auto due = dispatcher.due(5);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].client, 0);
  EXPECT_EQ(due[1].client, 1);
  EXPECT_EQ(due[2].client, 2);
}

}  // namespace
}  // namespace perdnn
