#include "edge/layer_cache.hpp"

#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"
#include "obs/journal.hpp"

namespace perdnn {
namespace {

TEST(LayerCache, StoreReportsOnlyNewLayers) {
  LayerCache cache(5);
  const auto first = cache.store(1, {3, 4, 5}, 0);
  EXPECT_EQ(first.size(), 3u);
  const auto second = cache.store(1, {4, 5, 6}, 0);
  EXPECT_EQ(second, std::vector<LayerId>{6});
  EXPECT_EQ(cache.layers(1).size(), 4u);
}

TEST(LayerCache, EntriesExpireAfterTtl) {
  LayerCache cache(3);
  cache.store(1, {0}, /*now=*/10);
  cache.expire(12);
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(13);  // 10 + 3 <= 13
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, TouchResetsTtl) {
  LayerCache cache(3);
  cache.store(1, {0}, 0);
  cache.touch(1, 2);
  cache.expire(3);  // would have expired at 3 without the touch
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(5);
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, DuplicateStoreAlsoResetsTtl) {
  LayerCache cache(3);
  cache.store(1, {0, 1}, 0);
  // A duplicate-suppressed send still refreshes the TTL (paper §3.B.2).
  const auto added = cache.store(1, {0, 1}, 2);
  EXPECT_TRUE(added.empty());
  cache.expire(4);
  EXPECT_TRUE(cache.has_entry(1));
}

TEST(LayerCache, ExpiryHappensExactlyAtTheBoundaryInterval) {
  // An entry stored at interval k with TTL t is alive through k + t - 1 and
  // dies the moment expire(k + t) runs — `expires_at <= now` is inclusive.
  LayerCache cache(4);
  cache.store(1, {0}, /*now=*/7);
  cache.expire(7);  // same interval: a fresh entry never dies immediately
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(10);  // k + t - 1
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(11);  // k + t, exactly
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, TouchAtTheBoundaryMovesIt) {
  LayerCache cache(3);
  cache.store(1, {0}, 0);
  cache.touch(1, 3);  // touched at the interval it would have died
  cache.expire(3);
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(6);
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, ReadsAndFailedSendsDoNotRefreshTtl) {
  // Only store() and touch() reset the clock. Queries don't — and a failed
  // or deferred migration send performs neither, so the receiver's TTL must
  // keep running as if the send never happened.
  LayerCache cache(3);
  cache.store(1, {0, 1}, 0);
  (void)cache.layers(1);
  (void)cache.has_entry(1);
  const DnnModel model = build_toy_model(1);
  (void)cache.mask(1, model);
  (void)cache.cached_bytes(1, model);
  cache.expire(2);  // repeated sweeps are not touches either
  cache.expire(3);
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, EmptyStoreNeverCreatesAnEntry) {
  // Regression: a fully-deduplicated (empty) send to a client the cache has
  // never seen used to manufacture a phantom zero-layer entry with a live
  // TTL, inflating num_entries() and surviving expiry sweeps.
  LayerCache cache(3);
  const auto added = cache.store(1, {}, 0);
  EXPECT_TRUE(added.empty());
  EXPECT_FALSE(cache.has_entry(1));
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(LayerCache, EmptyStoreStillRefreshesAnExistingEntry) {
  // The duplicate-transmission-suppression semantics must survive the
  // phantom-entry fix: an empty send to a client that *does* have an entry
  // is a TTL touch (paper §3.B.2).
  LayerCache cache(3);
  cache.store(1, {0, 1}, 0);
  const auto added = cache.store(1, {}, 2);
  EXPECT_TRUE(added.empty());
  cache.expire(4);  // would have died at 3 without the refresh
  EXPECT_TRUE(cache.has_entry(1));
  EXPECT_EQ(cache.layers(1).size(), 2u);  // and no layers appeared
  cache.expire(5);
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, CrashWipeThenTtlBoundaryBehaviour) {
  // A server crash wipes its cache mid-TTL (fault plans do this via
  // erase()); re-stored entries restart the TTL clock from the re-store
  // interval, not the original one.
  LayerCache cache(4);
  cache.store(1, {0, 1}, 0);
  cache.store(2, {2}, 1);
  cache.erase(1);  // crash at interval 2 wipes client 1
  cache.erase(2);
  EXPECT_EQ(cache.num_entries(), 0u);
  cache.store(1, {0}, /*now=*/3);  // re-migrated after the server recovers
  cache.expire(6);                 // 3 + 4 - 1: still alive
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(7);  // 3 + 4: dies exactly at the boundary
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, ExportRestoreRoundTripPreservesTtl) {
  LayerCache cache(3);
  cache.store(5, {1, 2}, 4);
  cache.store(2, {0}, 6);
  cache.touch(5, 7);  // TTL now runs from 7

  const auto entries = cache.export_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].client, 2);  // sorted by client id
  EXPECT_EQ(entries[1].client, 5);

  LayerCache other(3);
  other.restore_entries(entries);
  EXPECT_EQ(other.export_entries(), entries);
  other.expire(9);  // client 2 died at 9; client 5 touched at 7 lives to 10
  EXPECT_FALSE(other.has_entry(2));
  EXPECT_TRUE(other.has_entry(5));
  other.expire(10);
  EXPECT_FALSE(other.has_entry(5));
}

TEST(LayerCache, TouchUnknownClientIsNoop) {
  LayerCache cache(3);
  cache.touch(99, 0);
  EXPECT_FALSE(cache.has_entry(99));
}

TEST(LayerCache, MaskAndBytesMatchModel) {
  const DnnModel model = build_toy_model(2);
  LayerCache cache(5);
  cache.store(7, {1, 2}, 0);
  const auto mask = cache.mask(7, model);
  ASSERT_EQ(mask.size(), static_cast<std::size_t>(model.num_layers()));
  EXPECT_TRUE(mask[1]);
  EXPECT_TRUE(mask[2]);
  EXPECT_FALSE(mask[0]);
  EXPECT_EQ(cache.cached_bytes(7, model),
            model.layer(1).weight_bytes + model.layer(2).weight_bytes);
  // Unknown client: empty mask, zero bytes.
  EXPECT_EQ(cache.cached_bytes(8, model), 0);
  for (bool b : cache.mask(8, model)) EXPECT_FALSE(b);
}

TEST(LayerCache, MaskRejectsOutOfRangeLayers) {
  const DnnModel model = build_toy_model(1);
  LayerCache cache(5);
  cache.store(1, {999}, 0);
  EXPECT_THROW(cache.mask(1, model), std::logic_error);
}

TEST(LayerCache, EraseRemovesEntry) {
  LayerCache cache(5);
  cache.store(1, {0}, 0);
  cache.erase(1);
  EXPECT_FALSE(cache.has_entry(1));
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(LayerCache, EntriesAreIndependentPerClient) {
  LayerCache cache(2);
  cache.store(1, {0}, 0);
  cache.store(2, {1}, 5);
  cache.expire(3);
  EXPECT_FALSE(cache.has_entry(1));
  EXPECT_TRUE(cache.has_entry(2));
}

TEST(LayerCache, InvalidTtlRejected) {
  EXPECT_THROW(LayerCache(0), std::logic_error);
}

// ---------------------------------------------------------------------------
// Budgeted (cost-aware) cache behaviour. Cost model: six 100-byte layers
// whose saved latency falls with the id, so the efficiency ordering is just
// the id ordering and every expectation below can be computed by hand.
// ---------------------------------------------------------------------------

LayerCache budgeted_cache(Bytes budget, int ttl = 10) {
  LayerCache cache(ttl);
  cache.set_budget(budget);
  cache.set_cost_model({100, 100, 100, 100, 100, 100},
                       {0.60, 0.50, 0.40, 0.30, 0.20, 0.10});
  return cache;
}

TEST(LayerCacheBudget, StoreWithoutCostModelIsRejected) {
  LayerCache cache(5);
  cache.set_budget(1000);
  EXPECT_THROW(cache.store(1, {0}, 0), std::logic_error);
}

TEST(LayerCacheBudget, EvictsLowestEfficiencyPerByteFirst) {
  LayerCache cache = budgeted_cache(400);
  cache.store(1, {4, 5}, 0);  // 200 B, saves 0.30 s -> least efficient
  cache.store(2, {0, 1}, 0);  // 200 B, saves 1.10 s -> most efficient
  EXPECT_EQ(cache.total_bytes(), 400);

  // Client 3 saves 0.70 s over 200 B: more efficient than client 1, less
  // than client 2 — only client 1 may be displaced.
  const auto added = cache.store(3, {2, 3}, 1);
  EXPECT_EQ(added, (std::vector<LayerId>{2, 3}));
  EXPECT_FALSE(cache.has_entry(1));
  EXPECT_TRUE(cache.has_entry(2));
  EXPECT_TRUE(cache.has_entry(3));
  EXPECT_EQ(cache.total_bytes(), 400);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.partial_stores(), 0);
}

TEST(LayerCacheBudget, NeverDisplacesMoreEfficientResidents) {
  LayerCache cache = budgeted_cache(400);
  cache.store(1, {0, 1}, 0);  // saves 1.10 s
  cache.store(2, {2, 3}, 0);  // saves 0.70 s
  // Client 3's 0.30 s / 200 B is worse than both residents: nothing is
  // evicted, no room exists, and the store admits nothing (the client
  // keeps the layers on-device instead).
  const auto added = cache.store(3, {4, 5}, 1);
  EXPECT_TRUE(added.empty());
  EXPECT_FALSE(cache.has_entry(3));
  EXPECT_TRUE(cache.has_entry(1));
  EXPECT_TRUE(cache.has_entry(2));
  EXPECT_EQ(cache.evictions(), 0);
  EXPECT_EQ(cache.partial_stores(), 1);
  EXPECT_EQ(cache.total_bytes(), 400);
}

TEST(LayerCacheBudget, PartialResidencyAdmitsTheLongestFittingPrefix) {
  LayerCache cache = budgeted_cache(250);
  // Incoming layers arrive in upload-schedule order; 250 B holds two of the
  // three 100-byte layers, so exactly the first two are admitted.
  const auto added = cache.store(1, {0, 1, 2}, 0);
  EXPECT_EQ(added, (std::vector<LayerId>{0, 1}));
  EXPECT_EQ(cache.layers(1), (std::vector<LayerId>{0, 1}));
  EXPECT_EQ(cache.total_bytes(), 200);
  EXPECT_EQ(cache.partial_stores(), 1);
  // The refused suffix can still arrive later once the budget allows.
  LayerCache roomy = budgeted_cache(600);
  roomy.store(1, {0, 1, 2}, 0);
  EXPECT_EQ(roomy.layers(1), (std::vector<LayerId>{0, 1, 2}));
  EXPECT_EQ(roomy.partial_stores(), 0);
}

TEST(LayerCacheBudget, TotalBytesNeverExceedsBudgetUnderChurn) {
  LayerCache cache = budgeted_cache(300, /*ttl=*/2);
  for (int t = 0; t < 12; ++t) {
    const ClientId c = t % 5;
    cache.store(c, {t % 6, (t + 1) % 6, (t + 2) % 6}, t);
    cache.expire(t);
    ASSERT_LE(cache.total_bytes(), 300) << "interval " << t;
  }
}

TEST(LayerCacheBudget, EvictionFreesRoomTrackedByTotalBytes) {
  LayerCache cache = budgeted_cache(300);
  cache.store(1, {5}, 0);  // 100 B, least efficient possible
  cache.store(2, {4}, 0);
  cache.store(3, {3}, 0);
  EXPECT_EQ(cache.total_bytes(), 300);
  // 0.60+0.50 over 200 B beats every resident; two victims must go.
  cache.store(4, {0, 1}, 1);
  EXPECT_EQ(cache.total_bytes(), 300);
  EXPECT_EQ(cache.evictions(), 2);
  EXPECT_FALSE(cache.has_entry(1));
  EXPECT_FALSE(cache.has_entry(2));
  EXPECT_TRUE(cache.has_entry(3));
  EXPECT_TRUE(cache.has_entry(4));
}

TEST(LayerCacheBudget, ExportRestoreCarriesEntryBytes) {
  LayerCache cache = budgeted_cache(1000);
  cache.store(1, {0, 1}, 0);
  cache.store(2, {5}, 3);
  const auto entries = cache.export_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].bytes, 200);
  EXPECT_EQ(entries[1].bytes, 100);

  // Without a cost model the snapshot's byte counts are trusted as-is.
  LayerCache plain(10);
  plain.restore_entries(entries);
  EXPECT_EQ(plain.total_bytes(), 300);

  // With a cost model they are recomputed (pre-v5 snapshots carry zeros).
  auto zeroed = entries;
  for (auto& e : zeroed) e.bytes = 0;
  LayerCache budgeted = budgeted_cache(1000);
  budgeted.restore_entries(zeroed);
  EXPECT_EQ(budgeted.total_bytes(), 300);
  EXPECT_EQ(budgeted.export_entries(), entries);
}

// ---------------------------------------------------------------------------
// Journal pinning: the exact event stream the cache records.
// ---------------------------------------------------------------------------

TEST(LayerCacheJournal, FullyDuplicateSendRecordsATouchNotAZeroLayerStore) {
  // Regression: a non-empty but fully-duplicate send used to journal
  // kCacheStore with aux=0 while the equivalent empty send journalled
  // kCacheTouch — the same suppressed transmission, two different stories.
  obs::Journal journal;
  LayerCache cache(5);
  cache.set_journal(&journal, /*self=*/7);

  cache.store(1, {0, 1}, 0);  // real store
  cache.store(1, {1, 0}, 1);  // non-empty, fully duplicate
  cache.store(1, {}, 2);      // empty (fully deduplicated upstream)

  const auto events = journal.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, obs::JournalEventKind::kCacheStore);
  EXPECT_EQ(events[0].aux, 2);
  EXPECT_EQ(events[1].kind, obs::JournalEventKind::kCacheTouch);
  EXPECT_EQ(events[2].kind, obs::JournalEventKind::kCacheTouch);
  for (const auto& event : events) {
    EXPECT_EQ(event.server, 7);
    if (event.kind == obs::JournalEventKind::kCacheStore) {
      EXPECT_GT(event.aux, 0) << "zero-layer store leaked into the journal";
    }
  }
  // And the JSONL stream pins the kind names downstream tools filter on.
  const std::string jsonl = obs::journal_to_jsonl(events);
  EXPECT_NE(jsonl.find("cache_store"), std::string::npos);
  EXPECT_NE(jsonl.find("cache_touch"), std::string::npos);
}

TEST(LayerCacheJournal, BudgetEvictionCarriesBytesCrashWipeDoesNot) {
  // Budget evictions and crash wipes share kCacheEvict; bytes > 0 is the
  // discriminator perdnn_obs uses to tell them apart.
  obs::Journal journal;
  LayerCache cache = budgeted_cache(200);
  cache.set_journal(&journal, /*self=*/3);

  cache.store(1, {4, 5}, 0);      // resident, least efficient
  cache.store(2, {0, 1}, 1);      // displaces client 1
  cache.store(2, {0, 1, 2}, 2);   // duplicate prefix + one refused layer
  cache.wipe(3);                  // crash wipe: bytes stays 0

  const auto events = journal.events();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].kind, obs::JournalEventKind::kCacheStore);
  // Budget eviction of client 1: 200 bytes, 2 layers, on server 3.
  EXPECT_EQ(events[1].kind, obs::JournalEventKind::kCacheEvict);
  EXPECT_EQ(events[1].client, 1);
  EXPECT_EQ(events[1].server, 3);
  EXPECT_EQ(events[1].bytes, 200);
  EXPECT_EQ(events[1].aux, 2);
  EXPECT_EQ(events[2].kind, obs::JournalEventKind::kCacheStore);
  // Over-budget remainder: one 100-byte layer refused; the fully-refused
  // send still refreshes the TTL, so a touch follows the partial record.
  EXPECT_EQ(events[3].kind, obs::JournalEventKind::kCachePartial);
  EXPECT_EQ(events[3].client, 2);
  EXPECT_EQ(events[3].bytes, 100);
  EXPECT_EQ(events[3].aux, 1);
  EXPECT_EQ(events[4].kind, obs::JournalEventKind::kCacheTouch);
  // Crash wipe keeps the legacy zero-byte form.
  EXPECT_EQ(events[5].kind, obs::JournalEventKind::kCacheEvict);
  EXPECT_EQ(events[5].client, 2);
  EXPECT_EQ(events[5].bytes, 0);
}

}  // namespace
}  // namespace perdnn
