#include "edge/layer_cache.hpp"

#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

TEST(LayerCache, StoreReportsOnlyNewLayers) {
  LayerCache cache(5);
  const auto first = cache.store(1, {3, 4, 5}, 0);
  EXPECT_EQ(first.size(), 3u);
  const auto second = cache.store(1, {4, 5, 6}, 0);
  EXPECT_EQ(second, std::vector<LayerId>{6});
  EXPECT_EQ(cache.layers(1).size(), 4u);
}

TEST(LayerCache, EntriesExpireAfterTtl) {
  LayerCache cache(3);
  cache.store(1, {0}, /*now=*/10);
  cache.expire(12);
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(13);  // 10 + 3 <= 13
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, TouchResetsTtl) {
  LayerCache cache(3);
  cache.store(1, {0}, 0);
  cache.touch(1, 2);
  cache.expire(3);  // would have expired at 3 without the touch
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(5);
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, DuplicateStoreAlsoResetsTtl) {
  LayerCache cache(3);
  cache.store(1, {0, 1}, 0);
  // A duplicate-suppressed send still refreshes the TTL (paper §3.B.2).
  const auto added = cache.store(1, {0, 1}, 2);
  EXPECT_TRUE(added.empty());
  cache.expire(4);
  EXPECT_TRUE(cache.has_entry(1));
}

TEST(LayerCache, ExpiryHappensExactlyAtTheBoundaryInterval) {
  // An entry stored at interval k with TTL t is alive through k + t - 1 and
  // dies the moment expire(k + t) runs — `expires_at <= now` is inclusive.
  LayerCache cache(4);
  cache.store(1, {0}, /*now=*/7);
  cache.expire(7);  // same interval: a fresh entry never dies immediately
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(10);  // k + t - 1
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(11);  // k + t, exactly
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, TouchAtTheBoundaryMovesIt) {
  LayerCache cache(3);
  cache.store(1, {0}, 0);
  cache.touch(1, 3);  // touched at the interval it would have died
  cache.expire(3);
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(6);
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, ReadsAndFailedSendsDoNotRefreshTtl) {
  // Only store() and touch() reset the clock. Queries don't — and a failed
  // or deferred migration send performs neither, so the receiver's TTL must
  // keep running as if the send never happened.
  LayerCache cache(3);
  cache.store(1, {0, 1}, 0);
  (void)cache.layers(1);
  (void)cache.has_entry(1);
  const DnnModel model = build_toy_model(1);
  (void)cache.mask(1, model);
  (void)cache.cached_bytes(1, model);
  cache.expire(2);  // repeated sweeps are not touches either
  cache.expire(3);
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, EmptyStoreNeverCreatesAnEntry) {
  // Regression: a fully-deduplicated (empty) send to a client the cache has
  // never seen used to manufacture a phantom zero-layer entry with a live
  // TTL, inflating num_entries() and surviving expiry sweeps.
  LayerCache cache(3);
  const auto added = cache.store(1, {}, 0);
  EXPECT_TRUE(added.empty());
  EXPECT_FALSE(cache.has_entry(1));
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(LayerCache, EmptyStoreStillRefreshesAnExistingEntry) {
  // The duplicate-transmission-suppression semantics must survive the
  // phantom-entry fix: an empty send to a client that *does* have an entry
  // is a TTL touch (paper §3.B.2).
  LayerCache cache(3);
  cache.store(1, {0, 1}, 0);
  const auto added = cache.store(1, {}, 2);
  EXPECT_TRUE(added.empty());
  cache.expire(4);  // would have died at 3 without the refresh
  EXPECT_TRUE(cache.has_entry(1));
  EXPECT_EQ(cache.layers(1).size(), 2u);  // and no layers appeared
  cache.expire(5);
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, CrashWipeThenTtlBoundaryBehaviour) {
  // A server crash wipes its cache mid-TTL (fault plans do this via
  // erase()); re-stored entries restart the TTL clock from the re-store
  // interval, not the original one.
  LayerCache cache(4);
  cache.store(1, {0, 1}, 0);
  cache.store(2, {2}, 1);
  cache.erase(1);  // crash at interval 2 wipes client 1
  cache.erase(2);
  EXPECT_EQ(cache.num_entries(), 0u);
  cache.store(1, {0}, /*now=*/3);  // re-migrated after the server recovers
  cache.expire(6);                 // 3 + 4 - 1: still alive
  EXPECT_TRUE(cache.has_entry(1));
  cache.expire(7);  // 3 + 4: dies exactly at the boundary
  EXPECT_FALSE(cache.has_entry(1));
}

TEST(LayerCache, ExportRestoreRoundTripPreservesTtl) {
  LayerCache cache(3);
  cache.store(5, {1, 2}, 4);
  cache.store(2, {0}, 6);
  cache.touch(5, 7);  // TTL now runs from 7

  const auto entries = cache.export_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].client, 2);  // sorted by client id
  EXPECT_EQ(entries[1].client, 5);

  LayerCache other(3);
  other.restore_entries(entries);
  EXPECT_EQ(other.export_entries(), entries);
  other.expire(9);  // client 2 died at 9; client 5 touched at 7 lives to 10
  EXPECT_FALSE(other.has_entry(2));
  EXPECT_TRUE(other.has_entry(5));
  other.expire(10);
  EXPECT_FALSE(other.has_entry(5));
}

TEST(LayerCache, TouchUnknownClientIsNoop) {
  LayerCache cache(3);
  cache.touch(99, 0);
  EXPECT_FALSE(cache.has_entry(99));
}

TEST(LayerCache, MaskAndBytesMatchModel) {
  const DnnModel model = build_toy_model(2);
  LayerCache cache(5);
  cache.store(7, {1, 2}, 0);
  const auto mask = cache.mask(7, model);
  ASSERT_EQ(mask.size(), static_cast<std::size_t>(model.num_layers()));
  EXPECT_TRUE(mask[1]);
  EXPECT_TRUE(mask[2]);
  EXPECT_FALSE(mask[0]);
  EXPECT_EQ(cache.cached_bytes(7, model),
            model.layer(1).weight_bytes + model.layer(2).weight_bytes);
  // Unknown client: empty mask, zero bytes.
  EXPECT_EQ(cache.cached_bytes(8, model), 0);
  for (bool b : cache.mask(8, model)) EXPECT_FALSE(b);
}

TEST(LayerCache, MaskRejectsOutOfRangeLayers) {
  const DnnModel model = build_toy_model(1);
  LayerCache cache(5);
  cache.store(1, {999}, 0);
  EXPECT_THROW(cache.mask(1, model), std::logic_error);
}

TEST(LayerCache, EraseRemovesEntry) {
  LayerCache cache(5);
  cache.store(1, {0}, 0);
  cache.erase(1);
  EXPECT_FALSE(cache.has_entry(1));
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(LayerCache, EntriesAreIndependentPerClient) {
  LayerCache cache(2);
  cache.store(1, {0}, 0);
  cache.store(2, {1}, 5);
  cache.expire(3);
  EXPECT_FALSE(cache.has_entry(1));
  EXPECT_TRUE(cache.has_entry(2));
}

TEST(LayerCache, InvalidTtlRejected) {
  EXPECT_THROW(LayerCache(0), std::logic_error);
}

}  // namespace
}  // namespace perdnn
