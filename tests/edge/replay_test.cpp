#include "edge/replay.hpp"

#include <gtest/gtest.h>

#include "device/device_profile.hpp"
#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

struct Fixture {
  DnnModel model;
  DnnProfile client;
  PartitionContext context;
  PartitionPlan plan;
  UploadSchedule schedule;

  Fixture() : model(build_toy_model(4)) {
    client = profile_on_client(model, odroid_xu4_profile());
    const DnnProfile server = profile_on_client(model, titan_xp_profile());
    context.model = &model;
    context.client_profile = &client;
    context.server_time = server.client_time;
    plan = compute_best_plan(context);
    schedule = plan_upload_order(context, plan);
  }
};

TEST(Replay, FirstColdQueryRunsLocally) {
  Fixture f;
  ReplayConfig config;
  config.max_queries = 1;
  const ReplayResult result = replay_queries(f.context, f.schedule, 0, config);
  ASSERT_EQ(result.queries.size(), 1u);
  EXPECT_NEAR(result.queries[0].latency, local_only_latency(f.context), 1e-9);
}

TEST(Replay, WarmStartRunsAtPlanLatencyImmediately) {
  Fixture f;
  ReplayConfig config;
  config.max_queries = 3;
  const ReplayResult result =
      replay_queries(f.context, f.schedule, f.schedule.total_bytes(), config);
  for (const auto& q : result.queries)
    EXPECT_NEAR(q.latency, f.plan.latency, 1e-9);
  EXPECT_DOUBLE_EQ(result.upload_completed_at, 0.0);
}

TEST(Replay, LatencyImprovesMonotonicallyDuringUpload) {
  Fixture f;
  ReplayConfig config;
  config.max_queries = 50;
  const ReplayResult result = replay_queries(f.context, f.schedule, 0, config);
  for (std::size_t i = 1; i < result.queries.size(); ++i)
    EXPECT_LE(result.queries[i].latency,
              result.queries[i - 1].latency + 1e-12);
  // Eventually reaches the optimal plan latency.
  EXPECT_NEAR(result.queries.back().latency, f.plan.latency, 1e-9);
}

TEST(Replay, QueriesSpacedByGapAfterCompletion) {
  Fixture f;
  ReplayConfig config;
  config.max_queries = 5;
  config.query_gap = 0.5;
  const ReplayResult result = replay_queries(f.context, f.schedule, 0, config);
  for (std::size_t i = 1; i < result.queries.size(); ++i) {
    const auto& prev = result.queries[i - 1];
    EXPECT_NEAR(result.queries[i].start, prev.start + prev.latency + 0.5,
                1e-9);
  }
}

TEST(Replay, UploadCompletionTimeMatchesBandwidth) {
  Fixture f;
  ReplayConfig config;
  config.max_queries = 1;
  const ReplayResult result = replay_queries(f.context, f.schedule, 0, config);
  EXPECT_NEAR(result.upload_completed_at,
              static_cast<double>(f.schedule.total_bytes()) /
                  f.context.net.uplink_bytes_per_sec,
              1e-9);
  // Pre-migrated bytes shorten the upload proportionally.
  const ReplayResult half = replay_queries(
      f.context, f.schedule, f.schedule.total_bytes() / 2, config);
  EXPECT_LT(half.upload_completed_at, result.upload_completed_at);
}

// Property: more pre-migrated bytes can only help every query.
TEST(Replay, MonotoneInInitialBytes) {
  Fixture f;
  ReplayConfig config;
  config.max_queries = 12;
  const Bytes total = f.schedule.total_bytes();
  ReplayResult prev = replay_queries(f.context, f.schedule, 0, config);
  for (int k = 1; k <= 4; ++k) {
    const ReplayResult more =
        replay_queries(f.context, f.schedule, total * k / 4, config);
    EXPECT_LE(more.queries.front().latency,
              prev.queries.front().latency + 1e-12);
    EXPECT_GE(more.queries_completed_by(10.0),
              prev.queries_completed_by(10.0));
    prev = more;
  }
}

TEST(Replay, MaxTimeBoundsIssuedQueries) {
  Fixture f;
  ReplayConfig config;
  config.max_time = 3.0;
  const ReplayResult result = replay_queries(f.context, f.schedule, 0, config);
  for (const auto& q : result.queries) EXPECT_LE(q.start, 3.0);
}

TEST(Replay, PeakLatencyAndCountHelpers) {
  Fixture f;
  ReplayConfig config;
  config.max_queries = 10;
  const ReplayResult result = replay_queries(f.context, f.schedule, 0, config);
  EXPECT_NEAR(result.peak_latency(), result.queries.front().latency, 1e-12);
  EXPECT_EQ(result.queries_completed_by(1e9),
            static_cast<int>(result.queries.size()));
  EXPECT_EQ(result.queries_completed_by(0.0), 0);
}

TEST(Replay, InvalidArgumentsRejected) {
  Fixture f;
  ReplayConfig config;
  config.max_queries = 1;
  EXPECT_THROW(replay_queries(f.context, f.schedule, -1, config),
               std::logic_error);
  config.query_gap = -0.1;
  EXPECT_THROW(replay_queries(f.context, f.schedule, 0, config),
               std::logic_error);
}

}  // namespace
}  // namespace perdnn
