#include "nn/model_zoo.hpp"

#include <gtest/gtest.h>

namespace perdnn {
namespace {

/// Expected shapes of the Table I models (paper numbers, with tolerance for
/// our reconstruction).
struct ZooExpectation {
  ModelName name;
  int min_layers;
  int max_layers;
  double min_mb;
  double max_mb;
  double min_gflops;
  double max_gflops;
};

class ModelZooTest : public ::testing::TestWithParam<ZooExpectation> {};

TEST_P(ModelZooTest, MatchesPaperScale) {
  const ZooExpectation& expect = GetParam();
  const DnnModel model = build_model(expect.name);
  EXPECT_NO_THROW(model.validate());
  EXPECT_GE(model.num_layers(), expect.min_layers);
  EXPECT_LE(model.num_layers(), expect.max_layers);
  const double mb = bytes_to_mb(model.total_weight_bytes());
  EXPECT_GE(mb, expect.min_mb);
  EXPECT_LE(mb, expect.max_mb);
  const double gflops = model.total_flops() / 1e9;
  EXPECT_GE(gflops, expect.min_gflops);
  EXPECT_LE(gflops, expect.max_gflops);
}

TEST_P(ModelZooTest, StructuralInvariants) {
  const DnnModel model = build_model(GetParam().name);
  // Exactly one input layer at position 0 and a softmax terminal.
  EXPECT_EQ(model.layer(0).kind, LayerKind::kInput);
  EXPECT_EQ(model.layer(model.num_layers() - 1).kind, LayerKind::kSoftmax);
  for (LayerId id = 0; id < model.num_layers(); ++id) {
    const LayerSpec& layer = model.layer(id);
    EXPECT_GE(layer.weight_bytes, 0);
    EXPECT_GT(layer.output_bytes, 0) << layer.name;
    EXPECT_GE(layer.flops, 0.0);
    if (id > 0) {
      EXPECT_NE(layer.kind, LayerKind::kInput);
      EXPECT_FALSE(layer.inputs.empty());
    }
    if (layer.is_compute()) {
      EXPECT_GT(layer.flops, 0.0) << layer.name;
      EXPECT_GT(layer.weight_bytes, 0) << layer.name;
    }
  }
}

TEST_P(ModelZooTest, SpatialDimensionsShrinkMonotonically) {
  const DnnModel model = build_model(GetParam().name);
  // The input is 224x224; no layer may exceed its producer's spatial size.
  for (LayerId id = 1; id < model.num_layers(); ++id) {
    const LayerSpec& layer = model.layer(id);
    for (LayerId in : layer.inputs) {
      EXPECT_LE(layer.out_height, model.layer(in).out_height)
          << layer.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::Values(
        // Paper: 110 layers, 16 MB.
        ZooExpectation{ModelName::kMobileNet, 100, 125, 14.0, 19.0, 0.8, 1.6},
        // Paper: 312 layers, 128 MB.
        ZooExpectation{ModelName::kInception, 280, 330, 115.0, 140.0, 3.0,
                       5.5},
        // Paper: 245 layers, 98 MB.
        ZooExpectation{ModelName::kResNet, 215, 260, 90.0, 105.0, 6.5, 9.0}),
    [](const ::testing::TestParamInfo<ZooExpectation>& info) {
      return model_name_str(info.param.name);
    });

TEST(ModelZoo, InceptionFcHeadDominatesBytes) {
  // The 21k-way classifier holds most of the weights but little compute —
  // the structural property behind the paper's fractional-migration win.
  const DnnModel model = build_inception21k();
  Bytes fc_bytes = 0;
  Flops fc_flops = 0;
  for (const LayerSpec& layer : model.layers()) {
    if (layer.kind == LayerKind::kFullyConnected) {
      fc_bytes += layer.weight_bytes;
      fc_flops += layer.flops;
    }
  }
  EXPECT_GT(static_cast<double>(fc_bytes),
            0.6 * static_cast<double>(model.total_weight_bytes()));
  EXPECT_LT(fc_flops, 0.05 * model.total_flops());
}

TEST(ModelZoo, ResNetHasResidualAdds) {
  const DnnModel model = build_resnet50();
  int adds = 0;
  for (const LayerSpec& layer : model.layers())
    if (layer.kind == LayerKind::kEltwiseAdd) ++adds;
  EXPECT_EQ(adds, 16);  // 3 + 4 + 6 + 3 bottleneck blocks
}

TEST(ModelZoo, InceptionHasConcatModules) {
  const DnnModel model = build_inception21k();
  int concats = 0;
  for (const LayerSpec& layer : model.layers())
    if (layer.kind == LayerKind::kConcat) ++concats;
  EXPECT_EQ(concats, 10);
}

TEST(ModelZoo, MobileNetUsesDepthwiseConvs) {
  const DnnModel model = build_mobilenet_v1();
  int dw = 0;
  for (const LayerSpec& layer : model.layers())
    if (layer.kind == LayerKind::kDepthwiseConv) ++dw;
  EXPECT_EQ(dw, 13);
}


TEST(ModelZoo, AlexNetIsFcDominated) {
  const DnnModel model = build_alexnet();
  EXPECT_NO_THROW(model.validate());
  EXPECT_GE(model.num_layers(), 15);
  Bytes fc_bytes = 0;
  for (const LayerSpec& layer : model.layers())
    if (layer.kind == LayerKind::kFullyConnected) fc_bytes += layer.weight_bytes;
  // The 4096-wide FCs hold the overwhelming majority of AlexNet's weights.
  EXPECT_GT(static_cast<double>(fc_bytes),
            0.85 * static_cast<double>(model.total_weight_bytes()));
}

TEST(ModelZoo, Vgg16MatchesPublishedScale) {
  const DnnModel model = build_vgg16();
  EXPECT_NO_THROW(model.validate());
  const double mb = bytes_to_mb(model.total_weight_bytes());
  EXPECT_GT(mb, 500.0);  // published VGG-16 is ~528 MB at fp32
  EXPECT_LT(mb, 560.0);
  const double gflops = model.total_flops() / 1e9;
  EXPECT_GT(gflops, 25.0);  // ~30.9 GFLOPs for 224x224
  EXPECT_LT(gflops, 36.0);
  int convs = 0;
  for (const LayerSpec& layer : model.layers())
    if (layer.kind == LayerKind::kConv) ++convs;
  EXPECT_EQ(convs, 13);
}

TEST(ModelZoo, ToyModelScalesWithBlocks) {
  const DnnModel small = build_toy_model(2);
  const DnnModel large = build_toy_model(5);
  EXPECT_LT(small.num_layers(), large.num_layers());
  EXPECT_NO_THROW(small.validate());
  EXPECT_NO_THROW(large.validate());
  EXPECT_THROW(build_toy_model(0), std::logic_error);
}

}  // namespace
}  // namespace perdnn
