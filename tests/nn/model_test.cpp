#include "nn/model.hpp"

#include <gtest/gtest.h>

namespace perdnn {
namespace {

LayerSpec input_layer(Bytes output_bytes = 1000) {
  LayerSpec spec;
  spec.name = "data";
  spec.kind = LayerKind::kInput;
  spec.output_bytes = output_bytes;
  return spec;
}

LayerSpec conv_layer(const std::string& name, std::vector<LayerId> inputs,
                     Bytes weight = 4000, Bytes output = 2000,
                     Flops flops = 1e6) {
  LayerSpec spec;
  spec.name = name;
  spec.kind = LayerKind::kConv;
  spec.inputs = std::move(inputs);
  spec.weight_bytes = weight;
  spec.output_bytes = output;
  spec.flops = flops;
  return spec;
}

TEST(DnnModel, FirstLayerMustBeInput) {
  DnnModel model("m");
  EXPECT_THROW(model.add_layer(conv_layer("c", {})), std::logic_error);
}

TEST(DnnModel, NonInputLayerNeedsInputs) {
  DnnModel model("m");
  model.add_layer(input_layer());
  EXPECT_THROW(model.add_layer(conv_layer("c", {})), std::logic_error);
}

TEST(DnnModel, ForwardReferenceRejected) {
  DnnModel model("m");
  model.add_layer(input_layer());
  EXPECT_THROW(model.add_layer(conv_layer("c", {5})), std::logic_error);
  EXPECT_THROW(model.add_layer(conv_layer("c", {1})), std::logic_error);
  EXPECT_THROW(model.add_layer(conv_layer("c", {-1})), std::logic_error);
}

TEST(DnnModel, SuccessorsTracked) {
  DnnModel model("m");
  const LayerId in = model.add_layer(input_layer());
  const LayerId a = model.add_layer(conv_layer("a", {in}));
  const LayerId b = model.add_layer(conv_layer("b", {in}));
  const LayerId c = model.add_layer(conv_layer("c", {a, b}));
  EXPECT_EQ(model.successors(in).size(), 2u);
  EXPECT_EQ(model.successors(a), std::vector<LayerId>{c});
  EXPECT_TRUE(model.successors(c).empty());
}

TEST(DnnModel, InputBytesSumsPredecessors) {
  DnnModel model("m");
  const LayerId in = model.add_layer(input_layer(1000));
  const LayerId a = model.add_layer(conv_layer("a", {in}, 0, 500));
  const LayerId b = model.add_layer(conv_layer("b", {in}, 0, 300));
  const LayerId c = model.add_layer(conv_layer("c", {a, b}));
  EXPECT_EQ(model.input_bytes(in), 1000);  // input layer: its own tensor
  EXPECT_EQ(model.input_bytes(a), 1000);
  EXPECT_EQ(model.input_bytes(c), 800);
}

TEST(DnnModel, Totals) {
  DnnModel model("m");
  const LayerId in = model.add_layer(input_layer());
  const LayerId a = model.add_layer(conv_layer("a", {in}, 100, 10, 5.0));
  model.add_layer(conv_layer("b", {a}, 200, 10, 7.0));
  EXPECT_EQ(model.total_weight_bytes(), 300);
  EXPECT_DOUBLE_EQ(model.total_flops(), 12.0);
}

TEST(DnnModel, ValidateDetectsDeadLayer) {
  DnnModel model("m");
  const LayerId in = model.add_layer(input_layer());
  model.add_layer(conv_layer("dead", {in}));
  model.add_layer(conv_layer("live", {in}));
  EXPECT_THROW(model.validate(), std::logic_error);
}

TEST(DnnModel, ValidateAcceptsChain) {
  DnnModel model("m");
  const LayerId in = model.add_layer(input_layer());
  const LayerId a = model.add_layer(conv_layer("a", {in}));
  model.add_layer(conv_layer("b", {a}));
  EXPECT_NO_THROW(model.validate());
}

TEST(DnnModel, NegativeQuantitiesRejected) {
  DnnModel model("m");
  const LayerId in = model.add_layer(input_layer());
  LayerSpec bad = conv_layer("bad", {in});
  bad.weight_bytes = -1;
  EXPECT_THROW(model.add_layer(bad), std::logic_error);
}

TEST(DnnModel, LayerKindNames) {
  EXPECT_STREQ(layer_kind_name(LayerKind::kConv), "conv");
  EXPECT_STREQ(layer_kind_name(LayerKind::kFullyConnected), "fc");
  EXPECT_STREQ(layer_kind_name(LayerKind::kDepthwiseConv), "dwconv");
}

}  // namespace
}  // namespace perdnn
