#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace perdnn {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(percentile(empty, 50.0), 0.0);
}

TEST(Stats, MaeAndRmse) {
  const std::vector<double> pred = {1.0, 2.0, 4.0};
  const std::vector<double> actual = {1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(pred, actual), 1.0);
  EXPECT_NEAR(root_mean_squared_error(pred, actual), std::sqrt(5.0 / 3.0),
              1e-12);
}

TEST(Stats, MaeRejectsMismatchedLengths) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(mean_absolute_error(a, b), std::logic_error);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_THROW(percentile(xs, 101.0), std::logic_error);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

// Property: OnlineStats agrees with batch formulas on random data.
TEST(Stats, OnlineMatchesBatch) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs;
    OnlineStats online;
    const int n = static_cast<int>(rng.uniform_int(2, 200));
    for (int i = 0; i < n; ++i) {
      const double x = rng.normal(3.0, 7.0);
      xs.push_back(x);
      online.add(x);
    }
    EXPECT_NEAR(online.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(online.variance(), variance(xs), 1e-7);
    EXPECT_DOUBLE_EQ(online.min(), *std::min_element(xs.begin(), xs.end()));
    EXPECT_DOUBLE_EQ(online.max(), *std::max_element(xs.begin(), xs.end()));
    EXPECT_EQ(online.count(), xs.size());
  }
}

TEST(Stats, OnlineEmptyIsZero) {
  OnlineStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, MaxValue) {
  const std::vector<double> xs = {-5.0, -1.0, -9.0};
  EXPECT_DOUBLE_EQ(max_value(xs), -1.0);
}

}  // namespace
}  // namespace perdnn
