#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace perdnn {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_THROW(m(3, 0), std::logic_error);
  EXPECT_THROW(m(0, 2), std::logic_error);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::logic_error);
}

TEST(Matrix, Matmul) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.matmul(b), std::logic_error);
}

TEST(Matrix, MatvecAndTransposedMatvecAgree) {
  Rng rng(3);
  Matrix m(5, 7);
  for (double& x : m.data()) x = rng.normal();
  Vector v(7), w(5);
  for (double& x : v) x = rng.normal();
  for (double& x : w) x = rng.normal();
  // Property: w^T (M v) == (M^T w)^T v.
  const double lhs = dot(w, m.matvec(v));
  const double rhs = dot(m.transposed_matvec(w), v);
  EXPECT_NEAR(lhs, rhs, 1e-9);
  // And transposed_matvec equals the explicit transpose.
  const Vector explicit_t = m.transposed().matvec(w);
  const Vector implicit_t = m.transposed_matvec(w);
  for (std::size_t i = 0; i < explicit_t.size(); ++i)
    EXPECT_NEAR(explicit_t[i], implicit_t[i], 1e-12);
}

TEST(Matrix, CholeskySolveRecoversSolution) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6;
    // Random SPD matrix: A = B^T B + I.
    Matrix b(n, n);
    for (double& x : b.data()) x = rng.normal();
    Matrix a = b.transposed().matmul(b);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
    Vector x_true(n);
    for (double& v : x_true) v = rng.normal();
    const Vector rhs = a.matvec(x_true);
    const Vector x = cholesky_solve(a, rhs);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky_solve(a, {1.0, 1.0}), std::logic_error);
}

TEST(Matrix, CholeskyRidgeRepairsNearSingular) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};  // rank 1
  const Vector x = cholesky_solve(a, {2.0, 2.0}, /*ridge=*/1e-6);
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 4.0}};
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 1), 6.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
}

TEST(Matrix, VectorHelpers) {
  const Vector a = {1.0, 2.0};
  const Vector b = {3.0, 5.0};
  EXPECT_DOUBLE_EQ(vec_add(a, b)[1], 7.0);
  EXPECT_DOUBLE_EQ(vec_sub(b, a)[0], 2.0);
  EXPECT_DOUBLE_EQ(vec_mul(a, b)[1], 10.0);
  EXPECT_DOUBLE_EQ(vec_scale(a, 3.0)[0], 3.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 13.0);
  EXPECT_THROW(dot(a, {1.0}), std::logic_error);
}

}  // namespace
}  // namespace perdnn
