#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace perdnn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // every value hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(13);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);  // zero-weight class never drawn
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, CategoricalRejectsInvalidWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), std::logic_error);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::logic_error);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), std::logic_error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream should not simply replay the parent stream.
  Rng parent2(31);
  (void)parent2();  // align with the fork's single draw
  int equal = 0;
  for (int i = 0; i < 50; ++i)
    if (child() == parent2()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
  EXPECT_THROW(rng.index(0), std::logic_error);
}

}  // namespace
}  // namespace perdnn
