#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace perdnn::par {
namespace {

/// Sets the pool size for one test and reverts to automatic resolution on
/// exit, so tests don't leak their thread count into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { set_num_threads(n); }
  ~ScopedThreads() { set_num_threads(0); }
};

TEST(ParallelForTest, EmptyRangeNeverCallsBody) {
  ScopedThreads threads(4);
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(parallel_map(0, [](std::size_t i) { return i; }).empty());
}

TEST(ParallelForTest, RangeSmallerThanPoolCoversEveryIndexOnce) {
  ScopedThreads threads(8);
  std::vector<int> visits(3, 0);
  parallel_for(visits.size(), [&](std::size_t i) { ++visits[i]; });
  EXPECT_EQ(visits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelForTest, CoversLargeRangeExactlyOnce) {
  ScopedThreads threads(4);
  std::vector<int> visits(1000, 0);
  parallel_for(visits.size(), [&](std::size_t i) { ++visits[i]; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000);
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ScopedThreads threads(4);
  EXPECT_THROW(parallel_for(100,
                            [&](std::size_t i) {
                              if (i == 37)
                                throw std::runtime_error("boom at 37");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, FirstErrorInChunkOrderWins) {
  ScopedThreads threads(4);
  // Two chunks throw; the caller must see the error from the earlier chunk
  // regardless of which worker finishes first.
  try {
    parallel_for(100, [&](std::size_t i) {
      if (i == 5) throw std::runtime_error("early");
      if (i == 95) throw std::runtime_error("late");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "early");
  }
}

TEST(ParallelMapTest, ResultsLandInSubmissionOrder) {
  ScopedThreads threads(4);
  const auto out = parallel_map(257, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ParallelMapTest, IdenticalAcrossThreadCounts) {
  auto run = [] {
    return parallel_map(100, [](std::size_t i) {
      double acc = 0.0;
      for (std::size_t k = 0; k <= i; ++k) acc += 0.1 * static_cast<double>(k);
      return acc;
    });
  };
  set_num_threads(1);
  const auto serial = run();
  set_num_threads(2);
  const auto two = run();
  set_num_threads(8);
  const auto eight = run();
  set_num_threads(0);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

TEST(ParallelRuntimeTest, SingleThreadBypassesThePool) {
  ScopedThreads threads(1);
  EXPECT_EQ(num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  parallel_for(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_FALSE(ThreadPool::on_worker_thread());
  });
}

TEST(ParallelRuntimeTest, NestedRegionsRunInlineAndStayCorrect) {
  ScopedThreads threads(4);
  const auto out = parallel_map(8, [](std::size_t i) {
    // Inner region runs inline on whichever thread executes `i`.
    const auto inner =
        parallel_map(10, [i](std::size_t j) { return i * 100 + j; });
    std::size_t sum = 0;
    for (std::size_t v : inner) sum += v;
    return sum;
  });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], i * 1000 + 45);
}

TEST(ParallelRuntimeTest, NumThreadsHonoursOverride) {
  set_num_threads(5);
  EXPECT_EQ(num_threads(), 5);
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
  EXPECT_GE(hardware_threads(), 1);
}

TEST(ParallelRuntimeTest, InitThreadsFromCliStripsFlag) {
  char prog[] = "prog";
  char flag[] = "--threads";
  char value[] = "3";
  char other[] = "positional";
  char* argv[] = {prog, flag, value, other, nullptr};
  const int argc = init_threads_from_cli(4, argv);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "positional");
  EXPECT_EQ(num_threads(), 3);

  char eq[] = "--threads=2";
  char* argv2[] = {prog, eq, nullptr};
  EXPECT_EQ(init_threads_from_cli(2, argv2), 1);
  EXPECT_EQ(num_threads(), 2);
  set_num_threads(0);
}

}  // namespace
}  // namespace perdnn::par
