#include "common/table.hpp"

#include <gtest/gtest.h>

namespace perdnn {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator plus top/bottom rules.
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::logic_error);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::logic_error);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(static_cast<long long>(42)), "42");
}

TEST(TextTable, ColumnsPadToWidestCell) {
  TextTable table({"x"});
  table.add_row({"longest-cell"});
  table.add_row({"s"});
  const std::string out = table.to_string();
  // Every data row renders at the same width.
  std::size_t first_newline = out.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  const std::size_t width = first_newline;
  std::size_t pos = 0;
  int lines = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
    ++lines;
  }
  EXPECT_GE(lines, 5);
}

}  // namespace
}  // namespace perdnn
