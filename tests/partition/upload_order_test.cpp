#include "partition/upload_order.hpp"

#include <gtest/gtest.h>

#include <set>

#include "device/device_profile.hpp"
#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

struct Fixture {
  DnnModel model;
  DnnProfile client;
  PartitionContext context;
  PartitionPlan plan;

  explicit Fixture(DnnModel model_in = build_toy_model(4))
      : model(std::move(model_in)) {
    client = profile_on_client(model, odroid_xu4_profile());
    const DnnProfile server = profile_on_client(model, titan_xp_profile());
    context.model = &model;
    context.client_profile = &client;
    context.server_time = server.client_time;
    plan = compute_best_plan(context);
  }
};

class UploadOrderTest : public ::testing::TestWithParam<UploadEnumeration> {};

TEST_P(UploadOrderTest, CoversExactlyTheServerLayers) {
  Fixture f;
  const UploadSchedule schedule =
      plan_upload_order(f.context, f.plan, {.enumeration = GetParam()});
  const std::set<LayerId> scheduled(schedule.order.begin(),
                                    schedule.order.end());
  const auto server_layers = f.plan.server_layers();
  const std::set<LayerId> expected(server_layers.begin(), server_layers.end());
  EXPECT_EQ(scheduled, expected);
  EXPECT_EQ(schedule.order.size(), scheduled.size());  // no duplicates
}

TEST_P(UploadOrderTest, CumulativeBytesMonotone) {
  Fixture f;
  const UploadSchedule schedule =
      plan_upload_order(f.context, f.plan, {.enumeration = GetParam()});
  Bytes prev = 0;
  for (std::size_t i = 0; i < schedule.order.size(); ++i) {
    EXPECT_GE(schedule.cumulative_bytes[i], prev);
    prev = schedule.cumulative_bytes[i];
  }
  EXPECT_EQ(schedule.total_bytes(), f.plan.server_bytes(f.model));
}

// Property: latency is non-increasing along upload-schedule prefixes; the
// final prefix reaches the plan's optimal latency.
TEST_P(UploadOrderTest, PrefixLatencyNonIncreasing) {
  Fixture f;
  const UploadSchedule schedule =
      plan_upload_order(f.context, f.plan, {.enumeration = GetParam()});
  Seconds prev = plan_latency(
      f.context, schedule.uploaded_prefix(f.model, 0));
  for (std::size_t count = 1; count <= schedule.order.size(); ++count) {
    const Seconds latency =
        plan_latency(f.context, schedule.uploaded_prefix(f.model, count));
    EXPECT_LE(latency, prev + 1e-12) << "prefix " << count;
    prev = latency;
  }
  EXPECT_NEAR(prev, f.plan.latency, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BothEnumerations, UploadOrderTest,
                         ::testing::Values(UploadEnumeration::kExact,
                                           UploadEnumeration::kAnchored),
                         [](const auto& info) {
                           return info.param == UploadEnumeration::kExact
                                      ? "Exact"
                                      : "Anchored";
                         });

TEST(UploadOrder, PrefixCountRespectsBytes) {
  Fixture f;
  const UploadSchedule schedule = plan_upload_order(f.context, f.plan);
  EXPECT_EQ(schedule.prefix_count(0),
            // zero-weight layers at the front count immediately
            [&] {
              std::size_t i = 0;
              while (i < schedule.order.size() &&
                     schedule.cumulative_bytes[i] == 0)
                ++i;
              return i;
            }());
  EXPECT_EQ(schedule.prefix_count(schedule.total_bytes()),
            schedule.order.size());
}

TEST(UploadOrder, EmptyServerSideYieldsEmptySchedule) {
  Fixture f;
  PartitionPlan local_plan;
  local_plan.location.assign(
      static_cast<std::size_t>(f.model.num_layers()), ExecLocation::kClient);
  const UploadSchedule schedule = plan_upload_order(f.context, local_plan);
  EXPECT_TRUE(schedule.order.empty());
  EXPECT_EQ(schedule.total_bytes(), 0);
}

TEST(UploadOrder, InceptionFrontConvsComeEarly) {
  // The paper's key observation: Inception's compute-dense early conv
  // layers have the highest efficiency, so a small byte prefix of the
  // schedule already removes most of the latency (2.8x with ~9%).
  Fixture f(build_inception21k());
  const UploadSchedule schedule = plan_upload_order(
      f.context, f.plan, {.enumeration = UploadEnumeration::kAnchored});
  const Seconds local = local_only_latency(f.context);
  const Bytes small_budget = mb_to_bytes(14);  // ~11% of the model
  const Seconds with_prefix = plan_latency(
      f.context, schedule.uploaded_after(f.model, small_budget));
  EXPECT_LT(with_prefix, local / 1.8);
  // And a quarter of the model already gets most of the full-plan win.
  const Seconds with_quarter = plan_latency(
      f.context,
      schedule.uploaded_after(f.model, f.model.total_weight_bytes() / 4));
  EXPECT_LT(with_quarter, local / 3.0);
}

TEST(UploadOrder, ExactNeverWorseThanAnchoredEarly) {
  // Exact enumeration considers a superset of candidates, so its first pick
  // must have at least the anchored pick's efficiency. We verify via the
  // latency reached at the first committed prefix bytes.
  Fixture f(build_toy_model(6));
  const UploadSchedule exact =
      plan_upload_order(f.context, f.plan, {UploadEnumeration::kExact});
  const UploadSchedule anchored =
      plan_upload_order(f.context, f.plan, {UploadEnumeration::kAnchored});
  ASSERT_FALSE(exact.order.empty());
  const Bytes probe = exact.cumulative_bytes.front();
  const Seconds exact_latency =
      plan_latency(f.context, exact.uploaded_after(f.model, probe));
  const Seconds anchored_latency =
      plan_latency(f.context, anchored.uploaded_after(f.model, probe));
  // Small slack: the anchored prefix may straddle two runs whose combined
  // benefit is not a single exact candidate's.
  EXPECT_LE(exact_latency, anchored_latency * 1.02 + 1e-9);
}

}  // namespace
}  // namespace perdnn
