#include "partition/energy.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "device/device_profile.hpp"
#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

struct Fixture {
  DnnModel model;
  DnnProfile client;
  PartitionContext context;
  EnergyProfile energy = odroid_energy_profile();

  explicit Fixture(DnnModel model_in = build_toy_model(4))
      : model(std::move(model_in)) {
    client = profile_on_client(model, odroid_xu4_profile());
    const DnnProfile server = profile_on_client(model, titan_xp_profile());
    context.model = &model;
    context.client_profile = &client;
    context.server_time = server.client_time;
  }
};

PartitionPlan all_client_plan(const DnnModel& model) {
  PartitionPlan plan;
  plan.location.assign(static_cast<std::size_t>(model.num_layers()),
                       ExecLocation::kClient);
  return plan;
}

TEST(Energy, LocalPlanEnergyIsComputeTimesTime) {
  Fixture f;
  const PartitionPlan local = all_client_plan(f.model);
  const double joules = plan_energy_joules(f.context, local, f.energy);
  EXPECT_NEAR(joules, local_only_latency(f.context) * f.energy.compute_watts,
              1e-9);
}

TEST(Energy, OffloadingSavesEnergyForHeavyModels) {
  // The classic result: for compute-heavy models, shipping a small tensor
  // and idling beats burning the SoC.
  Fixture f(build_resnet50());
  const PartitionPlan latency_plan = compute_best_plan(f.context);
  const double offloaded =
      plan_energy_joules(f.context, latency_plan, f.energy);
  const double local = plan_energy_joules(
      f.context, all_client_plan(f.model), f.energy);
  EXPECT_LT(offloaded, 0.5 * local);
}

TEST(Energy, EnergyPlanNeverUsesMoreEnergyThanLatencyPlan) {
  for (ModelName name :
       {ModelName::kMobileNet, ModelName::kInception, ModelName::kResNet}) {
    Fixture f(build_model(name));
    const PartitionPlan latency_plan = compute_best_plan(f.context);
    const PartitionPlan energy_plan =
        compute_energy_best_plan(f.context, f.energy);
    EXPECT_LE(plan_energy_joules(f.context, energy_plan, f.energy),
              plan_energy_joules(f.context, latency_plan, f.energy) + 1e-9)
        << model_name_str(name);
    // And conversely, it cannot beat the latency-optimal plan on time.
    EXPECT_GE(energy_plan.latency, latency_plan.latency - 1e-9);
  }
}

// Property: on small random chains, the energy DP matches brute force.
TEST(Energy, DpMatchesBruteForceOnSmallChains) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int blocks = static_cast<int>(rng.uniform_int(1, 2));
    Fixture f(build_toy_model(blocks));
    // Randomise the cost structure so plans differ across trials.
    for (std::size_t i = 1; i < f.context.server_time.size(); ++i) {
      f.context.server_time[i] = rng.uniform(1e-5, 5e-3);
      f.client.client_time[i] = rng.uniform(1e-4, 5e-2);
    }
    f.context.net.uplink_bytes_per_sec = rng.uniform(1e5, 1e7);
    f.context.net.downlink_bytes_per_sec = rng.uniform(1e5, 1e7);

    const auto n = static_cast<std::size_t>(f.model.num_layers());
    double best = kInfSeconds;
    for (std::uint32_t mask = 0; mask < (1u << (n - 1)); ++mask) {
      PartitionPlan candidate = all_client_plan(f.model);
      for (std::size_t bit = 0; bit + 1 < n; ++bit)
        if (mask & (1u << bit))
          candidate.location[bit + 1] = ExecLocation::kServer;
      best = std::min(best,
                      plan_energy_joules(f.context, candidate, f.energy));
    }
    const PartitionPlan plan = compute_energy_best_plan(f.context, f.energy);
    EXPECT_NEAR(plan_energy_joules(f.context, plan, f.energy), best, 1e-9)
        << "trial " << trial;
  }
}

TEST(Energy, UploadableMaskRestrictsTheEnergyPlan) {
  Fixture f;
  const auto n = static_cast<std::size_t>(f.model.num_layers());
  const std::vector<bool> nothing(n, false);
  const PartitionPlan plan =
      compute_energy_best_plan(f.context, f.energy, &nothing);
  EXPECT_EQ(plan.num_server_layers(), 0);
}

TEST(Energy, InvalidProfileRejected) {
  Fixture f;
  EnergyProfile bad = f.energy;
  bad.tx_watts = 0.0;
  EXPECT_THROW(compute_energy_best_plan(f.context, bad), std::logic_error);
  EXPECT_THROW(
      plan_energy_joules(f.context, all_client_plan(f.model), bad),
      std::logic_error);
}

}  // namespace
}  // namespace perdnn
