// The incremental upload-order scorer must commit *exactly* the schedule the
// reference scorer commits — order and cumulative bytes — for any model,
// network condition, and target mask. The greedy loop amplifies any
// divergence (one differing pick reshapes every later round), so equality
// here is the strongest cheap check of the fast path's determinism story.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "device/device_profile.hpp"
#include "nn/model_zoo.hpp"
#include "partition/upload_order.hpp"

namespace perdnn {
namespace {

struct Fixture {
  DnnModel model;
  DnnProfile client;
  PartitionContext context;

  explicit Fixture(DnnModel model_in) : model(std::move(model_in)) {
    client = profile_on_client(model, odroid_xu4_profile());
    const DnnProfile server = profile_on_client(model, titan_xp_profile());
    context.model = &model;
    context.client_profile = &client;
    context.server_time = server.client_time;
  }
};

/// Random but valid target: layer 0 stays on the client, the rest is a coin
/// flip — this produces fragmented multi-run layouts the DP-derived plans
/// never have, which is exactly where the incremental bookkeeping can slip.
PartitionPlan random_target(const DnnModel& model, Rng& rng,
                            double server_prob) {
  PartitionPlan target;
  target.location.assign(static_cast<std::size_t>(model.num_layers()),
                         ExecLocation::kClient);
  for (std::size_t i = 1; i < target.location.size(); ++i)
    if (rng.uniform(0.0, 1.0) < server_prob)
      target.location[i] = ExecLocation::kServer;
  return target;
}

void expect_identical(const UploadSchedule& a, const UploadSchedule& b) {
  ASSERT_EQ(a.order.size(), b.order.size());
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.cumulative_bytes, b.cumulative_bytes);
}

class UploadOrderFastTest
    : public ::testing::TestWithParam<UploadEnumeration> {};

TEST_P(UploadOrderFastTest, MatchesReferenceOnDerivedPlan) {
  for (int width : {2, 4, 6}) {
    Fixture f(build_toy_model(width));
    const PartitionPlan target = compute_best_plan(f.context);
    const UploadSchedule ref = plan_upload_order(
        f.context, target,
        {.enumeration = GetParam(), .scoring = UploadScoring::kReference});
    const UploadSchedule fast = plan_upload_order(
        f.context, target,
        {.enumeration = GetParam(), .scoring = UploadScoring::kIncremental});
    expect_identical(ref, fast);
  }
}

TEST_P(UploadOrderFastTest, MatchesReferenceOnRandomMasks) {
  Rng rng(99);
  Fixture f(build_toy_model(5));
  for (int trial = 0; trial < 40; ++trial) {
    const PartitionPlan target =
        random_target(f.model, rng, rng.uniform(0.2, 0.9));
    // Random network conditions stress different DP shapes.
    f.context.net.uplink_bytes_per_sec =
        mbps_to_bytes_per_sec(rng.uniform(2.0, 200.0));
    f.context.net.downlink_bytes_per_sec =
        mbps_to_bytes_per_sec(rng.uniform(2.0, 200.0));
    f.context.net.rtt = rng.uniform(1e-4, 2e-2);
    const UploadSchedule ref = plan_upload_order(
        f.context, target,
        {.enumeration = GetParam(), .scoring = UploadScoring::kReference});
    const UploadSchedule fast = plan_upload_order(
        f.context, target,
        {.enumeration = GetParam(), .scoring = UploadScoring::kIncremental});
    expect_identical(ref, fast);
  }
}

TEST_P(UploadOrderFastTest, MatchesReferenceOnRandomServerTimes) {
  Rng rng(7);
  Fixture f(build_toy_model(4));
  const std::vector<Seconds> base = f.context.server_time;
  for (int trial = 0; trial < 25; ++trial) {
    // Perturbed estimates move the plan's crossing points around; ties and
    // zero-benefit tails (everything already offloaded well) appear often.
    for (std::size_t i = 0; i < f.context.server_time.size(); ++i)
      f.context.server_time[i] = base[i] * rng.uniform(0.05, 20.0);
    const PartitionPlan target =
        random_target(f.model, rng, rng.uniform(0.3, 1.0));
    const UploadSchedule ref = plan_upload_order(
        f.context, target,
        {.enumeration = GetParam(), .scoring = UploadScoring::kReference});
    const UploadSchedule fast = plan_upload_order(
        f.context, target,
        {.enumeration = GetParam(), .scoring = UploadScoring::kIncremental});
    expect_identical(ref, fast);
  }
}

TEST_P(UploadOrderFastTest, MatchesReferenceOnInception) {
  Fixture f(build_inception21k());
  const PartitionPlan target = compute_best_plan(f.context);
  const UploadSchedule ref = plan_upload_order(
      f.context, target,
      {.enumeration = GetParam(), .scoring = UploadScoring::kReference});
  const UploadSchedule fast = plan_upload_order(
      f.context, target,
      {.enumeration = GetParam(), .scoring = UploadScoring::kIncremental});
  expect_identical(ref, fast);
}

INSTANTIATE_TEST_SUITE_P(AllEnumerations, UploadOrderFastTest,
                         ::testing::Values(UploadEnumeration::kExact,
                                           UploadEnumeration::kAnchored),
                         [](const auto& info) {
                           return info.param == UploadEnumeration::kExact
                                      ? "Exact"
                                      : "Anchored";
                         });

}  // namespace
}  // namespace perdnn
