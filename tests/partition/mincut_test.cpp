#include "partition/mincut.hpp"

#include <gtest/gtest.h>

#include "device/device_profile.hpp"
#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

struct Fixture {
  DnnModel model;
  DnnProfile client;
  PartitionContext context;

  explicit Fixture(DnnModel model_in = build_toy_model(4))
      : model(std::move(model_in)) {
    client = profile_on_client(model, odroid_xu4_profile());
    const DnnProfile server = profile_on_client(model, titan_xp_profile());
    context.model = &model;
    context.client_profile = &client;
    context.server_time = server.client_time;
  }
};

TEST(MinCut, InputPinnedToClient) {
  Fixture f;
  const PartitionPlan plan = compute_mincut_plan(f.context);
  EXPECT_EQ(plan.location[0], ExecLocation::kClient);
}

TEST(MinCut, SumLatencyMatchesReportedLatency) {
  Fixture f;
  const PartitionPlan plan = compute_mincut_plan(f.context);
  EXPECT_NEAR(plan.latency, sum_model_latency(f.context, plan), 1e-9);
}

// The min-cut objective value must not exceed any explicit assignment's.
TEST(MinCut, BeatsAllSingleCutAssignments) {
  Fixture f;
  const PartitionPlan optimal = compute_mincut_plan(f.context);
  const auto n = static_cast<std::size_t>(f.model.num_layers());
  for (std::size_t cut = 1; cut <= n; ++cut) {
    PartitionPlan candidate;
    candidate.location.assign(n, ExecLocation::kClient);
    for (std::size_t i = cut; i < n; ++i)
      candidate.location[i] = ExecLocation::kServer;
    EXPECT_LE(optimal.latency,
              sum_model_latency(f.context, candidate) + 1e-9)
        << "cut at " << cut;
  }
}

TEST(MinCut, AllClientWhenServerUseless) {
  Fixture f;
  // Server as slow as client and a dreadful network: offloading can't win.
  f.context.server_time = f.client.client_time;
  f.context.net.uplink_bytes_per_sec = 1.0;
  f.context.net.downlink_bytes_per_sec = 1.0;
  const PartitionPlan plan = compute_mincut_plan(f.context);
  EXPECT_EQ(plan.num_server_layers(), 0);
}

TEST(MinCut, MostlyServerWhenServerFastAndNetworkFast) {
  Fixture f;
  f.context.net.uplink_bytes_per_sec = mbps_to_bytes_per_sec(10000.0);
  f.context.net.downlink_bytes_per_sec = mbps_to_bytes_per_sec(10000.0);
  f.context.net.rtt = 0.0;
  const PartitionPlan plan = compute_mincut_plan(f.context);
  EXPECT_GT(plan.num_server_layers(), f.model.num_layers() / 2);
}

// On DAG models the min-cut handles non-contiguous assignments natively;
// its sum-model objective should be no worse than the shortest-path plan's
// assignment evaluated under the same sum model.
TEST(MinCut, ObjectiveNoWorseThanShortestPathPlan) {
  for (ModelName name : {ModelName::kInception, ModelName::kResNet}) {
    Fixture f(build_model(name));
    const PartitionPlan sp = compute_best_plan(f.context);
    const PartitionPlan mc = compute_mincut_plan(f.context);
    EXPECT_LE(mc.latency, sum_model_latency(f.context, sp) + 1e-6)
        << model_name_str(name);
  }
}

TEST(SumModelLatency, CountsCrossingsBothWays) {
  Fixture f(build_toy_model(1));
  const auto n = static_cast<std::size_t>(f.model.num_layers());
  PartitionPlan plan;
  plan.location.assign(n, ExecLocation::kClient);
  // Alternate locations to force crossings on every edge.
  for (std::size_t i = 1; i < n; i += 2)
    plan.location[i] = ExecLocation::kServer;
  const Seconds latency = sum_model_latency(f.context, plan);
  Seconds exec_only = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    exec_only += plan.location[i] == ExecLocation::kServer
                     ? f.context.server_time[i]
                     : f.client.client_time[i];
  EXPECT_GT(latency, exec_only);  // transfers add strictly positive time
}

}  // namespace
}  // namespace perdnn
