#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "device/device_profile.hpp"
#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

/// Context over the toy model with uniform synthetic times.
struct Fixture {
  DnnModel model;
  DnnProfile client;
  PartitionContext context;

  explicit Fixture(double server_speedup = 20.0,
                   DnnModel model_in = build_toy_model(4))
      : model(std::move(model_in)) {
    client = profile_on_client(model, odroid_xu4_profile());
    context.model = &model;
    context.client_profile = &client;
    for (Seconds t : client.client_time)
      context.server_time.push_back(t / server_speedup);
  }
};

TEST(LiveCutBytes, ChainEqualsLayerOutputs) {
  const DnnModel model = build_toy_model(3);
  const auto live = live_cut_bytes(model);
  ASSERT_EQ(live.size(), static_cast<std::size_t>(model.num_layers()));
  // On a pure chain, the live set at cut i is exactly layer i's output
  // (except after the terminal layer, where nothing is live).
  for (LayerId i = 0; i + 1 < model.num_layers(); ++i)
    EXPECT_EQ(live[static_cast<std::size_t>(i)],
              model.layer(i).output_bytes)
        << "cut " << i;
  EXPECT_EQ(live.back(), 0);
}

TEST(LiveCutBytes, SkipConnectionsStayLive) {
  // input -> a -> b -> add(a-out, b-out): a's tensor is live across b.
  DnnModel model("skip");
  LayerSpec input;
  input.kind = LayerKind::kInput;
  input.output_bytes = 100;
  const LayerId in = model.add_layer(input);
  LayerSpec a;
  a.kind = LayerKind::kConv;
  a.inputs = {in};
  a.output_bytes = 40;
  a.weight_bytes = 1;
  a.flops = 1;
  const LayerId aid = model.add_layer(a);
  LayerSpec b = a;
  b.inputs = {aid};
  b.output_bytes = 40;
  const LayerId bid = model.add_layer(b);
  LayerSpec add;
  add.kind = LayerKind::kEltwiseAdd;
  add.inputs = {aid, bid};
  add.output_bytes = 40;
  model.add_layer(add);

  const auto live = live_cut_bytes(model);
  EXPECT_EQ(live[0], 100);      // input tensor
  EXPECT_EQ(live[1], 40);       // a's output
  EXPECT_EQ(live[2], 40 + 40);  // both a's and b's outputs cross cut 2
  EXPECT_EQ(live[3], 0);
}

TEST(Partitioner, FastServerPullsLayersToServer) {
  Fixture f(/*server_speedup=*/50.0);
  const PartitionPlan plan = compute_best_plan(f.context);
  EXPECT_GT(plan.num_server_layers(), 0);
  EXPECT_LT(plan.latency, local_only_latency(f.context));
  EXPECT_EQ(plan.location[0], ExecLocation::kClient);  // input pinned
}

TEST(Partitioner, UselessServerKeepsEverythingLocal) {
  Fixture f(/*server_speedup=*/1.0);
  // Make the server pointless: same speed, terrible network.
  f.context.net.uplink_bytes_per_sec = 1.0;
  f.context.net.downlink_bytes_per_sec = 1.0;
  const PartitionPlan plan = compute_best_plan(f.context);
  EXPECT_EQ(plan.num_server_layers(), 0);
  EXPECT_NEAR(plan.latency, local_only_latency(f.context), 1e-9);
}

TEST(Partitioner, PlanLatencyNeverExceedsLocal) {
  Fixture f;
  const PartitionPlan plan = compute_best_plan(f.context);
  EXPECT_LE(plan.latency, local_only_latency(f.context) + 1e-12);
}

TEST(Partitioner, EmptyAvailabilityForcesLocal) {
  Fixture f;
  const std::vector<bool> nothing(
      static_cast<std::size_t>(f.model.num_layers()), false);
  EXPECT_NEAR(plan_latency(f.context, nothing), local_only_latency(f.context),
              1e-12);
}

TEST(Partitioner, FullAvailabilityMatchesUnconstrainedPlan) {
  Fixture f;
  const std::vector<bool> everything(
      static_cast<std::size_t>(f.model.num_layers()), true);
  const PartitionPlan plan = compute_best_plan(f.context);
  EXPECT_NEAR(plan_latency(f.context, everything), plan.latency, 1e-12);
}

// Property: adding availability can never make the best plan slower.
TEST(Partitioner, LatencyMonotoneInAvailability) {
  Fixture f;
  Rng rng(7);
  const auto n = static_cast<std::size_t>(f.model.num_layers());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> mask(n, false);
    for (std::size_t i = 1; i < n; ++i) mask[i] = rng.bernoulli(0.4);
    std::vector<bool> superset = mask;
    for (std::size_t i = 1; i < n; ++i)
      if (!superset[i] && rng.bernoulli(0.3)) superset[i] = true;
    EXPECT_LE(plan_latency(f.context, superset),
              plan_latency(f.context, mask) + 1e-12);
  }
}

// Property: the plan's reported latency equals the latency of replaying its
// own availability mask (self-consistency of DP and backtrace).
TEST(Partitioner, BacktraceConsistentWithDp) {
  for (ModelName name :
       {ModelName::kMobileNet, ModelName::kInception, ModelName::kResNet}) {
    Fixture f(20.0, build_model(name));
    const PartitionPlan plan = compute_best_plan(f.context);
    std::vector<bool> mask(static_cast<std::size_t>(f.model.num_layers()),
                           false);
    for (std::size_t i = 0; i < plan.location.size(); ++i)
      mask[i] = plan.location[i] == ExecLocation::kServer;
    EXPECT_NEAR(plan_latency(f.context, mask), plan.latency, 1e-9)
        << model_name_str(name);
  }
}

TEST(Partitioner, ServerBytesCountsOnlyServerLayers) {
  Fixture f;
  PartitionPlan plan = compute_best_plan(f.context);
  Bytes expected = 0;
  for (LayerId id : plan.server_layers())
    expected += f.model.layer(id).weight_bytes;
  EXPECT_EQ(plan.server_bytes(f.model), expected);
}

TEST(Partitioner, InvalidContextRejected) {
  Fixture f;
  PartitionContext broken = f.context;
  broken.server_time.pop_back();
  EXPECT_THROW(compute_best_plan(broken), std::logic_error);
  broken = f.context;
  broken.model = nullptr;
  EXPECT_THROW(compute_best_plan(broken), std::logic_error);
  broken = f.context;
  broken.net.uplink_bytes_per_sec = 0.0;
  EXPECT_THROW(compute_best_plan(broken), std::logic_error);
}

TEST(Partitioner, RttPenalisesChattyPlans) {
  Fixture fast(50.0);
  PartitionContext high_rtt = fast.context;
  high_rtt.net.rtt = 0.5;
  const PartitionPlan cheap = compute_best_plan(fast.context);
  const PartitionPlan costly = compute_best_plan(high_rtt);
  EXPECT_GE(costly.latency, cheap.latency);
}

}  // namespace
}  // namespace perdnn
