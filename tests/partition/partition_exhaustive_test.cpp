// Exhaustive optimality checks: on small chains we can enumerate every
// contiguous execution plan (client prefix -> server run -> client suffix,
// including multi-segment shapes) and verify the DP's shortest path really
// is the minimum. Randomised layer costs make this a property test of the
// algorithm rather than of one hand-built example.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "partition/partition.hpp"

namespace perdnn {
namespace {

/// Random chain model with `n` layers (plus input) and random costs.
struct RandomChain {
  DnnModel model;
  DnnProfile client;
  PartitionContext context;

  RandomChain(int n, Rng& rng) : model("chain") {
    LayerSpec input;
    input.name = "data";
    input.kind = LayerKind::kInput;
    input.output_bytes = rng.uniform_int(1'000, 2'000'000);
    LayerId prev = model.add_layer(input);
    for (int i = 0; i < n; ++i) {
      LayerSpec layer;
      layer.name = "l" + std::to_string(i);
      layer.kind = LayerKind::kConv;
      layer.inputs = {prev};
      layer.weight_bytes = rng.uniform_int(0, 1'000'000);
      layer.output_bytes = rng.uniform_int(1'000, 2'000'000);
      layer.flops = 1.0;
      prev = model.add_layer(layer);
    }
    client.model_name = "chain";
    context.model = &model;
    context.client_profile = &client;
    for (LayerId id = 0; id < model.num_layers(); ++id) {
      client.client_time.push_back(id == 0 ? 0.0
                                           : rng.uniform(0.001, 0.400));
      context.server_time.push_back(id == 0 ? 0.0
                                            : rng.uniform(0.0001, 0.050));
    }
    context.net.uplink_bytes_per_sec = rng.uniform(1e5, 1e7);
    context.net.downlink_bytes_per_sec = rng.uniform(1e5, 1e7);
    context.net.rtt = rng.uniform(0.0, 0.02);
  }

  /// Simulates executing with the given per-layer assignment (input always
  /// at the client): walk the chain, paying transfer whenever the location
  /// changes and a final hop home if needed.
  Seconds simulate(const std::vector<ExecLocation>& where) const {
    Seconds total = 0.0;
    ExecLocation at = ExecLocation::kClient;
    for (LayerId id = 1; id < model.num_layers(); ++id) {
      const ExecLocation next = where[static_cast<std::size_t>(id)];
      if (next != at) {
        const Bytes moved = model.layer(id - 1).output_bytes;
        const double rate = next == ExecLocation::kServer
                                ? context.net.uplink_bytes_per_sec
                                : context.net.downlink_bytes_per_sec;
        total += static_cast<double>(moved) / rate + context.net.rtt;
        at = next;
      }
      total += next == ExecLocation::kServer
                   ? context.server_time[static_cast<std::size_t>(id)]
                   : context.client_profile
                         ->client_time[static_cast<std::size_t>(id)];
    }
    if (at == ExecLocation::kServer) {
      total += static_cast<double>(
                   model.layer(model.num_layers() - 1).output_bytes) /
                   context.net.downlink_bytes_per_sec +
               context.net.rtt;
    }
    return total;
  }
};

TEST(PartitionExhaustive, DpMatchesBruteForceOnRandomChains) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 9));
    RandomChain chain(n, rng);

    // Enumerate all 2^n assignments; the DP only considers chain walks, and
    // on a chain every assignment IS a walk, so the minimum over all
    // assignments must equal the DP's result.
    const auto layers = static_cast<std::size_t>(chain.model.num_layers());
    Seconds best = kInfSeconds;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<ExecLocation> where(layers, ExecLocation::kClient);
      for (int bit = 0; bit < n; ++bit)
        if (mask & (1u << bit))
          where[static_cast<std::size_t>(bit) + 1] = ExecLocation::kServer;
      best = std::min(best, chain.simulate(where));
    }

    const PartitionPlan plan = compute_best_plan(chain.context);
    EXPECT_NEAR(plan.latency, best, 1e-9) << "trial " << trial;
    // And the plan's own assignment simulates to its reported latency.
    EXPECT_NEAR(chain.simulate(plan.location), plan.latency, 1e-9);
  }
}

TEST(PartitionExhaustive, MaskedDpMatchesConstrainedBruteForce) {
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 8));
    RandomChain chain(n, rng);
    const auto layers = static_cast<std::size_t>(chain.model.num_layers());
    std::vector<bool> allowed(layers, false);
    for (std::size_t i = 1; i < layers; ++i) allowed[i] = rng.bernoulli(0.5);

    Seconds best = kInfSeconds;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<ExecLocation> where(layers, ExecLocation::kClient);
      bool legal = true;
      for (int bit = 0; bit < n; ++bit) {
        if (!(mask & (1u << bit))) continue;
        if (!allowed[static_cast<std::size_t>(bit) + 1]) {
          legal = false;
          break;
        }
        where[static_cast<std::size_t>(bit) + 1] = ExecLocation::kServer;
      }
      if (legal) best = std::min(best, chain.simulate(where));
    }
    EXPECT_NEAR(plan_latency(chain.context, allowed), best, 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace perdnn
