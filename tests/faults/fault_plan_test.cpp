#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "faults/fault_timeline.hpp"

namespace perdnn {
namespace {

FaultEvent crash(ServerId server, int at, int duration) {
  return {.kind = FaultKind::kServerCrash,
          .at_interval = at,
          .duration_intervals = duration,
          .server = server};
}

TEST(FaultPlanTest, ValidatesEventsOnConstruction) {
  EXPECT_THROW(FaultPlan({crash(0, -1, 2)}), std::logic_error);
  EXPECT_THROW(FaultPlan({crash(0, 3, 0)}), std::logic_error);
  EXPECT_THROW(FaultPlan({crash(kNoServer, 3, 2)}), std::logic_error);
  EXPECT_THROW(FaultPlan({{.kind = FaultKind::kClientDisconnect,
                           .at_interval = 0,
                           .client = -1}}),
               std::logic_error);
  EXPECT_THROW(FaultPlan({{.kind = FaultKind::kBackhaulDegrade,
                           .at_interval = 0,
                           .server = 1,
                           .peer = 1}}),
               std::logic_error);
  EXPECT_THROW(FaultPlan({{.kind = FaultKind::kBackhaulDegrade,
                           .at_interval = 0,
                           .server = 1,
                           .peer = 2,
                           .severity = 1.5}}),
               std::logic_error);
  EXPECT_NO_THROW(FaultPlan({crash(0, 0, 1)}));
}

TEST(FaultPlanTest, SortsEventsCanonically) {
  const FaultPlan plan({crash(2, 5, 1), crash(1, 5, 1), crash(0, 2, 3)});
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0], crash(0, 2, 3));
  EXPECT_EQ(plan.events()[1], crash(1, 5, 1));
  EXPECT_EQ(plan.events()[2], crash(2, 5, 1));

  // The same event set in any order yields an identical plan.
  const FaultPlan shuffled({crash(1, 5, 1), crash(0, 2, 3), crash(2, 5, 1)});
  EXPECT_EQ(plan.events(), shuffled.events());
}

TEST(FaultPlanTest, JsonRoundTripsExactly) {
  const FaultPlan plan({
      crash(3, 2, 4),
      {.kind = FaultKind::kBackhaulDegrade,
       .at_interval = 1,
       .duration_intervals = 6,
       .server = 0,
       .peer = 2,
       .severity = 0.75},
      {.kind = FaultKind::kBackhaulDegrade,
       .at_interval = 4,
       .duration_intervals = 2,
       .server = 1,
       .peer = kAllServers,
       .severity = 1.0},
      {.kind = FaultKind::kTelemetryDropout,
       .at_interval = 0,
       .duration_intervals = 8,
       .server = 2},
      {.kind = FaultKind::kClientDisconnect,
       .at_interval = 5,
       .duration_intervals = 3,
       .client = 7},
  });
  const FaultPlan reparsed = FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(plan.events(), reparsed.events());
  // Serialisation is canonical: round-tripping is a fixed point.
  EXPECT_EQ(plan.to_json(), reparsed.to_json());
}

TEST(FaultPlanTest, FromJsonRejectsUnknownMembersAndKinds) {
  EXPECT_THROW(FaultPlan::from_json("{}"), std::logic_error);
  EXPECT_THROW(
      FaultPlan::from_json(
          R"({"events":[{"kind":"meteor_strike","at":0,"server":0}]})"),
      std::logic_error);
  EXPECT_THROW(
      FaultPlan::from_json(
          R"({"events":[{"kind":"server_crash","at":0,"server":0,"x":1}]})"),
      std::logic_error);
  EXPECT_THROW(FaultPlan::from_json(R"({"events":[{"at":0,"server":0}]})"),
               std::logic_error);
  const FaultPlan ok = FaultPlan::from_json(
      R"({"events":[{"kind":"server_crash","at":3,"duration":2,"server":1}]})");
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok.events()[0], crash(1, 3, 2));
}

TEST(FaultPlanTest, CheckBoundsNamesOffendingEvent) {
  const FaultPlan plan({crash(5, 0, 1)});
  EXPECT_NO_THROW(plan.check_bounds(6, 0));
  EXPECT_THROW(plan.check_bounds(5, 0), std::logic_error);
  const FaultPlan churn({{.kind = FaultKind::kClientDisconnect,
                          .at_interval = 0,
                          .client = 3}});
  EXPECT_NO_THROW(churn.check_bounds(1, 4));
  EXPECT_THROW(churn.check_bounds(1, 3), std::logic_error);
}

TEST(FaultPlanTest, LegacyCrashesMatchesHistoricalRecursion) {
  // rate 1.0: every server crashes at interval 0, stays down for the
  // downtime, and crashes again the moment it recovers — the exact shape of
  // the old inject_failures loop.
  const FaultPlan plan = FaultPlan::legacy_crashes(
      /*failure_rate=*/1.0, /*downtime_intervals=*/3, /*num_servers=*/2,
      /*num_intervals=*/7, /*seed=*/9);
  std::vector<FaultEvent> expected;
  for (int at : {0, 3, 6})
    for (ServerId s : {0, 1}) expected.push_back(crash(s, at, 3));
  EXPECT_EQ(plan.events(), FaultPlan(expected).events());

  // Seeded: the same knobs replay the same schedule; rate 0 is empty.
  EXPECT_EQ(FaultPlan::legacy_crashes(0.3, 2, 4, 50, 7).to_json(),
            FaultPlan::legacy_crashes(0.3, 2, 4, 50, 7).to_json());
  EXPECT_TRUE(FaultPlan::legacy_crashes(0.0, 3, 4, 50, 7).empty());

  // A down server draws nothing: no crash window ever overlaps another on
  // the same server.
  const FaultPlan dense = FaultPlan::legacy_crashes(0.5, 4, 3, 100, 11);
  std::vector<int> last_end(3, 0);
  for (const FaultEvent& e : dense.events()) {
    EXPECT_GE(e.at_interval, last_end[static_cast<std::size_t>(e.server)]);
    last_end[static_cast<std::size_t>(e.server)] =
        e.at_interval + e.duration_intervals;
  }
}

TEST(FaultPlanTest, RandomScheduleIsSeededAndBounded) {
  RandomFaultConfig config;
  config.seed = 13;
  config.num_servers = 6;
  config.num_clients = 10;
  config.num_intervals = 80;
  config.server_crash_rate = 0.05;
  config.backhaul_degrade_rate = 0.05;
  config.telemetry_dropout_rate = 0.05;
  config.client_disconnect_rate = 0.05;
  const FaultPlan a = FaultPlan::random_schedule(config);
  const FaultPlan b = FaultPlan::random_schedule(config);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.events(), b.events());
  EXPECT_NO_THROW(a.check_bounds(config.num_servers, config.num_clients));

  config.seed = 14;
  EXPECT_NE(FaultPlan::random_schedule(config).to_json(), a.to_json());

  RandomFaultConfig quiet = config;
  quiet.server_crash_rate = 0.0;
  quiet.backhaul_degrade_rate = 0.0;
  quiet.telemetry_dropout_rate = 0.0;
  quiet.client_disconnect_rate = 0.0;
  EXPECT_TRUE(FaultPlan::random_schedule(quiet).empty());

  EXPECT_THROW(
      [] {
        RandomFaultConfig bad;
        bad.num_servers = 2;
        bad.num_intervals = 5;
        bad.server_crash_rate = 1.5;
        return FaultPlan::random_schedule(bad);
      }(),
      std::logic_error);
}

TEST(FaultTimelineTest, AnswersPerIntervalQueries) {
  const FaultPlan plan({
      crash(1, 3, 4),  // down during [3, 7)
      {.kind = FaultKind::kBackhaulDegrade,
       .at_interval = 2,
       .duration_intervals = 3,
       .server = 0,
       .peer = 2,
       .severity = 0.6},
      {.kind = FaultKind::kBackhaulDegrade,
       .at_interval = 2,
       .duration_intervals = 3,
       .server = 0,
       .peer = kAllServers,
       .severity = 0.25},
      {.kind = FaultKind::kTelemetryDropout,
       .at_interval = 1,
       .duration_intervals = 2,
       .server = 2},
      {.kind = FaultKind::kClientDisconnect,
       .at_interval = 4,
       .duration_intervals = 2,
       .client = 0},
  });
  const FaultTimeline timeline(plan, /*num_servers=*/3, /*num_clients=*/2);

  EXPECT_FALSE(timeline.server_down(1, 2));
  EXPECT_TRUE(timeline.server_down(1, 3));
  EXPECT_TRUE(timeline.server_down(1, 6));
  EXPECT_FALSE(timeline.server_down(1, 7));
  EXPECT_EQ(timeline.crashes_starting_at(3), std::vector<ServerId>{1});
  EXPECT_TRUE(timeline.crashes_starting_at(4).empty());

  EXPECT_TRUE(timeline.telemetry_down(2, 1));
  EXPECT_FALSE(timeline.telemetry_down(2, 3));
  EXPECT_FALSE(timeline.telemetry_down(0, 1));

  EXPECT_TRUE(timeline.client_offline(0, 4));
  EXPECT_FALSE(timeline.client_offline(0, 6));
  EXPECT_FALSE(timeline.client_offline(1, 4));
  EXPECT_EQ(timeline.disconnects_starting_at(4), std::vector<ClientId>{0});

  // Worst overlapping event wins; the wildcard covers every link of 0; the
  // pair event is mirrored onto both endpoints.
  EXPECT_DOUBLE_EQ(timeline.backhaul_factor(0, 2, 2), 0.4);
  EXPECT_DOUBLE_EQ(timeline.backhaul_factor(2, 0, 2), 0.4);
  EXPECT_DOUBLE_EQ(timeline.backhaul_factor(0, 1, 2), 0.75);
  EXPECT_DOUBLE_EQ(timeline.backhaul_factor(1, 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(timeline.backhaul_factor(0, 2, 5), 1.0);
  EXPECT_TRUE(timeline.any_backhaul_fault(2));
  EXPECT_FALSE(timeline.any_backhaul_fault(5));

  // Empty timelines answer "healthy" everywhere.
  const FaultTimeline empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.server_down(0, 0));
  EXPECT_DOUBLE_EQ(empty.backhaul_factor(0, 1, 0), 1.0);
  EXPECT_TRUE(empty.crashes_starting_at(0).empty());

  EXPECT_THROW(FaultTimeline(plan, 2, 2), std::logic_error);
  EXPECT_THROW(FaultTimeline(plan, 3, 0), std::logic_error);
}

}  // namespace
}  // namespace perdnn
