// Proves the interval-indexed edge lists (FaultTimeline::*_edges) are an
// exact re-encoding of the per-entity window queries: a consumer advancing
// the clock one interval at a time, applying each interval's edge slice to
// per-entity counters, sees precisely server_down / telemetry_down /
// client_offline / any_backhaul_fault at every step. This equivalence is the
// contract the sharded engine's fault_step leans on.
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"
#include "faults/fault_timeline.hpp"

namespace perdnn {
namespace {

struct CounterState {
  std::vector<int> server_down;
  std::vector<int> telemetry;
  std::vector<int> client_offline;
  int backhaul = 0;
};

// Applies the slice of edges at exactly `interval` to a counter vector.
void apply_slice(const std::vector<FaultEdge>& edges, int interval,
                 std::vector<int>* counts) {
  auto [first, last] = FaultTimeline::edges_at(edges, interval);
  for (const FaultEdge* e = first; e != last; ++e)
    (*counts)[static_cast<std::size_t>(e->id)] += e->begins ? 1 : -1;
}

void apply_backhaul_slice(const std::vector<FaultEdge>& edges, int interval,
                          int* count) {
  auto [first, last] = FaultTimeline::edges_at(edges, interval);
  for (const FaultEdge* e = first; e != last; ++e)
    *count += e->begins ? 1 : -1;
}

// Walks every interval, advancing the counters by the edge slices and
// cross-checking each entity's flag against the window queries.
void check_equivalence(const FaultTimeline& timeline, int num_servers,
                       int num_clients, int num_intervals) {
  CounterState state;
  state.server_down.assign(static_cast<std::size_t>(num_servers), 0);
  state.telemetry.assign(static_cast<std::size_t>(num_servers), 0);
  state.client_offline.assign(static_cast<std::size_t>(num_clients), 0);

  // Walk a few intervals past the plan's end so closing edges are exercised
  // and every counter is proven to return to zero.
  for (int t = 0; t < num_intervals + 8; ++t) {
    apply_slice(timeline.server_down_edges(), t, &state.server_down);
    apply_slice(timeline.telemetry_edges(), t, &state.telemetry);
    apply_slice(timeline.client_offline_edges(), t, &state.client_offline);
    apply_backhaul_slice(timeline.backhaul_edges(), t, &state.backhaul);

    for (int s = 0; s < num_servers; ++s) {
      SCOPED_TRACE("interval " + std::to_string(t) + " server " +
                   std::to_string(s));
      ASSERT_GE(state.server_down[static_cast<std::size_t>(s)], 0);
      ASSERT_GE(state.telemetry[static_cast<std::size_t>(s)], 0);
      EXPECT_EQ(state.server_down[static_cast<std::size_t>(s)] > 0,
                timeline.server_down(s, t));
      EXPECT_EQ(state.telemetry[static_cast<std::size_t>(s)] > 0,
                timeline.telemetry_down(s, t));
    }
    for (int c = 0; c < num_clients; ++c) {
      SCOPED_TRACE("interval " + std::to_string(t) + " client " +
                   std::to_string(c));
      ASSERT_GE(state.client_offline[static_cast<std::size_t>(c)], 0);
      EXPECT_EQ(state.client_offline[static_cast<std::size_t>(c)] > 0,
                timeline.client_offline(c, t));
    }
    ASSERT_GE(state.backhaul, 0);
    EXPECT_EQ(state.backhaul > 0, timeline.any_backhaul_fault(t))
        << "interval " << t;
  }

  // All windows closed: every counter back at zero.
  for (int v : state.server_down) EXPECT_EQ(v, 0);
  for (int v : state.telemetry) EXPECT_EQ(v, 0);
  for (int v : state.client_offline) EXPECT_EQ(v, 0);
  EXPECT_EQ(state.backhaul, 0);
}

TEST(FaultTimelineIndex, MatchesWindowQueriesOnRandomSchedule) {
  RandomFaultConfig config;
  config.seed = 1234;
  config.num_servers = 30;
  config.num_clients = 200;
  config.num_intervals = 40;
  config.server_crash_rate = 0.02;
  config.crash_downtime_intervals = 5;
  config.backhaul_degrade_rate = 0.015;
  config.backhaul_outage_intervals = 3;
  config.telemetry_dropout_rate = 0.02;
  config.telemetry_dropout_intervals = 6;
  config.client_disconnect_rate = 0.01;
  config.client_disconnect_intervals = 4;

  FaultPlan plan = FaultPlan::random_schedule(config);
  ASSERT_FALSE(plan.empty()) << "random schedule produced no events — the "
                                "equivalence check would be vacuous";
  FaultTimeline timeline(plan, config.num_servers, config.num_clients);
  check_equivalence(timeline, config.num_servers, config.num_clients,
                    config.num_intervals);
}

TEST(FaultTimelineIndex, OverlappingWindowsUnionViaCounts) {
  // Two crash windows on the same server overlap: [2,6) and [4,9). The
  // counter view must report the union [2,9), not toggle off at the first
  // window's end. Same shape for telemetry, disconnects, and backhaul.
  std::vector<FaultEvent> events;
  events.push_back({.kind = FaultKind::kServerCrash,
                    .at_interval = 2,
                    .duration_intervals = 4,
                    .server = 1});
  events.push_back({.kind = FaultKind::kServerCrash,
                    .at_interval = 4,
                    .duration_intervals = 5,
                    .server = 1});
  events.push_back({.kind = FaultKind::kTelemetryDropout,
                    .at_interval = 0,
                    .duration_intervals = 3,
                    .server = 0});
  events.push_back({.kind = FaultKind::kTelemetryDropout,
                    .at_interval = 1,
                    .duration_intervals = 1,
                    .server = 0});
  events.push_back({.kind = FaultKind::kClientDisconnect,
                    .at_interval = 3,
                    .duration_intervals = 2,
                    .client = 2});
  events.push_back({.kind = FaultKind::kClientDisconnect,
                    .at_interval = 4,
                    .duration_intervals = 4,
                    .client = 2});
  events.push_back({.kind = FaultKind::kBackhaulDegrade,
                    .at_interval = 1,
                    .duration_intervals = 4,
                    .server = 0,
                    .peer = kAllServers,
                    .severity = 0.5});
  events.push_back({.kind = FaultKind::kBackhaulDegrade,
                    .at_interval = 3,
                    .duration_intervals = 5,
                    .server = 1,
                    .peer = 2,
                    .severity = 1.0});

  FaultPlan plan{std::move(events)};
  FaultTimeline timeline(plan, /*num_servers=*/3, /*num_clients=*/4);
  check_equivalence(timeline, 3, 4, 10);

  // Spot-check the union semantics directly.
  EXPECT_FALSE(timeline.server_down(1, 1));
  EXPECT_TRUE(timeline.server_down(1, 5));   // inside both windows
  EXPECT_TRUE(timeline.server_down(1, 7));   // only the second window
  EXPECT_FALSE(timeline.server_down(1, 9));  // exclusive end
  EXPECT_TRUE(timeline.client_offline(2, 4));
  EXPECT_TRUE(timeline.client_offline(2, 7));
  EXPECT_FALSE(timeline.client_offline(2, 8));
}

TEST(FaultTimelineIndex, EmptyTimelineHasNoEdges) {
  FaultTimeline timeline;
  EXPECT_TRUE(timeline.empty());
  EXPECT_TRUE(timeline.server_down_edges().empty());
  EXPECT_TRUE(timeline.telemetry_edges().empty());
  EXPECT_TRUE(timeline.client_offline_edges().empty());
  EXPECT_TRUE(timeline.backhaul_edges().empty());
}

}  // namespace
}  // namespace perdnn
