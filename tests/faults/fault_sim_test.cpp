// End-to-end fault-plan behaviour through the simulator: scripted crashes,
// backhaul outages with retry/backoff, telemetry dropouts, client churn,
// the local-execution fallback, and the no-op guarantee for fault-free runs.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "faults/fault_plan.hpp"
#include "mobility/trace_gen.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace perdnn {
namespace {

TEST(SimulationMetricsFaultTest, AvailabilityAndOffloadRatioDefinitions) {
  SimulationMetrics m;
  // 0/0 is defined as "fully healthy".
  EXPECT_DOUBLE_EQ(m.availability(), 1.0);
  EXPECT_DOUBLE_EQ(m.offload_ratio(), 1.0);

  m.attached_client_intervals = 3;
  m.unreachable_client_intervals = 1;
  m.offline_client_intervals = 100;  // the client's own outage: not counted
  EXPECT_DOUBLE_EQ(m.availability(), 0.75);

  m.cold_window_queries = 9;
  m.local_fallback_queries = 1;
  EXPECT_DOUBLE_EQ(m.offload_ratio(), 0.9);
}

TEST(SimulationConfigValidateTest, RejectsOutOfDomainKnobs) {
  const SimulationConfig good;
  EXPECT_NO_THROW(good.validate());

  const auto expect_invalid = [](auto mutate) {
    SimulationConfig config;
    mutate(config);
    EXPECT_THROW(config.validate(), std::logic_error);
  };
  expect_invalid([](SimulationConfig& c) { c.server_failure_rate = -0.1; });
  expect_invalid([](SimulationConfig& c) { c.server_failure_rate = 1.5; });
  expect_invalid([](SimulationConfig& c) { c.server_downtime_intervals = 0; });
  expect_invalid([](SimulationConfig& c) { c.ttl_intervals = 0; });
  expect_invalid([](SimulationConfig& c) { c.trajectory_length = 0; });
  expect_invalid([](SimulationConfig& c) { c.query_gap = -0.5; });
  expect_invalid([](SimulationConfig& c) { c.cell_radius_m = 0.0; });
  expect_invalid([](SimulationConfig& c) { c.bandwidth_jitter_sigma = -1.0; });
  expect_invalid(
      [](SimulationConfig& c) { c.wireless.uplink_bytes_per_sec = 0.0; });
  expect_invalid([](SimulationConfig& c) { c.backhaul_bytes_per_sec = 0.0; });
  expect_invalid([](SimulationConfig& c) { c.crowded_byte_budget = -1; });
  expect_invalid(
      [](SimulationConfig& c) { c.migration_retry.max_attempts = 0; });
  expect_invalid([](SimulationConfig& c) {
    c.migration_retry.initial_backoff_intervals = 0;
  });
  expect_invalid([](SimulationConfig& c) {
    c.migration_retry.initial_backoff_intervals = 8;
    c.migration_retry.max_backoff_intervals = 4;
  });

  // The scripted plan and the legacy probabilistic knobs are mutually
  // exclusive: mixing them would make the effective schedule ambiguous.
  expect_invalid([](SimulationConfig& c) {
    c.fault_plan = FaultPlan({{.kind = FaultKind::kServerCrash,
                               .at_interval = 0,
                               .duration_intervals = 1,
                               .server = 0}});
    c.server_failure_rate = 0.3;
  });
}

/// Campus world shared by the scripted-fault tests (same shape as the
/// simulator_test fixture: MobileNet, 6 test users, seed 5).
class FaultSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CampusTraceConfig train_config;
    train_config.num_users = 10;
    train_config.duration = 1.5 * 3600.0;
    train_config.sample_interval = 20.0;
    train_config.seed = 100;
    CampusTraceConfig test_config = train_config;
    test_config.num_users = 6;
    test_config.seed = 200;

    config_ = new SimulationConfig;
    config_->model = ModelName::kMobileNet;
    config_->policy = MigrationPolicy::kProactive;
    config_->migration_radius_m = 100.0;
    config_->seed = 5;

    world_ = new SimulationWorld(
        build_world(*config_, generate_campus_traces(train_config),
                    generate_campus_traces(test_config)));
  }

  static void TearDownTestSuite() {
    delete world_;
    delete config_;
    world_ = nullptr;
    config_ = nullptr;
  }

  struct RunResult {
    SimulationMetrics metrics;
    std::vector<obs::TimeseriesRow> rows;
    std::string csv;
    std::int64_t total_deferred_bytes = 0;
    long long total_degraded = 0;
    long long total_local_queries = 0;
  };

  static RunResult run_with(const FaultPlan& plan,
                            MigrationRetryConfig retry = {}) {
    SimulationConfig config = *config_;
    config.fault_plan = plan;
    config.migration_retry = retry;
    obs::SimTimeseries timeseries;
    RunResult result;
    result.metrics = run_simulation(config, *world_, &timeseries);
    result.rows = timeseries.rows();
    std::ostringstream csv;
    timeseries.write_csv(csv);
    result.csv = csv.str();
    result.total_deferred_bytes = timeseries.total_deferred_bytes();
    result.total_degraded = timeseries.total_degraded();
    result.total_local_queries = timeseries.total_local_queries();
    return result;
  }

  static int num_servers() { return world_->servers.num_servers(); }

  static SimulationConfig* config_;
  static SimulationWorld* world_;
};

SimulationConfig* FaultSimTest::config_ = nullptr;
SimulationWorld* FaultSimTest::world_ = nullptr;

TEST_F(FaultSimTest, EmptyPlanAndRetryKnobsAreInertOnCleanRuns) {
  // The whole fault machinery must be a strict no-op when nothing faults:
  // identical metrics and byte-identical timeseries regardless of the retry
  // policy, with every degradation counter at zero.
  const RunResult base = run_with(FaultPlan{});
  const RunResult tweaked = run_with(
      FaultPlan{}, {.max_attempts = 9, .initial_backoff_intervals = 2,
                    .max_backoff_intervals = 64});
  EXPECT_EQ(base.csv, tweaked.csv);
  EXPECT_EQ(base.metrics.cold_window_queries,
            tweaked.metrics.cold_window_queries);
  EXPECT_EQ(base.metrics.total_migrated_bytes,
            tweaked.metrics.total_migrated_bytes);

  const SimulationMetrics& m = base.metrics;
  EXPECT_EQ(m.server_failures, 0);
  EXPECT_EQ(m.client_disconnect_events, 0);
  EXPECT_EQ(m.local_fallback_queries, 0);
  EXPECT_EQ(m.unreachable_client_intervals, 0);
  EXPECT_EQ(m.offline_client_intervals, 0);
  EXPECT_EQ(m.degraded_attaches, 0);
  EXPECT_EQ(m.migrations_deferred, 0);
  EXPECT_EQ(m.deferred_migration_bytes, 0);
  EXPECT_EQ(m.peak_deferred_backlog_bytes, 0);
  EXPECT_DOUBLE_EQ(m.availability(), 1.0);
  EXPECT_DOUBLE_EQ(m.offload_ratio(), 1.0);
  EXPECT_GT(m.attached_client_intervals, 0);
}

TEST_F(FaultSimTest, CrashEvictsClientsWhoFallBackToLocalExecution) {
  // Every server goes down for intervals [3, 6): attached clients are
  // evicted and, with nothing reachable, execute locally until recovery.
  std::vector<FaultEvent> events;
  for (ServerId s = 0; s < num_servers(); ++s)
    events.push_back({.kind = FaultKind::kServerCrash,
                      .at_interval = 3,
                      .duration_intervals = 3,
                      .server = s});
  const RunResult result = run_with(FaultPlan(events));
  const SimulationMetrics& m = result.metrics;

  EXPECT_EQ(m.server_failures, num_servers());
  EXPECT_GT(m.failure_evictions, 0);
  EXPECT_GT(m.local_fallback_queries, 0);
  EXPECT_GT(m.local_latency_sum_s, 0.0);
  EXPECT_GT(m.unreachable_client_intervals, 0);
  EXPECT_LT(m.availability(), 1.0);
  EXPECT_LT(m.offload_ratio(), 1.0);
  EXPECT_GT(m.offload_ratio(), 0.0);  // recovery: offloading resumes
  EXPECT_EQ(m.hits + m.partials + m.misses, m.server_changes);
  EXPECT_EQ(result.total_local_queries, m.local_fallback_queries);

  // While everything is down nothing crosses the backhaul, and the local
  // fallback is what keeps queries flowing.
  bool local_during_window = false;
  for (const obs::TimeseriesRow& row : result.rows) {
    if (row.interval < 3 || row.interval >= 6) continue;
    EXPECT_EQ(row.uplink_bytes, 0) << "interval " << row.interval;
    EXPECT_EQ(row.downlink_bytes, 0) << "interval " << row.interval;
    EXPECT_EQ(row.migration_orders, 0) << "interval " << row.interval;
    local_during_window |= row.local_queries > 0;
  }
  EXPECT_TRUE(local_during_window);
}

TEST_F(FaultSimTest, DownedServerReceivesNoMigrationsWhileDown) {
  // Server 0 is down for the whole run: it must never receive a proactive
  // push or originate one, while the rest of the world migrates normally.
  const FaultPlan plan({{.kind = FaultKind::kServerCrash,
                         .at_interval = 0,
                         .duration_intervals = 1 << 20,
                         .server = 0}});
  const RunResult result = run_with(plan);
  EXPECT_GT(result.metrics.total_migrated_bytes, 0);
  for (const obs::TimeseriesRow& row : result.rows) {
    if (row.server != 0) continue;
    EXPECT_EQ(row.downlink_bytes, 0) << "interval " << row.interval;
    EXPECT_EQ(row.uplink_bytes, 0) << "interval " << row.interval;
    EXPECT_EQ(row.migration_orders, 0) << "interval " << row.interval;
    EXPECT_EQ(row.attached, 0) << "interval " << row.interval;
  }
}

TEST_F(FaultSimTest, BackhaulOutageDefersMigrationsAndRetriesDeliverThem) {
  // A full backhaul outage on every server's links during [0, 6) — covering
  // the initial migration burst: proactive pushes cannot be delivered, get
  // parked with backoff, and drain once the links heal — nothing is
  // abandoned with a generous attempt budget.
  std::vector<FaultEvent> events;
  for (ServerId s = 0; s < num_servers(); ++s)
    events.push_back({.kind = FaultKind::kBackhaulDegrade,
                      .at_interval = 0,
                      .duration_intervals = 6,
                      .server = s,
                      .peer = kAllServers,
                      .severity = 1.0});
  const RunResult result = run_with(
      FaultPlan(events), {.max_attempts = 12, .initial_backoff_intervals = 1,
                          .max_backoff_intervals = 4});
  const SimulationMetrics& m = result.metrics;

  EXPECT_GT(m.migrations_deferred, 0);
  EXPECT_GT(m.deferred_migration_bytes, 0);
  EXPECT_GT(m.migration_retries, 0);
  EXPECT_GT(m.peak_deferred_backlog_bytes, 0);
  EXPECT_EQ(m.migrations_abandoned, 0);
  EXPECT_EQ(m.abandoned_migration_bytes, 0);
  // The timeseries and the dispatcher agree on what was parked.
  EXPECT_EQ(result.total_deferred_bytes, m.deferred_migration_bytes);
  // Migration traffic still flows overall, and queries keep completing.
  EXPECT_GT(m.total_migrated_bytes, 0);
  EXPECT_GT(m.cold_window_queries, 0);
  // No delivery crossed any link while every link was dead.
  for (const obs::TimeseriesRow& row : result.rows) {
    if (row.interval >= 6) continue;
    EXPECT_EQ(row.downlink_bytes, 0) << "interval " << row.interval;
  }
}

TEST_F(FaultSimTest, PartialBackhaulDegradationStillDeliversSomething) {
  // Severity 0.5 halves the per-link budget instead of killing it: some
  // bytes cross during the window, anything over the cap is deferred.
  std::vector<FaultEvent> events;
  for (ServerId s = 0; s < num_servers(); ++s)
    events.push_back({.kind = FaultKind::kBackhaulDegrade,
                      .at_interval = 1,
                      .duration_intervals = 6,
                      .server = s,
                      .peer = kAllServers,
                      .severity = 0.5});
  const RunResult result = run_with(FaultPlan(events));
  EXPECT_GT(result.metrics.total_migrated_bytes, 0);
  EXPECT_EQ(result.metrics.hits + result.metrics.partials +
                result.metrics.misses,
            result.metrics.server_changes);
}

TEST_F(FaultSimTest, TelemetryDropoutDegradesEveryAttach) {
  // GPU stats are stale everywhere for the whole run: every re-attachment
  // plans with the load-free fallback estimator and is counted as degraded.
  std::vector<FaultEvent> events;
  for (ServerId s = 0; s < num_servers(); ++s)
    events.push_back({.kind = FaultKind::kTelemetryDropout,
                      .at_interval = 0,
                      .duration_intervals = 1 << 20,
                      .server = s});
  const RunResult degraded = run_with(FaultPlan(events));
  const RunResult clean = run_with(FaultPlan{});

  EXPECT_EQ(degraded.metrics.degraded_attaches,
            degraded.metrics.server_changes);
  EXPECT_EQ(degraded.total_degraded, degraded.metrics.degraded_attaches);
  EXPECT_GT(degraded.metrics.cold_window_queries, 0);
  // Degradation only changes planning quality, never reachability: the
  // cold-start structure stays consistent and nothing falls back to local.
  EXPECT_EQ(degraded.metrics.local_fallback_queries, 0);
  EXPECT_DOUBLE_EQ(degraded.metrics.availability(), 1.0);
  EXPECT_EQ(clean.metrics.degraded_attaches, 0);
}

TEST_F(FaultSimTest, ScriptedClientDisconnectTakesClientOffline) {
  const FaultPlan plan({{.kind = FaultKind::kClientDisconnect,
                         .at_interval = 4,
                         .duration_intervals = 3,
                         .client = 0}});
  const RunResult result = run_with(plan);
  const RunResult clean = run_with(FaultPlan{});
  const SimulationMetrics& m = result.metrics;

  EXPECT_EQ(m.client_disconnect_events, 1);
  EXPECT_EQ(m.offline_client_intervals, 3);
  // A disconnect is the client's own outage: availability is unharmed.
  EXPECT_DOUBLE_EQ(m.availability(), 1.0);
  // Client-interval occupancy is conserved: the offline intervals come out
  // of the attached/unreachable budget, never out of thin air.
  EXPECT_EQ(m.attached_client_intervals + m.unreachable_client_intervals +
                m.offline_client_intervals,
            clean.metrics.attached_client_intervals +
                clean.metrics.unreachable_client_intervals +
                clean.metrics.offline_client_intervals);
}

}  // namespace
}  // namespace perdnn
