#include "estimation/estimate_cache.hpp"

#include <gtest/gtest.h>

#include "device/profiler.hpp"
#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

class EstimateCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gpu_ = std::make_unique<GpuContentionModel>(titan_xp_profile());
    model_ = std::make_unique<DnnModel>(build_toy_model(4));
    ConcurrencyProfiler profiler(gpu_.get(), Rng(3));
    const DnnModel* models[] = {model_.get()};
    ProfilerConfig config;
    config.max_clients = 4;
    config.samples_per_level = 8;
    records_ = profiler.profile_models(models, config);
    Rng rng(1);
    estimator_.train(records_, rng);
  }

  std::unique_ptr<GpuContentionModel> gpu_;
  std::unique_ptr<DnnModel> model_;
  std::vector<ProfileRecord> records_;
  RandomForestEstimator estimator_;
};

TEST_F(EstimateCacheTest, HitReturnsIdenticalVectorWithoutRecompute) {
  EstimateCache cache;
  GpuStats stats;
  stats.num_clients = 2;
  stats.kernel_util = 0.4;
  const std::vector<Seconds> first =
      cache.estimates(estimator_, *model_, stats);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const std::vector<Seconds>& second =
      cache.estimates(estimator_, *model_, stats);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, estimator_.estimate_model(*model_, stats));
}

TEST_F(EstimateCacheTest, DifferentStatsBitsMiss) {
  EstimateCache cache;
  GpuStats a;
  a.num_clients = 2;
  GpuStats b = a;
  b.kernel_util += 1e-12;  // any bit difference is a different key
  cache.estimates(estimator_, *model_, a);
  cache.estimates(estimator_, *model_, b);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST_F(EstimateCacheTest, RetrainInvalidatesViaGeneration) {
  EstimateCache cache;
  GpuStats stats;
  stats.num_clients = 1;
  cache.estimates(estimator_, *model_, stats);
  const std::uint64_t gen_before = estimator_.generation();
  Rng rng(2);
  estimator_.train(records_, rng);
  EXPECT_GT(estimator_.generation(), gen_before);
  cache.estimates(estimator_, *model_, stats);
  EXPECT_EQ(cache.misses(), 2u);  // old entry unreachable, no stale hit
  EXPECT_EQ(cache.hits(), 0u);
}

TEST_F(EstimateCacheTest, InvalidateClears) {
  EstimateCache cache;
  GpuStats stats;
  stats.num_clients = 3;
  cache.estimates(estimator_, *model_, stats);
  EXPECT_EQ(cache.size(), 1u);
  cache.invalidate();
  EXPECT_EQ(cache.size(), 0u);
  cache.estimates(estimator_, *model_, stats);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(EstimateCacheTest, EpochBumpKeepsHitMissSequenceOfAClear) {
  // invalidate() is an O(1) epoch bump, not a map clear. The observable
  // hit/miss sequence must stay exactly what a clear would produce: no
  // stale hit after invalidate, fresh entries hit again within an epoch.
  EstimateCache cache;
  GpuStats a, b;
  a.num_clients = 1;
  b.num_clients = 2;
  cache.estimates(estimator_, *model_, a);  // miss
  cache.estimates(estimator_, *model_, b);  // miss
  cache.estimates(estimator_, *model_, a);  // hit
  cache.invalidate();
  cache.estimates(estimator_, *model_, a);  // miss again: old epoch dead
  cache.estimates(estimator_, *model_, a);  // hit in the new epoch
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(EstimateCacheTest, CapMissReclaimsStaleEpochsBeforeLiveEntries) {
  // With the map at its cap, a miss must evict lazily-retained stale-epoch
  // entries first — live entries keep hitting, so the sequence still
  // matches what eager clearing on invalidate() would have produced.
  EstimateCache cache(/*max_entries=*/4);
  GpuStats stats;
  for (int i = 0; i < 3; ++i) {
    stats.num_clients = i + 1;
    cache.estimates(estimator_, *model_, stats);
  }
  cache.invalidate();
  for (int i = 0; i < 3; ++i) {
    stats.num_clients = i + 1;
    cache.estimates(estimator_, *model_, stats);  // 2nd insert hits the cap
  }
  EXPECT_EQ(cache.misses(), 6u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    stats.num_clients = i + 1;
    cache.estimates(estimator_, *model_, stats);
  }
  EXPECT_EQ(cache.hits(), 3u);  // the GC never touched the live epoch
  EXPECT_EQ(cache.misses(), 6u);
}

TEST_F(EstimateCacheTest, BatchPartitionsHitsAndMissesLikeSerialCalls) {
  // estimates_batch must be observationally identical to calling
  // estimates() once per block entry: same values, same hit/miss counters,
  // same cache contents afterwards.
  EstimateCache serial_cache, batch_cache;
  std::vector<GpuStats> block(5);
  for (int i = 0; i < 5; ++i) block[static_cast<std::size_t>(i)].num_clients =
      i % 3 + 1;  // keys repeat within the block: {1,2,3,1,2}

  std::vector<std::vector<Seconds>> serial_results;
  for (const GpuStats& stats : block)
    serial_results.push_back(serial_cache.estimates(estimator_, *model_,
                                                    stats));

  std::vector<const std::vector<Seconds>*> batch_results;
  batch_cache.estimates_batch(estimator_, *model_, block, batch_results);

  ASSERT_EQ(batch_results.size(), block.size());
  for (std::size_t i = 0; i < block.size(); ++i)
    EXPECT_EQ(*batch_results[i], serial_results[i]) << "entry " << i;
  EXPECT_EQ(batch_cache.hits(), serial_cache.hits());      // 2: repeats hit
  EXPECT_EQ(batch_cache.misses(), serial_cache.misses());  // 3 distinct keys
  EXPECT_EQ(batch_cache.hits(), 2u);
  EXPECT_EQ(batch_cache.misses(), 3u);
  EXPECT_EQ(batch_cache.size(), 3u);
}

TEST_F(EstimateCacheTest, BatchHitsPreviouslyCachedEntries) {
  EstimateCache cache;
  GpuStats warm;
  warm.num_clients = 2;
  const std::vector<Seconds> warm_value =
      cache.estimates(estimator_, *model_, warm);

  std::vector<GpuStats> block(2);
  block[0].num_clients = 2;  // hit
  block[1].num_clients = 9;  // miss
  std::vector<const std::vector<Seconds>*> results;
  cache.estimates_batch(estimator_, *model_, block, results);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(*results[0], warm_value);
  EXPECT_EQ(*results[1], estimator_.estimate_model(*model_, block[1]));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(EstimateCacheTest, BatchPointersSurviveTheWholeBlock) {
  // Many distinct misses in one block: the returned pointers must all stay
  // valid even though the underlying map rehashes while filling them.
  EstimateCache cache;
  std::vector<GpuStats> block(24);
  for (std::size_t i = 0; i < block.size(); ++i)
    block[i].num_clients = static_cast<int>(i) + 1;
  std::vector<const std::vector<Seconds>*> results;
  cache.estimates_batch(estimator_, *model_, block, results);
  ASSERT_EQ(results.size(), block.size());
  for (std::size_t i = 0; i < block.size(); ++i)
    EXPECT_EQ(*results[i], estimator_.estimate_model(*model_, block[i]))
        << "entry " << i;
}

TEST_F(EstimateCacheTest, BatchLargerThanCapIsRejected) {
  EstimateCache cache(/*max_entries=*/2);
  std::vector<GpuStats> block(3);
  for (std::size_t i = 0; i < block.size(); ++i)
    block[i].num_clients = static_cast<int>(i) + 1;
  std::vector<const std::vector<Seconds>*> results;
  EXPECT_THROW(cache.estimates_batch(estimator_, *model_, block, results),
               std::logic_error);
}

TEST_F(EstimateCacheTest, CapTriggersClearNotGrowth) {
  EstimateCache cache(/*max_entries=*/2);
  GpuStats stats;
  for (int i = 0; i < 5; ++i) {
    stats.num_clients = i + 1;
    cache.estimates(estimator_, *model_, stats);
  }
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 5u);
}

}  // namespace
}  // namespace perdnn
