#include "estimation/estimator.hpp"

#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

/// Shared fixture: one profiling sweep over the toy model, split into train
/// and held-out halves.
class EstimatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gpu_ = new GpuContentionModel(titan_xp_profile());
    model_ = new DnnModel(build_toy_model(4));
    ConcurrencyProfiler profiler(gpu_, Rng(11));
    const DnnModel* models[] = {model_};
    ProfilerConfig config;
    config.max_clients = 8;
    config.samples_per_level = 10;
    auto records = profiler.profile_models(models, config);
    train_ = new std::vector<ProfileRecord>;
    test_ = new std::vector<ProfileRecord>;
    for (std::size_t i = 0; i < records.size(); ++i)
      (i % 2 == 0 ? train_ : test_)->push_back(records[i]);
  }

  static void TearDownTestSuite() {
    delete gpu_;
    delete model_;
    delete train_;
    delete test_;
    gpu_ = nullptr;
    model_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }

  static GpuContentionModel* gpu_;
  static DnnModel* model_;
  static std::vector<ProfileRecord>* train_;
  static std::vector<ProfileRecord>* test_;
};

GpuContentionModel* EstimatorTest::gpu_ = nullptr;
DnnModel* EstimatorTest::model_ = nullptr;
std::vector<ProfileRecord>* EstimatorTest::train_ = nullptr;
std::vector<ProfileRecord>* EstimatorTest::test_ = nullptr;

TEST_F(EstimatorTest, AllEstimatorsProducePositiveEstimates) {
  Rng rng(1);
  NeurosurgeonEstimator ll;
  LoadAwareLinearEstimator ll_load;
  RandomForestEstimator rf;
  ll.train(*train_, rng);
  ll_load.train(*train_, rng);
  rf.train(*train_, rng);
  for (const auto& rec : *test_) {
    EXPECT_GT(ll.estimate(rec.layer, rec.input_bytes, rec.stats), 0.0);
    EXPECT_GT(ll_load.estimate(rec.layer, rec.input_bytes, rec.stats), 0.0);
    EXPECT_GT(rf.estimate(rec.layer, rec.input_bytes, rec.stats), 0.0);
  }
}

TEST_F(EstimatorTest, RandomForestBeatsHyperparamOnlyLLUnderLoad) {
  // The Fig 4 claim: at high concurrency, the load-blind LL baseline
  // degrades while the GPU-stat-aware random forest stays accurate.
  Rng rng(2);
  NeurosurgeonEstimator ll;
  RandomForestEstimator rf;
  ll.train(*train_, rng);
  rf.train(*train_, rng);
  const double ll_mae = estimator_mae(ll, *test_, /*num_clients=*/8);
  const double rf_mae = estimator_mae(rf, *test_, /*num_clients=*/8);
  EXPECT_LT(rf_mae, ll_mae);
}

TEST_F(EstimatorTest, LoadFeaturesImproveLinearModelUnderLoad) {
  Rng rng(3);
  NeurosurgeonEstimator ll;
  LoadAwareLinearEstimator ll_load;
  ll.train(*train_, rng);
  ll_load.train(*train_, rng);
  const double ll_mae = estimator_mae(ll, *test_, /*num_clients=*/8);
  const double ll_load_mae = estimator_mae(ll_load, *test_, /*num_clients=*/8);
  EXPECT_LT(ll_load_mae, 1.05 * ll_mae);
}

TEST_F(EstimatorTest, ErrorGrowsWithLoadForLoadBlindModel) {
  Rng rng(4);
  NeurosurgeonEstimator ll;
  ll.train(*train_, rng);
  const double mae_low = estimator_mae(ll, *test_, 1);
  const double mae_high = estimator_mae(ll, *test_, 8);
  EXPECT_GT(mae_high, mae_low);
}

TEST_F(EstimatorTest, ForestImportanceIncludesLoadFeatures) {
  Rng rng(5);
  RandomForestEstimator rf;
  rf.train(*train_, rng);
  const Vector imp = rf.feature_importance(LayerKind::kConv);
  ASSERT_EQ(imp.size(), combined_feature_names().size());
  // The load block (last 5 features) must carry substantial importance —
  // the paper found workload features more important than hyperparameters.
  double load_importance = 0.0;
  for (std::size_t i = layer_feature_names().size(); i < imp.size(); ++i)
    load_importance += imp[i];
  EXPECT_GT(load_importance, 0.2);
}

TEST_F(EstimatorTest, UnknownKindFallsBackGracefully) {
  Rng rng(6);
  RandomForestEstimator rf;
  rf.train(*train_, rng);
  LayerSpec weird;
  weird.kind = LayerKind::kDropout;  // never profiled in the toy model
  weird.inputs = {0};
  weird.output_bytes = 1000;
  GpuStats stats;
  stats.num_clients = 2;
  stats.kernel_util = 50.0;
  EXPECT_GT(rf.estimate(weird, 1000, stats), 0.0);
}

TEST_F(EstimatorTest, TrainOnEmptyRecordsThrows) {
  Rng rng(7);
  std::vector<ProfileRecord> empty;
  NeurosurgeonEstimator ll;
  RandomForestEstimator rf;
  EXPECT_THROW(ll.train(empty, rng), std::logic_error);
  EXPECT_THROW(rf.train(empty, rng), std::logic_error);
}

TEST_F(EstimatorTest, EstimateBeforeTrainThrows) {
  RandomForestEstimator rf;
  LayerSpec conv = model_->layer(1);
  GpuStats stats;
  EXPECT_THROW(rf.estimate(conv, 100, stats), std::logic_error);
}

TEST_F(EstimatorTest, GradientBoostingCompetitiveWithForestUnderLoad) {
  Rng rng(8);
  RandomForestEstimator rf;
  GradientBoostedEstimator gbt;
  rf.train(*train_, rng);
  gbt.train(*train_, rng);
  const double rf_mae = estimator_mae(rf, *test_, /*num_clients=*/8);
  const double gbt_mae = estimator_mae(gbt, *test_, /*num_clients=*/8);
  // GBT should land in the forest's league (and both far below LL).
  EXPECT_LT(gbt_mae, 2.0 * rf_mae);
  NeurosurgeonEstimator ll;
  ll.train(*train_, rng);
  EXPECT_LT(gbt_mae, estimator_mae(ll, *test_, /*num_clients=*/8));
}

TEST(EstimatorFeatures, NamesAlignWithVectors) {
  LayerSpec conv;
  conv.kind = LayerKind::kConv;
  conv.inputs = {0};
  conv.flops = 1e9;
  GpuStats stats;
  EXPECT_EQ(layer_features(conv, 100).size(), layer_feature_names().size());
  EXPECT_EQ(load_features(stats).size(), load_feature_names().size());
  EXPECT_EQ(combined_features(conv, 100, stats).size(),
            combined_feature_names().size());
}

}  // namespace
}  // namespace perdnn
