// End-to-end integration through the public library pieces, driven the way
// a real deployment would wire them (no simulator): a client registers with
// the MasterServer, streams its trajectory, the master predicts the move
// and issues migration orders, edge caches receive the layers, and when the
// client arrives its cold start is a hit.
#include <gtest/gtest.h>

#include "core/perdnn.hpp"
#include "edge/layer_cache.hpp"
#include "geo/server_map.hpp"
#include "mobility/predictor.hpp"

namespace perdnn {
namespace {

TEST(Integration, ProactiveMigrationTurnsColdStartIntoHit) {
  // --- infrastructure: a corridor of edge servers every 100 m ---
  auto servers = std::make_shared<ServerMap>(50.0);
  for (double x = 0.0; x <= 1000.0; x += 100.0) servers->allocate_at({x, 0.0});

  auto gpu = std::make_shared<GpuContentionModel>(titan_xp_profile());
  DnnModel model = build_toy_model(4);
  const DnnModel* models[] = {&model};
  ConcurrencyProfiler profiler(gpu.get(), Rng(1));
  ProfilerConfig prof_config;
  prof_config.max_clients = 4;
  prof_config.samples_per_level = 4;
  auto estimator = std::make_shared<RandomForestEstimator>();
  Rng train_rng(2);
  estimator->train(profiler.profile_models(models, prof_config), train_rng);

  // Mobility predictor trained on east-bound corridor walks.
  std::vector<Trajectory> history;
  Rng traj_rng(3);
  for (int u = 0; u < 15; ++u) {
    Trajectory traj;
    traj.interval = 20.0;
    Point pos{traj_rng.uniform(0.0, 200.0), 0.0};
    const double speed = traj_rng.uniform(25.0, 35.0);
    for (int t = 0; t < 15; ++t) {
      traj.points.push_back(pos);
      pos.x += speed;
    }
    history.push_back(std::move(traj));
  }
  auto predictor = std::make_shared<SvrPredictor>(3);
  Rng fit_rng(4);
  predictor->fit(history, fit_rng);

  MasterServer::Config master_config;
  master_config.migration_radius_m = 120.0;
  MasterServer master(servers, estimator, predictor, master_config);

  // --- the client registers and walks east ---
  DnnProfile profile = profile_on_client(model, odroid_xu4_profile());
  const ClientId client =
      master.register_client(build_toy_model(4), std::move(profile));
  for (int t = 0; t < 4; ++t)
    master.report_location(client, {300.0 + 30.0 * t, 0.0});
  const ServerId current = servers->server_at({390.0, 0.0});
  ASSERT_NE(current, kNoServer);

  // --- the master plans migrations toward the predicted next position ---
  const auto n = static_cast<std::size_t>(model.num_layers());
  const std::vector<bool> source_has_everything(n, true);
  auto stats_of = [&](ServerId) {
    Rng rng(7);
    return gpu->stats_for_load(1, 1.0, rng);
  };
  const auto orders = master.plan_migrations(client, current,
                                             source_has_everything, stats_of);
  ASSERT_FALSE(orders.empty());

  // --- edge servers apply the orders into their caches ---
  std::vector<LayerCache> caches(
      static_cast<std::size_t>(servers->num_servers()), LayerCache(5));
  for (const auto& order : orders)
    caches[static_cast<std::size_t>(order.target)].store(client, order.layers,
                                                         /*now=*/0);

  // --- the client arrives at one of the seeded servers ahead: the plan's
  //     layers are already there
  const ServerId next = orders.front().target;
  ASSERT_NE(next, current);
  const GpuStats arrival_stats = stats_of(next);
  const PartitionPlan plan = master.current_plan(client, arrival_stats);
  const auto mask =
      caches[static_cast<std::size_t>(next)].mask(client, model);
  for (LayerId id : plan.server_layers())
    EXPECT_TRUE(mask[static_cast<std::size_t>(id)]) << "layer " << id;

  // --- and the first query is a warm-start query, not a cold one ---
  const UploadSchedule schedule =
      master.upload_schedule(client, plan, arrival_stats);
  PartitionContext context;
  context.model = &model;
  const DnnProfile stable_profile =
      profile_on_client(model, odroid_xu4_profile());
  context.client_profile = &stable_profile;
  for (LayerId id = 0; id < model.num_layers(); ++id)
    context.server_time.push_back(gpu->expected_layer_time(
        model.layer(id), model.input_bytes(id), 1.0));

  ReplayConfig replay_config;
  replay_config.max_queries = 3;
  const Bytes cached_bytes =
      caches[static_cast<std::size_t>(next)].cached_bytes(client, model);
  const ReplayResult warm =
      replay_queries(context, schedule, cached_bytes, replay_config);
  const ReplayResult cold = replay_queries(context, schedule, 0, replay_config);
  EXPECT_LT(warm.queries.front().latency, cold.queries.front().latency);
  EXPECT_NEAR(warm.queries.front().latency, plan.latency,
              plan.latency * 0.5);  // same ballpark as the master's estimate
}

}  // namespace
}  // namespace perdnn
