#include "core/perdnn.hpp"

#include <gtest/gtest.h>

namespace perdnn {
namespace {

OffloadingSession::Options fast_options(ModelName model = ModelName::kMobileNet,
                                        int load = 1) {
  OffloadingSession::Options options;
  options.model = model;
  options.server_load = load;
  options.profiling.max_clients = 4;
  options.profiling.samples_per_level = 3;
  return options;
}

TEST(OffloadingSession, EndToEndMobileNet) {
  OffloadingSession session(fast_options());
  EXPECT_GT(session.local_latency(), 0.1);

  const PartitionPlan plan = session.best_plan();
  EXPECT_GT(plan.num_server_layers(), 0);
  EXPECT_LT(plan.latency, session.local_latency());

  const UploadSchedule schedule =
      session.upload_schedule(plan, UploadEnumeration::kAnchored);
  EXPECT_EQ(schedule.order.size(),
            static_cast<std::size_t>(plan.num_server_layers()));

  ReplayConfig config;
  config.max_queries = 10;
  const ReplayResult cold = session.replay(schedule, 0, config);
  const ReplayResult warm =
      session.replay(schedule, schedule.total_bytes(), config);
  EXPECT_GT(cold.queries.front().latency, warm.queries.front().latency);
}

TEST(OffloadingSession, TrueAndEstimatedContextsAgreeRoughly) {
  OffloadingSession session(fast_options());
  const PartitionContext estimated = session.context(false);
  const PartitionContext truth = session.context(true);
  // The estimator should track ground truth well enough that the total
  // server-side time differs by far less than the client/server gap.
  Seconds est_total = 0, true_total = 0;
  for (std::size_t i = 0; i < estimated.server_time.size(); ++i) {
    est_total += estimated.server_time[i];
    true_total += truth.server_time[i];
  }
  EXPECT_NEAR(est_total, true_total, 0.5 * true_total);
}

TEST(OffloadingSession, ServerLoadSlowsTheServerSide) {
  OffloadingSession idle(fast_options(ModelName::kMobileNet, 1));
  OffloadingSession busy(fast_options(ModelName::kMobileNet, 8));
  Seconds idle_total = 0, busy_total = 0;
  for (Seconds t : idle.context(true).server_time) idle_total += t;
  for (Seconds t : busy.context(true).server_time) busy_total += t;
  EXPECT_GT(busy_total, 2.0 * idle_total);
  // The busy server's plan keeps latency sane by shifting work clientwards
  // or accepting the slower server — never exceeding local execution.
  EXPECT_LE(busy.best_plan().latency, busy.local_latency() + 1e-9);
}

TEST(OffloadingSession, StatsReflectConfiguredLoad) {
  OffloadingSession session(fast_options(ModelName::kMobileNet, 5));
  EXPECT_EQ(session.server_stats().num_clients, 5);
  EXPECT_THROW(OffloadingSession(fast_options(ModelName::kMobileNet, 0)),
               std::logic_error);
}

}  // namespace
}  // namespace perdnn
