// Tier-1 gate for the memory-budgeted layer caches, in both engines:
//
//   * the budget invariant — per-server resident cache bytes never exceed
//     cache_budget_bytes in any interval (checked here via the exported
//     timeseries rows; the engines also assert it internally);
//   * determinism — a budgeted sharded run is byte-identical across
//     threads x shards and across a kill -9 checkpoint/resume;
//   * output compatibility — an unbudgeted run keeps the schema-2 CSV and
//     the pre-budget metrics JSON shape, and a never-binding budget changes
//     no journal event.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "mobility/trace_gen.hpp"
#include "obs/journal.hpp"
#include "obs/timeseries.hpp"
#include "sim/shard_sim.hpp"
#include "sim/shard_world.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot.hpp"

namespace perdnn {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parses the named column out of a schema-3 timeseries CSV (comment lines
/// skipped), returning one value per data row.
std::vector<long long> csv_column(const std::string& csv,
                                  const std::string& column) {
  std::vector<long long> out;
  std::istringstream in(csv);
  std::string line;
  int index = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string field;
    if (index < 0) {  // header line
      for (int i = 0; std::getline(fields, field, ','); ++i)
        if (field == column) index = i;
      EXPECT_GE(index, 0) << "column " << column << " missing from header";
      continue;
    }
    for (int i = 0; i <= index; ++i) std::getline(fields, field, ',');
    out.push_back(std::stoll(field));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Classic trace-replay engine.
// ---------------------------------------------------------------------------

class ClassicCacheBudgetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CampusTraceConfig train_config;
    train_config.num_users = 8;
    train_config.duration = 1.0 * 3600.0;
    train_config.sample_interval = 20.0;
    train_config.seed = 100;
    CampusTraceConfig test_config = train_config;
    test_config.num_users = 6;
    test_config.seed = 300;

    config_ = new SimulationConfig;
    config_->model = ModelName::kMobileNet;
    config_->policy = MigrationPolicy::kProactive;
    config_->migration_radius_m = 100.0;
    config_->routing_fallback = true;
    config_->seed = 11;

    world_ = new SimulationWorld(
        build_world(*config_, generate_campus_traces(train_config),
                    generate_campus_traces(test_config)));
  }

  static void TearDownTestSuite() {
    delete world_;
    delete config_;
    world_ = nullptr;
    config_ = nullptr;
    par::set_num_threads(0);
  }

  static SimulationConfig* config_;
  static SimulationWorld* world_;
};

SimulationConfig* ClassicCacheBudgetTest::config_ = nullptr;
SimulationWorld* ClassicCacheBudgetTest::world_ = nullptr;

TEST_F(ClassicCacheBudgetTest, UnbudgetedRunKeepsSchema2AndBareMetricsJson) {
  obs::SimTimeseries timeseries;
  const SimulationMetrics metrics =
      run_simulation(*config_, *world_, &timeseries, {});
  EXPECT_EQ(timeseries.csv_schema(), obs::SimTimeseries::kCsvSchemaVersion);
  std::ostringstream csv;
  timeseries.write_csv(csv);
  EXPECT_EQ(csv.str().find("cache_bytes"), std::string::npos);
  const std::string json = snapshot::metrics_to_json(metrics);
  EXPECT_EQ(json.find("cache_evictions"), std::string::npos);
  EXPECT_EQ(json.find("peak_cache_bytes"), std::string::npos);
}

TEST_F(ClassicCacheBudgetTest, NeverBindingBudgetChangesNoJournalEvent) {
  const auto journal_of = [&](Bytes budget) {
    obs::Journal journal;
    SimulationConfig config = *config_;
    config.cache_budget_bytes = budget;
    SimulationRunOptions options;
    options.journal = &journal;
    run_simulation(config, *world_, nullptr, options);
    return obs::journal_to_jsonl(journal.events());
  };
  // A budget no store can ever reach admits everything and evicts nothing:
  // the journal stream must match the unbudgeted run event for event.
  EXPECT_EQ(journal_of(0), journal_of(Bytes{1} << 60));
}

TEST_F(ClassicCacheBudgetTest, BudgetInvariantHoldsAndPressureIsVisible) {
  // Measure the run's natural peak residency first, then rerun with a
  // budget tight enough to bind on the busy servers.
  SimulationConfig roomy = *config_;
  roomy.cache_budget_bytes = Bytes{1} << 60;
  obs::SimTimeseries unbounded;
  const SimulationMetrics free_run =
      run_simulation(roomy, *world_, &unbounded, {});
  ASSERT_GT(free_run.peak_cache_bytes, 0);
  EXPECT_EQ(free_run.cache_evictions, 0);
  EXPECT_EQ(free_run.cache_partial_stores, 0);
  std::int64_t peak_row_bytes = 0;
  for (const auto& row : unbounded.rows())
    peak_row_bytes = std::max(peak_row_bytes, row.cache_bytes);
  ASSERT_GT(peak_row_bytes, 0);

  SimulationConfig tight = *config_;
  tight.cache_budget_bytes = peak_row_bytes / 2;
  obs::SimTimeseries timeseries;
  const SimulationMetrics metrics =
      run_simulation(tight, *world_, &timeseries, {});
  EXPECT_EQ(timeseries.csv_schema(),
            obs::SimTimeseries::kCsvCacheSchemaVersion);
  for (const auto& row : timeseries.rows())
    ASSERT_LE(row.cache_bytes, tight.cache_budget_bytes)
        << "interval " << row.interval << " server " << row.server;
  // The tightened budget actually bit: evictions or trims happened, and
  // the metrics aggregate reconciles with the rows.
  EXPECT_GT(metrics.cache_evictions + metrics.cache_partial_stores, 0);
  EXPECT_EQ(timeseries.total_cache_evictions(), metrics.cache_evictions);
  EXPECT_EQ(timeseries.total_cache_partial_stores(),
            metrics.cache_partial_stores);
  EXPECT_LE(metrics.peak_cache_bytes, free_run.peak_cache_bytes);
}

TEST_F(ClassicCacheBudgetTest, BudgetedResumeIsByteIdentical) {
  SimulationConfig config = *config_;
  config.cache_budget_bytes = mb_to_bytes(2.0);

  par::set_num_threads(2);
  obs::SimTimeseries reference_ts;
  const SimulationMetrics reference =
      run_simulation(config, *world_, &reference_ts, {});
  std::ostringstream reference_csv;
  reference_ts.write_csv(reference_csv);

  snapshot::SimSnapshot snap;
  {
    obs::SimTimeseries scratch;
    SimulationRunOptions options;
    options.stop_after_interval = 4;
    options.capture_out = &snap;
    run_simulation(config, *world_, &scratch, options);
  }
  // The v5 wire codec round-trips the budgeted cache state (entry bytes).
  const snapshot::SimSnapshot decoded =
      snapshot::decode(snapshot::encode(snap));

  for (const int threads : {1, 8}) {
    par::set_num_threads(threads);
    obs::SimTimeseries resumed_ts;
    SimulationRunOptions options;
    options.resume_from = &decoded;
    const SimulationMetrics resumed =
        run_simulation(config, *world_, &resumed_ts, options);
    EXPECT_EQ(snapshot::metrics_to_json(resumed),
              snapshot::metrics_to_json(reference))
        << "threads=" << threads;
    std::ostringstream resumed_csv;
    resumed_ts.write_csv(resumed_csv);
    EXPECT_EQ(resumed_csv.str(), reference_csv.str())
        << "threads=" << threads;
  }
  par::set_num_threads(0);
}

// ---------------------------------------------------------------------------
// Sharded city-scale engine.
// ---------------------------------------------------------------------------

class ShardCacheBudgetTest : public ::testing::Test {
 protected:
  static ShardWorldConfig base_config() {
    ShardWorldConfig config;
    config.model = ModelName::kMobileNet;
    config.tiles_x = 4;
    config.tiles_y = 5;
    config.cell_radius_m = 50.0;
    config.num_clients = 60;
    config.num_intervals = 10;
    config.max_load_level = 6;
    config.seed = 7;
    return config;
  }

  static void SetUpTestSuite() {
    ShardWorldConfig config = base_config();
    // A tile holds at most two full canonical prefixes: with ~3 clients per
    // tile on average the budget binds constantly.
    const ShardWorld probe = build_shard_world(config);
    config.cache_budget_bytes = 2 * probe.prefix_bytes.back();
    ASSERT_GT(config.cache_budget_bytes, 0);
    world_ = new ShardWorld(build_shard_world(config));
  }

  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    par::set_num_threads(0);
  }

  static std::string ts_path() {
    return ::testing::TempDir() + "budget_ts.csv";
  }
  static std::string jr_path() {
    return ::testing::TempDir() + "budget_jr.jsonl";
  }

  struct RunResult {
    std::string metrics;
    std::string timeseries;
    std::string journal;
  };

  static RunResult run_at(const ShardWorld& world, int threads, int shards) {
    par::set_num_threads(threads);
    ShardRunOptions options;
    options.num_shards = shards;
    options.timeseries_path = ts_path();
    options.journal_path = jr_path();
    const SimulationMetrics metrics = run_sharded_simulation(world, options);
    par::set_num_threads(0);
    return {snapshot::metrics_to_json(metrics), slurp(ts_path()),
            slurp(jr_path())};
  }

  static ShardWorld* world_;
};

ShardWorld* ShardCacheBudgetTest::world_ = nullptr;

TEST_F(ShardCacheBudgetTest, BudgetedMatrixByteIdenticalAcrossThreadsShards) {
  const RunResult baseline = run_at(*world_, 1, 1);
  ASSERT_FALSE(baseline.metrics.empty());
  // The scenario is under real pressure, not trivially under budget
  // (metrics_to_json only emits the counters when they are non-zero).
  EXPECT_TRUE(
      baseline.metrics.find("\"cache_evictions\"") != std::string::npos ||
      baseline.metrics.find("\"cache_partial_stores\"") != std::string::npos)
      << baseline.metrics;

  for (const int shards : {1, 4, 16}) {
    for (const int threads : {1, 2, 8}) {
      const RunResult r = run_at(*world_, threads, shards);
      EXPECT_EQ(baseline.metrics, r.metrics)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(baseline.timeseries, r.timeseries)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(baseline.journal, r.journal)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST_F(ShardCacheBudgetTest, ResidentBytesNeverExceedBudgetInAnyInterval) {
  const RunResult r = run_at(*world_, 2, 4);
  EXPECT_NE(r.timeseries.find("# schema=3"), std::string::npos);
  const auto bytes = csv_column(r.timeseries, "cache_bytes");
  ASSERT_EQ(bytes.size(),
            static_cast<std::size_t>(world_->config.num_intervals *
                                     world_->config.num_servers()));
  long long peak = 0;
  for (const long long b : bytes) {
    ASSERT_LE(b, world_->config.cache_budget_bytes);
    peak = std::max(peak, b);
  }
  EXPECT_GT(peak, 0);
  // The budget journal vocabulary is present and carries the byte payloads
  // perdnn_obs keys on (budget evictions have bytes > 0).
  EXPECT_NE(r.journal.find("\"kind\":\"cache_evict\""), std::string::npos);
}

TEST_F(ShardCacheBudgetTest, BudgetedResumeAfterKillConvergesByteIdentical) {
  const RunResult full = run_at(*world_, 2, 4);

  par::set_num_threads(1);
  snapshot::SimSnapshot snap;
  {
    ShardRunOptions options;
    options.num_shards = 16;
    options.timeseries_path = ts_path();
    options.journal_path = jr_path();
    options.stop_after_interval = 4;
    options.capture_out = &snap;
    run_sharded_simulation(*world_, options);
  }
  ASSERT_TRUE(snap.has_shard);

  // kill -9 mid-write: garbage past the checkpoint offsets must be
  // discarded on resume.
  {
    std::ofstream ts(ts_path(), std::ios::binary | std::ios::app);
    ts << "9,9,9,garbage-past-the-checkpo";
    std::ofstream jr(jr_path(), std::ios::binary | std::ios::app);
    jr << "{\"interval\":999,\"kind\":\"atta";
  }

  const snapshot::SimSnapshot decoded =
      snapshot::decode(snapshot::encode(snap));
  ShardRunOptions options;
  options.num_shards = 4;
  options.timeseries_path = ts_path();
  options.journal_path = jr_path();
  options.resume_from = &decoded;
  const SimulationMetrics resumed = run_sharded_simulation(*world_, options);
  par::set_num_threads(0);

  EXPECT_EQ(full.metrics, snapshot::metrics_to_json(resumed));
  EXPECT_EQ(full.timeseries, slurp(ts_path()));
  EXPECT_EQ(full.journal, slurp(jr_path()));
}

TEST_F(ShardCacheBudgetTest, UnbudgetedShardRunKeepsSchema2) {
  const ShardWorld plain = build_shard_world(base_config());
  const RunResult r = run_at(plain, 2, 4);
  EXPECT_NE(r.timeseries.find("# schema=2"), std::string::npos);
  EXPECT_EQ(r.timeseries.find("cache_bytes"), std::string::npos);
  EXPECT_EQ(r.metrics.find("cache_evictions"), std::string::npos);
}

}  // namespace
}  // namespace perdnn
