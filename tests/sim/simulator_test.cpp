#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "mobility/trace_gen.hpp"
#include "obs/timeseries.hpp"

namespace perdnn {
namespace {

/// A small but non-trivial world shared by every test in this file: campus
/// traces (slow, predictable users), MobileNet (fast to plan), short runs.
class SimulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CampusTraceConfig train_config;
    train_config.num_users = 10;
    train_config.duration = 1.5 * 3600.0;
    train_config.sample_interval = 20.0;
    train_config.seed = 100;
    CampusTraceConfig test_config = train_config;
    test_config.num_users = 6;
    test_config.seed = 200;

    config_ = new SimulationConfig;
    config_->model = ModelName::kMobileNet;
    config_->migration_radius_m = 100.0;
    config_->seed = 5;

    world_ = new SimulationWorld(
        build_world(*config_, generate_campus_traces(train_config),
                    generate_campus_traces(test_config)));
  }

  static void TearDownTestSuite() {
    delete world_;
    delete config_;
    world_ = nullptr;
    config_ = nullptr;
  }

  static SimulationMetrics run_policy(MigrationPolicy policy) {
    SimulationConfig config = *config_;
    config.policy = policy;
    return run_simulation(config, *world_);
  }

  static SimulationConfig* config_;
  static SimulationWorld* world_;
};

SimulationConfig* SimulatorTest::config_ = nullptr;
SimulationWorld* SimulatorTest::world_ = nullptr;

TEST(SimulationMetricsTest, HitRatioIsZeroWhenNothingClassified) {
  // 0/0 guard: a run with no cold starts (hits + misses == 0) defines the
  // ratio as 0.0 instead of NaN, and partials alone do not change that.
  SimulationMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.hit_ratio(), 0.0);
  metrics.partials = 3;
  EXPECT_DOUBLE_EQ(metrics.hit_ratio(), 0.0);
  metrics.hits = 1;
  metrics.misses = 1;
  EXPECT_DOUBLE_EQ(metrics.hit_ratio(), 0.5);
}

TEST_F(SimulatorTest, WorldBuildsSaneComponents) {
  EXPECT_GT(world_->servers.num_servers(), 3);
  EXPECT_EQ(world_->test_traces.size(), 6u);
  EXPECT_FALSE(world_->canonical_schedule.order.empty());
  EXPECT_DOUBLE_EQ(world_->interval, 20.0);
}

TEST_F(SimulatorTest, BaselineNeverHits) {
  const SimulationMetrics metrics = run_policy(MigrationPolicy::kNone);
  EXPECT_EQ(metrics.hits, 0);
  EXPECT_EQ(metrics.partials, 0);
  EXPECT_DOUBLE_EQ(metrics.hit_ratio(), 0.0);
  EXPECT_EQ(metrics.total_migrated_bytes, 0);
  EXPECT_DOUBLE_EQ(metrics.peak_uplink_mbps, 0.0);
  EXPECT_GT(metrics.server_changes, 0);
}

TEST_F(SimulatorTest, OptimalAlwaysHits) {
  const SimulationMetrics metrics = run_policy(MigrationPolicy::kOptimal);
  EXPECT_EQ(metrics.misses, 0);
  EXPECT_EQ(metrics.partials, 0);
  EXPECT_DOUBLE_EQ(metrics.hit_ratio(), 1.0);
}

TEST_F(SimulatorTest, ColdStartAccountingIsConsistent) {
  const SimulationMetrics metrics = run_policy(MigrationPolicy::kProactive);
  EXPECT_EQ(metrics.hits + metrics.partials + metrics.misses,
            metrics.server_changes);
  EXPECT_GE(metrics.hit_ratio(), 0.0);
  EXPECT_LE(metrics.hit_ratio(), 1.0);
  EXPECT_EQ(metrics.num_clients, 6);
  EXPECT_GT(metrics.num_intervals, 0);
  EXPECT_EQ(metrics.server_peak_uplink_mbps.size(),
            static_cast<std::size_t>(metrics.num_servers));
}

TEST_F(SimulatorTest, ProactiveMigrationProducesHitsAndTraffic) {
  const SimulationMetrics metrics = run_policy(MigrationPolicy::kProactive);
  EXPECT_GT(metrics.hits + metrics.partials, 0);
  EXPECT_GT(metrics.total_migrated_bytes, 0);
  EXPECT_GT(metrics.peak_uplink_mbps, 0.0);
}

TEST_F(SimulatorTest, QueryCountOrderingAcrossPolicies) {
  const auto none = run_policy(MigrationPolicy::kNone);
  const auto proactive = run_policy(MigrationPolicy::kProactive);
  const auto optimal = run_policy(MigrationPolicy::kOptimal);
  // Cold-start-window throughput: baseline <= PerDNN <= Optimal.
  EXPECT_LE(none.cold_window_queries, proactive.cold_window_queries);
  EXPECT_LE(proactive.cold_window_queries, optimal.cold_window_queries);
  EXPECT_GT(none.cold_window_queries, 0);
}

TEST_F(SimulatorTest, LargerRadiusHitsAtLeastAsOften) {
  SimulationConfig narrow = *config_;
  narrow.policy = MigrationPolicy::kProactive;
  narrow.migration_radius_m = 50.0;
  SimulationConfig wide = narrow;
  wide.migration_radius_m = 150.0;
  const auto narrow_metrics = run_simulation(narrow, *world_);
  const auto wide_metrics = run_simulation(wide, *world_);
  EXPECT_GE(wide_metrics.hit_ratio(), narrow_metrics.hit_ratio() - 0.02);
  EXPECT_GE(wide_metrics.total_migrated_bytes,
            narrow_metrics.total_migrated_bytes);
}

TEST_F(SimulatorTest, FractionalMigrationCutsTrafficModestly) {
  SimulationConfig full = *config_;
  full.policy = MigrationPolicy::kProactive;
  const auto baseline = run_simulation(full, *world_);

  // Cap the busiest 30% of servers to a small byte budget.
  std::vector<std::pair<double, ServerId>> ranked;
  for (ServerId s = 0; s < baseline.num_servers; ++s)
    ranked.push_back(
        {baseline.server_peak_uplink_mbps[static_cast<std::size_t>(s)], s});
  std::sort(ranked.rbegin(), ranked.rend());
  SimulationConfig capped = full;
  for (std::size_t i = 0; i < ranked.size() / 3 + 1; ++i)
    capped.crowded_servers.push_back(ranked[i].second);
  capped.crowded_byte_budget = mb_to_bytes(2.0);
  const auto reduced = run_simulation(capped, *world_);

  EXPECT_LT(reduced.total_migrated_bytes, baseline.total_migrated_bytes);
  // Individual sends are strictly smaller, but cache/timing shifts can move
  // which interval is busiest in a world this small — so bound the peak
  // loosely rather than requiring strict monotonicity.
  EXPECT_LE(reduced.peak_uplink_mbps, baseline.peak_uplink_mbps * 1.6);
  // Queries should not collapse: fractional migration trades a little
  // performance for a lot of traffic.
  EXPECT_GT(reduced.cold_window_queries,
            baseline.cold_window_queries * 7 / 10);
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  const auto a = run_policy(MigrationPolicy::kProactive);
  const auto b = run_policy(MigrationPolicy::kProactive);
  EXPECT_EQ(a.cold_window_queries, b.cold_window_queries);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.total_migrated_bytes, b.total_migrated_bytes);
}

TEST_F(SimulatorTest, OraclePredictorHitsAtLeastAsOftenAsStationary) {
  SimulationConfig oracle = *config_;
  oracle.policy = MigrationPolicy::kProactive;
  oracle.predictor = PredictorKind::kOracle;
  SimulationConfig stationary = oracle;
  stationary.predictor = PredictorKind::kStationary;
  const auto oracle_metrics = run_simulation(oracle, *world_);
  const auto stationary_metrics = run_simulation(stationary, *world_);
  EXPECT_GE(oracle_metrics.hit_ratio(), stationary_metrics.hit_ratio() - 0.02);
  EXPECT_GT(oracle_metrics.hits, 0);
}

TEST_F(SimulatorTest, BestVisibleSelectionKeepsAccountingConsistent) {
  SimulationConfig config = *config_;
  config.policy = MigrationPolicy::kProactive;
  config.selection = ServerSelection::kBestVisible;
  config.visibility_radius_m = 120.0;
  const auto metrics = run_simulation(config, *world_);
  EXPECT_EQ(metrics.hits + metrics.partials + metrics.misses,
            metrics.server_changes);
  EXPECT_GT(metrics.cold_window_queries, 0);
  // Hysteresis must keep re-selection from flapping wildly compared to the
  // plain current-cell policy.
  const auto baseline = run_policy(MigrationPolicy::kProactive);
  EXPECT_LT(metrics.server_changes, 3 * baseline.server_changes + 10);
}

TEST_F(SimulatorTest, FailureInjectionEvictsAndStaysConsistent) {
  SimulationConfig config = *config_;
  config.policy = MigrationPolicy::kProactive;
  config.server_failure_rate = 0.01;
  config.server_downtime_intervals = 4;
  const auto metrics = run_simulation(config, *world_);
  EXPECT_GT(metrics.server_failures, 0);
  EXPECT_EQ(metrics.hits + metrics.partials + metrics.misses,
            metrics.server_changes);
  // Failures force extra cold starts relative to the failure-free run.
  const auto clean = run_policy(MigrationPolicy::kProactive);
  EXPECT_GT(metrics.server_changes, clean.server_changes);
  EXPECT_EQ(clean.server_failures, 0);
}

TEST_F(SimulatorTest, TotalOutageStopsColdWindows) {
  SimulationConfig config = *config_;
  config.policy = MigrationPolicy::kNone;
  config.server_failure_rate = 1.0;  // everything down, always
  config.server_downtime_intervals = 1 << 20;
  const auto metrics = run_simulation(config, *world_);
  // After the first interval no server is up, so almost nothing attaches.
  EXPECT_LT(metrics.server_changes, metrics.num_clients + 1);
}

TEST_F(SimulatorTest, BandwidthJitterPerturbsButDoesNotBreak) {
  SimulationConfig stable = *config_;
  stable.policy = MigrationPolicy::kProactive;
  SimulationConfig jittery = stable;
  jittery.bandwidth_jitter_sigma = 0.5;
  const auto a = run_simulation(stable, *world_);
  const auto b = run_simulation(jittery, *world_);
  // Same world and mobility: identical cold-start structure...
  EXPECT_EQ(a.server_changes, b.server_changes);
  EXPECT_EQ(a.hits, b.hits);
  // ...but different execution throughput (rates actually changed).
  EXPECT_NE(a.cold_window_queries, b.cold_window_queries);
  // Deterministic under the same seed.
  const auto b2 = run_simulation(jittery, *world_);
  EXPECT_EQ(b.cold_window_queries, b2.cold_window_queries);
}

TEST_F(SimulatorTest, ModelBasedPredictorKindMustMatchWorld) {
  // The shared world was built for kSvr; asking the run to use a different
  // *model-based* predictor must fail loudly instead of silently using the
  // wrong model. Model-free kinds (stationary/oracle) are always allowed.
  SimulationConfig config = *config_;
  config.policy = MigrationPolicy::kProactive;
  config.predictor = PredictorKind::kMarkov;
  EXPECT_THROW(run_simulation(config, *world_), std::logic_error);
}

TEST_F(SimulatorTest, RoutingFallbackBridgesColdStarts) {
  SimulationConfig plain = *config_;
  plain.policy = MigrationPolicy::kNone;  // every re-attach is a miss
  SimulationConfig routed = plain;
  routed.routing_fallback = true;
  const auto without = run_simulation(plain, *world_);
  const auto with = run_simulation(routed, *world_);
  EXPECT_EQ(without.routed_queries, 0);
  EXPECT_GT(with.routed_queries, 0);
  // Routing can only help: the client takes the faster of the two paths.
  EXPECT_GE(with.cold_window_queries, without.cold_window_queries);
}

TEST_F(SimulatorTest, RoutingNeverExceedsOptimal) {
  SimulationConfig routed = *config_;
  routed.policy = MigrationPolicy::kProactive;
  routed.routing_fallback = true;
  const auto with = run_simulation(routed, *world_);
  const auto optimal = run_policy(MigrationPolicy::kOptimal);
  EXPECT_LE(with.cold_window_queries, optimal.cold_window_queries);
}

TEST_F(SimulatorTest, TinyByteBudgetTruncatesInsteadOfEmptySends) {
  // A crowded-byte budget smaller than every layer cannot ship anything:
  // each affected order is counted as truncated instead of being issued as
  // an empty send (which used to inflate sim.migration.orders and, via the
  // empty store, refresh TTLs a real system would never have refreshed).
  SimulationConfig config = *config_;
  config.policy = MigrationPolicy::kProactive;
  for (ServerId s = 0; s < world_->servers.num_servers(); ++s)
    config.crowded_servers.push_back(s);
  config.crowded_byte_budget = 1;  // below the smallest MobileNet layer
  const auto metrics = run_simulation(config, *world_);
  EXPECT_GT(metrics.migrations_truncated, 0);
  EXPECT_EQ(metrics.total_migrated_bytes, 0);
  const auto baseline = run_policy(MigrationPolicy::kProactive);
  EXPECT_EQ(baseline.migrations_truncated, 0);
}

TEST_F(SimulatorTest, FutileOrdersAreNeverIssued) {
  // Regression: with a near-zero wireless link, every partition plan keeps
  // the whole model on the client, so no future plan ever *needs* a layer —
  // the source can contribute nothing and every would-be order is futile.
  // Such orders used to be issued anyway (counting into
  // sim.migration.orders, the timeseries, and TTL refreshes via the empty
  // store); now they are skipped before they exist.
  SimulationConfig config = *config_;
  config.policy = MigrationPolicy::kProactive;
  config.wireless.uplink_bytes_per_sec = mbps_to_bytes_per_sec(0.001);
  config.wireless.downlink_bytes_per_sec = mbps_to_bytes_per_sec(0.001);
  obs::SimTimeseries timeseries;
  const auto metrics = run_simulation(config, *world_, &timeseries);
  EXPECT_GT(metrics.server_changes, 0);  // clients still move and re-attach
  EXPECT_EQ(metrics.total_migrated_bytes, 0);
  long long orders = 0;
  for (const auto& row : timeseries.rows()) orders += row.migration_orders;
  EXPECT_EQ(orders, 0);

  // Sanity: the healthy-link world does issue (non-futile) orders, and they
  // reconcile with real migrated bytes.
  obs::SimTimeseries healthy_ts;
  SimulationConfig healthy = *config_;
  healthy.policy = MigrationPolicy::kProactive;
  const auto healthy_metrics = run_simulation(healthy, *world_, &healthy_ts);
  long long healthy_orders = 0;
  for (const auto& row : healthy_ts.rows())
    healthy_orders += row.migration_orders;
  EXPECT_GT(healthy_orders, 0);
  EXPECT_GT(healthy_metrics.total_migrated_bytes, 0);
}

TEST_F(SimulatorTest, InvalidCrowdedServerRejected) {
  SimulationConfig config = *config_;
  config.crowded_servers = {9999};
  config.crowded_byte_budget = 1;
  EXPECT_THROW(run_simulation(config, *world_), std::logic_error);
}

}  // namespace
}  // namespace perdnn
