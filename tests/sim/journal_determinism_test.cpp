// Tier-1 determinism gate for the event journal: the same seeded simulation
// must journal byte-identical event streams at --threads 1, 2 and 8, with
// the single-query fast path on or off, and across a checkpoint/resume
// split — and enabling the journal must not perturb the simulation itself.
// Also covers the causal-chain contract: every chain reconstructs a
// client's full attach -> plan -> upload -> serve/fallback path, asserted
// against one known scripted-fault scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "faults/fault_plan.hpp"
#include "mobility/trace_gen.hpp"
#include "obs/journal.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot.hpp"

namespace perdnn {
namespace {

using obs::Journal;
using obs::JournalEvent;
using obs::JournalEventKind;

struct FastPathGuard {
  explicit FastPathGuard(bool enable) : previous(fastpath::enabled()) {
    fastpath::set_enabled(enable);
  }
  ~FastPathGuard() { fastpath::set_enabled(previous); }
  bool previous;
};

class JournalDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CampusTraceConfig train_config;
    train_config.num_users = 8;
    train_config.duration = 1.0 * 3600.0;
    train_config.sample_interval = 20.0;
    train_config.seed = 100;
    CampusTraceConfig test_config = train_config;
    test_config.num_users = 5;
    test_config.seed = 200;

    config_ = new SimulationConfig;
    config_->model = ModelName::kMobileNet;
    config_->policy = MigrationPolicy::kProactive;
    config_->migration_radius_m = 100.0;
    config_->routing_fallback = true;
    config_->bandwidth_jitter_sigma = 0.3;
    config_->seed = 5;

    world_ = new SimulationWorld(
        build_world(*config_, generate_campus_traces(train_config),
                    generate_campus_traces(test_config)));
  }

  static void TearDownTestSuite() {
    delete world_;
    delete config_;
    world_ = nullptr;
    config_ = nullptr;
    par::set_num_threads(0);
  }

  /// The scripted scenario the chain-reconstruction assertions key on: a
  /// crash, a total wildcard backhaul outage, a telemetry dropout, and
  /// client 1 disconnecting at interval 4 for 2 intervals.
  static SimulationConfig faulted_config() {
    SimulationConfig config = *config_;
    config.fault_plan = FaultPlan({
        {.kind = FaultKind::kServerCrash,
         .at_interval = 2,
         .duration_intervals = 3,
         .server = 0},
        {.kind = FaultKind::kBackhaulDegrade,
         .at_interval = 1,
         .duration_intervals = 4,
         .server = 1,
         .peer = kAllServers,
         .severity = 1.0},
        {.kind = FaultKind::kTelemetryDropout,
         .at_interval = 0,
         .duration_intervals = 8,
         .server = 2},
        {.kind = FaultKind::kClientDisconnect,
         .at_interval = 4,
         .duration_intervals = 2,
         .client = 1},
    });
    config.migration_retry = {.max_attempts = 5,
                              .initial_backoff_intervals = 1,
                              .max_backoff_intervals = 8};
    return config;
  }

  static std::string journal_jsonl(const SimulationConfig& config,
                                   int threads) {
    par::set_num_threads(threads);
    Journal journal;
    SimulationRunOptions options;
    options.journal = &journal;
    run_simulation(config, *world_, nullptr, options);
    std::ostringstream out;
    journal.write_jsonl(out);
    return out.str();
  }

  static SimulationConfig* config_;
  static SimulationWorld* world_;
};

SimulationConfig* JournalDeterminismTest::config_ = nullptr;
SimulationWorld* JournalDeterminismTest::world_ = nullptr;

TEST_F(JournalDeterminismTest, ByteIdenticalAcrossThreadsAndFastpath) {
  const std::string reference = journal_jsonl(*config_, 1);
  ASSERT_FALSE(reference.empty());
  for (const int threads : {1, 2, 8}) {
    for (const bool fast : {true, false}) {
      FastPathGuard guard(fast);
      EXPECT_EQ(journal_jsonl(*config_, threads), reference)
          << "threads=" << threads << " fastpath=" << fast;
    }
  }
}

TEST_F(JournalDeterminismTest, FaultPlanJournalIsDeterministic) {
  const SimulationConfig config = faulted_config();
  const std::string reference = journal_jsonl(config, 1);
  ASSERT_FALSE(reference.empty());
  for (const int threads : {2, 8}) {
    EXPECT_EQ(journal_jsonl(config, threads), reference)
        << "threads=" << threads;
  }
  const std::string off = [&] {
    FastPathGuard guard(false);
    return journal_jsonl(config, 8);
  }();
  EXPECT_EQ(off, reference);
}

TEST_F(JournalDeterminismTest, ResumeSplitJournalEqualsUninterrupted) {
  const SimulationConfig config = faulted_config();
  const std::string reference = journal_jsonl(config, 2);

  // First leg: run to an interval boundary, capturing the snapshot (which
  // carries the journal prefix).
  par::set_num_threads(2);
  snapshot::SimSnapshot snap;
  {
    Journal journal;
    SimulationRunOptions options;
    options.journal = &journal;
    options.stop_after_interval = 4;
    options.capture_out = &snap;
    run_simulation(config, *world_, nullptr, options);
    ASSERT_TRUE(snap.has_journal);
    ASSERT_GT(snap.journal.events.size(), 0u);
  }

  // Second leg: resume into a fresh journal at every thread count and
  // fastpath setting; the final stream must match byte for byte.
  for (const int threads : {1, 2, 8}) {
    for (const bool fast : {true, false}) {
      FastPathGuard guard(fast);
      par::set_num_threads(threads);
      Journal journal;
      SimulationRunOptions options;
      options.journal = &journal;
      options.resume_from = &snap;
      run_simulation(config, *world_, nullptr, options);
      std::ostringstream out;
      journal.write_jsonl(out);
      EXPECT_EQ(out.str(), reference)
          << "threads=" << threads << " fastpath=" << fast;
      // The resume marker lands in the meta stream, not the journal.
      const std::vector<JournalEvent> meta = journal.meta_events();
      ASSERT_FALSE(meta.empty());
      EXPECT_EQ(meta.front().kind, JournalEventKind::kCheckpointResume);
    }
  }
}

TEST_F(JournalDeterminismTest, JournalingDoesNotPerturbTheSimulation) {
  par::set_num_threads(2);
  obs::SimTimeseries with_ts, without_ts;
  Journal journal;
  SimulationRunOptions options;
  options.journal = &journal;
  const SimulationMetrics with =
      run_simulation(*config_, *world_, &with_ts, options);
  const SimulationMetrics without =
      run_simulation(*config_, *world_, &without_ts, {});
  EXPECT_GT(journal.size(), 0u);
  EXPECT_EQ(with.cold_window_queries, without.cold_window_queries);
  EXPECT_EQ(with.hits, without.hits);
  EXPECT_EQ(with.misses, without.misses);
  EXPECT_EQ(with.server_changes, without.server_changes);
  EXPECT_EQ(with.total_migrated_bytes, without.total_migrated_bytes);
  std::ostringstream csv_with, csv_without;
  with_ts.write_csv(csv_with);
  without_ts.write_csv(csv_without);
  EXPECT_EQ(csv_with.str(), csv_without.str());
}

TEST_F(JournalDeterminismTest, EveryChainReconstructsAnAttachPath) {
  par::set_num_threads(2);
  Journal journal;
  SimulationRunOptions options;
  options.journal = &journal;
  run_simulation(faulted_config(), *world_, nullptr, options);

  std::map<std::uint64_t, std::vector<const JournalEvent*>> chains;
  const std::vector<JournalEvent> events = journal.events();
  for (const JournalEvent& e : events)
    if (e.chain != 0) chains[e.chain].push_back(&e);
  ASSERT_FALSE(chains.empty());

  for (const auto& [chain, seq] : chains) {
    // A chain opens with the attach that created it, stays on one client,
    // and never runs backwards in sim time.
    EXPECT_EQ(seq.front()->kind, JournalEventKind::kAttach)
        << "chain " << chain;
    const ClientId client = seq.front()->client;
    int prev_interval = seq.front()->interval;
    bool planned = false;
    for (const JournalEvent* e : seq) {
      if (e->client >= 0) EXPECT_EQ(e->client, client) << "chain " << chain;
      EXPECT_GE(e->interval, prev_interval) << "chain " << chain;
      prev_interval = e->interval;
      planned |= e->kind == JournalEventKind::kPlan ||
                 e->kind == JournalEventKind::kDegradedPlan;
    }
    EXPECT_TRUE(planned) << "chain " << chain << " never planned an upload";
  }
}

TEST_F(JournalDeterminismTest, ScriptedFaultScenarioReconstructs) {
  par::set_num_threads(2);
  Journal journal;
  SimulationRunOptions options;
  options.journal = &journal;
  run_simulation(faulted_config(), *world_, nullptr, options);
  const std::vector<JournalEvent> events = journal.events();

  // The scripted client disconnect is journalled: fault_applied at
  // interval 4 for client 1, and client 1's open chain records the
  // detach with the disconnect reason at the same interval.
  const auto applied = std::find_if(
      events.begin(), events.end(), [](const JournalEvent& e) {
        return e.kind == JournalEventKind::kFaultApplied &&
               e.detail == obs::kFaultClientDisconnect;
      });
  ASSERT_NE(applied, events.end());
  EXPECT_EQ(applied->interval, 4);
  EXPECT_EQ(applied->client, 1);

  const auto detach = std::find_if(
      events.begin(), events.end(), [](const JournalEvent& e) {
        return e.kind == JournalEventKind::kDetach && e.client == 1 &&
               e.detail == obs::kDetachDisconnect;
      });
  ASSERT_NE(detach, events.end());
  EXPECT_EQ(detach->interval, 4);
  EXPECT_NE(detach->chain, 0u);

  // That chain is a complete attach -> plan -> serve prefix ending in the
  // disconnect: reconstructing it tells the whole story of the dip.
  std::vector<const JournalEvent*> chain;
  for (const JournalEvent& e : events)
    if (e.chain == detach->chain) chain.push_back(&e);
  ASSERT_GE(chain.size(), 3u);
  EXPECT_EQ(chain.front()->kind, JournalEventKind::kAttach);
  EXPECT_TRUE(std::any_of(chain.begin(), chain.end(), [](const auto* e) {
    return e->kind == JournalEventKind::kPlan ||
           e->kind == JournalEventKind::kDegradedPlan;
  }));
  EXPECT_TRUE(std::any_of(chain.begin(), chain.end(), [](const auto* e) {
    return e->kind == JournalEventKind::kColdServe;
  }));

  // The server crash is journalled with its clear, 3 intervals later.
  const auto crash = std::find_if(
      events.begin(), events.end(), [](const JournalEvent& e) {
        return e.kind == JournalEventKind::kFaultApplied &&
               e.detail == obs::kFaultServerCrash;
      });
  ASSERT_NE(crash, events.end());
  EXPECT_EQ(crash->interval, 2);
  EXPECT_EQ(crash->server, 0);
  EXPECT_TRUE(std::any_of(events.begin(), events.end(),
                          [](const JournalEvent& e) {
                            return e.kind == JournalEventKind::kFaultCleared &&
                                   e.detail == obs::kFaultServerCrash &&
                                   e.interval == 5;
                          }));
}

}  // namespace
}  // namespace perdnn
