// Tier-1 determinism gate for the parallel runtime: the same seeded
// simulation must produce byte-identical metrics and per-interval
// timeseries at --threads 1, 2 and 8 — and with the single-query fast path
// on or off. Both the thread count and the fast path are pure performance
// knobs (docs: "Parallel runtime" and "Single-query fast path" in
// DESIGN.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "faults/fault_plan.hpp"
#include "mobility/trace_gen.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace perdnn {
namespace {

/// Every SimulationMetrics field rendered with full precision, so any
/// drifting bit — including in the floating-point aggregates — flips the
/// comparison.
std::string metrics_fingerprint(const SimulationMetrics& m) {
  std::string out;
  char buf[128];
  const auto add = [&](const char* name, double v) {
    std::snprintf(buf, sizeof buf, "%s=%.17g\n", name, v);
    out += buf;
  };
  add("cold_window_queries", static_cast<double>(m.cold_window_queries));
  add("server_changes", m.server_changes);
  add("hits", m.hits);
  add("partials", m.partials);
  add("misses", m.misses);
  add("server_failures", m.server_failures);
  add("failure_evictions", m.failure_evictions);
  add("routed_queries", static_cast<double>(m.routed_queries));
  add("client_disconnect_events", m.client_disconnect_events);
  add("local_fallback_queries",
      static_cast<double>(m.local_fallback_queries));
  add("local_latency_sum_s", m.local_latency_sum_s);
  add("attached_client_intervals",
      static_cast<double>(m.attached_client_intervals));
  add("unreachable_client_intervals",
      static_cast<double>(m.unreachable_client_intervals));
  add("offline_client_intervals",
      static_cast<double>(m.offline_client_intervals));
  add("degraded_attaches", m.degraded_attaches);
  add("migrations_deferred", m.migrations_deferred);
  add("migration_retries", m.migration_retries);
  add("migrations_abandoned", m.migrations_abandoned);
  add("migrations_truncated", m.migrations_truncated);
  add("deferred_migration_bytes",
      static_cast<double>(m.deferred_migration_bytes));
  add("abandoned_migration_bytes",
      static_cast<double>(m.abandoned_migration_bytes));
  add("peak_deferred_backlog_bytes",
      static_cast<double>(m.peak_deferred_backlog_bytes));
  add("peak_uplink_mbps", m.peak_uplink_mbps);
  add("peak_downlink_mbps", m.peak_downlink_mbps);
  add("fraction_servers_within_100mbps", m.fraction_servers_within_100mbps);
  add("fraction_servers_within_100mbps_at_peak",
      m.fraction_servers_within_100mbps_at_peak);
  add("total_migrated_bytes", static_cast<double>(m.total_migrated_bytes));
  add("num_servers", m.num_servers);
  add("num_clients", m.num_clients);
  add("num_intervals", m.num_intervals);
  for (std::size_t s = 0; s < m.server_peak_uplink_mbps.size(); ++s) {
    std::snprintf(buf, sizeof buf, "server_peak[%zu]=%.17g\n", s,
                  m.server_peak_uplink_mbps[s]);
    out += buf;
  }
  return out;
}

/// Restores the fast-path toggle even when an EXPECT fails mid-test.
struct FastPathGuard {
  explicit FastPathGuard(bool enable) : previous(fastpath::enabled()) {
    fastpath::set_enabled(enable);
  }
  ~FastPathGuard() { fastpath::set_enabled(previous); }
  bool previous;
};

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static CampusTraceConfig train_trace_config() {
    CampusTraceConfig train_config;
    train_config.num_users = 8;
    train_config.duration = 1.0 * 3600.0;
    train_config.sample_interval = 20.0;
    train_config.seed = 100;
    return train_config;
  }

  static CampusTraceConfig test_trace_config() {
    CampusTraceConfig test_config = train_trace_config();
    test_config.num_users = 5;
    test_config.seed = 200;
    return test_config;
  }

  static void SetUpTestSuite() {
    const CampusTraceConfig train_config = train_trace_config();
    const CampusTraceConfig test_config = test_trace_config();

    config_ = new SimulationConfig;
    config_->model = ModelName::kMobileNet;
    config_->policy = MigrationPolicy::kProactive;
    config_->migration_radius_m = 100.0;
    config_->routing_fallback = true;
    config_->bandwidth_jitter_sigma = 0.3;
    config_->seed = 5;

    world_ = new SimulationWorld(
        build_world(*config_, generate_campus_traces(train_config),
                    generate_campus_traces(test_config)));
  }

  static void TearDownTestSuite() {
    delete world_;
    delete config_;
    world_ = nullptr;
    config_ = nullptr;
    par::set_num_threads(0);
  }

  struct RunResult {
    std::string metrics;
    std::string timeseries_csv;
  };

  static RunResult run_at(int threads) {
    return run_config_at(*config_, threads);
  }

  static RunResult run_config_at(const SimulationConfig& config, int threads) {
    par::set_num_threads(threads);
    obs::SimTimeseries timeseries;
    const SimulationMetrics metrics =
        run_simulation(config, *world_, &timeseries);
    std::ostringstream csv;
    timeseries.write_csv(csv);
    return {metrics_fingerprint(metrics), csv.str()};
  }

  /// A plan that exercises every fault kind at once: a crash, a total
  /// wildcard backhaul outage, a partial pair degradation, a telemetry
  /// dropout and a client disconnect.
  static SimulationConfig faulted_config() {
    SimulationConfig config = *config_;
    config.fault_plan = FaultPlan({
        {.kind = FaultKind::kServerCrash,
         .at_interval = 2,
         .duration_intervals = 3,
         .server = 0},
        {.kind = FaultKind::kBackhaulDegrade,
         .at_interval = 1,
         .duration_intervals = 4,
         .server = 1,
         .peer = kAllServers,
         .severity = 1.0},
        {.kind = FaultKind::kBackhaulDegrade,
         .at_interval = 3,
         .duration_intervals = 5,
         .server = 0,
         .peer = 2,
         .severity = 0.7},
        {.kind = FaultKind::kTelemetryDropout,
         .at_interval = 0,
         .duration_intervals = 8,
         .server = 2},
        {.kind = FaultKind::kClientDisconnect,
         .at_interval = 4,
         .duration_intervals = 2,
         .client = 1},
    });
    config.migration_retry = {.max_attempts = 5,
                              .initial_backoff_intervals = 1,
                              .max_backoff_intervals = 8};
    return config;
  }

  static SimulationConfig* config_;
  static SimulationWorld* world_;
};

SimulationConfig* ParallelDeterminismTest::config_ = nullptr;
SimulationWorld* ParallelDeterminismTest::world_ = nullptr;

TEST_F(ParallelDeterminismTest, MetricsAndTimeseriesIdenticalAt1_2_8Threads) {
  const RunResult serial = run_at(1);
  const RunResult two = run_at(2);
  const RunResult eight = run_at(8);

  ASSERT_FALSE(serial.metrics.empty());
  ASSERT_FALSE(serial.timeseries_csv.empty());
  EXPECT_EQ(serial.metrics, two.metrics);
  EXPECT_EQ(serial.metrics, eight.metrics);
  EXPECT_EQ(serial.timeseries_csv, two.timeseries_csv);
  EXPECT_EQ(serial.timeseries_csv, eight.timeseries_csv);
}

TEST_F(ParallelDeterminismTest, RepeatedParallelRunsAreStable) {
  const RunResult a = run_at(8);
  const RunResult b = run_at(8);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.timeseries_csv, b.timeseries_csv);
}

TEST_F(ParallelDeterminismTest, FastPathOffMatchesOnAt1And8Threads) {
  RunResult on1, on8, off1, off8;
  {
    FastPathGuard guard(true);
    on1 = run_at(1);
    on8 = run_at(8);
  }
  {
    FastPathGuard guard(false);
    off1 = run_at(1);
    off8 = run_at(8);
  }
  ASSERT_FALSE(on1.metrics.empty());
  EXPECT_EQ(on1.metrics, off1.metrics);
  EXPECT_EQ(on1.metrics, off8.metrics);
  EXPECT_EQ(on1.metrics, on8.metrics);
  EXPECT_EQ(on1.timeseries_csv, off1.timeseries_csv);
  EXPECT_EQ(on1.timeseries_csv, off8.timeseries_csv);
  EXPECT_EQ(on1.timeseries_csv, on8.timeseries_csv);
}

TEST_F(ParallelDeterminismTest, FaultPlanRunsAreDeterministicAcrossThreads) {
  // The robustness machinery (scripted faults, retry queue, degraded-mode
  // estimation, local fallback) sits under the same determinism gate as the
  // clean path: byte-identical at 1/2/8 threads and with the fast path off.
  const SimulationConfig config = faulted_config();
  const RunResult serial = run_config_at(config, 1);
  const RunResult two = run_config_at(config, 2);
  const RunResult eight = run_config_at(config, 8);
  ASSERT_FALSE(serial.metrics.empty());
  EXPECT_EQ(serial.metrics, two.metrics);
  EXPECT_EQ(serial.metrics, eight.metrics);
  EXPECT_EQ(serial.timeseries_csv, two.timeseries_csv);
  EXPECT_EQ(serial.timeseries_csv, eight.timeseries_csv);

  const RunResult off = [&] {
    FastPathGuard guard(false);
    return run_config_at(config, 8);
  }();
  EXPECT_EQ(serial.metrics, off.metrics);
  EXPECT_EQ(serial.timeseries_csv, off.timeseries_csv);

  // The plan actually bit: this is not vacuous determinism.
  EXPECT_NE(serial.metrics.find("server_failures=1"), std::string::npos);
  EXPECT_NE(serial.metrics.find("client_disconnect_events=1"),
            std::string::npos);
}

TEST_F(ParallelDeterminismTest, WorldBuildIdenticalWithFastPathOff) {
  // build_world trains the estimator and derives the canonical upload
  // schedule through plan_upload_order — the two pieces the fast path
  // replaces (flattened trees, incremental scoring). The resulting world
  // must be indistinguishable.
  SimulationWorld off_world = [&] {
    FastPathGuard guard(false);
    return build_world(*config_, generate_campus_traces(train_trace_config()),
                       generate_campus_traces(test_trace_config()));
  }();
  ASSERT_FALSE(world_->canonical_schedule.order.empty());
  EXPECT_EQ(world_->canonical_schedule.order,
            off_world.canonical_schedule.order);
  EXPECT_EQ(world_->canonical_schedule.cumulative_bytes,
            off_world.canonical_schedule.cumulative_bytes);
  EXPECT_EQ(world_->client_profile.client_time,
            off_world.client_profile.client_time);
}

}  // namespace
}  // namespace perdnn
