// Tier-1 determinism gate for the sharded city-scale engine: the same
// seeded ShardWorld must produce byte-identical metrics, streamed
// timeseries CSV and streamed journal JSONL across
//
//   threads x shards x fastpath x checkpoint/resume
//
// per the contract in sim/shard_sim.hpp. The resume leg also emulates a
// kill -9 mid-write (garbage appended past the checkpoint offset) — the
// stream writers must truncate back to the boundary and still converge on
// the uninterrupted bytes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "sim/shard_sim.hpp"
#include "sim/shard_world.hpp"
#include "snapshot/snapshot.hpp"

namespace perdnn {
namespace {

std::string metrics_fingerprint(const SimulationMetrics& m) {
  std::string out;
  char buf[128];
  const auto add = [&](const char* name, double v) {
    std::snprintf(buf, sizeof buf, "%s=%.17g\n", name, v);
    out += buf;
  };
  add("cold_window_queries", static_cast<double>(m.cold_window_queries));
  add("server_changes", m.server_changes);
  add("hits", m.hits);
  add("partials", m.partials);
  add("misses", m.misses);
  add("client_disconnect_events", m.client_disconnect_events);
  add("attached_client_intervals",
      static_cast<double>(m.attached_client_intervals));
  add("offline_client_intervals",
      static_cast<double>(m.offline_client_intervals));
  add("peak_uplink_mbps", m.peak_uplink_mbps);
  add("peak_downlink_mbps", m.peak_downlink_mbps);
  add("fraction_servers_within_100mbps", m.fraction_servers_within_100mbps);
  add("fraction_servers_within_100mbps_at_peak",
      m.fraction_servers_within_100mbps_at_peak);
  add("total_migrated_bytes", static_cast<double>(m.total_migrated_bytes));
  add("num_servers", m.num_servers);
  add("num_clients", m.num_clients);
  add("num_intervals", m.num_intervals);
  for (std::size_t s = 0; s < m.server_peak_uplink_mbps.size(); ++s) {
    std::snprintf(buf, sizeof buf, "server_peak[%zu]=%.17g\n", s,
                  m.server_peak_uplink_mbps[s]);
    out += buf;
  }
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct FastPathGuard {
  explicit FastPathGuard(bool enable) : previous(fastpath::enabled()) {
    fastpath::set_enabled(enable);
  }
  ~FastPathGuard() { fastpath::set_enabled(previous); }
  bool previous;
};

struct SimdGuard {
  explicit SimdGuard(bool enable) : previous(simd::enabled()) {
    simd::set_enabled(enable);
  }
  ~SimdGuard() { simd::set_enabled(previous); }
  bool previous;
};

struct RunResult {
  std::string metrics;
  std::string timeseries;
  std::string journal;
};

class ShardDeterminismTest : public ::testing::Test {
 protected:
  static ShardWorldConfig small_config() {
    ShardWorldConfig config;
    config.model = ModelName::kMobileNet;
    config.tiles_x = 4;
    config.tiles_y = 5;
    config.cell_radius_m = 50.0;
    config.num_clients = 60;
    config.num_intervals = 10;
    config.max_load_level = 6;
    config.offline_probability = 0.05;
    config.offline_intervals = 2;
    config.seed = 7;
    return config;
  }

  static void SetUpTestSuite() {
    world_ = new ShardWorld(build_shard_world(small_config()));
  }

  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    par::set_num_threads(0);
  }

  static std::string ts_path() { return ::testing::TempDir() + "shard_ts.csv"; }
  static std::string jr_path() {
    return ::testing::TempDir() + "shard_jr.jsonl";
  }

  static RunResult run_at(const ShardWorld& world, int threads, int shards) {
    par::set_num_threads(threads);
    ShardRunOptions options;
    options.num_shards = shards;
    options.timeseries_path = ts_path();
    options.journal_path = jr_path();
    const SimulationMetrics metrics = run_sharded_simulation(world, options);
    par::set_num_threads(0);
    return {metrics_fingerprint(metrics), slurp(ts_path()), slurp(jr_path())};
  }

  static ShardWorld* world_;
};

ShardWorld* ShardDeterminismTest::world_ = nullptr;

TEST_F(ShardDeterminismTest, MatrixByteIdenticalAcrossThreadsAndShards) {
  const RunResult baseline = run_at(*world_, 1, 1);
  ASSERT_FALSE(baseline.metrics.empty());
  ASSERT_FALSE(baseline.timeseries.empty());
  ASSERT_FALSE(baseline.journal.empty());

  for (const int shards : {1, 4, 16}) {
    for (const int threads : {1, 2, 8}) {
      const RunResult r = run_at(*world_, threads, shards);
      EXPECT_EQ(baseline.metrics, r.metrics)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(baseline.timeseries, r.timeseries)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(baseline.journal, r.journal)
          << "threads=" << threads << " shards=" << shards;
    }
  }

  // Not vacuous: the run exercised attaches, pushes, cold windows and
  // offline churn.
  EXPECT_EQ(baseline.metrics.find("server_changes=0\n"), std::string::npos);
  EXPECT_EQ(baseline.metrics.find("total_migrated_bytes=0\n"),
            std::string::npos);
  EXPECT_EQ(baseline.metrics.find("cold_window_queries=0\n"),
            std::string::npos);
  EXPECT_EQ(baseline.metrics.find("offline_client_intervals=0\n"),
            std::string::npos);
}

TEST_F(ShardDeterminismTest, FastPathOffWorldProducesIdenticalRun) {
  const RunResult on = run_at(*world_, 2, 4);
  const ShardWorld off_world = [] {
    FastPathGuard guard(false);
    return build_shard_world(small_config());
  }();
  ASSERT_EQ(world_->canonical_order, off_world.canonical_order);
  ASSERT_EQ(world_->prefix_bytes, off_world.prefix_bytes);
  const RunResult off = [&] {
    FastPathGuard guard(false);
    return run_at(off_world, 8, 16);
  }();
  EXPECT_EQ(on.metrics, off.metrics);
  EXPECT_EQ(on.timeseries, off.timeseries);
  EXPECT_EQ(on.journal, off.journal);
}

TEST_F(ShardDeterminismTest, SimdOffWorldProducesIdenticalRun) {
  // The AVX2 batch kernels sit under the estimator fill of the planning
  // tables; per the simd.hpp contract they are bit-identical to the scalar
  // fallback, so disabling them — world build and run both — must change
  // nothing. On machines without AVX2 both legs run scalar and the test is
  // trivially (but correctly) green.
  const RunResult on = [&] {
    SimdGuard guard(true);
    return run_at(*world_, 2, 4);
  }();
  const ShardWorld off_world = [] {
    SimdGuard guard(false);
    return build_shard_world(small_config());
  }();
  ASSERT_EQ(world_->canonical_order, off_world.canonical_order);
  ASSERT_EQ(world_->prefix_bytes, off_world.prefix_bytes);
  const RunResult off = [&] {
    SimdGuard guard(false);
    return run_at(off_world, 8, 16);
  }();
  EXPECT_EQ(on.metrics, off.metrics);
  EXPECT_EQ(on.timeseries, off.timeseries);
  EXPECT_EQ(on.journal, off.journal);
}

TEST_F(ShardDeterminismTest, ResumeAfterKillConvergesByteIdentical) {
  const RunResult full = run_at(*world_, 2, 4);

  // First half: stop after interval 4 with a checkpoint, at different
  // thread/shard counts than the uninterrupted run.
  par::set_num_threads(1);
  snapshot::SimSnapshot snap;
  {
    ShardRunOptions options;
    options.num_shards = 16;
    options.timeseries_path = ts_path();
    options.journal_path = jr_path();
    options.stop_after_interval = 4;
    options.capture_out = &snap;
    run_sharded_simulation(*world_, options);
  }
  ASSERT_TRUE(snap.has_shard);
  ASSERT_EQ(snap.next_interval, 5);

  // Emulate kill -9 mid-write: bytes past the checkpoint offset, including
  // a partial line, that the resumed run must discard.
  {
    std::ofstream ts(ts_path(), std::ios::binary | std::ios::app);
    ts << "9,9,9,garbage-past-the-checkpo";
    std::ofstream jr(jr_path(), std::ios::binary | std::ios::app);
    jr << "{\"interval\":999,\"kind\":\"atta";
  }

  // Round-trip the snapshot through the v3 codec before resuming, so the
  // resume leg also covers the shard-section encode/decode.
  const snapshot::SimSnapshot decoded = snapshot::decode(snapshot::encode(snap));
  ASSERT_TRUE(decoded.has_shard);

  ShardRunOptions options;
  options.num_shards = 4;
  options.timeseries_path = ts_path();
  options.journal_path = jr_path();
  options.resume_from = &decoded;
  const SimulationMetrics resumed = run_sharded_simulation(*world_, options);
  par::set_num_threads(0);

  EXPECT_EQ(full.metrics, metrics_fingerprint(resumed));
  EXPECT_EQ(full.timeseries, slurp(ts_path()));
  EXPECT_EQ(full.journal, slurp(jr_path()));
}

TEST_F(ShardDeterminismTest, ResumeRejectsForeignConfig) {
  par::set_num_threads(1);
  snapshot::SimSnapshot snap;
  ShardRunOptions options;
  options.stop_after_interval = 1;
  options.capture_out = &snap;
  run_sharded_simulation(*world_, options);

  ShardWorldConfig other = small_config();
  other.seed = 8;
  const ShardWorld other_world = build_shard_world(other);
  ShardRunOptions resume;
  resume.resume_from = &snap;
  EXPECT_THROW(run_sharded_simulation(other_world, resume),
               snapshot::SnapshotError);
  par::set_num_threads(0);
}

TEST_F(ShardDeterminismTest, EmptyTileShardsStillEmitDenseRows) {
  // 20 tiles, 3 clients: most tiles (and with 16 shards, most shards) own
  // no client at all. The merged output must still be the dense
  // intervals x servers row matrix, byte-identical to the single-shard run.
  ShardWorldConfig config = small_config();
  config.num_clients = 3;
  config.num_intervals = 5;
  const ShardWorld sparse = build_shard_world(config);

  const RunResult one = run_at(sparse, 1, 1);
  const RunResult sixteen = run_at(sparse, 8, 16);
  EXPECT_EQ(one.metrics, sixteen.metrics);
  EXPECT_EQ(one.timeseries, sixteen.timeseries);
  EXPECT_EQ(one.journal, sixteen.journal);

  long long lines = 0;
  for (const char c : one.timeseries)
    if (c == '\n') ++lines;
  // `# schema=`, `# model=`, header, then one row per (interval, server).
  EXPECT_EQ(lines, 3 + static_cast<long long>(config.num_intervals) *
                           config.num_servers());
}

}  // namespace
}  // namespace perdnn
