// Determinism gate for the sharded engine WITH the fault machinery engaged:
// a scripted plan covering all four fault classes, plus a flash crowd and
// per-server admission control, must produce byte-identical metrics,
// timeseries CSV and journal JSONL across
//
//   threads x shards x simd x fastpath x checkpoint/resume
//
// — the same contract as the fault-free ShardDeterminism suite, now with
// crashes wiping caches, backhaul outages parking migrations in the retry
// queue, telemetry dropouts degrading plans, and shedding rerouting attaches
// to the local fallback. The resume test checkpoints mid-backoff and proves
// the deferred-migration queue survives a kill -9 byte-identically.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "faults/fault_plan.hpp"
#include "sim/shard_sim.hpp"
#include "sim/shard_world.hpp"
#include "snapshot/snapshot.hpp"

namespace perdnn {
namespace {

std::string metrics_fingerprint(const SimulationMetrics& m) {
  std::string out;
  char buf[128];
  const auto add = [&](const char* name, double v) {
    std::snprintf(buf, sizeof buf, "%s=%.17g\n", name, v);
    out += buf;
  };
  add("cold_window_queries", static_cast<double>(m.cold_window_queries));
  add("server_changes", m.server_changes);
  add("hits", m.hits);
  add("partials", m.partials);
  add("misses", m.misses);
  add("server_failures", m.server_failures);
  add("failure_evictions", m.failure_evictions);
  add("client_disconnect_events", m.client_disconnect_events);
  add("local_fallback_queries",
      static_cast<double>(m.local_fallback_queries));
  add("local_latency_sum_s", m.local_latency_sum_s);
  add("attached_client_intervals",
      static_cast<double>(m.attached_client_intervals));
  add("unreachable_client_intervals",
      static_cast<double>(m.unreachable_client_intervals));
  add("offline_client_intervals",
      static_cast<double>(m.offline_client_intervals));
  add("degraded_attaches", m.degraded_attaches);
  add("attaches_shed", m.attaches_shed);
  add("migrations_deferred", m.migrations_deferred);
  add("migration_retries", m.migration_retries);
  add("migrations_abandoned", m.migrations_abandoned);
  add("migrations_truncated", m.migrations_truncated);
  add("deferred_migration_bytes",
      static_cast<double>(m.deferred_migration_bytes));
  add("abandoned_migration_bytes",
      static_cast<double>(m.abandoned_migration_bytes));
  add("peak_deferred_backlog_bytes",
      static_cast<double>(m.peak_deferred_backlog_bytes));
  add("total_migrated_bytes", static_cast<double>(m.total_migrated_bytes));
  add("availability", m.availability());
  add("offload_ratio", m.offload_ratio());
  for (std::size_t s = 0; s < m.server_peak_uplink_mbps.size(); ++s) {
    std::snprintf(buf, sizeof buf, "server_peak[%zu]=%.17g\n", s,
                  m.server_peak_uplink_mbps[s]);
    out += buf;
  }
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct FastPathGuard {
  explicit FastPathGuard(bool enable) : previous(fastpath::enabled()) {
    fastpath::set_enabled(enable);
  }
  ~FastPathGuard() { fastpath::set_enabled(previous); }
  bool previous;
};

struct SimdGuard {
  explicit SimdGuard(bool enable) : previous(simd::enabled()) {
    simd::set_enabled(enable);
  }
  ~SimdGuard() { simd::set_enabled(previous); }
  bool previous;
};

struct RunResult {
  std::string metrics;
  std::string timeseries;
  std::string journal;
};

class ShardFaultDeterminismTest : public ::testing::Test {
 protected:
  // The fault-free base world of the ShardDeterminism suite, with every
  // robustness knob turned on at once: a scripted plan touching all four
  // fault classes, a flash crowd concentrating clients on two hot tiles,
  // per-server admission control tight enough to shed some of them, and a
  // small retry queue so the outage window exercises the backlog cap.
  static ShardWorldConfig faulted_config() {
    ShardWorldConfig config;
    config.model = ModelName::kMobileNet;
    config.tiles_x = 4;
    config.tiles_y = 5;
    config.cell_radius_m = 50.0;
    config.num_clients = 60;
    config.num_intervals = 10;
    config.max_load_level = 6;
    config.offline_probability = 0.05;
    config.offline_intervals = 2;
    config.seed = 7;

    config.migration_retry.max_attempts = 5;
    config.migration_retry.initial_backoff_intervals = 2;
    config.migration_retry.max_backoff_intervals = 8;
    config.retry_queue_cap = 8;
    config.admission_max_attached = 7;
    config.flash_crowd_tiles = 2;
    config.flash_crowd_multiplier = 8.0;

    std::vector<FaultEvent> events;
    // Crashes: two waves, so recovery re-attaches are also simulated.
    for (const ServerId s : {ServerId{2}, ServerId{7}})
      events.push_back({.kind = FaultKind::kServerCrash,
                        .at_interval = 3,
                        .duration_intervals = 2,
                        .server = s});
    events.push_back({.kind = FaultKind::kServerCrash,
                      .at_interval = 6,
                      .duration_intervals = 2,
                      .server = 11});
    // Backhaul: a global full outage window [4,6) parks every push of those
    // intervals in the retry queue, plus a partial-capacity window early on.
    for (int s = 0; s < 20; ++s)
      events.push_back({.kind = FaultKind::kBackhaulDegrade,
                        .at_interval = 4,
                        .duration_intervals = 2,
                        .server = s,
                        .peer = kAllServers,
                        .severity = 1.0});
    events.push_back({.kind = FaultKind::kBackhaulDegrade,
                      .at_interval = 1,
                      .duration_intervals = 2,
                      .server = 1,
                      .peer = kAllServers,
                      .severity = 0.6});
    // Telemetry dropouts on half the grid for the whole run: any attach
    // landing there plans in degraded mode.
    for (int s = 0; s < 10; ++s)
      events.push_back({.kind = FaultKind::kTelemetryDropout,
                        .at_interval = 0,
                        .duration_intervals = 10,
                        .server = s});
    // Scripted client churn on top of the probabilistic offline knob.
    for (const ClientId c : {ClientId{5}, ClientId{23}, ClientId{42}})
      events.push_back({.kind = FaultKind::kClientDisconnect,
                        .at_interval = 2,
                        .duration_intervals = 3,
                        .client = c});
    config.fault_plan = FaultPlan(std::move(events));
    return config;
  }

  static void SetUpTestSuite() {
    world_ = new ShardWorld(build_shard_world(faulted_config()));
  }

  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    par::set_num_threads(0);
  }

  static std::string ts_path() {
    return ::testing::TempDir() + "shard_fault_ts.csv";
  }
  static std::string jr_path() {
    return ::testing::TempDir() + "shard_fault_jr.jsonl";
  }

  static RunResult run_at(const ShardWorld& world, int threads, int shards) {
    par::set_num_threads(threads);
    ShardRunOptions options;
    options.num_shards = shards;
    options.timeseries_path = ts_path();
    options.journal_path = jr_path();
    const SimulationMetrics metrics = run_sharded_simulation(world, options);
    par::set_num_threads(0);
    return {metrics_fingerprint(metrics), slurp(ts_path()), slurp(jr_path())};
  }

  static ShardWorld* world_;
};

ShardWorld* ShardFaultDeterminismTest::world_ = nullptr;

TEST_F(ShardFaultDeterminismTest, MatrixByteIdenticalAcrossThreadsAndShards) {
  const RunResult baseline = run_at(*world_, 1, 1);
  ASSERT_FALSE(baseline.metrics.empty());

  for (const int shards : {1, 4, 16}) {
    for (const int threads : {1, 2, 8}) {
      const RunResult r = run_at(*world_, threads, shards);
      EXPECT_EQ(baseline.metrics, r.metrics)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(baseline.timeseries, r.timeseries)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(baseline.journal, r.journal)
          << "threads=" << threads << " shards=" << shards;
    }
  }

  // Non-vacuity: every fault class and the overload machinery actually
  // fired. A knob that silently stopped firing would turn the whole matrix
  // into a fault-free rerun.
  EXPECT_EQ(baseline.metrics.find("server_failures=0\n"), std::string::npos);
  EXPECT_EQ(baseline.metrics.find("failure_evictions=0\n"),
            std::string::npos);
  EXPECT_EQ(baseline.metrics.find("client_disconnect_events=0\n"),
            std::string::npos);
  EXPECT_EQ(baseline.metrics.find("local_fallback_queries=0\n"),
            std::string::npos);
  EXPECT_EQ(baseline.metrics.find("unreachable_client_intervals=0\n"),
            std::string::npos);
  EXPECT_EQ(baseline.metrics.find("degraded_attaches=0\n"),
            std::string::npos);
  EXPECT_EQ(baseline.metrics.find("attaches_shed=0\n"), std::string::npos);
  EXPECT_EQ(baseline.metrics.find("migrations_deferred=0\n"),
            std::string::npos);
  EXPECT_EQ(baseline.metrics.find("migration_retries=0\n"),
            std::string::npos);
  EXPECT_EQ(baseline.metrics.find("peak_deferred_backlog_bytes=0\n"),
            std::string::npos);
  // The fault columns reached the streamed outputs too.
  EXPECT_NE(baseline.journal.find("\"local_fallback\""), std::string::npos);
  EXPECT_NE(baseline.journal.find("\"attach_shed\""), std::string::npos);
  EXPECT_NE(baseline.journal.find("\"migration_deferred\""),
            std::string::npos);
  EXPECT_NE(baseline.journal.find("\"migration_retried\""),
            std::string::npos);
  EXPECT_NE(baseline.journal.find("\"fault_applied\""), std::string::npos);
}

TEST_F(ShardFaultDeterminismTest, FastPathOffWorldProducesIdenticalRun) {
  const RunResult on = run_at(*world_, 2, 4);
  const ShardWorld off_world = [] {
    FastPathGuard guard(false);
    return build_shard_world(faulted_config());
  }();
  const RunResult off = [&] {
    FastPathGuard guard(false);
    return run_at(off_world, 8, 16);
  }();
  EXPECT_EQ(on.metrics, off.metrics);
  EXPECT_EQ(on.timeseries, off.timeseries);
  EXPECT_EQ(on.journal, off.journal);
}

TEST_F(ShardFaultDeterminismTest, SimdOffWorldProducesIdenticalRun) {
  const RunResult on = [&] {
    SimdGuard guard(true);
    return run_at(*world_, 2, 4);
  }();
  const ShardWorld off_world = [] {
    SimdGuard guard(false);
    return build_shard_world(faulted_config());
  }();
  const RunResult off = [&] {
    SimdGuard guard(false);
    return run_at(off_world, 8, 16);
  }();
  EXPECT_EQ(on.metrics, off.metrics);
  EXPECT_EQ(on.timeseries, off.timeseries);
  EXPECT_EQ(on.journal, off.journal);
}

TEST_F(ShardFaultDeterminismTest, ResumeMidBackoffRestoresRetryQueue) {
  const RunResult full = run_at(*world_, 2, 4);

  // Checkpoint at the end of interval 4 — inside the global backhaul outage
  // [4,6), so pushes of interval 4 are parked with their first retry still
  // pending (initial backoff 2 intervals). The snapshot must carry them.
  par::set_num_threads(1);
  snapshot::SimSnapshot snap;
  {
    ShardRunOptions options;
    options.num_shards = 16;
    options.timeseries_path = ts_path();
    options.journal_path = jr_path();
    options.stop_after_interval = 4;
    options.capture_out = &snap;
    run_sharded_simulation(*world_, options);
  }
  ASSERT_TRUE(snap.has_shard);
  ASSERT_EQ(snap.next_interval, 5);
  ASSERT_FALSE(snap.shard.retry_client.empty())
      << "checkpoint during the outage window carries no parked migrations — "
         "the mid-backoff leg is vacuous";

  // Emulate kill -9 mid-write: garbage past the checkpoint offset that the
  // resumed run must truncate away.
  {
    std::ofstream ts(ts_path(), std::ios::binary | std::ios::app);
    ts << "9,9,9,garbage-past-the-checkpo";
    std::ofstream jr(jr_path(), std::ios::binary | std::ios::app);
    jr << "{\"interval\":999,\"kind\":\"atta";
  }

  // Round-trip through the v4 codec so the retry arrays' encode/decode is
  // on the tested path too.
  const snapshot::SimSnapshot decoded =
      snapshot::decode(snapshot::encode(snap));
  ASSERT_TRUE(decoded.has_shard);
  ASSERT_EQ(decoded.shard.retry_client.size(), snap.shard.retry_client.size());

  ShardRunOptions options;
  options.num_shards = 4;
  options.timeseries_path = ts_path();
  options.journal_path = jr_path();
  options.resume_from = &decoded;
  const SimulationMetrics resumed = run_sharded_simulation(*world_, options);
  par::set_num_threads(0);

  EXPECT_EQ(full.metrics, metrics_fingerprint(resumed));
  EXPECT_EQ(full.timeseries, slurp(ts_path()));
  EXPECT_EQ(full.journal, slurp(jr_path()));
}

}  // namespace
}  // namespace perdnn
