#include "device/profiler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

TEST(Profiler, RecordCountMatchesSweep) {
  const GpuContentionModel gpu(titan_xp_profile());
  ConcurrencyProfiler profiler(&gpu, Rng(1));
  const DnnModel model = build_toy_model(2);
  const DnnModel* models[] = {&model};
  ProfilerConfig config;
  config.max_clients = 3;
  config.samples_per_level = 2;
  config.include_pointwise = true;
  const auto records = profiler.profile_models(models, config);
  // Every non-input layer, 3 levels x 2 samples each.
  EXPECT_EQ(records.size(),
            static_cast<std::size_t>((model.num_layers() - 1) * 3 * 2));
}

TEST(Profiler, ComputeOnlyFilter) {
  const GpuContentionModel gpu(titan_xp_profile());
  ConcurrencyProfiler profiler(&gpu, Rng(1));
  const DnnModel model = build_toy_model(2);
  const DnnModel* models[] = {&model};
  ProfilerConfig config;
  config.max_clients = 2;
  config.samples_per_level = 1;
  config.include_pointwise = false;
  const auto records = profiler.profile_models(models, config);
  for (const auto& rec : records) EXPECT_TRUE(rec.layer.is_compute());
  int compute_layers = 0;
  for (const auto& layer : model.layers())
    if (layer.is_compute()) ++compute_layers;
  EXPECT_EQ(records.size(), static_cast<std::size_t>(compute_layers * 2));
}

TEST(Profiler, RecordsCarryConsistentState) {
  const GpuContentionModel gpu(titan_xp_profile());
  ConcurrencyProfiler profiler(&gpu, Rng(2));
  const DnnModel model = build_toy_model(1);
  const DnnModel* models[] = {&model};
  ProfilerConfig config;
  config.max_clients = 4;
  config.samples_per_level = 3;
  std::set<int> seen_levels;
  for (const auto& rec : profiler.profile_models(models, config)) {
    EXPECT_GT(rec.time, 0.0);
    EXPECT_GT(rec.true_load, 0.0);
    EXPECT_GE(rec.stats.num_clients, 1);
    EXPECT_LE(rec.stats.num_clients, 4);
    EXPECT_GE(rec.input_bytes, 0);
    seen_levels.insert(rec.stats.num_clients);
  }
  EXPECT_EQ(seen_levels.size(), 4u);
}

TEST(Profiler, HigherConcurrencyMeansSlowerLayers) {
  const GpuContentionModel gpu(titan_xp_profile());
  ConcurrencyProfiler profiler(&gpu, Rng(3));
  LayerSpec conv;
  conv.kind = LayerKind::kConv;
  conv.inputs = {0};
  conv.flops = 5e9;
  conv.output_bytes = 1 << 20;
  conv.weight_bytes = 1 << 20;
  double t1 = 0.0, t8 = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    t1 += profiler.profile_once(conv, 1 << 20, 1).time;
    t8 += profiler.profile_once(conv, 1 << 20, 8).time;
  }
  EXPECT_GT(t8 / n, 2.0 * t1 / n);
}

TEST(Profiler, DeterministicWithSeed) {
  const GpuContentionModel gpu(titan_xp_profile());
  const DnnModel model = build_toy_model(1);
  const DnnModel* models[] = {&model};
  ProfilerConfig config;
  config.max_clients = 2;
  config.samples_per_level = 2;
  ConcurrencyProfiler a(&gpu, Rng(42));
  ConcurrencyProfiler b(&gpu, Rng(42));
  const auto ra = a.profile_models(models, config);
  const auto rb = b.profile_models(models, config);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].time, rb[i].time);
    EXPECT_DOUBLE_EQ(ra[i].stats.kernel_util, rb[i].stats.kernel_util);
  }
}

TEST(Profiler, NullGpuRejected) {
  EXPECT_THROW(ConcurrencyProfiler(nullptr, Rng(1)), std::logic_error);
}

}  // namespace
}  // namespace perdnn
