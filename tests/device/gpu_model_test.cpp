#include "device/gpu_model.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace perdnn {
namespace {

GpuContentionModel make_model() {
  return GpuContentionModel(titan_xp_profile());
}

LayerSpec make_conv() {
  LayerSpec spec;
  spec.kind = LayerKind::kConv;
  spec.inputs = {0};
  spec.flops = 1e9;
  spec.weight_bytes = 1 << 20;
  spec.output_bytes = 1 << 20;
  return spec;
}

TEST(GpuContention, UncontendedSlowdownIsOne) {
  const auto gpu = make_model();
  EXPECT_DOUBLE_EQ(gpu.slowdown(1.0), 1.0);
  EXPECT_DOUBLE_EQ(gpu.slowdown(0.5), 1.0);
}

TEST(GpuContention, SlowdownMonotonicAndSuperlinear) {
  const auto gpu = make_model();
  double prev = gpu.slowdown(1.0);
  double prev_delta = 0.0;
  for (int load = 2; load <= 16; ++load) {
    const double s = gpu.slowdown(static_cast<double>(load));
    EXPECT_GT(s, prev);
    const double delta = s - prev;
    EXPECT_GE(delta, prev_delta - 1e-9);  // convex in load
    prev = s;
    prev_delta = delta;
  }
}

TEST(GpuContention, InvalidConfigRejected) {
  GpuContentionConfig config;
  config.slowdown_exponent = 0.5;
  EXPECT_THROW(GpuContentionModel(titan_xp_profile(), config),
               std::logic_error);
}

TEST(GpuContention, EffectiveLoadCentersOnNominal) {
  const auto gpu = make_model();
  Rng rng(3);
  for (int nominal : {1, 4, 12}) {
    std::vector<double> draws;
    for (int i = 0; i < 4000; ++i)
      draws.push_back(gpu.sample_effective_load(nominal, rng));
    EXPECT_NEAR(mean(draws), static_cast<double>(nominal),
                0.05 * nominal + 0.05);
  }
}

// The causal root of Fig 4: load jitter grows with concurrency.
TEST(GpuContention, LoadJitterGrowsWithClients) {
  const auto gpu = make_model();
  Rng rng(5);
  std::vector<double> low, high;
  for (int i = 0; i < 4000; ++i) {
    low.push_back(gpu.sample_effective_load(2, rng));
    high.push_back(gpu.sample_effective_load(12, rng));
  }
  EXPECT_GT(stddev(high) / 12.0, stddev(low) / 2.0);
}

TEST(GpuContention, ZeroClientsMeansIdle) {
  const auto gpu = make_model();
  Rng rng(7);
  EXPECT_DOUBLE_EQ(gpu.sample_effective_load(0, rng), 0.0);
  EXPECT_THROW(gpu.sample_effective_load(-1, rng), std::logic_error);
}

TEST(GpuStatsModel, StatsWithinPhysicalRanges) {
  const auto gpu = make_model();
  Rng rng(9);
  for (int load = 1; load <= 16; ++load) {
    for (int i = 0; i < 50; ++i) {
      const GpuStats stats =
          gpu.stats_for_load(load, static_cast<double>(load), rng);
      EXPECT_EQ(stats.num_clients, load);
      EXPECT_GE(stats.kernel_util, 0.0);
      EXPECT_LE(stats.kernel_util, 100.0);
      EXPECT_GE(stats.mem_util, 0.0);
      EXPECT_LE(stats.mem_util, 100.0);
      EXPECT_GE(stats.temperature_c, 30.0);
      EXPECT_LE(stats.temperature_c, 92.0);
      EXPECT_GT(stats.mem_usage_mb, 0.0);
    }
  }
}

TEST(GpuStatsModel, UtilisationIncreasesWithLoad) {
  const auto gpu = make_model();
  Rng rng(11);
  auto mean_kernel_util = [&](int load) {
    double total = 0.0;
    for (int i = 0; i < 500; ++i)
      total += gpu.stats_for_load(load, static_cast<double>(load), rng)
                   .kernel_util;
    return total / 500.0;
  };
  EXPECT_LT(mean_kernel_util(1), mean_kernel_util(4));
  EXPECT_LT(mean_kernel_util(4), mean_kernel_util(12));
}

TEST(GpuLatency, ExpectedTimeScalesWithSlowdown) {
  const auto gpu = make_model();
  const LayerSpec conv = make_conv();
  const Seconds base = gpu.expected_layer_time(conv, 1 << 20, 1.0);
  const Seconds loaded = gpu.expected_layer_time(conv, 1 << 20, 8.0);
  EXPECT_NEAR(loaded / base, gpu.slowdown(8.0), 1e-9);
}

TEST(GpuLatency, NoisySamplesCenterOnExpected) {
  const auto gpu = make_model();
  const LayerSpec conv = make_conv();
  Rng rng(13);
  const Seconds expected = gpu.expected_layer_time(conv, 1 << 20, 4.0);
  std::vector<double> samples;
  for (int i = 0; i < 3000; ++i)
    samples.push_back(gpu.layer_time(conv, 1 << 20, 4.0, rng));
  EXPECT_NEAR(mean(samples), expected, 0.02 * expected);
  EXPECT_GT(stddev(samples), 0.0);
}

}  // namespace
}  // namespace perdnn
