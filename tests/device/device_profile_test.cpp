#include "device/device_profile.hpp"

#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"

namespace perdnn {
namespace {

LayerSpec make_conv(Flops flops, Bytes weight = 1000, Bytes output = 1000) {
  LayerSpec spec;
  spec.name = "conv";
  spec.kind = LayerKind::kConv;
  spec.inputs = {0};
  spec.flops = flops;
  spec.weight_bytes = weight;
  spec.output_bytes = output;
  return spec;
}

TEST(DeviceProfile, LayerTimeIsPositiveAndIncludesOverhead) {
  const DeviceProfile client = odroid_xu4_profile();
  const Seconds t = layer_time_on(client, make_conv(1e6), 1000);
  EXPECT_GT(t, client.per_layer_overhead);
}

TEST(DeviceProfile, InputLayerIsFree) {
  LayerSpec input;
  input.kind = LayerKind::kInput;
  input.output_bytes = 100;
  EXPECT_DOUBLE_EQ(layer_time_on(odroid_xu4_profile(), input, 100), 0.0);
}

TEST(DeviceProfile, TimeMonotonicInFlops) {
  const DeviceProfile client = odroid_xu4_profile();
  const Seconds small = layer_time_on(client, make_conv(1e8), 1000);
  const Seconds large = layer_time_on(client, make_conv(1e9), 1000);
  EXPECT_LT(small, large);
  EXPECT_NEAR(large / small, 10.0, 1.5);  // compute-bound regime
}

TEST(DeviceProfile, HugeFcIsMemoryBoundOnClient) {
  // A 21k-way FC: tiny FLOPs, enormous weights. The memory term must
  // dominate (this is what pushes the Inception head server-side).
  LayerSpec fc;
  fc.kind = LayerKind::kFullyConnected;
  fc.inputs = {0};
  fc.flops = 2.0 * 1024 * 21841;
  fc.weight_bytes = static_cast<Bytes>(1024) * 21841 * 4;
  fc.output_bytes = 21841 * 4;
  const DeviceProfile client = odroid_xu4_profile();
  const double flops_only = fc.flops / (client.gflops * 1e9);
  const Seconds t = layer_time_on(client, fc, 1024 * 4);
  EXPECT_GT(t, 3.0 * flops_only);
}

TEST(DeviceProfile, ServerMuchFasterThanClient) {
  const LayerSpec conv = make_conv(1e9, 1 << 20, 1 << 20);
  const Seconds client = layer_time_on(odroid_xu4_profile(), conv, 1 << 20);
  const Seconds server = layer_time_on(titan_xp_profile(), conv, 1 << 20);
  EXPECT_GT(client / server, 20.0);
}

TEST(DeviceProfile, DepthwiseLessEfficientThanDense) {
  LayerSpec dw = make_conv(1e8);
  dw.kind = LayerKind::kDepthwiseConv;
  const LayerSpec dense = make_conv(1e8);
  const DeviceProfile client = odroid_xu4_profile();
  EXPECT_GT(layer_time_on(client, dw, 1000),
            layer_time_on(client, dense, 1000));
}

TEST(DeviceProfile, ProfileOnClientCoversEveryLayer) {
  const DnnModel model = build_toy_model(3);
  const DnnProfile profile = profile_on_client(model, odroid_xu4_profile());
  ASSERT_EQ(profile.client_time.size(),
            static_cast<std::size_t>(model.num_layers()));
  EXPECT_DOUBLE_EQ(profile.client_time[0], 0.0);  // input layer
  for (std::size_t i = 1; i < profile.client_time.size(); ++i)
    EXPECT_GT(profile.client_time[i], 0.0);
  EXPECT_GT(total_client_time(profile), 0.0);
}

TEST(DeviceProfile, CalibrationLandsInPaperBallpark) {
  // The paper's client (ODROID XU4 + caffe) runs Inception in roughly a
  // second and change; our calibrated profile should stay in that regime.
  const DnnModel inception = build_inception21k();
  const Seconds local =
      total_client_time(profile_on_client(inception, odroid_xu4_profile()));
  EXPECT_GT(local, 0.6);
  EXPECT_LT(local, 3.0);
  const Seconds server =
      total_client_time(profile_on_client(inception, titan_xp_profile()));
  EXPECT_LT(server, 0.1);  // tens of ms on a Titan-class GPU
}

TEST(DeviceProfile, InvalidProfileRejected) {
  DeviceProfile bad = odroid_xu4_profile();
  bad.gflops = 0.0;
  EXPECT_THROW(layer_time_on(bad, make_conv(1e6), 100), std::logic_error);
}

}  // namespace
}  // namespace perdnn
