#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace perdnn::obs {
namespace {

JournalEvent make_event(int interval, JournalEventKind kind,
                        ClientId client = 7) {
  JournalEvent e;
  e.interval = interval;
  e.kind = kind;
  e.client = client;
  e.server = 3;
  e.peer = 4;
  e.bytes = 123456789;
  e.detail = 2;
  e.aux = 5;
  e.value = 0.25;
  return e;
}

TEST(JournalEventKindNames, RoundTripEveryKind) {
  for (int k = 0; k <= static_cast<int>(JournalEventKind::kCheckpointResume);
       ++k) {
    const auto kind = static_cast<JournalEventKind>(k);
    JournalEventKind parsed;
    ASSERT_TRUE(journal_kind_from_name(journal_kind_name(kind), &parsed))
        << journal_kind_name(kind);
    EXPECT_EQ(parsed, kind);
  }
  JournalEventKind unused;
  EXPECT_FALSE(journal_kind_from_name("no_such_event", &unused));
  EXPECT_FALSE(journal_kind_from_name("", &unused));
}

TEST(JournalUnit, ChainsAreMonotoneAndAutoFilled) {
  Journal j;
  EXPECT_EQ(j.begin_chain(1), 1u);
  EXPECT_EQ(j.begin_chain(2), 2u);
  EXPECT_EQ(j.chain_of(1), 1u);
  EXPECT_EQ(j.chain_of(2), 2u);
  EXPECT_EQ(j.chain_of(99), 0u);  // never attached

  // record() stamps the client's open chain when none is given.
  j.record(make_event(0, JournalEventKind::kAttach, /*client=*/2));
  EXPECT_EQ(j.events().back().chain, 2u);

  // An explicit chain wins over the binding.
  JournalEvent explicit_chain = make_event(0, JournalEventKind::kPlan, 2);
  explicit_chain.chain = 77;
  j.record(explicit_chain);
  EXPECT_EQ(j.events().back().chain, 77u);

  // Clientless events stay chainless.
  j.record(make_event(1, JournalEventKind::kFaultApplied, /*client=*/-1));
  EXPECT_EQ(j.events().back().chain, 0u);

  // Re-attaching opens a fresh chain; the binding follows it.
  EXPECT_EQ(j.begin_chain(2), 3u);
  j.record(make_event(2, JournalEventKind::kDetach, 2));
  EXPECT_EQ(j.events().back().chain, 3u);
}

TEST(JournalUnit, BoundedKeepsFirstEventsAndCountsDrops) {
  Journal j(/*capacity=*/3);
  for (int i = 0; i < 5; ++i)
    j.record(make_event(i, JournalEventKind::kCacheTouch));
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.dropped(), 2u);
  EXPECT_EQ(j.events().front().interval, 0);
  EXPECT_EQ(j.events().back().interval, 2);  // first three kept, not last
}

TEST(JournalUnit, MetaEventsStayOutOfTheStream) {
  // Checkpoint markers must not contaminate events()/exports/state(), or a
  // resumed run's journal could never be byte-identical to an uninterrupted
  // one.
  Journal j;
  j.record(make_event(0, JournalEventKind::kAttach));
  j.record_meta(make_event(1, JournalEventKind::kCheckpointSave, -1));
  j.record(make_event(1, JournalEventKind::kDetach));

  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.meta_events().size(), 1u);
  EXPECT_EQ(j.state().events.size(), 2u);
  std::ostringstream out;
  j.write_jsonl(out);
  EXPECT_EQ(out.str().find("checkpoint_save"), std::string::npos);
}

TEST(JournalUnit, StateRestoreRoundTrips) {
  Journal j;
  j.begin_chain(1);
  j.record(make_event(0, JournalEventKind::kAttach, 1));
  j.record(make_event(3, JournalEventKind::kCacheStore, 1));
  const JournalState state = j.state();

  Journal restored;
  restored.restore(state);
  EXPECT_EQ(restored.events(), j.events());
  EXPECT_EQ(restored.chain_of(1), j.chain_of(1));
  // The chain counter resumes where it left off — no id reuse.
  EXPECT_EQ(restored.begin_chain(2), 2u);

  // restore() replaces prior content entirely.
  Journal dirty;
  dirty.begin_chain(5);
  dirty.record(make_event(9, JournalEventKind::kDetach, 5));
  dirty.restore(state);
  EXPECT_EQ(dirty.events(), j.events());
  EXPECT_EQ(dirty.chain_of(5), 0u);
}

TEST(JournalUnit, ClearResetsEverything) {
  Journal j;
  j.begin_chain(1);
  j.record(make_event(0, JournalEventKind::kAttach, 1));
  j.clear();
  EXPECT_EQ(j.size(), 0u);
  EXPECT_EQ(j.dropped(), 0u);
  EXPECT_EQ(j.chain_of(1), 0u);
  EXPECT_EQ(j.begin_chain(1), 1u);  // counter restarts
}

TEST(JournalCodec, JsonlRoundTripsEveryKind) {
  std::vector<JournalEvent> events;
  for (int k = 0; k <= static_cast<int>(JournalEventKind::kCheckpointResume);
       ++k)
    events.push_back(make_event(k, static_cast<JournalEventKind>(k)));
  events.front().chain = 42;
  events.front().value = -1.5e-9;  // exercise the float formatter

  const std::string text = journal_to_jsonl(events);
  EXPECT_EQ(journal_from_jsonl(text), events);
}

TEST(JournalCodec, JsonlSkipsBlankAndCommentLines) {
  const std::vector<JournalEvent> one = {
      make_event(0, JournalEventKind::kAttach)};
  const std::string text =
      "# produced by a test\n\n" + journal_to_jsonl(one) + "\n# trailer\n";
  EXPECT_EQ(journal_from_jsonl(text), one);
}

TEST(JournalCodec, JsonlErrorsCarryLineNumbers) {
  const std::string valid = journal_to_jsonl(
      {make_event(0, JournalEventKind::kAttach)});  // one full line
  try {
    journal_from_jsonl("# fine\n" + valid + "not json\n");
    FAIL() << "expected JournalError";
  } catch (const JournalError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
  // Partial events and unknown kinds are rejected too.
  EXPECT_THROW(journal_from_jsonl("{\"interval\":0,\"kind\":\"attach\"}\n"),
               JournalError);
  EXPECT_THROW(journal_from_jsonl("{\"interval\":0,\"kind\":\"bogus\"}\n"),
               JournalError);
}

TEST(JournalCodec, BinaryRoundTripsAndRejectsCorruption) {
  std::vector<JournalEvent> events;
  for (int i = 0; i < 100; ++i)
    events.push_back(make_event(
        i, static_cast<JournalEventKind>(
               i % (static_cast<int>(JournalEventKind::kCheckpointResume) +
                    1))));
  const std::string bytes = journal_encode(events);
  ASSERT_TRUE(journal_is_binary(bytes));
  EXPECT_FALSE(journal_is_binary(journal_to_jsonl(events)));
  EXPECT_EQ(journal_decode(bytes), events);

  // Truncation and bit flips must be rejected, not misparsed.
  EXPECT_THROW(journal_decode(bytes.substr(0, bytes.size() - 1)),
               JournalError);
  EXPECT_THROW(journal_decode(bytes.substr(0, 10)), JournalError);
  std::string flipped = bytes;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
  EXPECT_THROW(journal_decode(flipped), JournalError);
}

TEST(JournalCodec, EncodeMatchesMemberEncode) {
  Journal j;
  j.begin_chain(1);
  j.record(make_event(0, JournalEventKind::kAttach, 1));
  EXPECT_EQ(j.encode(), journal_encode(j.events()));
  std::ostringstream out;
  j.write_jsonl(out);
  EXPECT_EQ(out.str(), journal_to_jsonl(j.events()));
}

}  // namespace
}  // namespace perdnn::obs
