#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "mobility/trace_gen.hpp"
#include "obs/json.hpp"
#include "sim/simulator.hpp"

namespace perdnn {
namespace {

using obs::SimTimeseries;
using obs::TimeseriesRow;

// ---------------------------------------------------------------------------
// Unit-level recorder behaviour.

TEST(SimTimeseriesUnit, DenseRowsAndAggregates) {
  SimTimeseries ts;
  ts.start(/*num_servers=*/3, /*interval_length_s=*/20.0);

  ts.begin_interval(0);
  ts.record_attach(1, /*hits=*/1, /*partials=*/0, /*misses=*/0);
  ts.record_cold_queries(1, 10, 2.5);
  ts.record_migration(/*from=*/0, /*to=*/2, /*bytes=*/1000);
  ts.record_migration(/*from=*/0, /*to=*/1, /*bytes=*/0);  // dedup'd order
  ts.record_predictor_sample(1, 12.5);
  ts.set_attached({0, 2, 1});
  ts.end_interval();

  ts.begin_interval(1);
  ts.end_interval();  // an all-quiet interval still emits zero rows

  EXPECT_EQ(ts.num_servers(), 3);
  EXPECT_EQ(ts.num_intervals(), 2);
  const std::vector<TimeseriesRow> rows = ts.rows();
  ASSERT_EQ(rows.size(), 6u);  // 2 intervals x 3 servers, dense

  const TimeseriesRow& r0 = rows[0];  // interval 0, server 0
  EXPECT_EQ(r0.uplink_bytes, 1000);
  EXPECT_EQ(r0.downlink_bytes, 0);
  EXPECT_EQ(r0.migration_orders, 2);  // the 0-byte order still counts

  const TimeseriesRow& r1 = rows[1];  // interval 0, server 1
  EXPECT_EQ(r1.hits, 1);
  EXPECT_EQ(r1.cold_window_queries, 10);
  EXPECT_DOUBLE_EQ(r1.cold_latency_sum_s, 2.5);
  EXPECT_EQ(r1.attached, 2);
  EXPECT_EQ(r1.predictor_samples, 1);
  EXPECT_DOUBLE_EQ(r1.predictor_error_sum_m, 12.5);

  const TimeseriesRow& r2 = rows[2];  // interval 0, server 2
  EXPECT_EQ(r2.downlink_bytes, 1000);
  EXPECT_EQ(r2.uplink_bytes, 0);

  // Interval-1 rows are all zero but present.
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(rows[i].interval, 1);
    EXPECT_EQ(rows[i].cold_window_queries, 0);
    EXPECT_EQ(rows[i].uplink_bytes, 0);
  }

  EXPECT_EQ(ts.total_hits(), 1);
  EXPECT_EQ(ts.total_cold_window_queries(), 10);
  EXPECT_EQ(ts.total_uplink_bytes(), 1000);
  EXPECT_EQ(ts.total_downlink_bytes(), 1000);
}

TEST(SimTimeseriesUnit, OutOfOrderIntervalsThrow) {
  SimTimeseries ts;
  ts.start(1, 20.0);
  ts.begin_interval(0);
  EXPECT_THROW(ts.begin_interval(1), std::logic_error);  // still open
  ts.end_interval();
  EXPECT_THROW(ts.begin_interval(0), std::logic_error);  // not monotone
  EXPECT_THROW(ts.begin_interval(2), std::logic_error);  // gap
}

TEST(SimTimeseriesUnit, CsvShapeMatchesHeader) {
  SimTimeseries ts;
  ts.start(2, 20.0);
  ts.begin_interval(0);
  ts.record_migration(0, 1, 42);
  ts.end_interval();

  std::ostringstream out;
  ts.write_csv(out);
  const std::string csv = out.str();

  std::istringstream lines(csv);
  std::string line;
  // Comment lines (schema/model metadata) precede the header.
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "# schema=2");
  while (!line.empty() && line.front() == '#')
    ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, SimTimeseries::csv_header());
  const std::size_t columns =
      static_cast<std::size_t>(
          std::count(line.begin(), line.end(), ',')) + 1;
  int data_lines = 0;
  while (std::getline(lines, line)) {
    ++data_lines;
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(line.begin(), line.end(), ',')) + 1,
              columns)
        << line;
  }
  EXPECT_EQ(data_lines, 2);
}

// ---------------------------------------------------------------------------
// Simulator integration: the recorder must reconcile exactly with the
// aggregate SimulationMetrics of the same run.

class TimeseriesSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CampusTraceConfig train_config;
    train_config.num_users = 10;
    train_config.duration = 1.5 * 3600.0;
    train_config.sample_interval = 20.0;
    train_config.seed = 100;
    CampusTraceConfig test_config = train_config;
    test_config.num_users = 6;
    test_config.seed = 200;

    config_ = new SimulationConfig;
    config_->model = ModelName::kMobileNet;
    config_->policy = MigrationPolicy::kProactive;
    config_->migration_radius_m = 100.0;
    config_->seed = 5;

    world_ = new SimulationWorld(
        build_world(*config_, generate_campus_traces(train_config),
                    generate_campus_traces(test_config)));
  }

  static void TearDownTestSuite() {
    delete world_;
    delete config_;
    world_ = nullptr;
    config_ = nullptr;
  }

  static SimulationConfig* config_;
  static SimulationWorld* world_;
};

SimulationConfig* TimeseriesSimTest::config_ = nullptr;
SimulationWorld* TimeseriesSimTest::world_ = nullptr;

TEST_F(TimeseriesSimTest, RowsAreDenseAndReconcileWithMetrics) {
  SimTimeseries ts;
  const SimulationMetrics metrics = run_simulation(*config_, *world_, &ts);

  EXPECT_EQ(ts.num_servers(), metrics.num_servers);
  EXPECT_EQ(ts.num_intervals(), metrics.num_intervals);
  EXPECT_EQ(ts.rows().size(),
            static_cast<std::size_t>(metrics.num_intervals) *
                static_cast<std::size_t>(metrics.num_servers));
  EXPECT_DOUBLE_EQ(ts.interval_length_s(), world_->interval);

  // Cold-start classifications and query counts sum to the aggregates.
  EXPECT_EQ(ts.total_hits(), metrics.hits);
  EXPECT_EQ(ts.total_partials(), metrics.partials);
  EXPECT_EQ(ts.total_misses(), metrics.misses);
  EXPECT_EQ(ts.total_cold_window_queries(), metrics.cold_window_queries);

  // Backhaul bytes: uplink attributed at senders, downlink at receivers,
  // both summing to the total the simulator reports.
  EXPECT_EQ(ts.total_uplink_bytes(),
            static_cast<std::int64_t>(metrics.total_migrated_bytes));
  EXPECT_EQ(ts.total_downlink_bytes(), ts.total_uplink_bytes());
  EXPECT_GT(ts.total_uplink_bytes(), 0);
}

TEST_F(TimeseriesSimTest, RecorderDoesNotPerturbTheSimulation) {
  SimTimeseries ts;
  const SimulationMetrics with = run_simulation(*config_, *world_, &ts);
  const SimulationMetrics without = run_simulation(*config_, *world_);
  EXPECT_EQ(with.cold_window_queries, without.cold_window_queries);
  EXPECT_EQ(with.hits, without.hits);
  EXPECT_EQ(with.misses, without.misses);
  EXPECT_EQ(with.server_changes, without.server_changes);
  EXPECT_EQ(with.total_migrated_bytes, without.total_migrated_bytes);
}

TEST_F(TimeseriesSimTest, ExportsAreDeterministicAcrossRuns) {
  SimTimeseries a, b;
  run_simulation(*config_, *world_, &a);
  run_simulation(*config_, *world_, &b);

  std::ostringstream csv_a, csv_b;
  a.write_csv(csv_a);
  b.write_csv(csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST_F(TimeseriesSimTest, CsvHasHeaderPlusOneLinePerRow) {
  SimTimeseries ts;
  run_simulation(*config_, *world_, &ts);
  std::ostringstream out;
  ts.write_csv(out);
  const std::string csv = out.str();
  const long lines = std::count(csv.begin(), csv.end(), '\n');
  // schema comment + header + one line per row (no model set here).
  EXPECT_EQ(lines, static_cast<long>(ts.rows().size()) + 2);
}

TEST(SimTimeseriesUnit, CsvQuoteFollowsRfc4180) {
  // Plain identifiers pass through untouched.
  EXPECT_EQ(SimTimeseries::csv_quote("mobilenet"), "mobilenet");
  EXPECT_EQ(SimTimeseries::csv_quote(""), "");
  // Commas, quotes, newlines, '#' and edge whitespace force quoting, with
  // embedded quotes doubled.
  EXPECT_EQ(SimTimeseries::csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(SimTimeseries::csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(SimTimeseries::csv_quote("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(SimTimeseries::csv_quote("#comment"), "\"#comment\"");
  EXPECT_EQ(SimTimeseries::csv_quote(" padded "), "\" padded \"");
}

TEST(SimTimeseriesUnit, ModelMetadataSurvivesStartAndExports) {
  SimTimeseries ts;
  ts.set_model("mobile,net \"v2\"");
  ts.start(1, 20.0);  // must NOT clear the model
  ts.begin_interval(0);
  ts.end_interval();

  EXPECT_EQ(ts.model(), "mobile,net \"v2\"");
  std::ostringstream out;
  ts.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("# model=\"mobile,net \"\"v2\"\"\"\n"),
            std::string::npos);

  const obs::JsonValue doc = obs::parse_json(ts.to_json());
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("model"), nullptr);
  EXPECT_EQ(doc.find("model")->as_string(), "mobile,net \"v2\"");
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_number(),
            SimTimeseries::kCsvSchemaVersion);
}

TEST_F(TimeseriesSimTest, JsonExportIsValidAndShaped) {
  SimTimeseries ts;
  run_simulation(*config_, *world_, &ts);
  const obs::JsonValue doc = obs::parse_json(ts.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("interval_length_s")->as_number(),
                   world_->interval);
  EXPECT_EQ(doc.find("num_servers")->as_number(), ts.num_servers());
  EXPECT_EQ(doc.find("num_intervals")->as_number(), ts.num_intervals());
  const obs::JsonValue* rows = doc.find("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->items().size(), ts.rows().size());
}

}  // namespace
}  // namespace perdnn
