#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace perdnn::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_enabled(false);
    Tracer::global().stop();
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().stop();
    Tracer::global().clear();
    set_enabled(false);
    Registry::global().reset();
  }

  static void spin_us(int us) {
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start <
           std::chrono::microseconds(us)) {
    }
  }
};

TEST_F(TraceTest, InactiveTracerRecordsNothing) {
  { PERDNN_SPAN("trace_test.dark"); }
  EXPECT_EQ(Tracer::global().num_events(), 0u);
  // And no metrics either while collection is off.
  const std::string json = Registry::global().to_json();
  EXPECT_EQ(json.find("trace_test.dark"), std::string::npos);
}

TEST_F(TraceTest, SpansNestWithDepths) {
  Tracer::global().start();
  {
    PERDNN_SPAN("trace_test.outer");
    spin_us(50);
    {
      PERDNN_SPAN("trace_test.inner");
      spin_us(50);
    }
  }
  Tracer::global().stop();

  // events() is in completion order: the inner span closes first.
  const std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "trace_test.inner");
  EXPECT_EQ(inner.depth, 2);
  EXPECT_EQ(outer.name, "trace_test.outer");
  EXPECT_EQ(outer.depth, 1);
  // The inner span is contained within the outer one.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us,
            outer.ts_us + outer.dur_us + 1.0 /*rounding slack*/);
  EXPECT_GT(outer.dur_us, inner.dur_us);
}

TEST_F(TraceTest, SpanFeedsRegistryHistogram) {
  set_enabled(true);
  {
    PERDNN_SPAN("trace_test.timed");
    spin_us(100);
  }
  Histogram& h = Registry::global().histogram("span.trace_test.timed");
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 50e-6);  // at least ~half the spin, in seconds
  EXPECT_LT(h.sum(), 1.0);
  // Metrics alone do not populate the tracer.
  EXPECT_EQ(Tracer::global().num_events(), 0u);
}

TEST_F(TraceTest, ChromeJsonIsValidAndComplete) {
  Tracer::global().start();
  {
    PERDNN_SPAN("trace_test.a");
    { PERDNN_SPAN("trace_test.b"); }
  }
  Tracer::global().stop();

  const std::string json = Tracer::global().to_chrome_json();
  const JsonValue doc = parse_json(json);
  ASSERT_TRUE(doc.is_object());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 2u);
  for (const JsonValue& e : events->items()) {
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    EXPECT_EQ(e.find("cat")->as_string(), "perdnn");
    EXPECT_GE(e.find("dur")->as_number(), 0.0);
    ASSERT_NE(e.find("args"), nullptr);
    EXPECT_GE(e.find("args")->find("depth")->as_number(), 1.0);
  }
}

TEST_F(TraceTest, StartResetsPriorEvents) {
  Tracer::global().start();
  { PERDNN_SPAN("trace_test.first"); }
  EXPECT_EQ(Tracer::global().num_events(), 1u);
  Tracer::global().start();  // restart drops the old events
  EXPECT_EQ(Tracer::global().num_events(), 0u);
  { PERDNN_SPAN("trace_test.second"); }
  Tracer::global().stop();
  ASSERT_EQ(Tracer::global().num_events(), 1u);
  EXPECT_EQ(Tracer::global().events()[0].name, "trace_test.second");
}

TEST_F(TraceTest, ThreadsGetDenseDistinctIds) {
  Tracer::global().start();
  std::thread worker([] { PERDNN_SPAN("trace_test.worker"); });
  worker.join();
  { PERDNN_SPAN("trace_test.main"); }
  Tracer::global().stop();

  const std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 2u);
  int worker_tid = -1, main_tid = -1;
  for (const TraceEvent& e : events) {
    if (e.name == "trace_test.worker") worker_tid = e.tid;
    if (e.name == "trace_test.main") main_tid = e.tid;
  }
  EXPECT_NE(worker_tid, main_tid);
  EXPECT_GE(worker_tid, 0);
  EXPECT_GE(main_tid, 0);
  EXPECT_LE(worker_tid, 1);
  EXPECT_LE(main_tid, 1);
}

TEST_F(TraceTest, ParallelPoolSpansCarryPoolThreadTids) {
  // Spans opened inside parallel_map workers must be attributed to the pool
  // threads that ran them: every event carries a valid dense tid, and with
  // more tasks than threads the pool threads (not just the caller) show up.
  par::set_num_threads(4);
  Tracer::global().start();
  // Each task holds its span open until a second thread has entered one,
  // forcing at least two pool threads to participate (a fast worker could
  // otherwise drain the whole queue alone). The deadline keeps a broken
  // pool from hanging the test instead of failing it.
  std::atomic<int> participants{0};
  const std::vector<int> out =
      par::parallel_map(64, [&participants](std::size_t i) {
        PERDNN_SPAN("trace_test.pool_task");
        thread_local bool counted = false;
        if (!counted) {
          counted = true;
          participants.fetch_add(1);
        }
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        while (participants.load() < 2 &&
               std::chrono::steady_clock::now() < deadline) {
        }
        return static_cast<int>(i);
      });
  Tracer::global().stop();
  par::set_num_threads(0);

  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<int>(i));  // submission-order merge

  const std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 64u);
  std::set<int> tids;
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.name, "trace_test.pool_task");
    EXPECT_GE(e.tid, 0);
    tids.insert(e.tid);
  }
  // Two workers were held in spans concurrently, so two distinct pool
  // thread ids must appear — and ids stay dense (registration order, no
  // raw OS tids).
  EXPECT_GE(participants.load(), 2);
  EXPECT_GE(tids.size(), 2u);
  EXPECT_LT(*tids.rbegin(), 8);
}

TEST_F(TraceTest, ParallelChromeJsonRoundTripsThroughParser) {
  par::set_num_threads(4);
  Tracer::global().start();
  par::parallel_map(16, [](std::size_t i) {
    PERDNN_SPAN("trace_test.par_json");
    return i;
  });
  Tracer::global().stop();
  par::set_num_threads(0);

  const std::string json = Tracer::global().to_chrome_json();
  const JsonValue doc = parse_json(json);  // throws on malformed output
  ASSERT_TRUE(doc.is_object());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 16u);
  std::set<double> json_tids;
  for (const JsonValue& e : events->items()) {
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    EXPECT_EQ(e.find("name")->as_string(), "trace_test.par_json");
    ASSERT_NE(e.find("tid"), nullptr);
    json_tids.insert(e.find("tid")->as_number());
  }
  // The tids that reach the JSON match the recorded events exactly.
  std::set<double> event_tids;
  for (const TraceEvent& e : Tracer::global().events())
    event_tids.insert(static_cast<double>(e.tid));
  EXPECT_EQ(json_tids, event_tids);
}

}  // namespace
}  // namespace perdnn::obs
