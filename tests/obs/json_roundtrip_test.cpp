#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace perdnn::obs {
namespace {

TEST(JsonNumber, IntegralAndRoundTripFormatting) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(0.5), "0.5");
  // Shortest form that still round-trips exactly.
  EXPECT_EQ(std::stod(json_number(0.1)), 0.1);
  EXPECT_EQ(std::stod(json_number(1.0 / 3.0)), 1.0 / 3.0);
  EXPECT_THROW(json_number(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(json_number(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(JsonEscape, ControlCharactersAndQuotes) {
  std::string out;
  json_escape(out, "a\"b\\c\n\t\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse_json("nul"), std::runtime_error);
  EXPECT_THROW(parse_json("1 2"), std::runtime_error);  // trailing garbage
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("NaN"), std::runtime_error);
  EXPECT_FALSE(is_valid_json("{]"));
  EXPECT_TRUE(is_valid_json("{\"a\":[1,2,null,true,\"s\"]}"));
}

TEST(JsonParse, RoundTripsCanonicalText) {
  const std::string text =
      "{\"a\":1,\"b\":[true,false,null],\"c\":{\"nested\":\"x\\ny\"},"
      "\"d\":-2.5}";
  EXPECT_EQ(parse_json(text).serialize(), text);
}

// ---------------------------------------------------------------------------
// The exports the subsystem actually produces must round-trip through our
// own parser unchanged — the C++ self-check from the issue.

TEST(JsonRoundTrip, RegistryExport) {
  Registry::global().reset();
  set_enabled(true);
  count("roundtrip.counter", 3.0);
  count("roundtrip.labeled", 1.0, {{"model", "resnet"}, {"server", "4"}});
  set_gauge("roundtrip.gauge", 2.75);
  for (int i = 1; i <= 64; ++i) observe("roundtrip.histo", i * 1e-4);
  const std::string json = Registry::global().to_json();
  EXPECT_EQ(parse_json(json).serialize(), json);
  set_enabled(false);
  Registry::global().reset();
}

TEST(JsonRoundTrip, TimeseriesExport) {
  SimTimeseries ts;
  ts.start(2, 20.0);
  ts.begin_interval(0);
  ts.record_attach(0, 1, 0, 0);
  ts.record_cold_queries(0, 5, 1.25);
  ts.record_migration(0, 1, 12345);
  ts.record_predictor_sample(1, 33.5);
  ts.set_attached({1, 0});
  ts.end_interval();
  const std::string json = ts.to_json();
  EXPECT_EQ(parse_json(json).serialize(), json);
}

TEST(JsonRoundTrip, ChromeTraceExport) {
  Tracer::global().start();
  {
    PERDNN_SPAN("roundtrip.span");
    { PERDNN_SPAN("roundtrip.nested"); }
  }
  Tracer::global().stop();
  const std::string json = Tracer::global().to_chrome_json();
  EXPECT_EQ(parse_json(json).serialize(), json);
  Tracer::global().clear();
}

}  // namespace
}  // namespace perdnn::obs
