#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/json.hpp"

namespace perdnn::obs {
namespace {

/// Every test gets a clean, enabled registry and restores the disabled
/// default on exit so the obs state never leaks across test binaries.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    Registry::global().reset();
  }
};

TEST_F(MetricsTest, CounterAccumulates) {
  Counter& c = Registry::global().counter("test.counter");
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same (name, labels) resolves to the same series.
  EXPECT_EQ(&Registry::global().counter("test.counter"), &c);
}

TEST_F(MetricsTest, LabelsCreateDistinctSeries) {
  Counter& a = Registry::global().counter("test.labeled",
                                          {{"server", "1"}});
  Counter& b = Registry::global().counter("test.labeled",
                                          {{"server", "2"}});
  EXPECT_NE(&a, &b);
  a.add(1.0);
  b.add(2.0);
  EXPECT_DOUBLE_EQ(a.value(), 1.0);
  EXPECT_DOUBLE_EQ(b.value(), 2.0);
  // Label order must not matter: {a,b} and {b,a} are the same series.
  Counter& fwd = Registry::global().counter(
      "test.order", {{"model", "resnet"}, {"policy", "perdnn"}});
  Counter& rev = Registry::global().counter(
      "test.order", {{"policy", "perdnn"}, {"model", "resnet"}});
  EXPECT_EQ(&fwd, &rev);
}

TEST_F(MetricsTest, LabelKeyIsSortedAndCanonical) {
  EXPECT_EQ(label_key({}), "");
  EXPECT_EQ(label_key({{"b", "2"}, {"a", "1"}}), "a=1,b=2");
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge& g = Registry::global().gauge("test.gauge");
  g.set(4.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST_F(MetricsTest, HelpersAreNoOpsWhileDisabled) {
  set_enabled(false);
  count("test.dark");
  observe("test.dark_histo", 1.0);
  set_gauge("test.dark_gauge", 7.0);
  set_enabled(true);
  // The no-op helpers must not even have created the series: the export
  // contains none of the names.
  const std::string json = Registry::global().to_json();
  EXPECT_EQ(json.find("test.dark"), std::string::npos);
}

TEST_F(MetricsTest, CounterIsThreadSafe) {
  Counter& c = Registry::global().counter("test.mt");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, HistogramQuantilesMatchPercentileExactly) {
  // While the reservoir holds every sample, quantile() must agree
  // bit-for-bit with the repo's reference percentile().
  Histogram& h = Registry::global().histogram("test.quantiles");
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(1e-6, 10.0);
    samples.push_back(v);
    h.observe(v);
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), percentile(samples, q * 100.0))
        << "q=" << q;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), mean(samples));
}

TEST_F(MetricsTest, HistogramStreamingFallbackStaysBounded) {
  // Past the reservoir cap the histogram switches to bucket interpolation;
  // quantiles must stay within the observed range and monotone in q.
  Histogram h({1.0, 2.0, 4.0, 8.0}, /*max_exact_samples=*/16);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) h.observe(rng.uniform(0.5, 10.0));
  double prev = h.quantile(0.0);
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_GE(h.quantile(0.0), 0.5);
  EXPECT_LE(h.quantile(1.0), 10.0);
}

TEST_F(MetricsTest, HistogramSnapshotBucketCountsSum) {
  Histogram& h = Registry::global().histogram("test.snapshot");
  for (int i = 0; i < 100; ++i) h.observe(0.001 * (i + 1));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.counts.size(), snap.bounds.size() + 1);
  std::uint64_t total = 0;
  for (std::uint64_t c : snap.counts) total += c;
  EXPECT_EQ(total, snap.count);
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 0.001);
  EXPECT_DOUBLE_EQ(snap.max, 0.1);
}

TEST_F(MetricsTest, HistogramIsThreadSafeAcrossShards) {
  // Eight threads hammer one histogram (each lands on a thread-hashed
  // shard); nothing may be lost and the merged aggregates must match the
  // closed-form totals.
  Histogram& h = Registry::global().histogram("test.mt_histo");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(0.001 * (t + 1));  // per-thread constant value
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) expected_sum += 0.001 * (t + 1);
  EXPECT_NEAR(h.sum(), expected_sum * kPerThread, 1e-6);

  const HistogramSnapshot snap = h.snapshot();
  std::uint64_t total = 0;
  for (std::uint64_t c : snap.counts) total += c;
  EXPECT_EQ(total, snap.count);
  EXPECT_DOUBLE_EQ(snap.min, 0.001);
  EXPECT_DOUBLE_EQ(snap.max, 0.008);
  EXPECT_GE(h.quantile(0.5), snap.min);
  EXPECT_LE(h.quantile(0.5), snap.max);
}

TEST_F(MetricsTest, ConcurrentRegistryLookupsAndRecords) {
  // Series creation races with recording on existing series: the registry
  // lookup path itself must be safe, and every write must land.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        count("test.mt_shared");
        count("test.mt_own", 1.0, {{"thread", std::to_string(t)}});
        observe("test.mt_shared_histo", 0.002);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_DOUBLE_EQ(Registry::global().counter("test.mt_shared").value(),
                   kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(
        Registry::global()
            .counter("test.mt_own", {{"thread", std::to_string(t)}})
            .value(),
        kPerThread);
  }
  EXPECT_EQ(Registry::global().histogram("test.mt_shared_histo").count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST_F(MetricsTest, KindMismatchThrows) {
  Registry::global().counter("test.kind");
  EXPECT_THROW(Registry::global().gauge("test.kind"), std::logic_error);
}

TEST_F(MetricsTest, ExportIsDeterministicAndSorted) {
  // Touch series in deliberately unsorted order.
  count("z.last");
  count("a.first");
  count("m.mid", 1.0, {{"server", "2"}});
  count("m.mid", 1.0, {{"server", "1"}});
  set_gauge("g.gauge", 3.0);
  observe("h.histo", 0.01);

  const std::string json1 = Registry::global().to_json();
  const std::string json2 = Registry::global().to_json();
  EXPECT_EQ(json1, json2);

  const JsonValue doc = parse_json(json1);
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("counters"), nullptr);
  ASSERT_NE(doc.find("gauges"), nullptr);
  ASSERT_NE(doc.find("histograms"), nullptr);
  const auto& counters = doc.find("counters")->items();
  ASSERT_EQ(counters.size(), 4u);
  EXPECT_EQ(doc.find("gauges")->items().size(), 1u);
  EXPECT_EQ(doc.find("histograms")->items().size(), 1u);

  // Families sorted by name; series within a family sorted by label string.
  EXPECT_EQ(counters[0].find("name")->as_string(), "a.first");
  EXPECT_EQ(counters[1].find("name")->as_string(), "m.mid");
  EXPECT_EQ(counters[1].find("labels")->find("server")->as_string(), "1");
  EXPECT_EQ(counters[2].find("name")->as_string(), "m.mid");
  EXPECT_EQ(counters[2].find("labels")->find("server")->as_string(), "2");
  EXPECT_EQ(counters[3].find("name")->as_string(), "z.last");
}

TEST_F(MetricsTest, EmptyHistogramQuantileIsNaN) {
  // An empty histogram has no order statistics: every quantile is NaN,
  // consistently across the exact-reservoir and streaming paths.
  Histogram& fresh = Registry::global().histogram("test.empty");
  for (double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_TRUE(std::isnan(fresh.quantile(q))) << "q=" << q;
  Histogram streaming({1.0, 2.0}, /*max_exact_samples=*/0);
  EXPECT_TRUE(std::isnan(streaming.quantile(0.5)));
  // ...but count/sum/mean stay well-defined zeros.
  EXPECT_EQ(fresh.count(), 0u);
  EXPECT_DOUBLE_EQ(fresh.sum(), 0.0);
}

TEST_F(MetricsTest, MergeOnReadHandlesEmptyShards) {
  // Observations from one thread land on that thread's shard; the other
  // shards stay empty, and the merge must ignore them rather than fold
  // their sentinel min/max into the aggregates.
  Histogram& h = Registry::global().histogram("test.one_shard");
  h.observe(0.004);
  h.observe(0.006);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.010);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.min, 0.004);
  EXPECT_DOUBLE_EQ(snap.max, 0.006);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.004);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.006);
}

TEST_F(MetricsTest, EmptyHistogramExportsFiniteJson) {
  // to_json must keep emitting parseable output (no bare NaN tokens) even
  // when a histogram family exists but never saw a sample.
  Registry::global().histogram("test.empty_json");
  const JsonValue doc = parse_json(Registry::global().to_json());
  const auto& histos = doc.find("histograms")->items();
  ASSERT_EQ(histos.size(), 1u);
  EXPECT_EQ(histos[0].find("count")->as_number(), 0.0);
  EXPECT_EQ(histos[0].find("p50")->as_number(), 0.0);
}

TEST_F(MetricsTest, PrometheusExportShapesAllKinds) {
  count("sim.attaches", 3.0);
  count("sim.attaches", 2.0, {{"server", "1"}});
  set_gauge("sim.load", 0.5, {{"server", "a\"b\\c"}});
  Histogram& h = Registry::global().histogram(
      "sim.latency", {}, {0.001, 0.01, 0.1});
  h.observe(0.005);
  h.observe(0.005);
  h.observe(0.05);

  const std::string text = Registry::global().to_prometheus();
  // Names are prefixed and sanitised; one TYPE line per family.
  EXPECT_NE(text.find("# TYPE perdnn_sim_attaches counter\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE perdnn_sim_attaches counter",
                      text.find("# TYPE perdnn_sim_attaches counter") + 1),
            std::string::npos);
  EXPECT_NE(text.find("perdnn_sim_attaches 3\n"), std::string::npos);
  EXPECT_NE(text.find("perdnn_sim_attaches{server=\"1\"} 2\n"),
            std::string::npos);
  // Label values escape backslash and quote.
  EXPECT_NE(text.find("perdnn_sim_load{server=\"a\\\"b\\\\c\"} 0.5\n"),
            std::string::npos);
  // Histogram: cumulative buckets ending at +Inf, plus _sum and _count.
  EXPECT_NE(text.find("# TYPE perdnn_sim_latency histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("perdnn_sim_latency_bucket{le=\"0.01\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("perdnn_sim_latency_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("perdnn_sim_latency_count 3\n"), std::string::npos);
  // Deterministic output.
  EXPECT_EQ(text, Registry::global().to_prometheus());
}

TEST_F(MetricsTest, ResetDropsEverything) {
  count("test.reset");
  Registry::global().reset();
  const JsonValue doc = parse_json(Registry::global().to_json());
  EXPECT_TRUE(doc.find("counters")->items().empty());
}

}  // namespace
}  // namespace perdnn::obs
