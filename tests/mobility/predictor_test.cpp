#include "mobility/predictor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mobility/trace_gen.hpp"

namespace perdnn {
namespace {

/// Straight-line trajectories: the ideal case for momentum-based predictors.
std::vector<Trajectory> linear_trajectories(int count, Rng& rng) {
  std::vector<Trajectory> out;
  for (int i = 0; i < count; ++i) {
    Trajectory traj;
    traj.user = i;
    traj.interval = 20.0;
    Point pos{rng.uniform(100.0, 900.0), rng.uniform(100.0, 900.0)};
    const Point velocity{rng.uniform(-15.0, 15.0), rng.uniform(-15.0, 15.0)};
    for (int t = 0; t < 30; ++t) {
      traj.points.push_back(pos);
      pos = pos + velocity;
    }
    out.push_back(std::move(traj));
  }
  return out;
}

TEST(NearestServers, OrdersByDistance) {
  // Property check against brute force: cell centres snap to the hex grid,
  // so compare with the map's own centre geometry rather than raw inputs.
  ServerMap map(50.0);
  Rng rng(41);
  for (int i = 0; i < 40; ++i)
    map.allocate_at({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  for (int trial = 0; trial < 20; ++trial) {
    const Point p{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const auto nearest = nearest_servers(map, p, 3);
    ASSERT_EQ(nearest.size(), 3u);
    // Sorted by distance...
    for (std::size_t i = 1; i < nearest.size(); ++i)
      EXPECT_LE(distance(map.server_center(nearest[i - 1]), p),
                distance(map.server_center(nearest[i]), p) + 1e-9);
    // ...and no unlisted server is closer than the last listed one.
    const double worst = distance(map.server_center(nearest.back()), p);
    for (ServerId s = 0; s < map.num_servers(); ++s) {
      if (std::find(nearest.begin(), nearest.end(), s) != nearest.end())
        continue;
      EXPECT_GE(distance(map.server_center(s), p), worst - 1e-9);
    }
  }
}

TEST(NearestServers, ExpandsSearchRadius) {
  ServerMap map(50.0);
  map.allocate_at({5000.0, 5000.0});  // far from the query point
  const auto found = nearest_servers(map, {0.0, 0.0}, 1);
  ASSERT_EQ(found.size(), 1u);
}

TEST(SvrPredictorTest, PredictsLinearMotionAccurately) {
  Rng rng(1);
  const auto train = linear_trajectories(40, rng);
  const auto test = linear_trajectories(10, rng);
  SvrPredictor predictor(5);
  Rng fit_rng(2);
  predictor.fit(train, fit_rng);
  double err = 0.0;
  int n = 0;
  for (const auto& traj : test) {
    for (std::size_t i = 5; i + 1 < traj.points.size(); i += 3) {
      const std::span<const Point> recent(traj.points.data(), i + 1);
      err += distance(predictor.predict(recent), traj.points[i + 1]);
      ++n;
    }
  }
  // Velocities are up to ~21 m/interval; linear extrapolation should land
  // within a few metres on noiseless straight lines.
  EXPECT_LT(err / n, 8.0);
}

TEST(SvrPredictorTest, RequiresEnoughHistory) {
  Rng rng(3);
  const auto train = linear_trajectories(5, rng);
  SvrPredictor predictor(5);
  Rng fit_rng(4);
  predictor.fit(train, fit_rng);
  const std::vector<Point> short_history = {{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_THROW(predictor.predict(short_history), std::logic_error);
}

TEST(SvrPredictorTest, PredictBeforeFitThrows) {
  SvrPredictor predictor(2);
  const std::vector<Point> pts = {{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_THROW(predictor.predict(pts), std::logic_error);
}

TEST(MarkovPredictorTest, LearnsRepeatedServerPath) {
  ServerMap map(50.0);
  // Three cells in a row, repeatedly visited left->right.
  std::vector<Point> stations = {{0.0, 0.0}, {100.0, 0.0}, {200.0, 0.0}};
  for (const Point p : stations) map.allocate_at(p);
  Trajectory traj;
  traj.interval = 20.0;
  for (int rep = 0; rep < 10; ++rep)
    for (const Point p : stations) traj.points.push_back(p);
  MarkovPredictor predictor(2, &map);
  Rng rng(5);
  predictor.fit({traj}, rng);

  const std::vector<Point> recent = {stations[0], stations[1]};
  const auto top = predictor.predict_servers(recent, 1, map);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], map.server_at(stations[2]));
}

TEST(MarkovPredictorTest, FallsBackNearCurrentOnUnseenContext) {
  ServerMap map(50.0);
  map.allocate_at({0.0, 0.0});
  map.allocate_at({1000.0, 1000.0});
  Trajectory traj;
  traj.points = {{0.0, 0.0}, {0.0, 0.0}};
  MarkovPredictor predictor(1, &map);
  Rng rng(6);
  predictor.fit({traj}, rng);
  // Query from a region never seen in training.
  const std::vector<Point> recent = {{1000.0, 1000.0}};
  const auto top = predictor.predict_servers(recent, 1, map);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], map.server_at({1000.0, 1000.0}));
}

TEST(RnnPredictorTest, TrainsAndBeatsStayPutBaselineOnLinearMotion) {
  Rng rng(7);
  const auto train = linear_trajectories(30, rng);
  const auto test = linear_trajectories(8, rng);
  RnnPredictor predictor(5, /*hidden_dim=*/8, /*epochs=*/200);
  Rng fit_rng(8);
  predictor.fit(train, fit_rng);
  double err_rnn = 0.0, err_stay = 0.0;
  int n = 0;
  for (const auto& traj : test) {
    for (std::size_t i = 5; i + 1 < traj.points.size(); i += 4) {
      const std::span<const Point> recent(traj.points.data(), i + 1);
      err_rnn += distance(predictor.predict(recent), traj.points[i + 1]);
      err_stay += distance(traj.points[i], traj.points[i + 1]);
      ++n;
    }
  }
  EXPECT_LT(err_rnn, err_stay);  // beats "user stays put"
}

TEST(PredictorBase, InvalidTrajectoryLengthRejected) {
  EXPECT_THROW(SvrPredictor(0), std::logic_error);
}

}  // namespace
}  // namespace perdnn
