#include "mobility/evaluate.hpp"

#include <gtest/gtest.h>

namespace perdnn {
namespace {

/// Oracle predictor for protocol tests: always predicts the actual next
/// location supplied at construction (keyed by the last point seen).
class StubPredictor : public MobilityPredictor {
 public:
  StubPredictor(int n, Point answer) : MobilityPredictor(n), answer_(answer) {}

  void fit(const std::vector<Trajectory>&, Rng&) override {}

  Point predict(std::span<const Point> recent) const override {
    window(recent);  // enforce history-length contract
    return answer_;
  }

  std::string name() const override { return "stub"; }

 private:
  Point answer_;
};

/// World: two server cells at x=0 and x=200.
struct EvalFixture {
  ServerMap map{50.0};
  Point cell_a{0.0, 0.0};
  Point cell_b{200.0, 0.0};

  EvalFixture() {
    map.allocate_at(cell_a);
    map.allocate_at(cell_b);
  }
};

TEST(Evaluate, AllFutileWhenUserNeverMovesServers) {
  EvalFixture f;
  Trajectory traj;
  traj.interval = 20.0;
  for (int i = 0; i < 10; ++i) traj.points.push_back(f.cell_a);
  StubPredictor predictor(2, f.cell_a);
  const auto eval = evaluate_predictor(predictor, {traj}, f.map);
  EXPECT_GT(eval.total_predictions, 0);
  EXPECT_EQ(eval.futile_predictions, eval.total_predictions);
  EXPECT_DOUBLE_EQ(eval.futile_ratio(), 1.0);
  EXPECT_EQ(eval.non_futile(), 0);
  EXPECT_DOUBLE_EQ(eval.top1_accuracy(), 0.0);  // no non-futile predictions
}

TEST(Evaluate, PerfectPredictorScoresFullAccuracy) {
  EvalFixture f;
  // User hops A -> B every step; predictor always says B's centre. Half the
  // hops (A->B) are non-futile and predicted exactly; the B->A hops are
  // non-futile but mispredicted.
  Trajectory traj;
  traj.interval = 20.0;
  for (int i = 0; i < 12; ++i)
    traj.points.push_back(i % 2 == 0 ? f.cell_a : f.cell_b);
  StubPredictor to_b(2, f.cell_b);
  const auto eval = evaluate_predictor(to_b, {traj}, f.map);
  EXPECT_EQ(eval.futile_predictions, 0);  // server changes every step
  EXPECT_GT(eval.non_futile(), 0);
  // top-2 of a 2-server world always contains the answer.
  EXPECT_DOUBLE_EQ(eval.top2_accuracy(), 1.0);
  EXPECT_NEAR(eval.top1_accuracy(), 0.5, 0.15);
}

TEST(Evaluate, MaeMeasuresDistance) {
  EvalFixture f;
  Trajectory traj;
  traj.interval = 20.0;
  // Constant motion A->B->A->B...; stub predicts a point 30 m off B.
  for (int i = 0; i < 8; ++i)
    traj.points.push_back(i % 2 == 0 ? f.cell_a : f.cell_b);
  StubPredictor off(2, Point{f.cell_b.x + 30.0, f.cell_b.y});
  const auto eval = evaluate_predictor(off, {traj}, f.map);
  // Errors alternate between 30 (target B) and ~230 (target A).
  EXPECT_GT(eval.mae_all_m, 29.0);
  EXPECT_LT(eval.mae_all_m, 231.0);
}

TEST(Evaluate, InRangeAccuracyFeedsBenefitCost) {
  EvalFixture f;
  Trajectory traj;
  traj.interval = 20.0;
  for (int i = 0; i < 8; ++i)
    traj.points.push_back(i % 2 == 0 ? f.cell_a : f.cell_b);
  StubPredictor exact(2, f.cell_b);
  const auto eval = evaluate_predictor(exact, {traj}, f.map);
  EXPECT_GT(eval.in_range_accuracy, 0.0);
  EXPECT_GT(benefit_cost_ratio(eval), 0.0);
  // Benefit/cost can never exceed the non-futile fraction.
  EXPECT_LE(benefit_cost_ratio(eval), 1.0 - eval.futile_ratio() + 1e-12);
}

TEST(Evaluate, ShortTrajectoriesAreSkipped) {
  EvalFixture f;
  Trajectory tiny;
  tiny.points = {f.cell_a, f.cell_b};  // shorter than n+1 for n=5
  StubPredictor predictor(5, f.cell_a);
  const auto eval = evaluate_predictor(predictor, {tiny}, f.map);
  EXPECT_EQ(eval.total_predictions, 0);
}

TEST(Evaluate, RejectsEmptyTestSet) {
  EvalFixture f;
  StubPredictor predictor(2, f.cell_a);
  EXPECT_THROW(evaluate_predictor(predictor, {}, f.map), std::logic_error);
}

}  // namespace
}  // namespace perdnn
