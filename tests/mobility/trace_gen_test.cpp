#include "mobility/trace_gen.hpp"

#include <gtest/gtest.h>

namespace perdnn {
namespace {

TEST(CampusTraces, ShapeAndDeterminism) {
  CampusTraceConfig config;
  config.num_users = 8;
  config.duration = 3600.0;
  const auto a = generate_campus_traces(config);
  const auto b = generate_campus_traces(config);
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a[u].user, static_cast<int>(u));
    EXPECT_EQ(a[u].interval, config.sample_interval);
    EXPECT_EQ(a[u].points.size(),
              static_cast<std::size_t>(config.duration /
                                       config.sample_interval));
    ASSERT_EQ(a[u].points.size(), b[u].points.size());
    for (std::size_t i = 0; i < a[u].points.size(); ++i)
      EXPECT_EQ(a[u].points[i], b[u].points[i]);
  }
}

TEST(CampusTraces, StaysInsideArea) {
  CampusTraceConfig config;
  config.num_users = 5;
  config.duration = 2.0 * 3600.0;
  for (const auto& traj : generate_campus_traces(config))
    for (const Point p : traj.points)
      EXPECT_TRUE(config.area.contains(p)) << p.x << "," << p.y;
}

TEST(CampusTraces, MeanSpeedNearHalfMeterPerSecond) {
  CampusTraceConfig config;
  config.num_users = 20;
  config.duration = 4.0 * 3600.0;
  const double speed = mean_speed(generate_campus_traces(config));
  // The paper's KAIST users average ~0.5 m/s (walks interleaved with dwells).
  EXPECT_GT(speed, 0.2);
  EXPECT_LT(speed, 0.9);
}

TEST(CampusTraces, DifferentSeedsDiffer) {
  CampusTraceConfig a_config;
  a_config.num_users = 2;
  a_config.duration = 1800.0;
  CampusTraceConfig b_config = a_config;
  b_config.seed = a_config.seed + 1;
  const auto a = generate_campus_traces(a_config);
  const auto b = generate_campus_traces(b_config);
  EXPECT_FALSE(a[0].points[10] == b[0].points[10]);
}

TEST(UrbanTraces, MeanSpeedNearGeolife) {
  UrbanTraceConfig config;
  config.num_users = 30;
  config.duration = 3600.0;
  const double speed = mean_speed(generate_urban_traces(config));
  // Geolife users average ~3.9 m/s across transport modes.
  EXPECT_GT(speed, 2.5);
  EXPECT_LT(speed, 5.5);
}

TEST(UrbanTraces, UrbanUsersFasterThanCampusUsers) {
  CampusTraceConfig campus;
  campus.num_users = 10;
  campus.duration = 3600.0;
  UrbanTraceConfig urban;
  urban.num_users = 10;
  urban.duration = 3600.0;
  EXPECT_GT(mean_speed(generate_urban_traces(urban)),
            3.0 * mean_speed(generate_campus_traces(campus)));
}

TEST(UrbanTraces, StaysInsideArea) {
  UrbanTraceConfig config;
  config.num_users = 5;
  config.duration = 1800.0;
  for (const auto& traj : generate_urban_traces(config))
    for (const Point p : traj.points) EXPECT_TRUE(config.area.contains(p));
}

TEST(Trajectory, ResamplingStridesPoints) {
  Trajectory traj;
  traj.interval = 5.0;
  for (int i = 0; i < 10; ++i)
    traj.points.push_back({static_cast<double>(i), 0.0});
  const Trajectory coarse = traj.resampled(4);
  EXPECT_DOUBLE_EQ(coarse.interval, 20.0);
  ASSERT_EQ(coarse.points.size(), 3u);
  EXPECT_DOUBLE_EQ(coarse.points[1].x, 4.0);
  EXPECT_THROW(traj.resampled(0), std::logic_error);
}

TEST(Trajectory, MeanSpeedOfStraightLine) {
  Trajectory traj;
  traj.interval = 10.0;
  for (int i = 0; i < 5; ++i)
    traj.points.push_back({static_cast<double>(20 * i), 0.0});
  EXPECT_DOUBLE_EQ(traj.mean_speed(), 2.0);
  Trajectory empty;
  EXPECT_DOUBLE_EQ(empty.mean_speed(), 0.0);
}

TEST(Trajectory, AllPointsConcatenates) {
  Trajectory a, b;
  a.points = {{0.0, 0.0}};
  b.points = {{1.0, 1.0}, {2.0, 2.0}};
  EXPECT_EQ(all_points({a, b}).size(), 3u);
}

}  // namespace
}  // namespace perdnn
