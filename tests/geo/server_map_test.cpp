#include "geo/server_map.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace perdnn {
namespace {

TEST(ServerMap, AllocateIsIdempotentPerCell) {
  ServerMap map(50.0);
  const ServerId a = map.allocate_at({10.0, 10.0});
  const ServerId b = map.allocate_at({12.0, 8.0});  // same cell
  EXPECT_EQ(a, b);
  EXPECT_EQ(map.num_servers(), 1);
}

TEST(ServerMap, AllocateForVisitsCountsNewServers) {
  ServerMap map(50.0);
  const int created =
      map.allocate_for_visits({{0.0, 0.0}, {500.0, 500.0}, {1.0, 1.0}});
  EXPECT_EQ(created, 2);
  EXPECT_EQ(map.num_servers(), 2);
  EXPECT_EQ(map.allocate_for_visits({{0.0, 0.0}}), 0);
}

TEST(ServerMap, ServerAtReturnsNoServerForEmptyCell) {
  ServerMap map(50.0);
  map.allocate_at({0.0, 0.0});
  EXPECT_EQ(map.server_at({0.0, 0.0}), 0);
  EXPECT_EQ(map.server_at({5000.0, 5000.0}), kNoServer);
}

TEST(ServerMap, NearestServerFindsClosest) {
  ServerMap map(50.0);
  const ServerId near = map.allocate_at({0.0, 0.0});
  const ServerId far = map.allocate_at({400.0, 0.0});
  EXPECT_EQ(map.nearest_server({30.0, 0.0}, 1000.0), near);
  EXPECT_EQ(map.nearest_server({380.0, 0.0}, 1000.0), far);
  EXPECT_EQ(map.nearest_server({10000.0, 0.0}, 100.0), kNoServer);
}

TEST(ServerMap, ServersWithinRespectsRadius) {
  ServerMap map(50.0);
  map.allocate_at({0.0, 0.0});
  map.allocate_at({150.0, 0.0});
  map.allocate_at({3000.0, 3000.0});
  const auto close = map.servers_within({0.0, 0.0}, 200.0);
  EXPECT_EQ(close.size(), 2u);
  const auto all = map.servers_within({0.0, 0.0}, 10000.0);
  EXPECT_EQ(all.size(), 3u);
  // Sorted by id.
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(ServerMap, ServerCenterBoundsChecked) {
  ServerMap map(50.0);
  map.allocate_at({0.0, 0.0});
  EXPECT_NO_THROW(map.server_center(0));
  EXPECT_THROW(map.server_center(1), std::logic_error);
  EXPECT_THROW(map.server_center(kNoServer), std::logic_error);
}

// Property: server_at(point) and nearest_server agree when the point's own
// cell has a server.
TEST(ServerMap, ServerAtAgreesWithNearest) {
  ServerMap map(50.0);
  Rng rng(7);
  std::vector<Point> points;
  for (int i = 0; i < 300; ++i)
    points.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  map.allocate_for_visits(points);
  for (const Point p : points) {
    const ServerId direct = map.server_at(p);
    ASSERT_NE(direct, kNoServer);
    EXPECT_EQ(direct, map.nearest_server(p, 60.0));
  }
}

}  // namespace
}  // namespace perdnn
