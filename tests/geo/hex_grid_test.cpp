#include "geo/hex_grid.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace perdnn {
namespace {

TEST(HexGrid, RejectsNonPositiveRadius) {
  EXPECT_THROW(HexGrid(0.0), std::logic_error);
  EXPECT_THROW(HexGrid(-1.0), std::logic_error);
}

TEST(HexGrid, OriginCellIsZero) {
  HexGrid grid(50.0);
  const HexCoord cell = grid.cell_at({0.0, 0.0});
  EXPECT_EQ(cell.q, 0);
  EXPECT_EQ(cell.r, 0);
}

// Property: the centre of any cell maps back to that cell.
TEST(HexGrid, CenterRoundTrips) {
  HexGrid grid(50.0);
  for (std::int32_t q = -20; q <= 20; q += 3) {
    for (std::int32_t r = -20; r <= 20; r += 3) {
      const HexCoord cell{q, r};
      const HexCoord back = grid.cell_at(grid.center(cell));
      EXPECT_EQ(back.q, cell.q);
      EXPECT_EQ(back.r, cell.r);
    }
  }
}

// Property: every point lies within one circumradius of its cell's centre.
TEST(HexGrid, PointsAreWithinCircumradiusOfTheirCell) {
  HexGrid grid(50.0);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const Point p{rng.uniform(-2000.0, 2000.0), rng.uniform(-2000.0, 2000.0)};
    const HexCoord cell = grid.cell_at(p);
    EXPECT_LE(distance(grid.center(cell), p), 50.0 + 1e-9);
  }
}

// Property: the assigned cell is the nearest one (true for a hexagonal
// Voronoi tessellation).
TEST(HexGrid, CellAtIsNearestCenter) {
  HexGrid grid(30.0);
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)};
    const HexCoord cell = grid.cell_at(p);
    const double own = distance(grid.center(cell), p);
    for (const HexCoord neighbor : HexGrid::neighbors(cell)) {
      EXPECT_LE(own, distance(grid.center(neighbor), p) + 1e-9);
    }
  }
}

TEST(HexGrid, NeighborsAreAtDistanceOne) {
  const HexCoord origin{4, -2};
  const auto neighbors = HexGrid::neighbors(origin);
  EXPECT_EQ(neighbors.size(), 6u);
  std::set<std::pair<int, int>> unique;
  for (const HexCoord n : neighbors) {
    EXPECT_EQ(HexGrid::hex_distance(origin, n), 1);
    unique.insert({n.q, n.r});
  }
  EXPECT_EQ(unique.size(), 6u);
}

TEST(HexGrid, HexDistanceSymmetricAndTriangle) {
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    const HexCoord a{static_cast<std::int32_t>(rng.uniform_int(-10, 10)),
                     static_cast<std::int32_t>(rng.uniform_int(-10, 10))};
    const HexCoord b{static_cast<std::int32_t>(rng.uniform_int(-10, 10)),
                     static_cast<std::int32_t>(rng.uniform_int(-10, 10))};
    const HexCoord c{static_cast<std::int32_t>(rng.uniform_int(-10, 10)),
                     static_cast<std::int32_t>(rng.uniform_int(-10, 10))};
    EXPECT_EQ(HexGrid::hex_distance(a, b), HexGrid::hex_distance(b, a));
    EXPECT_LE(HexGrid::hex_distance(a, c),
              HexGrid::hex_distance(a, b) + HexGrid::hex_distance(b, c));
  }
}

// Property: cells_within returns exactly the cells whose centres fall inside
// the disc (verified against a brute-force scan).
TEST(HexGrid, CellsWithinMatchesBruteForce) {
  HexGrid grid(50.0);
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const Point p{rng.uniform(-300.0, 300.0), rng.uniform(-300.0, 300.0)};
    const double radius = rng.uniform(0.0, 220.0);
    std::set<std::pair<int, int>> got;
    for (const HexCoord cell : grid.cells_within(p, radius))
      got.insert({cell.q, cell.r});
    const HexCoord origin = grid.cell_at(p);
    for (std::int32_t dq = -10; dq <= 10; ++dq) {
      for (std::int32_t dr = -10; dr <= 10; ++dr) {
        const HexCoord cell{origin.q + dq, origin.r + dr};
        const bool inside = distance(grid.center(cell), p) <= radius;
        EXPECT_EQ(got.count({cell.q, cell.r}) > 0, inside)
            << "cell (" << cell.q << "," << cell.r << ") radius " << radius;
      }
    }
  }
}

TEST(HexGrid, ZeroRadiusReturnsAtMostOwnCell) {
  HexGrid grid(50.0);
  const auto cells = grid.cells_within({1.0, 1.0}, 0.0);
  EXPECT_LE(cells.size(), 1u);
}

}  // namespace
}  // namespace perdnn
