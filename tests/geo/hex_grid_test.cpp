#include "geo/hex_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace perdnn {
namespace {

TEST(HexGrid, RejectsNonPositiveRadius) {
  EXPECT_THROW(HexGrid(0.0), std::logic_error);
  EXPECT_THROW(HexGrid(-1.0), std::logic_error);
}

TEST(HexGrid, OriginCellIsZero) {
  HexGrid grid(50.0);
  const HexCoord cell = grid.cell_at({0.0, 0.0});
  EXPECT_EQ(cell.q, 0);
  EXPECT_EQ(cell.r, 0);
}

// Property: the centre of any cell maps back to that cell.
TEST(HexGrid, CenterRoundTrips) {
  HexGrid grid(50.0);
  for (std::int32_t q = -20; q <= 20; q += 3) {
    for (std::int32_t r = -20; r <= 20; r += 3) {
      const HexCoord cell{q, r};
      const HexCoord back = grid.cell_at(grid.center(cell));
      EXPECT_EQ(back.q, cell.q);
      EXPECT_EQ(back.r, cell.r);
    }
  }
}

// Property: every point lies within one circumradius of its cell's centre.
TEST(HexGrid, PointsAreWithinCircumradiusOfTheirCell) {
  HexGrid grid(50.0);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const Point p{rng.uniform(-2000.0, 2000.0), rng.uniform(-2000.0, 2000.0)};
    const HexCoord cell = grid.cell_at(p);
    EXPECT_LE(distance(grid.center(cell), p), 50.0 + 1e-9);
  }
}

// Property: the assigned cell is the nearest one (true for a hexagonal
// Voronoi tessellation).
TEST(HexGrid, CellAtIsNearestCenter) {
  HexGrid grid(30.0);
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)};
    const HexCoord cell = grid.cell_at(p);
    const double own = distance(grid.center(cell), p);
    for (const HexCoord neighbor : HexGrid::neighbors(cell)) {
      EXPECT_LE(own, distance(grid.center(neighbor), p) + 1e-9);
    }
  }
}

TEST(HexGrid, NeighborsAreAtDistanceOne) {
  const HexCoord origin{4, -2};
  const auto neighbors = HexGrid::neighbors(origin);
  EXPECT_EQ(neighbors.size(), 6u);
  std::set<std::pair<int, int>> unique;
  for (const HexCoord n : neighbors) {
    EXPECT_EQ(HexGrid::hex_distance(origin, n), 1);
    unique.insert({n.q, n.r});
  }
  EXPECT_EQ(unique.size(), 6u);
}

TEST(HexGrid, HexDistanceSymmetricAndTriangle) {
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    const HexCoord a{static_cast<std::int32_t>(rng.uniform_int(-10, 10)),
                     static_cast<std::int32_t>(rng.uniform_int(-10, 10))};
    const HexCoord b{static_cast<std::int32_t>(rng.uniform_int(-10, 10)),
                     static_cast<std::int32_t>(rng.uniform_int(-10, 10))};
    const HexCoord c{static_cast<std::int32_t>(rng.uniform_int(-10, 10)),
                     static_cast<std::int32_t>(rng.uniform_int(-10, 10))};
    EXPECT_EQ(HexGrid::hex_distance(a, b), HexGrid::hex_distance(b, a));
    EXPECT_LE(HexGrid::hex_distance(a, c),
              HexGrid::hex_distance(a, b) + HexGrid::hex_distance(b, c));
  }
}

// Property: cells_within returns exactly the cells whose centres fall inside
// the disc (verified against a brute-force scan).
TEST(HexGrid, CellsWithinMatchesBruteForce) {
  HexGrid grid(50.0);
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const Point p{rng.uniform(-300.0, 300.0), rng.uniform(-300.0, 300.0)};
    const double radius = rng.uniform(0.0, 220.0);
    std::set<std::pair<int, int>> got;
    for (const HexCoord cell : grid.cells_within(p, radius))
      got.insert({cell.q, cell.r});
    const HexCoord origin = grid.cell_at(p);
    for (std::int32_t dq = -10; dq <= 10; ++dq) {
      for (std::int32_t dr = -10; dr <= 10; ++dr) {
        const HexCoord cell{origin.q + dq, origin.r + dr};
        const bool inside = distance(grid.center(cell), p) <= radius;
        EXPECT_EQ(got.count({cell.q, cell.r}) > 0, inside)
            << "cell (" << cell.q << "," << cell.r << ") radius " << radius;
      }
    }
  }
}

TEST(HexGrid, ZeroRadiusReturnsAtMostOwnCell) {
  HexGrid grid(50.0);
  const auto cells = grid.cells_within({1.0, 1.0}, 0.0);
  EXPECT_LE(cells.size(), 1u);
}

// Boundary: a point exactly on the edge between two cells (the midpoint of
// their centres) must resolve to one of those two cells, deterministically —
// cell_at must not invent a third cell or flip between calls. These are the
// "client standing on a tile border" positions the sharded world feeds in.
TEST(HexGrid, EdgeMidpointsResolveToAnAdjacentCellDeterministically) {
  HexGrid grid(50.0);
  for (std::int32_t q = -6; q <= 6; q += 2) {
    for (std::int32_t r = -6; r <= 6; r += 2) {
      const HexCoord cell{q, r};
      const Point c0 = grid.center(cell);
      for (const HexCoord neighbor : HexGrid::neighbors(cell)) {
        const Point c1 = grid.center(neighbor);
        const Point mid{(c0.x + c1.x) / 2.0, (c0.y + c1.y) / 2.0};
        const HexCoord got = grid.cell_at(mid);
        EXPECT_TRUE(got == cell || got == neighbor)
            << "midpoint of (" << q << "," << r << ") and (" << neighbor.q
            << "," << neighbor.r << ") landed in (" << got.q << "," << got.r
            << ")";
        // Deterministic: asking again gives the same answer.
        const HexCoord again = grid.cell_at(mid);
        EXPECT_TRUE(got == again);
      }
    }
  }
}

// Boundary: cell vertices are equidistant from three cells; cell_at must
// still pick one of those three nearest cells (never a farther one).
TEST(HexGrid, CellVerticesResolveToANearestCell) {
  HexGrid grid(40.0);
  for (std::int32_t q = -4; q <= 4; q += 2) {
    for (std::int32_t r = -4; r <= 4; r += 2) {
      const HexCoord cell{q, r};
      const Point c = grid.center(cell);
      for (int k = 0; k < 6; ++k) {
        // Pointy-top vertices sit at 30° + k·60° from the centre.
        const double angle = (30.0 + 60.0 * k) * 3.14159265358979323846 / 180.0;
        const Point vertex{c.x + 40.0 * std::cos(angle),
                           c.y + 40.0 * std::sin(angle)};
        const HexCoord got = grid.cell_at(vertex);
        const double own = distance(grid.center(got), vertex);
        // Whatever it picked, no neighbour of the picked cell is strictly
        // closer: the choice is among the tied nearest cells.
        for (const HexCoord n : HexGrid::neighbors(got))
          EXPECT_LE(own, distance(grid.center(n), vertex) + 1e-6);
      }
    }
  }
}

// No wraparound: neighbour queries at extreme coordinates stay local — six
// distinct cells, all at hex distance 1, each offset by at most one step in
// q and r. (A modular/wrapping grid would teleport across the world.)
TEST(HexGrid, NeighborsAtExtremeCoordinatesDoNotWrap) {
  const HexCoord extremes[] = {{1000000, 0},
                               {-1000000, 0},
                               {0, 1000000},
                               {0, -1000000},
                               {999999, -999999}};
  for (const HexCoord origin : extremes) {
    std::set<std::pair<int, int>> unique;
    for (const HexCoord n : HexGrid::neighbors(origin)) {
      EXPECT_EQ(HexGrid::hex_distance(origin, n), 1);
      EXPECT_LE(std::abs(n.q - origin.q), 1);
      EXPECT_LE(std::abs(n.r - origin.r), 1);
      unique.insert({n.q, n.r});
    }
    EXPECT_EQ(unique.size(), 6u);
  }
}

// cells_within far from the origin returns no duplicates and only cells
// whose centres genuinely lie in the disc — another wraparound guard.
TEST(HexGrid, CellsWithinFarFromOriginIsDuplicateFreeAndLocal) {
  HexGrid grid(50.0);
  const Point far{1.0e6, -7.5e5};
  const auto cells = grid.cells_within(far, 180.0);
  EXPECT_FALSE(cells.empty());
  std::set<std::pair<int, int>> unique;
  for (const HexCoord cell : cells) {
    EXPECT_LE(distance(grid.center(cell), far), 180.0 + 1e-6);
    unique.insert({cell.q, cell.r});
  }
  EXPECT_EQ(unique.size(), cells.size());
}

// The allocation-free variant returns exactly what cells_within returns,
// and a reused scratch vector is cleared on every call (stale contents from
// a previous, larger query must not leak into the next result).
TEST(HexGrid, CellsWithinIntoMatchesAndClearsScratch) {
  HexGrid grid(50.0);
  Rng rng(37);
  std::vector<HexCoord> scratch;
  for (int trial = 0; trial < 25; ++trial) {
    const Point p{rng.uniform(-400.0, 400.0), rng.uniform(-400.0, 400.0)};
    const double radius = rng.uniform(0.0, 250.0);
    const auto fresh = grid.cells_within(p, radius);
    grid.cells_within_into(p, radius, scratch);
    ASSERT_EQ(scratch.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i)
      EXPECT_TRUE(scratch[i] == fresh[i]);
  }
  // Large query followed by an empty one: the scratch must come back empty.
  grid.cells_within_into({0.0, 0.0}, 300.0, scratch);
  EXPECT_GT(scratch.size(), 1u);
  grid.cells_within_into({1.0e4, 1.0e4}, 0.0, scratch);
  EXPECT_LE(scratch.size(), 1u);
}

}  // namespace
}  // namespace perdnn
