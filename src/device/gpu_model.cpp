#include "device/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace perdnn {

GpuContentionModel::GpuContentionModel(DeviceProfile server,
                                       GpuContentionConfig config)
    : server_(std::move(server)), config_(config) {
  PERDNN_CHECK(config_.linear_slowdown >= 0.0);
  PERDNN_CHECK(config_.slowdown_exponent >= 1.0);
}

double GpuContentionModel::slowdown(double effective_load) const {
  PERDNN_CHECK(effective_load >= 0.0);
  const double extra = std::max(0.0, effective_load - 1.0);
  // 1 + a*x^e: linear-ish at first, super-linear as the GPU saturates.
  return 1.0 +
         config_.linear_slowdown * std::pow(extra, config_.slowdown_exponent);
}

double GpuContentionModel::sample_effective_load(int num_clients,
                                                 Rng& rng) const {
  PERDNN_CHECK(num_clients >= 0);
  if (num_clients == 0) return 0.0;
  const double jitter =
      config_.base_jitter + config_.jitter_per_client * (num_clients - 1);
  const double load = num_clients * (1.0 + jitter * rng.normal());
  return std::max(0.25, load);
}

GpuStats GpuContentionModel::stats_for_load(int num_clients,
                                            double effective_load,
                                            Rng& rng) const {
  GpuStats stats;
  stats.num_clients = num_clients;
  // Utilisation saturates exponentially with load (one client already keeps
  // the GPU fairly busy during its bursts).
  const double kutil = 100.0 * (1.0 - std::exp(-0.30 * effective_load));
  const double mutil = 100.0 * (1.0 - std::exp(-0.18 * effective_load));
  stats.kernel_util =
      std::clamp(kutil + config_.stats_noise * rng.normal(), 0.0, 100.0);
  stats.mem_util =
      std::clamp(mutil + config_.stats_noise * rng.normal(), 0.0, 100.0);
  stats.mem_usage_mb = 600.0 + 850.0 * effective_load +
                       25.0 * rng.normal();
  // Temperature trails utilisation; saturates near the thermal limit.
  stats.temperature_c = std::clamp(
      38.0 + 5.5 * effective_load + 1.5 * rng.normal(), 30.0, 92.0);
  return stats;
}

Seconds GpuContentionModel::expected_layer_time(const LayerSpec& layer,
                                                Bytes layer_input_bytes,
                                                double effective_load) const {
  const Seconds base = layer_time_on(server_, layer, layer_input_bytes);
  return base * slowdown(std::max(1.0, effective_load));
}

Seconds GpuContentionModel::layer_time(const LayerSpec& layer,
                                       Bytes layer_input_bytes,
                                       double effective_load, Rng& rng) const {
  const Seconds expected =
      expected_layer_time(layer, layer_input_bytes, effective_load);
  const double noise = 1.0 + config_.latency_noise * rng.normal();
  return expected * std::max(0.5, noise);
}

}  // namespace perdnn
