// Offline concurrency-sweep profiler: the analogue of the paper's extended
// TensorRT perf_client. It executes (simulated) layers under nominal
// concurrency levels 1..N, recording for every request the nvml statistics
// observed at submission time and the measured latency. The resulting
// records train the execution-time estimators (Section 3.C.1).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "device/gpu_model.hpp"
#include "nn/model.hpp"

namespace perdnn {

/// One (layer, observed GPU state, measured latency) training record.
struct ProfileRecord {
  LayerSpec layer;     // hyperparameters of the profiled layer
  Bytes input_bytes = 0;
  GpuStats stats;      // nvml snapshot when the request was issued
  Seconds time = 0.0;  // measured layer latency
  double true_load = 0.0;  // hidden ground truth (for tests only)
};

struct ProfilerConfig {
  int max_clients = 16;
  int samples_per_level = 12;  // draws per (layer, concurrency) pair
  /// Also profile pointwise layers (bn/relu/pool/...). They are cheap on a
  /// GPU but the partitioner still needs estimates for them, so production
  /// training sweeps include them; focused experiments (Fig 4 is conv-only)
  /// can turn them off.
  bool include_pointwise = true;
};

class ConcurrencyProfiler {
 public:
  ConcurrencyProfiler(const GpuContentionModel* gpu, Rng rng);

  /// Profiles every compute layer (conv/dwconv/fc) of the given models across
  /// the concurrency sweep. Pointwise layers are negligible on a GPU and are
  /// estimated analytically (as the paper trains models per heavy layer type).
  std::vector<ProfileRecord> profile_models(
      std::span<const DnnModel* const> models, const ProfilerConfig& config);

  /// Profiles a single layer at one nominal concurrency level, drawing from
  /// the profiler's own stream.
  ProfileRecord profile_once(const LayerSpec& layer, Bytes input_bytes,
                             int num_clients);

  /// Same, drawing from an explicit stream. profile_models() forks one
  /// stream per (layer, level, sample) record — serially, in record order —
  /// and then executes the records in parallel, so the sweep output is
  /// identical at any thread count.
  ProfileRecord profile_once(const LayerSpec& layer, Bytes input_bytes,
                             int num_clients, Rng& rng) const;

 private:
  const GpuContentionModel* gpu_;
  Rng rng_;
};

}  // namespace perdnn
