#include "device/profiler.hpp"

#include "common/check.hpp"

namespace perdnn {

ConcurrencyProfiler::ConcurrencyProfiler(const GpuContentionModel* gpu,
                                         Rng rng)
    : gpu_(gpu), rng_(rng) {
  PERDNN_CHECK(gpu != nullptr);
}

ProfileRecord ConcurrencyProfiler::profile_once(const LayerSpec& layer,
                                                Bytes input_bytes,
                                                int num_clients) {
  PERDNN_CHECK(num_clients >= 1);
  ProfileRecord rec;
  rec.layer = layer;
  rec.input_bytes = input_bytes;
  rec.true_load = gpu_->sample_effective_load(num_clients, rng_);
  rec.stats = gpu_->stats_for_load(num_clients, rec.true_load, rng_);
  rec.time = gpu_->layer_time(layer, input_bytes, rec.true_load, rng_);
  return rec;
}

std::vector<ProfileRecord> ConcurrencyProfiler::profile_models(
    std::span<const DnnModel* const> models, const ProfilerConfig& config) {
  PERDNN_CHECK(config.max_clients >= 1 && config.samples_per_level >= 1);
  std::vector<ProfileRecord> records;
  for (const DnnModel* model : models) {
    PERDNN_CHECK(model != nullptr);
    for (LayerId id = 0; id < model->num_layers(); ++id) {
      const LayerSpec& layer = model->layer(id);
      if (layer.kind == LayerKind::kInput) continue;
      if (!config.include_pointwise && !layer.is_compute()) continue;
      const Bytes in_bytes = model->input_bytes(id);
      for (int n = 1; n <= config.max_clients; ++n)
        for (int s = 0; s < config.samples_per_level; ++s)
          records.push_back(profile_once(layer, in_bytes, n));
    }
  }
  return records;
}

}  // namespace perdnn
