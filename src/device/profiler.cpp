#include "device/profiler.hpp"

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace perdnn {

ConcurrencyProfiler::ConcurrencyProfiler(const GpuContentionModel* gpu,
                                         Rng rng)
    : gpu_(gpu), rng_(rng) {
  PERDNN_CHECK(gpu != nullptr);
}

ProfileRecord ConcurrencyProfiler::profile_once(const LayerSpec& layer,
                                                Bytes input_bytes,
                                                int num_clients) {
  return profile_once(layer, input_bytes, num_clients, rng_);
}

ProfileRecord ConcurrencyProfiler::profile_once(const LayerSpec& layer,
                                                Bytes input_bytes,
                                                int num_clients,
                                                Rng& rng) const {
  PERDNN_CHECK(num_clients >= 1);
  ProfileRecord rec;
  rec.layer = layer;
  rec.input_bytes = input_bytes;
  rec.true_load = gpu_->sample_effective_load(num_clients, rng);
  rec.stats = gpu_->stats_for_load(num_clients, rec.true_load, rng);
  rec.time = gpu_->layer_time(layer, input_bytes, rec.true_load, rng);
  return rec;
}

std::vector<ProfileRecord> ConcurrencyProfiler::profile_models(
    std::span<const DnnModel* const> models, const ProfilerConfig& config) {
  PERDNN_CHECK(config.max_clients >= 1 && config.samples_per_level >= 1);

  // Pass 1 (serial): enumerate the sweep and fork one Rng stream per record
  // in sweep order. The fork sequence depends only on the sweep shape, so
  // the records are reproducible regardless of how pass 2 is scheduled.
  struct Job {
    const LayerSpec* layer;
    Bytes input_bytes;
    int num_clients;
    Rng rng;
  };
  std::vector<Job> jobs;
  for (const DnnModel* model : models) {
    PERDNN_CHECK(model != nullptr);
    for (LayerId id = 0; id < model->num_layers(); ++id) {
      const LayerSpec& layer = model->layer(id);
      if (layer.kind == LayerKind::kInput) continue;
      if (!config.include_pointwise && !layer.is_compute()) continue;
      const Bytes in_bytes = model->input_bytes(id);
      for (int n = 1; n <= config.max_clients; ++n)
        for (int s = 0; s < config.samples_per_level; ++s)
          jobs.push_back({&layer, in_bytes, n, rng_.fork()});
    }
  }

  // Pass 2 (parallel): execute the sweep; results merge in sweep order.
  return par::parallel_map(jobs.size(), [&](std::size_t i) {
    Job& job = jobs[i];
    return profile_once(*job.layer, job.input_bytes, job.num_clients, job.rng);
  });
}

}  // namespace perdnn
