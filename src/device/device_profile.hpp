// Analytical device performance profiles.
//
// The paper records per-layer execution times of real hardware (ODROID XU4
// client, Titan Xp server) with caffe and replays them in simulation. We
// have no such hardware, so we substitute a calibrated roofline-style model:
// compute layers are bound by an effective FLOP rate, pointwise layers by an
// effective memory bandwidth, and every layer pays a framework dispatch
// overhead. The constants are calibrated so that the end-to-end shapes match
// the paper (local Inception ≈ 1 s on the client, offloaded query ≈ 0.17 s,
// upload-window throughput close to Table II).
#pragma once

#include <string>

#include "common/types.hpp"
#include "nn/layer.hpp"
#include "nn/model.hpp"

namespace perdnn {

struct DeviceProfile {
  std::string name;
  /// Effective throughput for conv/fc kernels, in GFLOP/s.
  double gflops = 1.0;
  /// Depthwise convolutions achieve a fraction of `gflops` (low arithmetic
  /// intensity); MobileNet on CPU is notoriously memory-bound.
  double depthwise_efficiency = 0.5;
  /// Effective bandwidth for pointwise layers (bn/relu/pool/...), in GB/s.
  double pointwise_gbps = 1.0;
  /// Fixed per-layer dispatch overhead (framework + kernel launch).
  Seconds per_layer_overhead = 0.0;
};

/// ODROID XU4-class embedded CPU client (the paper's client board).
DeviceProfile odroid_xu4_profile();

/// Titan Xp-class desktop GPU edge server, uncontended.
DeviceProfile titan_xp_profile();

/// Uncontended execution time of one layer on the given device.
Seconds layer_time_on(const DeviceProfile& device, const LayerSpec& layer,
                      Bytes layer_input_bytes);

/// Per-layer client execution times for a whole model: the dynamic half of
/// the paper's "DNN profile" that the client uploads to the master server.
struct DnnProfile {
  std::string model_name;
  std::vector<Seconds> client_time;  // indexed by LayerId
};

DnnProfile profile_on_client(const DnnModel& model,
                             const DeviceProfile& client);

/// Sum of client execution times (full on-device latency).
Seconds total_client_time(const DnnProfile& profile);

}  // namespace perdnn
