#include "device/device_profile.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace perdnn {

DeviceProfile odroid_xu4_profile() {
  DeviceProfile p;
  p.name = "odroid-xu4";
  // Exynos 5422 big.LITTLE with NEON; caffe achieves a few GFLOP/s on conv.
  p.gflops = 4.0;
  p.depthwise_efficiency = 0.25;
  p.pointwise_gbps = 2.0;
  p.per_layer_overhead = 0.8e-3;
  return p;
}

DeviceProfile titan_xp_profile() {
  DeviceProfile p;
  p.name = "titan-xp";
  // Effective small-batch throughput, far below the 12 TFLOP/s peak.
  p.gflops = 1000.0;
  p.depthwise_efficiency = 0.5;
  p.pointwise_gbps = 200.0;
  p.per_layer_overhead = 50e-6;
  return p;
}

Seconds layer_time_on(const DeviceProfile& device, const LayerSpec& layer,
                      Bytes layer_input_bytes) {
  PERDNN_CHECK(device.gflops > 0 && device.pointwise_gbps > 0);
  if (layer.kind == LayerKind::kInput) return 0.0;
  Seconds t = device.per_layer_overhead;
  // Roofline: a layer is limited by whichever is slower, arithmetic or
  // streaming its weights + activations through memory. The memory term is
  // what makes huge FC layers (Inception's 21k-way head, ~90 MB of weights)
  // expensive on an embedded CPU even though their FLOP count is tiny.
  const double mem_time =
      static_cast<double>(layer.weight_bytes + layer_input_bytes +
                          layer.output_bytes) /
      (device.pointwise_gbps * 1e9);
  switch (layer.kind) {
    case LayerKind::kConv:
    case LayerKind::kFullyConnected:
      t += std::max(layer.flops / (device.gflops * 1e9), mem_time);
      break;
    case LayerKind::kDepthwiseConv:
      t += std::max(layer.flops /
                        (device.gflops * device.depthwise_efficiency * 1e9),
                    mem_time);
      break;
    default:
      t += mem_time;
      break;
  }
  return t;
}

DnnProfile profile_on_client(const DnnModel& model,
                             const DeviceProfile& client) {
  DnnProfile profile;
  profile.model_name = model.name();
  profile.client_time.reserve(static_cast<std::size_t>(model.num_layers()));
  for (LayerId id = 0; id < model.num_layers(); ++id) {
    profile.client_time.push_back(
        layer_time_on(client, model.layer(id), model.input_bytes(id)));
  }
  return profile;
}

Seconds total_client_time(const DnnProfile& profile) {
  Seconds total = 0;
  for (Seconds t : profile.client_time) total += t;
  return total;
}

}  // namespace perdnn
