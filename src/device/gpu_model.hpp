// Ground-truth GPU contention model and synthetic nvml statistics.
//
// The paper profiles a real Titan Xp under concurrent inference streams
// (TensorRT perf_client) and records nvml statistics with each request. We
// substitute a contention model with the same causal structure:
//
//   * every layer's latency is inflated by a slowdown factor that is a
//     *non-linear* function of the instantaneous GPU load;
//   * the instantaneous load fluctuates around the nominal number of
//     concurrent clients, with amplitude growing with the client count
//     (scheduling jitter — the reason hyperparameter-only estimators degrade
//     at high concurrency, Fig 4);
//   * nvml-like statistics (kernel/memory utilisation, temperature, memory
//     usage) are noisy observations of that instantaneous load, which is why
//     estimators that consume them beat estimators that do not.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "device/device_profile.hpp"
#include "nn/layer.hpp"

namespace perdnn {

/// nvml-style snapshot an edge server reports to the master server.
struct GpuStats {
  int num_clients = 0;        ///< concurrent offloading clients (server knows this)
  double kernel_util = 0.0;   ///< % time kernels executing over sample period
  double mem_util = 0.0;      ///< % time memory ops active
  double mem_usage_mb = 0.0;  ///< allocated device memory
  double temperature_c = 0.0; ///< GPU core temperature
  /// Statistics intervals since this snapshot was taken. 0 = fresh (the
  /// normal case); a positive age marks a snapshot the control plane kept
  /// because newer telemetry never arrived (fault: telemetry dropout).
  /// Consumers that care about freshness (MasterServer's degraded-estimation
  /// path) compare it against their staleness budget; the estimators
  /// themselves never read it as a feature.
  int age_intervals = 0;
};

struct GpuContentionConfig {
  /// Linear contention coefficient per extra client.
  double linear_slowdown = 0.45;
  /// Super-linear exponent modelling cache/memory-bus interference.
  double slowdown_exponent = 1.25;
  /// Relative load fluctuation at 1 client ...
  double base_jitter = 0.03;
  /// ... plus this much per additional client.
  double jitter_per_client = 0.035;
  /// Multiplicative measurement noise on layer latency.
  double latency_noise = 0.04;
  /// Observation noise on utilisation statistics (percentage points).
  double stats_noise = 2.0;
};

class GpuContentionModel {
 public:
  GpuContentionModel(DeviceProfile server, GpuContentionConfig config = {});

  /// Deterministic slowdown for a given *effective* (instantaneous) load.
  /// effective_load = 1 means an uncontended GPU.
  double slowdown(double effective_load) const;

  /// Draws the instantaneous load around a nominal client count.
  double sample_effective_load(int num_clients, Rng& rng) const;

  /// nvml statistics consistent with an effective load.
  GpuStats stats_for_load(int num_clients, double effective_load,
                          Rng& rng) const;

  /// Ground-truth layer latency under the given effective load, with
  /// measurement noise. `layer_input_bytes` as in layer_time_on().
  Seconds layer_time(const LayerSpec& layer, Bytes layer_input_bytes,
                     double effective_load, Rng& rng) const;

  /// Expected (noise-free) layer latency at the *nominal* load; the
  /// simulator uses this as the true service time contribution.
  Seconds expected_layer_time(const LayerSpec& layer, Bytes layer_input_bytes,
                              double effective_load) const;

  const DeviceProfile& server() const { return server_; }
  const GpuContentionConfig& config() const { return config_; }

 private:
  DeviceProfile server_;
  GpuContentionConfig config_;
};

}  // namespace perdnn
