// Compiled runtime view of a FaultPlan: the per-interval queries the
// simulator (and any other consumer driving a fleet through time) asks while
// the clock advances. Events are bucketed per entity into sorted windows at
// construction, so every query is a binary search over that entity's own
// windows — O(log k) with k the number of faults scripted for it.
//
// The timeline is immutable and answers purely from the plan; consumers own
// any *state* consequences (wiping a crashed server's cache, detaching its
// clients) by iterating crashes_starting_at / disconnects_starting_at once
// per interval.
#pragma once

#include <vector>

#include "faults/fault_plan.hpp"

namespace perdnn {

/// One state-change edge in the interval-indexed view of a fault class:
/// `begins` is true at a window's first interval and false at its exclusive
/// end. Consumers keep a per-entity active *count* (an entity is faulted
/// while its count is positive), which reproduces the union semantics of
/// overlapping windows exactly. Edge lists are sorted by (interval, id), so
/// walking the clock forward applies each interval's edges as one contiguous
/// slice — no per-entity rescans of the plan.
struct FaultEdge {
  int interval = 0;
  std::int32_t id = 0;  // server or client id; 0 for the global backhaul list
  bool begins = false;
};

class FaultTimeline {
 public:
  /// Compiles `plan` for a world of the given size; bounds-checks every
  /// event id (throws std::logic_error on an out-of-range entity).
  FaultTimeline(const FaultPlan& plan, int num_servers, int num_clients);
  /// Empty timeline: every query reports "healthy".
  FaultTimeline() = default;

  bool empty() const { return empty_; }

  /// Crash events whose window opens exactly at `interval` (deduplicated,
  /// sorted by server id) — the moment the cache is lost and clients drop.
  std::vector<ServerId> crashes_starting_at(int interval) const;
  /// Clients whose disconnect window opens exactly at `interval`.
  std::vector<ClientId> disconnects_starting_at(int interval) const;

  bool server_down(ServerId server, int interval) const;
  bool telemetry_down(ServerId server, int interval) const;
  bool client_offline(ClientId client, int interval) const;

  /// Remaining backhaul capacity fraction on the (unordered) link between
  /// `a` and `b` during `interval`: 1.0 = healthy, 0.0 = outage. When
  /// several events overlap the link, the worst (minimum) factor applies.
  double backhaul_factor(ServerId a, ServerId b, int interval) const;

  /// True if any backhaul event at all is active during `interval` — lets
  /// consumers skip per-link accounting entirely on healthy intervals.
  bool any_backhaul_fault(int interval) const;

  // Interval-indexed edge lists, precompiled at construction for consumers
  // that advance the clock one interval at a time (the sharded engine).
  // Counting begins/ends per entity is equivalent to the per-entity window
  // queries above — tests/faults/fault_timeline_index_test.cpp proves it.
  const std::vector<FaultEdge>& server_down_edges() const {
    return server_down_edges_;
  }
  const std::vector<FaultEdge>& telemetry_edges() const {
    return telemetry_edges_;
  }
  const std::vector<FaultEdge>& client_offline_edges() const {
    return client_offline_edges_;
  }
  /// Backhaul window activity edges (id unused): a positive count means
  /// any_backhaul_fault() is true for the interval.
  const std::vector<FaultEdge>& backhaul_edges() const {
    return backhaul_edges_;
  }

  /// The contiguous [first, last) slice of `edges` at exactly `interval`
  /// (binary search; edges are sorted by interval).
  static std::pair<const FaultEdge*, const FaultEdge*> edges_at(
      const std::vector<FaultEdge>& edges, int interval);

 private:
  struct Window {
    int start = 0;
    int end = 0;  // exclusive
  };
  struct LinkWindow {
    int start = 0;
    int end = 0;
    ServerId peer = kAllServers;  // kAllServers = wildcard
    double factor = 0.0;          // remaining capacity = 1 - severity
  };

  static bool in_any(const std::vector<Window>& windows, int interval);

  bool empty_ = true;
  std::vector<std::vector<Window>> server_down_;      // per server
  std::vector<std::vector<Window>> telemetry_down_;   // per server
  std::vector<std::vector<Window>> client_offline_;   // per client
  std::vector<std::vector<LinkWindow>> backhaul_;     // per server endpoint
  std::vector<std::pair<int, ServerId>> crash_starts_;       // sorted
  std::vector<std::pair<int, ClientId>> disconnect_starts_;  // sorted
  std::vector<Window> backhaul_active_;  // union-ish: any event window
  // Interval-indexed views, each sorted by (interval, id, begins).
  std::vector<FaultEdge> server_down_edges_;
  std::vector<FaultEdge> telemetry_edges_;
  std::vector<FaultEdge> client_offline_edges_;
  std::vector<FaultEdge> backhaul_edges_;
};

}  // namespace perdnn
