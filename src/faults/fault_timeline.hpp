// Compiled runtime view of a FaultPlan: the per-interval queries the
// simulator (and any other consumer driving a fleet through time) asks while
// the clock advances. Events are bucketed per entity into sorted windows at
// construction, so every query is a binary search over that entity's own
// windows — O(log k) with k the number of faults scripted for it.
//
// The timeline is immutable and answers purely from the plan; consumers own
// any *state* consequences (wiping a crashed server's cache, detaching its
// clients) by iterating crashes_starting_at / disconnects_starting_at once
// per interval.
#pragma once

#include <vector>

#include "faults/fault_plan.hpp"

namespace perdnn {

class FaultTimeline {
 public:
  /// Compiles `plan` for a world of the given size; bounds-checks every
  /// event id (throws std::logic_error on an out-of-range entity).
  FaultTimeline(const FaultPlan& plan, int num_servers, int num_clients);
  /// Empty timeline: every query reports "healthy".
  FaultTimeline() = default;

  bool empty() const { return empty_; }

  /// Crash events whose window opens exactly at `interval` (deduplicated,
  /// sorted by server id) — the moment the cache is lost and clients drop.
  std::vector<ServerId> crashes_starting_at(int interval) const;
  /// Clients whose disconnect window opens exactly at `interval`.
  std::vector<ClientId> disconnects_starting_at(int interval) const;

  bool server_down(ServerId server, int interval) const;
  bool telemetry_down(ServerId server, int interval) const;
  bool client_offline(ClientId client, int interval) const;

  /// Remaining backhaul capacity fraction on the (unordered) link between
  /// `a` and `b` during `interval`: 1.0 = healthy, 0.0 = outage. When
  /// several events overlap the link, the worst (minimum) factor applies.
  double backhaul_factor(ServerId a, ServerId b, int interval) const;

  /// True if any backhaul event at all is active during `interval` — lets
  /// consumers skip per-link accounting entirely on healthy intervals.
  bool any_backhaul_fault(int interval) const;

 private:
  struct Window {
    int start = 0;
    int end = 0;  // exclusive
  };
  struct LinkWindow {
    int start = 0;
    int end = 0;
    ServerId peer = kAllServers;  // kAllServers = wildcard
    double factor = 0.0;          // remaining capacity = 1 - severity
  };

  static bool in_any(const std::vector<Window>& windows, int interval);

  bool empty_ = true;
  std::vector<std::vector<Window>> server_down_;      // per server
  std::vector<std::vector<Window>> telemetry_down_;   // per server
  std::vector<std::vector<Window>> client_offline_;   // per client
  std::vector<std::vector<LinkWindow>> backhaul_;     // per server endpoint
  std::vector<std::pair<int, ServerId>> crash_starts_;       // sorted
  std::vector<std::pair<int, ClientId>> disconnect_starts_;  // sorted
  std::vector<Window> backhaul_active_;  // union-ish: any event window
};

}  // namespace perdnn
