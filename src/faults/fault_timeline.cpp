#include "faults/fault_timeline.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace perdnn {

FaultTimeline::FaultTimeline(const FaultPlan& plan, int num_servers,
                             int num_clients) {
  plan.check_bounds(num_servers, num_clients);
  empty_ = plan.empty();
  server_down_.resize(static_cast<std::size_t>(num_servers));
  telemetry_down_.resize(static_cast<std::size_t>(num_servers));
  backhaul_.resize(static_cast<std::size_t>(num_servers));
  client_offline_.resize(static_cast<std::size_t>(num_clients));

  for (const FaultEvent& e : plan.events()) {
    const Window window{e.at_interval, e.at_interval + e.duration_intervals};
    switch (e.kind) {
      case FaultKind::kServerCrash:
        server_down_[static_cast<std::size_t>(e.server)].push_back(window);
        crash_starts_.push_back({e.at_interval, e.server});
        break;
      case FaultKind::kTelemetryDropout:
        telemetry_down_[static_cast<std::size_t>(e.server)].push_back(window);
        break;
      case FaultKind::kBackhaulDegrade: {
        const LinkWindow link{window.start, window.end, e.peer,
                              1.0 - e.severity};
        backhaul_[static_cast<std::size_t>(e.server)].push_back(link);
        if (e.peer != kAllServers) {
          // Mirror onto the other endpoint so factor lookups only need to
          // scan one endpoint's windows.
          LinkWindow mirrored = link;
          mirrored.peer = e.server;
          backhaul_[static_cast<std::size_t>(e.peer)].push_back(mirrored);
        }
        backhaul_active_.push_back(window);
        break;
      }
      case FaultKind::kClientDisconnect:
        client_offline_[static_cast<std::size_t>(e.client)].push_back(window);
        disconnect_starts_.push_back({e.at_interval, e.client});
        break;
    }
  }
  // FaultPlan events are already time-sorted; the per-entity buckets and the
  // start lists inherit that order, so the binary searches below are valid.
  std::sort(crash_starts_.begin(), crash_starts_.end());
  std::sort(disconnect_starts_.begin(), disconnect_starts_.end());

  // Precompile the interval-indexed views: one begin edge at each window
  // start, one end edge at its exclusive end. Per-interval consumers apply
  // the edges_at() slice instead of rescanning windows — O(edges this
  // interval) per interval instead of O(plan) per entity query.
  const auto emit = [](std::vector<FaultEdge>& edges, int start, int end,
                       std::int32_t id) {
    edges.push_back({start, id, true});
    edges.push_back({end, id, false});
  };
  for (ServerId s = 0; s < num_servers; ++s) {
    for (const Window& w : server_down_[static_cast<std::size_t>(s)])
      emit(server_down_edges_, w.start, w.end, s);
    for (const Window& w : telemetry_down_[static_cast<std::size_t>(s)])
      emit(telemetry_edges_, w.start, w.end, s);
  }
  for (ClientId c = 0; c < num_clients; ++c)
    for (const Window& w : client_offline_[static_cast<std::size_t>(c)])
      emit(client_offline_edges_, w.start, w.end, c);
  for (const Window& w : backhaul_active_)
    emit(backhaul_edges_, w.start, w.end, 0);
  const auto order = [](const FaultEdge& a, const FaultEdge& b) {
    if (a.interval != b.interval) return a.interval < b.interval;
    if (a.id != b.id) return a.id < b.id;
    return a.begins < b.begins;
  };
  std::sort(server_down_edges_.begin(), server_down_edges_.end(), order);
  std::sort(telemetry_edges_.begin(), telemetry_edges_.end(), order);
  std::sort(client_offline_edges_.begin(), client_offline_edges_.end(), order);
  std::sort(backhaul_edges_.begin(), backhaul_edges_.end(), order);
}

std::pair<const FaultEdge*, const FaultEdge*> FaultTimeline::edges_at(
    const std::vector<FaultEdge>& edges, int interval) {
  const auto lo = std::lower_bound(
      edges.begin(), edges.end(), interval,
      [](const FaultEdge& e, int t) { return e.interval < t; });
  auto hi = lo;
  while (hi != edges.end() && hi->interval == interval) ++hi;
  return {edges.data() + (lo - edges.begin()), edges.data() + (hi - edges.begin())};
}

bool FaultTimeline::in_any(const std::vector<Window>& windows, int interval) {
  for (const Window& w : windows)
    if (w.start <= interval && interval < w.end) return true;
  return false;
}

std::vector<ServerId> FaultTimeline::crashes_starting_at(int interval) const {
  std::vector<ServerId> out;
  const auto lo = std::lower_bound(crash_starts_.begin(), crash_starts_.end(),
                                   std::make_pair(interval, ServerId{-1}));
  for (auto it = lo; it != crash_starts_.end() && it->first == interval; ++it)
    if (out.empty() || out.back() != it->second) out.push_back(it->second);
  return out;
}

std::vector<ClientId> FaultTimeline::disconnects_starting_at(
    int interval) const {
  std::vector<ClientId> out;
  const auto lo =
      std::lower_bound(disconnect_starts_.begin(), disconnect_starts_.end(),
                       std::make_pair(interval, ClientId{-1}));
  for (auto it = lo; it != disconnect_starts_.end() && it->first == interval;
       ++it)
    if (out.empty() || out.back() != it->second) out.push_back(it->second);
  return out;
}

bool FaultTimeline::server_down(ServerId server, int interval) const {
  if (empty_) return false;
  return in_any(server_down_[static_cast<std::size_t>(server)], interval);
}

bool FaultTimeline::telemetry_down(ServerId server, int interval) const {
  if (empty_) return false;
  return in_any(telemetry_down_[static_cast<std::size_t>(server)], interval);
}

bool FaultTimeline::client_offline(ClientId client, int interval) const {
  if (empty_) return false;
  return in_any(client_offline_[static_cast<std::size_t>(client)], interval);
}

double FaultTimeline::backhaul_factor(ServerId a, ServerId b,
                                      int interval) const {
  if (empty_) return 1.0;
  double factor = 1.0;
  for (const LinkWindow& w : backhaul_[static_cast<std::size_t>(a)]) {
    if (w.start > interval || interval >= w.end) continue;
    if (w.peer != kAllServers && w.peer != b) continue;
    factor = std::min(factor, w.factor);
  }
  return factor;
}

bool FaultTimeline::any_backhaul_fault(int interval) const {
  if (empty_) return false;
  return in_any(backhaul_active_, interval);
}

}  // namespace perdnn
