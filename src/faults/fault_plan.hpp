// Deterministic, scripted fault injection (the robustness counterpart of the
// paper's Section 4.B failure discussion).
//
// A FaultPlan is a validated, time-sorted list of typed fault events:
//
//   * kServerCrash       — an edge server goes down for a window: its layer
//                          cache is lost and its clients are dropped;
//   * kBackhaulDegrade   — the backhaul link between a server pair loses a
//                          fraction of its capacity (severity 1.0 = outage);
//                          `peer == kAllServers` degrades every link of the
//                          named server (an uplink failure at that site);
//   * kTelemetryDropout  — GPU statistics from a server stop arriving; the
//                          control plane must plan with stale/absent stats
//                          (degraded estimation);
//   * kClientDisconnect  — a client goes offline for a window (radio off,
//                          tunnel, battery), detaching and re-attaching cold.
//
// Plans are either scripted directly, parsed from a small JSON spec
// (to_json/from_json round-trip exactly), or generated from a seeded random
// schedule so chaos sweeps are reproducible bit-for-bit. The legacy
// SimulationConfig knobs (server_failure_rate / server_downtime_intervals)
// map onto legacy_crashes(), which reproduces the historical Bernoulli
// recursion: every live server draws each interval, and a server already
// down cannot crash again until it recovers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace perdnn {

/// Wildcard for BackhaulDegrade peers: every link incident to `server`.
inline constexpr ServerId kAllServers = -2;

enum class FaultKind {
  kServerCrash,
  kBackhaulDegrade,
  kTelemetryDropout,
  kClientDisconnect,
};

/// Parses/prints the JSON names: "server_crash", "backhaul_degrade",
/// "telemetry_dropout", "client_disconnect". Throws on unknown names.
const char* fault_kind_name(FaultKind kind);
FaultKind fault_kind_from_name(const std::string& name);

struct FaultEvent {
  FaultKind kind = FaultKind::kServerCrash;
  /// First affected interval (inclusive).
  int at_interval = 0;
  /// Number of intervals the fault lasts; the window is
  /// [at_interval, at_interval + duration_intervals).
  int duration_intervals = 1;
  /// Crash / telemetry target, or first backhaul endpoint.
  ServerId server = kNoServer;
  /// Second backhaul endpoint; kAllServers = every link of `server`.
  ServerId peer = kAllServers;
  /// Disconnect target.
  ClientId client = -1;
  /// Backhaul only: fraction of link capacity lost, in [0, 1]; 1.0 means a
  /// full outage (migrations to the far side are deferred, not sent slower).
  double severity = 1.0;

  bool operator==(const FaultEvent&) const = default;
};

/// Intensity knobs for the seeded random schedule generator. All rates are
/// per entity (server / client) per interval; windows that would overlap an
/// active fault of the same kind on the same entity are suppressed, so the
/// generated plan never stacks identical faults.
struct RandomFaultConfig {
  std::uint64_t seed = 42;
  int num_servers = 0;
  int num_clients = 0;
  int num_intervals = 0;

  double server_crash_rate = 0.0;
  int crash_downtime_intervals = 3;

  double backhaul_degrade_rate = 0.0;
  int backhaul_outage_intervals = 2;
  /// Severity of generated backhaul events (1.0 = outage).
  double backhaul_severity = 1.0;

  double telemetry_dropout_rate = 0.0;
  int telemetry_dropout_intervals = 4;

  double client_disconnect_rate = 0.0;
  int client_disconnect_intervals = 2;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  /// Validates every event (see validate_event) and sorts them by
  /// (at_interval, kind, server, peer, client) so identical event sets
  /// always serialise and replay identically.
  explicit FaultPlan(std::vector<FaultEvent> events);

  /// Seeded random schedule over every fault class (chaos sweeps).
  static FaultPlan random_schedule(const RandomFaultConfig& config);

  /// Back-compat mapping of the legacy SimulationConfig failure knobs:
  /// per-interval Bernoulli crash draws per live server, fixed downtime.
  static FaultPlan legacy_crashes(double failure_rate, int downtime_intervals,
                                  int num_servers, int num_intervals,
                                  std::uint64_t seed);

  /// JSON spec: {"events":[{"kind":"server_crash","at":3,"duration":4,
  /// "server":2}, ...]}. Optional members take their defaults; unknown
  /// members or kinds are hard errors.
  static FaultPlan from_json(const std::string& text);
  std::string to_json() const;

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Checks every event's entity ids against the world about to consume the
  /// plan; throws std::logic_error naming the offending event.
  void check_bounds(int num_servers, int num_clients) const;

 private:
  std::vector<FaultEvent> events_;
};

/// Structural validation of one event (durations >= 1, severity in [0, 1],
/// required ids present for the kind). Throws std::logic_error.
void validate_event(const FaultEvent& event);

}  // namespace perdnn
