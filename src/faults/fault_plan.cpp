#include "faults/fault_plan.hpp"

#include <algorithm>
#include <tuple>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/json.hpp"

namespace perdnn {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kServerCrash:
      return "server_crash";
    case FaultKind::kBackhaulDegrade:
      return "backhaul_degrade";
    case FaultKind::kTelemetryDropout:
      return "telemetry_dropout";
    case FaultKind::kClientDisconnect:
      return "client_disconnect";
  }
  PERDNN_CHECK_MSG(false, "unhandled FaultKind");
  return "";
}

FaultKind fault_kind_from_name(const std::string& name) {
  if (name == "server_crash") return FaultKind::kServerCrash;
  if (name == "backhaul_degrade") return FaultKind::kBackhaulDegrade;
  if (name == "telemetry_dropout") return FaultKind::kTelemetryDropout;
  if (name == "client_disconnect") return FaultKind::kClientDisconnect;
  PERDNN_CHECK_MSG(false, "unknown fault kind '" << name << "'");
  return FaultKind::kServerCrash;
}

void validate_event(const FaultEvent& event) {
  PERDNN_CHECK_MSG(event.at_interval >= 0,
                   "fault event starts before interval 0 (at="
                       << event.at_interval << ")");
  PERDNN_CHECK_MSG(event.duration_intervals >= 1,
                   "fault event needs duration_intervals >= 1 (got "
                       << event.duration_intervals << ")");
  switch (event.kind) {
    case FaultKind::kServerCrash:
    case FaultKind::kTelemetryDropout:
      PERDNN_CHECK_MSG(event.server >= 0,
                       fault_kind_name(event.kind)
                           << " event needs a server id (got " << event.server
                           << ")");
      break;
    case FaultKind::kBackhaulDegrade:
      PERDNN_CHECK_MSG(event.server >= 0,
                       "backhaul_degrade event needs a server id (got "
                           << event.server << ")");
      PERDNN_CHECK_MSG(event.peer >= 0 || event.peer == kAllServers,
                       "backhaul_degrade peer must be a server id or the "
                       "all-servers wildcard (got "
                           << event.peer << ")");
      PERDNN_CHECK_MSG(event.peer == kAllServers || event.peer != event.server,
                       "backhaul_degrade endpoints must differ (server "
                           << event.server << ")");
      PERDNN_CHECK_MSG(event.severity >= 0.0 && event.severity <= 1.0,
                       "backhaul_degrade severity must be in [0, 1] (got "
                           << event.severity << ")");
      break;
    case FaultKind::kClientDisconnect:
      PERDNN_CHECK_MSG(event.client >= 0,
                       "client_disconnect event needs a client id (got "
                           << event.client << ")");
      break;
  }
}

namespace {

/// Sort key making plans canonical: time first, then kind and entity ids so
/// equal event sets compare equal after construction.
auto event_key(const FaultEvent& e) {
  return std::make_tuple(e.at_interval, static_cast<int>(e.kind), e.server,
                         e.peer, e.client, e.duration_intervals, e.severity);
}

}  // namespace

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  for (const FaultEvent& event : events_) validate_event(event);
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return event_key(a) < event_key(b);
                   });
}

FaultPlan FaultPlan::legacy_crashes(double failure_rate,
                                    int downtime_intervals, int num_servers,
                                    int num_intervals, std::uint64_t seed) {
  PERDNN_CHECK_MSG(failure_rate >= 0.0 && failure_rate <= 1.0,
                   "server_failure_rate must be in [0, 1] (got "
                       << failure_rate << ")");
  PERDNN_CHECK_MSG(downtime_intervals >= 1,
                   "server_downtime_intervals must be >= 1 (got "
                       << downtime_intervals << ")");
  if (failure_rate <= 0.0 || num_servers <= 0 || num_intervals <= 0)
    return FaultPlan{};

  // The historical inject_failures recursion: per interval, every *live*
  // server draws one Bernoulli; a crash keeps it down for `downtime`
  // intervals, during which it cannot crash again. A dedicated stream keeps
  // the draws independent of the simulator's other rngs.
  Rng rng(seed ^ 0xfa017c4a5dedULL);
  std::vector<int> down_until(static_cast<std::size_t>(num_servers), -1);
  std::vector<FaultEvent> events;
  for (int k = 0; k < num_intervals; ++k) {
    for (ServerId s = 0; s < num_servers; ++s) {
      if (down_until[static_cast<std::size_t>(s)] > k) continue;
      if (!rng.bernoulli(failure_rate)) continue;
      down_until[static_cast<std::size_t>(s)] = k + downtime_intervals;
      events.push_back({.kind = FaultKind::kServerCrash,
                        .at_interval = k,
                        .duration_intervals = downtime_intervals,
                        .server = s});
    }
  }
  return FaultPlan(std::move(events));
}

FaultPlan FaultPlan::random_schedule(const RandomFaultConfig& config) {
  PERDNN_CHECK_MSG(config.num_servers >= 0 && config.num_clients >= 0 &&
                       config.num_intervals >= 0,
                   "RandomFaultConfig entity counts must be non-negative");
  const auto check_rate = [](double rate, const char* name) {
    PERDNN_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
                     name << " must be in [0, 1] (got " << rate << ")");
  };
  check_rate(config.server_crash_rate, "server_crash_rate");
  check_rate(config.backhaul_degrade_rate, "backhaul_degrade_rate");
  check_rate(config.telemetry_dropout_rate, "telemetry_dropout_rate");
  check_rate(config.client_disconnect_rate, "client_disconnect_rate");
  PERDNN_CHECK_MSG(config.backhaul_severity >= 0.0 &&
                       config.backhaul_severity <= 1.0,
                   "backhaul_severity must be in [0, 1] (got "
                       << config.backhaul_severity << ")");

  std::vector<FaultEvent> events;

  // One independent stream per fault class: adding a class (or changing one
  // rate) never perturbs the schedule of the others.
  const auto windows = [&](std::uint64_t salt, int entities, double rate,
                           int duration, auto make_event) {
    if (rate <= 0.0 || entities <= 0 || duration <= 0) return;
    Rng rng(config.seed ^ salt);
    std::vector<int> busy_until(static_cast<std::size_t>(entities), -1);
    for (int k = 0; k < config.num_intervals; ++k) {
      for (int e = 0; e < entities; ++e) {
        if (busy_until[static_cast<std::size_t>(e)] > k) continue;
        if (!rng.bernoulli(rate)) continue;
        busy_until[static_cast<std::size_t>(e)] = k + duration;
        events.push_back(make_event(e, k));
      }
    }
  };

  windows(0xc4a54ULL, config.num_servers, config.server_crash_rate,
          config.crash_downtime_intervals, [&](int s, int k) {
            return FaultEvent{.kind = FaultKind::kServerCrash,
                              .at_interval = k,
                              .duration_intervals =
                                  config.crash_downtime_intervals,
                              .server = static_cast<ServerId>(s)};
          });
  windows(0xbac4a01ULL, config.num_servers, config.backhaul_degrade_rate,
          config.backhaul_outage_intervals, [&](int s, int k) {
            return FaultEvent{.kind = FaultKind::kBackhaulDegrade,
                              .at_interval = k,
                              .duration_intervals =
                                  config.backhaul_outage_intervals,
                              .server = static_cast<ServerId>(s),
                              .peer = kAllServers,
                              .severity = config.backhaul_severity};
          });
  windows(0x7e1e0ULL, config.num_servers, config.telemetry_dropout_rate,
          config.telemetry_dropout_intervals, [&](int s, int k) {
            return FaultEvent{.kind = FaultKind::kTelemetryDropout,
                              .at_interval = k,
                              .duration_intervals =
                                  config.telemetry_dropout_intervals,
                              .server = static_cast<ServerId>(s)};
          });
  windows(0xc11e7ULL, config.num_clients, config.client_disconnect_rate,
          config.client_disconnect_intervals, [&](int c, int k) {
            return FaultEvent{.kind = FaultKind::kClientDisconnect,
                              .at_interval = k,
                              .duration_intervals =
                                  config.client_disconnect_intervals,
                              .client = static_cast<ClientId>(c)};
          });
  return FaultPlan(std::move(events));
}

void FaultPlan::check_bounds(int num_servers, int num_clients) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    const auto server_ok = [&](ServerId s) {
      return s >= 0 && s < num_servers;
    };
    switch (e.kind) {
      case FaultKind::kServerCrash:
      case FaultKind::kTelemetryDropout:
        PERDNN_CHECK_MSG(server_ok(e.server),
                         "fault event " << i << " (" << fault_kind_name(e.kind)
                                        << ") names server " << e.server
                                        << " outside [0, " << num_servers
                                        << ")");
        break;
      case FaultKind::kBackhaulDegrade:
        PERDNN_CHECK_MSG(server_ok(e.server),
                         "fault event " << i << " (backhaul_degrade) names "
                                        << "server " << e.server
                                        << " outside [0, " << num_servers
                                        << ")");
        PERDNN_CHECK_MSG(e.peer == kAllServers || server_ok(e.peer),
                         "fault event " << i << " (backhaul_degrade) names "
                                        << "peer " << e.peer << " outside [0, "
                                        << num_servers << ")");
        break;
      case FaultKind::kClientDisconnect:
        PERDNN_CHECK_MSG(e.client >= 0 && e.client < num_clients,
                         "fault event " << i << " (client_disconnect) names "
                                        << "client " << e.client
                                        << " outside [0, " << num_clients
                                        << ")");
        break;
    }
  }
}

std::string FaultPlan::to_json() const {
  std::string out = "{\"events\":[";
  bool first = true;
  for (const FaultEvent& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"kind\":";
    obs::json_escape(out, fault_kind_name(e.kind));
    out += ",\"at\":" + obs::json_number(e.at_interval);
    out += ",\"duration\":" + obs::json_number(e.duration_intervals);
    switch (e.kind) {
      case FaultKind::kServerCrash:
      case FaultKind::kTelemetryDropout:
        out += ",\"server\":" + obs::json_number(e.server);
        break;
      case FaultKind::kBackhaulDegrade:
        out += ",\"server\":" + obs::json_number(e.server);
        if (e.peer != kAllServers)
          out += ",\"peer\":" + obs::json_number(e.peer);
        out += ",\"severity\":" + obs::json_number(e.severity);
        break;
      case FaultKind::kClientDisconnect:
        out += ",\"client\":" + obs::json_number(e.client);
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  const obs::JsonValue doc = obs::parse_json(text);
  PERDNN_CHECK_MSG(doc.is_object(),
                   "fault plan JSON must be an object with an \"events\" "
                   "array");
  const obs::JsonValue* events = doc.find("events");
  PERDNN_CHECK_MSG(events != nullptr && events->is_array(),
                   "fault plan JSON needs an \"events\" array");

  std::vector<FaultEvent> parsed;
  for (const obs::JsonValue& item : events->items()) {
    PERDNN_CHECK_MSG(item.is_object(), "fault plan event must be an object");
    FaultEvent e;
    bool saw_kind = false;
    for (const auto& [key, value] : item.members()) {
      if (key == "kind") {
        e.kind = fault_kind_from_name(value.as_string());
        saw_kind = true;
      } else if (key == "at") {
        e.at_interval = static_cast<int>(value.as_number());
      } else if (key == "duration") {
        e.duration_intervals = static_cast<int>(value.as_number());
      } else if (key == "server") {
        e.server = static_cast<ServerId>(value.as_number());
      } else if (key == "peer") {
        e.peer = static_cast<ServerId>(value.as_number());
      } else if (key == "client") {
        e.client = static_cast<ClientId>(value.as_number());
      } else if (key == "severity") {
        e.severity = value.as_number();
      } else {
        PERDNN_CHECK_MSG(false,
                         "unknown fault plan event member '" << key << "'");
      }
    }
    PERDNN_CHECK_MSG(saw_kind, "fault plan event is missing \"kind\"");
    parsed.push_back(e);
  }
  return FaultPlan(std::move(parsed));
}

}  // namespace perdnn
