// DNN layer metadata. PerDNN never executes real tensor math: like the
// paper's simulator, it operates on layer *metadata* — hyperparameters,
// weight bytes, activation sizes, and FLOPs — from which execution and
// transfer times are derived.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace perdnn {

enum class LayerKind {
  kInput,           // pseudo-layer holding the query input tensor
  kConv,            // standard convolution
  kDepthwiseConv,   // depthwise convolution (MobileNet)
  kFullyConnected,  // dense / inner product
  kPool,            // max or average pooling
  kBatchNorm,       // batch normalisation (inference mode)
  kScale,           // caffe-style scale/shift following BN
  kActivation,      // ReLU etc.
  kSoftmax,
  kConcat,          // channel concatenation (Inception)
  kEltwiseAdd,      // residual addition (ResNet)
  kDropout,
};

/// Short lowercase name ("conv", "fc", ...) used in reports and as the key
/// for per-layer-type execution-time estimators.
const char* layer_kind_name(LayerKind kind);

/// Static description of one layer: the "DNN profile" entry the client
/// uploads to the master server (weights themselves are not included).
struct LayerSpec {
  std::string name;
  LayerKind kind = LayerKind::kInput;
  /// Predecessor layer ids; empty only for the input layer.
  std::vector<LayerId> inputs;

  // -- hyperparameters (fixed at training time) --
  int in_channels = 0;
  int out_channels = 0;
  int kernel = 0;  // square kernel side; 0 for non-windowed layers
  int stride = 1;
  int out_height = 0;
  int out_width = 0;

  // -- derived static quantities --
  Bytes weight_bytes = 0;   // bytes that must be deployed to run this layer
  Bytes output_bytes = 0;   // activation tensor produced by this layer
  Flops flops = 0;          // multiply-accumulate work, counted as 2*MACs

  /// True for layers that carry (possibly zero-byte) trainable state and do
  /// real compute; used by tests as a sanity predicate.
  bool is_compute() const {
    return kind == LayerKind::kConv || kind == LayerKind::kDepthwiseConv ||
           kind == LayerKind::kFullyConnected;
  }
};

}  // namespace perdnn
