// Builders for the three evaluation models of the paper (Table I):
//
//   MobileNet  — MobileNet v1, ~110 layers, ~16 MB
//   Inception  — Inception-BN with a 21k-class head, ~312 layers, ~128 MB
//   ResNet     — ResNet-50, ~245 layers, ~98 MB
//
// The structures are reconstructed from the published architectures with
// caffe-style layer granularity (conv / bn / scale / relu counted
// separately, as the paper's layer counts imply). Weight bytes, activation
// sizes, and FLOPs are computed from the hyperparameters at fp32, which
// lands the total model sizes on the paper's numbers (upload time at
// 35 Mbps then matches Table II: 3.7 / 29.3 / 22.4 s).
//
// Inception's distinguishing property — compute-dense conv layers up front
// and a huge but cheap 21k-way FC at the end — emerges naturally from the
// structure and drives the paper's fractional-migration result.
#pragma once

#include "nn/model.hpp"

namespace perdnn {

enum class ModelName { kMobileNet, kInception, kResNet };

const char* model_name_str(ModelName name);

DnnModel build_mobilenet_v1();
DnnModel build_inception21k();
DnnModel build_resnet50();
DnnModel build_model(ModelName name);

/// Beyond the paper's Table I: the classic offloading-literature models
/// (IONN evaluates AlexNet; VGG is the canonical "fat FC tail" stressor).
DnnModel build_alexnet();   // ~350 MB at our 'same'-padding geometry; FC-dominated
DnnModel build_vgg16();     // ~528 MB, heavy everywhere

/// Small linear conv stack (input + n blocks of conv/bn/relu + fc + softmax)
/// for unit tests that need a model but not a realistic one.
DnnModel build_toy_model(int num_blocks);

}  // namespace perdnn
