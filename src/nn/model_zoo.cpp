#include "nn/model_zoo.hpp"

#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace perdnn {

namespace {

constexpr Bytes kFloatBytes = 4;

/// Emits caffe-granularity layer stacks while tracking spatial dimensions
/// and channel counts through the DAG.
class ModelBuilder {
 public:
  ModelBuilder(std::string name, int input_hw, int input_channels)
      : model_(std::move(name)) {
    LayerSpec input;
    input.name = "data";
    input.kind = LayerKind::kInput;
    input.out_channels = input_channels;
    input.out_height = input.out_width = input_hw;
    input.output_bytes = activation_bytes(input_channels, input_hw, input_hw);
    input_id_ = model_.add_layer(std::move(input));
  }

  LayerId input_id() const { return input_id_; }

  /// conv + bn + scale + relu; returns the relu's id.
  LayerId conv_bn_relu(LayerId in, int out_c, int k, int stride,
                       const std::string& prefix) {
    return relu(scale(bn(conv(in, out_c, k, stride, prefix), prefix), prefix),
                prefix);
  }

  /// conv + bn + scale (no relu) — ResNet residual branches before the add.
  LayerId conv_bn(LayerId in, int out_c, int k, int stride,
                  const std::string& prefix) {
    return scale(bn(conv(in, out_c, k, stride, prefix), prefix), prefix);
  }

  LayerId conv(LayerId in, int out_c, int k, int stride,
               const std::string& prefix) {
    const LayerSpec& src = model_.layer(in);
    LayerSpec l;
    l.name = prefix + "/conv";
    l.kind = LayerKind::kConv;
    l.inputs = {in};
    l.in_channels = src.out_channels;
    l.out_channels = out_c;
    l.kernel = k;
    l.stride = stride;
    l.out_height = conv_out(src.out_height, stride);
    l.out_width = conv_out(src.out_width, stride);
    l.weight_bytes =
        (static_cast<Bytes>(k) * k * src.out_channels * out_c + out_c) *
        kFloatBytes;
    l.output_bytes = activation_bytes(out_c, l.out_height, l.out_width);
    l.flops = 2.0 * k * k * src.out_channels * out_c *
              static_cast<double>(l.out_height) * l.out_width;
    return model_.add_layer(std::move(l));
  }

  LayerId dwconv_bn_relu(LayerId in, int k, int stride,
                         const std::string& prefix) {
    const LayerSpec& src = model_.layer(in);
    LayerSpec l;
    l.name = prefix + "/dwconv";
    l.kind = LayerKind::kDepthwiseConv;
    l.inputs = {in};
    l.in_channels = src.out_channels;
    l.out_channels = src.out_channels;
    l.kernel = k;
    l.stride = stride;
    l.out_height = conv_out(src.out_height, stride);
    l.out_width = conv_out(src.out_width, stride);
    l.weight_bytes =
        (static_cast<Bytes>(k) * k * src.out_channels + src.out_channels) *
        kFloatBytes;
    l.output_bytes =
        activation_bytes(src.out_channels, l.out_height, l.out_width);
    l.flops = 2.0 * k * k * src.out_channels *
              static_cast<double>(l.out_height) * l.out_width;
    const LayerId id = model_.add_layer(std::move(l));
    return relu(scale(bn(id, prefix), prefix), prefix);
  }

  LayerId bn(LayerId in, const std::string& prefix) {
    return pointwise(in, LayerKind::kBatchNorm, prefix + "/bn",
                     /*params_per_channel=*/2);
  }

  LayerId scale(LayerId in, const std::string& prefix) {
    return pointwise(in, LayerKind::kScale, prefix + "/scale",
                     /*params_per_channel=*/2);
  }

  LayerId relu(LayerId in, const std::string& prefix) {
    return pointwise(in, LayerKind::kActivation, prefix + "/relu",
                     /*params_per_channel=*/0);
  }

  LayerId pool(LayerId in, int k, int stride, const std::string& name) {
    const LayerSpec& src = model_.layer(in);
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::kPool;
    l.inputs = {in};
    l.in_channels = l.out_channels = src.out_channels;
    l.kernel = k;
    l.stride = stride;
    l.out_height = conv_out(src.out_height, stride);
    l.out_width = conv_out(src.out_width, stride);
    l.output_bytes =
        activation_bytes(src.out_channels, l.out_height, l.out_width);
    l.flops = static_cast<double>(k) * k * src.out_channels *
              l.out_height * l.out_width;
    return model_.add_layer(std::move(l));
  }

  /// Global average pool collapsing spatial dims to 1x1.
  LayerId global_pool(LayerId in, const std::string& name) {
    const LayerSpec& src = model_.layer(in);
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::kPool;
    l.inputs = {in};
    l.in_channels = l.out_channels = src.out_channels;
    l.kernel = src.out_height;
    l.stride = 1;
    l.out_height = l.out_width = 1;
    l.output_bytes = activation_bytes(src.out_channels, 1, 1);
    l.flops = static_cast<double>(src.out_height) * src.out_width *
              src.out_channels;
    return model_.add_layer(std::move(l));
  }

  LayerId fc(LayerId in, int out, const std::string& name) {
    const LayerSpec& src = model_.layer(in);
    const Bytes in_features = static_cast<Bytes>(src.out_channels) *
                              src.out_height * src.out_width;
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::kFullyConnected;
    l.inputs = {in};
    l.in_channels = static_cast<int>(in_features);
    l.out_channels = out;
    l.out_height = l.out_width = 1;
    l.weight_bytes = (in_features * out + out) * kFloatBytes;
    l.output_bytes = static_cast<Bytes>(out) * kFloatBytes;
    l.flops = 2.0 * static_cast<double>(in_features) * out;
    return model_.add_layer(std::move(l));
  }

  LayerId softmax(LayerId in, const std::string& name) {
    const LayerSpec& src = model_.layer(in);
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::kSoftmax;
    l.inputs = {in};
    l.in_channels = l.out_channels = src.out_channels;
    l.out_height = src.out_height;
    l.out_width = src.out_width;
    l.output_bytes = src.output_bytes;
    l.flops = 5.0 * src.out_channels;
    return model_.add_layer(std::move(l));
  }

  LayerId concat(const std::vector<LayerId>& ins, const std::string& name) {
    PERDNN_CHECK(!ins.empty());
    const LayerSpec& first = model_.layer(ins[0]);
    int channels = 0;
    Bytes bytes = 0;
    for (LayerId in : ins) {
      const LayerSpec& src = model_.layer(in);
      PERDNN_CHECK_MSG(src.out_height == first.out_height &&
                           src.out_width == first.out_width,
                       "concat branch spatial mismatch at " << name);
      channels += src.out_channels;
      bytes += src.output_bytes;
    }
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::kConcat;
    l.inputs = ins;
    l.in_channels = l.out_channels = channels;
    l.out_height = first.out_height;
    l.out_width = first.out_width;
    l.output_bytes = bytes;
    l.flops = 0;
    return model_.add_layer(std::move(l));
  }

  LayerId add(LayerId a, LayerId b, const std::string& name) {
    const LayerSpec& sa = model_.layer(a);
    const LayerSpec& sb = model_.layer(b);
    PERDNN_CHECK_MSG(sa.output_bytes == sb.output_bytes,
                     "eltwise add shape mismatch at " << name);
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::kEltwiseAdd;
    l.inputs = {a, b};
    l.in_channels = l.out_channels = sa.out_channels;
    l.out_height = sa.out_height;
    l.out_width = sa.out_width;
    l.output_bytes = sa.output_bytes;
    l.flops = static_cast<double>(sa.out_channels) * sa.out_height *
              sa.out_width;
    return model_.add_layer(std::move(l));
  }

  const DnnModel& model() const { return model_; }
  DnnModel take() {
    model_.validate();
    return std::move(model_);
  }

 private:
  static int conv_out(int in, int stride) {
    // 'same' padding: ceil(in / stride).
    return (in + stride - 1) / stride;
  }

  static Bytes activation_bytes(int c, int h, int w) {
    return static_cast<Bytes>(c) * h * w * kFloatBytes;
  }

  LayerId pointwise(LayerId in, LayerKind kind, const std::string& name,
                    int params_per_channel) {
    const LayerSpec& src = model_.layer(in);
    LayerSpec l;
    l.name = name;
    l.kind = kind;
    l.inputs = {in};
    l.in_channels = l.out_channels = src.out_channels;
    l.out_height = src.out_height;
    l.out_width = src.out_width;
    l.weight_bytes =
        static_cast<Bytes>(params_per_channel) * src.out_channels * kFloatBytes;
    l.output_bytes = src.output_bytes;
    l.flops = 2.0 * static_cast<double>(src.out_channels) * src.out_height *
              src.out_width;
    return model_.add_layer(std::move(l));
  }

  DnnModel model_;
  LayerId input_id_ = kNoLayer;
};

}  // namespace

const char* model_name_str(ModelName name) {
  switch (name) {
    case ModelName::kMobileNet: return "MobileNet";
    case ModelName::kInception: return "Inception";
    case ModelName::kResNet: return "ResNet";
  }
  return "unknown";
}

DnnModel build_mobilenet_v1() {
  ModelBuilder b("MobileNet", 224, 3);
  LayerId x = b.conv_bn_relu(b.input_id(), 32, 3, 2, "conv1");

  // (out_channels of the pointwise conv, stride of the depthwise conv)
  const std::vector<std::pair<int, int>> blocks = {
      {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},  {512, 2}, {512, 1},
      {512, 1}, {512, 1}, {512, 1}, {512, 1},  {1024, 2}, {1024, 1}};
  int idx = 2;
  for (auto [out_c, stride] : blocks) {
    const std::string p = "conv" + std::to_string(idx++);
    x = b.dwconv_bn_relu(x, 3, stride, p + "_dw");
    x = b.conv_bn_relu(x, out_c, 1, 1, p + "_pw");
  }
  x = b.global_pool(x, "avg_pool");
  x = b.fc(x, 1000, "fc7");
  b.softmax(x, "prob");
  return b.take();
}

DnnModel build_resnet50() {
  ModelBuilder b("ResNet", 224, 3);
  LayerId x = b.conv_bn_relu(b.input_id(), 64, 7, 2, "conv1");
  x = b.pool(x, 3, 2, "pool1");

  struct Stage {
    int blocks;
    int mid;
    int out;
  };
  const std::vector<Stage> stages = {{3, 64, 256},
                                     {4, 128, 512},
                                     {6, 256, 1024},
                                     {3, 512, 2048}};
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& st = stages[s];
    for (int blk = 0; blk < st.blocks; ++blk) {
      const std::string p =
          "res" + std::to_string(s + 2) + static_cast<char>('a' + blk);
      // Spatial downsampling happens at the first block of stages 3..5.
      const int stride = (blk == 0 && s > 0) ? 2 : 1;
      LayerId shortcut = x;
      if (blk == 0) shortcut = b.conv_bn(x, st.out, 1, stride, p + "_proj");
      LayerId y = b.conv_bn_relu(x, st.mid, 1, 1, p + "_a");
      y = b.conv_bn_relu(y, st.mid, 3, stride, p + "_b");
      y = b.conv_bn(y, st.out, 1, 1, p + "_c");
      y = b.add(y, shortcut, p + "_add");
      x = b.relu(y, p);
    }
  }
  x = b.global_pool(x, "avg_pool");
  x = b.fc(x, 1000, "fc1000");
  b.softmax(x, "prob");
  return b.take();
}

namespace {

/// Channel configuration of one Inception-BN module. A zero branch width
/// means the branch is absent (stride-2 "reduction" modules drop the 1x1
/// branch and replace the pool projection with a pass-through pool).
struct InceptionModule {
  const char* name;
  int b1;               // 1x1 branch
  int b2_reduce, b2;    // 3x3 branch
  int b3_reduce, b3;    // double-3x3 branch (two 3x3 convs of width b3)
  int proj;             // pool projection; 0 -> pass-through pool
  int stride;           // 1 or 2 (applied to the 3x3 convs and the pool)
};

LayerId inception_module(ModelBuilder& b, LayerId in,
                         const InceptionModule& m) {
  std::vector<LayerId> branches;
  const std::string p = std::string("inc_") + m.name;
  if (m.b1 > 0) {
    PERDNN_CHECK(m.stride == 1);
    branches.push_back(b.conv_bn_relu(in, m.b1, 1, 1, p + "/b1"));
  }
  LayerId y = b.conv_bn_relu(in, m.b2_reduce, 1, 1, p + "/b2_reduce");
  branches.push_back(b.conv_bn_relu(y, m.b2, 3, m.stride, p + "/b2"));
  y = b.conv_bn_relu(in, m.b3_reduce, 1, 1, p + "/b3_reduce");
  y = b.conv_bn_relu(y, m.b3, 3, 1, p + "/b3a");
  branches.push_back(b.conv_bn_relu(y, m.b3, 3, m.stride, p + "/b3b"));
  LayerId pooled = b.pool(in, 3, m.stride, p + "/pool");
  if (m.proj > 0) pooled = b.conv_bn_relu(pooled, m.proj, 1, 1, p + "/proj");
  branches.push_back(pooled);
  return b.concat(branches, p + "/concat");
}

}  // namespace

DnnModel build_inception21k() {
  ModelBuilder b("Inception", 224, 3);
  LayerId x = b.conv_bn_relu(b.input_id(), 64, 7, 2, "conv1");
  x = b.pool(x, 3, 2, "pool1");
  x = b.conv_bn_relu(x, 64, 1, 1, "conv2_reduce");
  x = b.conv_bn_relu(x, 192, 3, 1, "conv2");
  x = b.pool(x, 3, 2, "pool2");

  const std::vector<InceptionModule> modules = {
      {"3a", 64, 64, 64, 64, 96, 32, 1},
      {"3b", 64, 64, 96, 64, 96, 64, 1},
      {"3c", 0, 128, 160, 64, 96, 0, 2},
      {"4a", 224, 64, 96, 96, 128, 128, 1},
      {"4b", 192, 96, 128, 96, 128, 128, 1},
      {"4c", 160, 128, 160, 128, 160, 96, 1},
      {"4d", 96, 128, 192, 160, 192, 96, 1},
      {"4e", 0, 128, 192, 192, 256, 0, 2},
      {"5a", 352, 192, 320, 160, 224, 128, 1},
      {"5b", 352, 192, 320, 192, 224, 128, 1},
  };
  for (const auto& m : modules) x = inception_module(b, x, m);

  x = b.global_pool(x, "global_pool");
  x = b.fc(x, 21841, "fc21k");
  b.softmax(x, "prob");
  return b.take();
}

DnnModel build_alexnet() {
  ModelBuilder b("AlexNet", 227, 3);
  // Caffe AlexNet: five conv blocks (no BN; LRN omitted as a no-weight
  // pointwise detail), three pooled stages, then the famous 4096-wide FCs.
  LayerId x = b.conv(b.input_id(), 96, 11, 4, "conv1");
  x = b.relu(x, "conv1");
  x = b.pool(x, 3, 2, "pool1");
  x = b.conv(x, 256, 5, 1, "conv2");
  x = b.relu(x, "conv2");
  x = b.pool(x, 3, 2, "pool2");
  x = b.conv(x, 384, 3, 1, "conv3");
  x = b.relu(x, "conv3");
  x = b.conv(x, 384, 3, 1, "conv4");
  x = b.relu(x, "conv4");
  x = b.conv(x, 256, 3, 1, "conv5");
  x = b.relu(x, "conv5");
  x = b.pool(x, 3, 2, "pool5");
  x = b.fc(x, 4096, "fc6");  // consumes the flattened pool5 volume
  x = b.relu(x, "fc6");
  x = b.fc(x, 4096, "fc7");
  x = b.relu(x, "fc7");
  x = b.fc(x, 1000, "fc8");
  b.softmax(x, "prob");
  return b.take();
}

DnnModel build_vgg16() {
  ModelBuilder b("VGG16", 224, 3);
  LayerId x = b.input_id();
  const int stage_channels[5] = {64, 128, 256, 512, 512};
  const int stage_convs[5] = {2, 2, 3, 3, 3};
  for (int stage = 0; stage < 5; ++stage) {
    for (int c = 0; c < stage_convs[stage]; ++c) {
      const std::string p = "conv" + std::to_string(stage + 1) + "_" +
                            std::to_string(c + 1);
      x = b.conv(x, stage_channels[stage], 3, 1, p);
      x = b.relu(x, p);
    }
    x = b.pool(x, 2, 2, "pool" + std::to_string(stage + 1));
  }
  x = b.fc(x, 4096, "fc6");  // the classic 7x7x512 -> 4096 flatten
  x = b.relu(x, "fc6");
  x = b.fc(x, 4096, "fc7");
  x = b.relu(x, "fc7");
  x = b.fc(x, 1000, "fc8");
  b.softmax(x, "prob");
  return b.take();
}

DnnModel build_model(ModelName name) {
  switch (name) {
    case ModelName::kMobileNet: return build_mobilenet_v1();
    case ModelName::kInception: return build_inception21k();
    case ModelName::kResNet: return build_resnet50();
  }
  PERDNN_CHECK_MSG(false, "unknown model");
}

DnnModel build_toy_model(int num_blocks) {
  PERDNN_CHECK(num_blocks >= 1);
  ModelBuilder b("Toy", 32, 3);
  LayerId x = b.input_id();
  for (int i = 0; i < num_blocks; ++i) {
    const std::string p = "block" + std::to_string(i);
    x = b.conv_bn_relu(x, 16 << std::min(i, 3), 3, i == 0 ? 1 : 2, p);
  }
  x = b.global_pool(x, "avg_pool");
  x = b.fc(x, 10, "fc");
  b.softmax(x, "prob");
  return b.take();
}

}  // namespace perdnn
