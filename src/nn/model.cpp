#include "nn/model.hpp"

#include "common/check.hpp"

namespace perdnn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "input";
    case LayerKind::kConv: return "conv";
    case LayerKind::kDepthwiseConv: return "dwconv";
    case LayerKind::kFullyConnected: return "fc";
    case LayerKind::kPool: return "pool";
    case LayerKind::kBatchNorm: return "bn";
    case LayerKind::kScale: return "scale";
    case LayerKind::kActivation: return "relu";
    case LayerKind::kSoftmax: return "softmax";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kEltwiseAdd: return "add";
    case LayerKind::kDropout: return "dropout";
  }
  return "unknown";
}

DnnModel::DnnModel(std::string name) : name_(std::move(name)) {}

LayerId DnnModel::add_layer(LayerSpec spec) {
  const auto id = static_cast<LayerId>(layers_.size());
  if (id == 0) {
    PERDNN_CHECK_MSG(spec.kind == LayerKind::kInput,
                     "first layer must be the input layer");
    PERDNN_CHECK(spec.inputs.empty());
  } else {
    PERDNN_CHECK_MSG(!spec.inputs.empty(),
                     "non-input layer '" << spec.name << "' has no inputs");
  }
  for (LayerId in : spec.inputs) {
    PERDNN_CHECK_MSG(in >= 0 && in < id,
                     "layer '" << spec.name << "' references layer " << in
                               << " which is not yet defined");
  }
  PERDNN_CHECK(spec.weight_bytes >= 0 && spec.output_bytes >= 0 &&
               spec.flops >= 0);
  layers_.push_back(std::move(spec));
  successors_.emplace_back();
  for (LayerId in : layers_.back().inputs)
    successors_[static_cast<std::size_t>(in)].push_back(id);
  return id;
}

const LayerSpec& DnnModel::layer(LayerId id) const {
  PERDNN_CHECK(id >= 0 && id < num_layers());
  return layers_[static_cast<std::size_t>(id)];
}

const std::vector<LayerId>& DnnModel::successors(LayerId id) const {
  PERDNN_CHECK(id >= 0 && id < num_layers());
  return successors_[static_cast<std::size_t>(id)];
}

Bytes DnnModel::input_bytes(LayerId id) const {
  const LayerSpec& spec = layer(id);
  if (spec.inputs.empty()) return spec.output_bytes;
  Bytes total = 0;
  for (LayerId in : spec.inputs) total += layer(in).output_bytes;
  return total;
}

Bytes DnnModel::total_weight_bytes() const {
  Bytes total = 0;
  for (const auto& l : layers_) total += l.weight_bytes;
  return total;
}

Flops DnnModel::total_flops() const {
  Flops total = 0;
  for (const auto& l : layers_) total += l.flops;
  return total;
}

void DnnModel::validate() const {
  PERDNN_CHECK_MSG(num_layers() >= 2, "model needs an input and some layers");
  PERDNN_CHECK(layers_[0].kind == LayerKind::kInput);
  for (int i = 1; i < num_layers(); ++i)
    PERDNN_CHECK_MSG(layers_[static_cast<std::size_t>(i)].kind !=
                         LayerKind::kInput,
                     "multiple input layers");
  for (int i = 0; i + 1 < num_layers(); ++i)
    PERDNN_CHECK_MSG(
        !successors_[static_cast<std::size_t>(i)].empty(),
        "layer " << i << " ('" << layers_[static_cast<std::size_t>(i)].name
                 << "') is dead (no successors)");
  PERDNN_CHECK_MSG(successors_.back().empty(), "last layer must be terminal");
}

}  // namespace perdnn
