// A DNN model as a validated DAG of LayerSpecs in topological order.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace perdnn {

class DnnModel {
 public:
  explicit DnnModel(std::string name);

  /// Appends a layer. Its `inputs` must reference already-added layers, which
  /// keeps the layer list topologically ordered by construction.
  LayerId add_layer(LayerSpec spec);

  const std::string& name() const { return name_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const LayerSpec& layer(LayerId id) const;
  const std::vector<LayerSpec>& layers() const { return layers_; }

  /// Layers that consume the output of `id`.
  const std::vector<LayerId>& successors(LayerId id) const;

  /// Total bytes of input activations feeding layer `id` (sum over preds;
  /// for the input layer this is its own output size, i.e. the query tensor).
  Bytes input_bytes(LayerId id) const;

  Bytes total_weight_bytes() const;
  Flops total_flops() const;

  /// Structural invariants: exactly one input layer (id 0), every non-input
  /// layer has predecessors, every layer except the last has a successor.
  /// Throws std::logic_error on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<LayerSpec> layers_;
  std::vector<std::vector<LayerId>> successors_;
};

}  // namespace perdnn
