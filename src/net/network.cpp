#include "net/network.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace perdnn {

NetworkCondition lab_wifi() {
  NetworkCondition net;
  net.uplink_bytes_per_sec = mbps_to_bytes_per_sec(35.0);
  net.downlink_bytes_per_sec = mbps_to_bytes_per_sec(50.0);
  net.rtt = 5e-3;
  return net;
}

TrafficAccountant::TrafficAccountant(int num_servers, Seconds interval_length)
    : num_servers_(num_servers),
      interval_length_(interval_length),
      uplink_current_(static_cast<std::size_t>(num_servers), 0),
      downlink_current_(static_cast<std::size_t>(num_servers), 0),
      uplink_peak_(static_cast<std::size_t>(num_servers), 0),
      downlink_peak_(static_cast<std::size_t>(num_servers), 0) {
  PERDNN_CHECK(num_servers >= 1);
  PERDNN_CHECK(interval_length > 0);
}

void TrafficAccountant::begin_interval() {
  if (interval_open_) finish();
  interval_open_ = true;
}

void TrafficAccountant::record_transfer(ServerId from, ServerId to,
                                        Bytes bytes) {
  PERDNN_CHECK(interval_open_);
  PERDNN_CHECK(from >= 0 && from < num_servers_);
  PERDNN_CHECK(to >= 0 && to < num_servers_);
  PERDNN_CHECK(bytes >= 0);
  if (from == to || bytes == 0) return;
  uplink_current_[static_cast<std::size_t>(from)] += bytes;
  downlink_current_[static_cast<std::size_t>(to)] += bytes;
  total_bytes_ += bytes;
}

void TrafficAccountant::finish() {
  if (!interval_open_) return;
  for (std::size_t s = 0; s < uplink_current_.size(); ++s) {
    uplink_peak_[s] = std::max(uplink_peak_[s], uplink_current_[s]);
    downlink_peak_[s] = std::max(downlink_peak_[s], downlink_current_[s]);
  }
  uplink_history_.push_back(uplink_current_);
  downlink_history_.push_back(downlink_current_);
  std::fill(uplink_current_.begin(), uplink_current_.end(), 0);
  std::fill(downlink_current_.begin(), downlink_current_.end(), 0);
  interval_open_ = false;
}

double TrafficAccountant::peak_uplink_mbps(ServerId server) const {
  PERDNN_CHECK(server >= 0 && server < num_servers_);
  return bytes_to_mbps(
      static_cast<double>(uplink_peak_[static_cast<std::size_t>(server)]),
      interval_length_);
}

double TrafficAccountant::peak_downlink_mbps(ServerId server) const {
  PERDNN_CHECK(server >= 0 && server < num_servers_);
  return bytes_to_mbps(
      static_cast<double>(downlink_peak_[static_cast<std::size_t>(server)]),
      interval_length_);
}

double TrafficAccountant::global_peak_uplink_mbps() const {
  double peak = 0.0;
  for (ServerId s = 0; s < num_servers_; ++s)
    peak = std::max(peak, peak_uplink_mbps(s));
  return peak;
}

double TrafficAccountant::global_peak_downlink_mbps() const {
  double peak = 0.0;
  for (ServerId s = 0; s < num_servers_; ++s)
    peak = std::max(peak, peak_downlink_mbps(s));
  return peak;
}

double TrafficAccountant::fraction_servers_within(double mbps) const {
  int within = 0;
  for (ServerId s = 0; s < num_servers_; ++s)
    if (peak_uplink_mbps(s) <= mbps && peak_downlink_mbps(s) <= mbps)
      ++within;
  return static_cast<double>(within) / num_servers_;
}

int TrafficAccountant::busiest_interval() const {
  int best = -1;
  Bytes best_total = -1;
  for (int k = 0; k < num_intervals(); ++k) {
    Bytes total = 0;
    for (ServerId s = 0; s < num_servers_; ++s)
      total += uplink_history_[static_cast<std::size_t>(k)]
                              [static_cast<std::size_t>(s)];
    if (total > best_total) {
      best_total = total;
      best = k;
    }
  }
  return best;
}

double TrafficAccountant::fraction_servers_within_at_peak(double mbps) const {
  const int k = busiest_interval();
  if (k < 0) return 1.0;
  int within = 0;
  for (ServerId s = 0; s < num_servers_; ++s) {
    const double up = bytes_to_mbps(
        static_cast<double>(uplink_history_[static_cast<std::size_t>(k)]
                                           [static_cast<std::size_t>(s)]),
        interval_length_);
    const double down = bytes_to_mbps(
        static_cast<double>(downlink_history_[static_cast<std::size_t>(k)]
                                             [static_cast<std::size_t>(s)]),
        interval_length_);
    if (up <= mbps && down <= mbps) ++within;
  }
  return static_cast<double>(within) / num_servers_;
}

TrafficAccountant::State TrafficAccountant::state() const {
  State st;
  st.uplink_history = uplink_history_;
  st.downlink_history = downlink_history_;
  st.uplink_current = uplink_current_;
  st.downlink_current = downlink_current_;
  st.interval_open = interval_open_;
  st.total_bytes = total_bytes_;
  return st;
}

void TrafficAccountant::restore(const State& state) {
  const auto servers = static_cast<std::size_t>(num_servers_);
  PERDNN_CHECK(state.uplink_current.size() == servers);
  PERDNN_CHECK(state.downlink_current.size() == servers);
  PERDNN_CHECK(state.uplink_history.size() == state.downlink_history.size());
  uplink_history_ = state.uplink_history;
  downlink_history_ = state.downlink_history;
  uplink_current_ = state.uplink_current;
  downlink_current_ = state.downlink_current;
  interval_open_ = state.interval_open;
  total_bytes_ = state.total_bytes;
  std::fill(uplink_peak_.begin(), uplink_peak_.end(), 0);
  std::fill(downlink_peak_.begin(), downlink_peak_.end(), 0);
  for (std::size_t k = 0; k < uplink_history_.size(); ++k) {
    PERDNN_CHECK(uplink_history_[k].size() == servers);
    PERDNN_CHECK(downlink_history_[k].size() == servers);
    for (std::size_t s = 0; s < servers; ++s) {
      uplink_peak_[s] = std::max(uplink_peak_[s], uplink_history_[k][s]);
      downlink_peak_[s] = std::max(downlink_peak_[s], downlink_history_[k][s]);
    }
  }
}

std::vector<ServerId> TrafficAccountant::servers_by_peak_uplink() const {
  std::vector<ServerId> order(static_cast<std::size_t>(num_servers_));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> peaks(order.size());
  for (ServerId s = 0; s < num_servers_; ++s)
    peaks[static_cast<std::size_t>(s)] = peak_uplink_mbps(s);
  std::sort(order.begin(), order.end(), [&](ServerId a, ServerId b) {
    const double pa = peaks[static_cast<std::size_t>(a)];
    const double pb = peaks[static_cast<std::size_t>(b)];
    if (pa != pb) return pa > pb;
    return a < b;
  });
  return order;
}

}  // namespace perdnn
