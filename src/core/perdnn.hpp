// PerDNN public API.
//
// Downstream users interact with two entry points:
//
//   * OffloadingSession — single client vs a single edge server: builds the
//     model, profiles the client device, trains the server's GPU-aware
//     execution-time estimator, and exposes partitioning, upload planning
//     and query replay. Behind Fig 1 / Fig 7 / Table II and the quickstart.
//
//   * build_world() / run_simulation() (sim/simulator.hpp) — the pervasive
//     edge-server simulation with mobility prediction and proactive
//     migration. Behind Fig 9 / Fig 10 / Section 4.B.4.
//
// Everything else (nn, ml, partition, mobility, ...) is usable directly as
// well; this header pulls the common pieces together.
#pragma once

#include <memory>

#include "device/device_profile.hpp"
#include "device/gpu_model.hpp"
#include "device/profiler.hpp"
#include "edge/master.hpp"
#include "edge/replay.hpp"
#include "estimation/estimator.hpp"
#include "net/network.hpp"
#include "nn/model_zoo.hpp"
#include "partition/energy.hpp"
#include "partition/mincut.hpp"
#include "partition/partition.hpp"
#include "partition/upload_order.hpp"
#include "serialize/serialize.hpp"

namespace perdnn {

/// Single client <-> single edge server session.
class OffloadingSession {
 public:
  struct Options {
    ModelName model = ModelName::kInception;
    NetworkCondition net;  // defaults to lab Wi-Fi numbers
    /// Concurrent clients sharing the server GPU (>= 1).
    int server_load = 1;
    DeviceProfile client_device;  // defaults to ODROID XU4
    DeviceProfile server_device;  // defaults to Titan Xp
    ProfilerConfig profiling;     // estimator training sweep
    std::uint64_t seed = 7;

    Options();
  };

  explicit OffloadingSession(const Options& options);

  const DnnModel& model() const { return model_; }
  const DnnProfile& client_profile() const { return client_profile_; }
  const GpuContentionModel& gpu() const { return *gpu_; }
  const RandomForestEstimator& estimator() const { return *estimator_; }
  const GpuStats& server_stats() const { return stats_; }

  /// Partitioning context. Estimated server times (what the master server
  /// plans with) or ground-truth expected times (what execution measures).
  PartitionContext context(bool use_true_times = false) const;

  /// Optimal partitioning plan under the estimated times.
  PartitionPlan best_plan() const;

  /// Efficiency-ordered upload schedule for a plan.
  UploadSchedule upload_schedule(
      const PartitionPlan& plan,
      UploadEnumeration enumeration = UploadEnumeration::kExact) const;

  /// Replays queries with ground-truth times while `schedule` uploads;
  /// `initial_bytes` of it are already at the server (proactive migration).
  ReplayResult replay(const UploadSchedule& schedule, Bytes initial_bytes,
                      const ReplayConfig& config) const;

  /// Full on-device latency (no offloading).
  Seconds local_latency() const;

 private:
  Options options_;
  DnnModel model_;
  DnnProfile client_profile_;
  std::shared_ptr<GpuContentionModel> gpu_;
  std::shared_ptr<RandomForestEstimator> estimator_;
  GpuStats stats_;
  std::vector<Seconds> estimated_times_;
  std::vector<Seconds> true_times_;
};

}  // namespace perdnn
