#include "core/perdnn.hpp"

#include "common/check.hpp"

namespace perdnn {

OffloadingSession::Options::Options()
    : net(lab_wifi()),
      client_device(odroid_xu4_profile()),
      server_device(titan_xp_profile()) {}

OffloadingSession::OffloadingSession(const Options& options)
    : options_(options), model_(build_model(options.model)) {
  PERDNN_CHECK(options.server_load >= 1);
  client_profile_ = profile_on_client(model_, options.client_device);
  gpu_ = std::make_shared<GpuContentionModel>(options.server_device);

  Rng rng(options.seed);
  ConcurrencyProfiler profiler(gpu_.get(), rng.fork());
  const DnnModel* models[] = {&model_};
  const auto records = profiler.profile_models(models, options.profiling);
  estimator_ = std::make_shared<RandomForestEstimator>();
  Rng train_rng = rng.fork();
  estimator_->train(records, train_rng);

  Rng stats_rng = rng.fork();
  const double load = static_cast<double>(options.server_load);
  stats_ = gpu_->stats_for_load(options.server_load, load, stats_rng);

  estimated_times_.reserve(static_cast<std::size_t>(model_.num_layers()));
  true_times_.reserve(static_cast<std::size_t>(model_.num_layers()));
  for (LayerId id = 0; id < model_.num_layers(); ++id) {
    const Bytes in_bytes = model_.input_bytes(id);
    estimated_times_.push_back(
        estimator_->estimate(model_.layer(id), in_bytes, stats_));
    true_times_.push_back(
        gpu_->expected_layer_time(model_.layer(id), in_bytes, load));
  }
}

PartitionContext OffloadingSession::context(bool use_true_times) const {
  PartitionContext context;
  context.model = &model_;
  context.client_profile = &client_profile_;
  context.server_time = use_true_times ? true_times_ : estimated_times_;
  context.net = options_.net;
  return context;
}

PartitionPlan OffloadingSession::best_plan() const {
  return compute_best_plan(context(/*use_true_times=*/false));
}

UploadSchedule OffloadingSession::upload_schedule(
    const PartitionPlan& plan, UploadEnumeration enumeration) const {
  return plan_upload_order(context(/*use_true_times=*/false), plan,
                           {.enumeration = enumeration});
}

ReplayResult OffloadingSession::replay(const UploadSchedule& schedule,
                                       Bytes initial_bytes,
                                       const ReplayConfig& config) const {
  return replay_queries(context(/*use_true_times=*/true), schedule,
                        initial_bytes, config);
}

Seconds OffloadingSession::local_latency() const {
  return total_client_time(client_profile_);
}

}  // namespace perdnn
