// Open-addressing hash map keyed by non-negative 32-bit ids (client ids,
// server ids), replacing std::unordered_map on the simulator's per-server
// cache tables. The node-based map spent roughly half of bench_scale's run
// wall in find()/operator[] — every probe a pointer chase into a separately
// allocated node. Here a probe lands in one contiguous slot array: linear
// probing over a power-of-two capacity, multiplicative hashing, and
// backward-shift deletion (no tombstones, so load factor never degrades).
//
// Iteration visits slots in table order, which is NOT insertion order and
// changes across rehashes — callers that need a canonical order must sort
// (the snapshot capture path already does).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace perdnn {

/// Map from non-negative int32 keys to `Value`. Key -1 is reserved as the
/// empty-slot sentinel.
template <typename Value>
class FlatMap32 {
 public:
  static constexpr std::int32_t kEmpty = -1;

  struct Slot {
    std::int32_t key = kEmpty;
    Value value{};
  };

  FlatMap32() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  /// Pointer to the mapped value, or nullptr when absent.
  Value* find(std::int32_t key) {
    if (size_ == 0) return nullptr;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == kEmpty) return nullptr;
    }
  }
  const Value* find(std::int32_t key) const {
    return const_cast<FlatMap32*>(this)->find(key);
  }

  /// Reference to the mapped value, default-constructing it when absent
  /// (unordered_map::operator[] semantics).
  Value& operator[](std::int32_t key) {
    PERDNN_CHECK(key >= 0);
    if (slots_.empty() || (size_ + 1) * 4 > capacity() * 3) grow();
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      Slot& slot = slots_[i];
      if (slot.key == key) return slot.value;
      if (slot.key == kEmpty) {
        slot.key = key;
        ++size_;
        return slot.value;
      }
    }
  }

  /// Removes `key` if present. Backward-shift deletion keeps every probe
  /// chain gap-free without tombstones.
  void erase(std::int32_t key) {
    if (size_ == 0) return;
    std::size_t i = index_of(key);
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmpty) return;
      i = (i + 1) & mask_;
    }
    --size_;
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_;; j = (j + 1) & mask_) {
      const std::int32_t k = slots_[j].key;
      if (k == kEmpty) break;
      // Shift back any entry whose home slot cannot reach it through the
      // hole; measured as circular distance from its home position.
      const std::size_t home = index_of(k);
      const std::size_t dist_to_j = (j - home) & mask_;
      const std::size_t dist_to_hole = (hole - home) & mask_;
      if (dist_to_hole <= dist_to_j) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole].key = kEmpty;
    slots_[hole].value = Value{};
  }

  /// Hints the cache line of `key`'s home slot into cache ahead of a
  /// find()/operator[] a few iterations later.
  void prefetch(std::int32_t key) const {
    if (size_ == 0) return;
    __builtin_prefetch(&slots_[index_of(key)]);
  }

  /// Calls fn(key, value&) for every entry, in table (not insertion) order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& slot : slots_)
      if (slot.key != kEmpty) fn(slot.key, slot.value);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_)
      if (slot.key != kEmpty) fn(slot.key, slot.value);
  }

 private:
  std::size_t capacity() const { return slots_.size(); }

  std::size_t index_of(std::int32_t key) const {
    // Fibonacci multiplicative hash: ids are dense small integers, so the
    // multiply spreads consecutive keys across the table.
    const auto h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(key)) *
                   0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> 32) & mask_;
  }

  void grow() {
    const std::size_t new_capacity = slots_.empty() ? 16 : capacity() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    size_ = 0;
    for (Slot& slot : old)
      if (slot.key != kEmpty) (*this)[slot.key] = std::move(slot.value);
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace perdnn
