// Fundamental identifier and unit types shared across all PerDNN modules.
#pragma once

#include <cstdint>
#include <limits>

namespace perdnn {

/// Identifier of an edge server (index into the simulation's server table).
using ServerId = std::int32_t;
/// Identifier of a mobile client.
using ClientId = std::int32_t;
/// Index of a DNN layer within a model (topological position).
using LayerId = std::int32_t;

/// Sentinel meaning "no server" (e.g. client is outside every service area).
inline constexpr ServerId kNoServer = -1;
/// Sentinel meaning "no layer".
inline constexpr LayerId kNoLayer = -1;

/// Simulation time in seconds. Double precision keeps sub-millisecond
/// resolution over multi-hour traces.
using Seconds = double;
/// Data sizes in bytes (model weights, tensors, traffic accounting).
using Bytes = std::int64_t;
/// Floating-point operation counts.
using Flops = double;

/// Bits-per-second <-> bytes helpers. Network speeds in the paper are quoted
/// in Mbps; all internal accounting is in bytes and seconds.
inline constexpr double kBitsPerByte = 8.0;

/// Converts a link speed in megabits/second to bytes/second.
constexpr double mbps_to_bytes_per_sec(double mbps) {
  return mbps * 1e6 / kBitsPerByte;
}

/// Converts bytes transferred in an interval to average megabits/second.
constexpr double bytes_to_mbps(double bytes, double interval_sec) {
  return interval_sec > 0 ? bytes * kBitsPerByte / 1e6 / interval_sec : 0.0;
}

/// Megabytes -> bytes (model sizes in the paper are quoted in MB).
constexpr Bytes mb_to_bytes(double mb) {
  return static_cast<Bytes>(mb * 1024.0 * 1024.0);
}

/// Bytes -> megabytes.
constexpr double bytes_to_mb(Bytes bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// "Infinite" time used for unreachable states in shortest-path searches.
inline constexpr Seconds kInfSeconds = std::numeric_limits<double>::infinity();

}  // namespace perdnn
