#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace perdnn {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[static_cast<std::size_t>(i)] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::restore(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[static_cast<std::size_t>(i)];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PERDNN_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PERDNN_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  PERDNN_CHECK(stddev >= 0.0);
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  PERDNN_CHECK(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::index(std::size_t n) {
  PERDNN_CHECK(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  PERDNN_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PERDNN_CHECK(w >= 0.0);
    total += w;
  }
  PERDNN_CHECK(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: landed exactly on total
}

Rng Rng::fork() { return Rng((*this)()); }

}  // namespace perdnn
