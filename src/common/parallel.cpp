#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace perdnn::par {

namespace {

/// Marks pool worker threads so nested parallel regions run inline.
thread_local bool t_on_worker = false;

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;   // guarded by g_pool_mu
int g_override_threads = 0;           // guarded by g_pool_mu; 0 = auto

int env_threads() {
  const char* env = std::getenv("PERDNN_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || v < 1) return 0;  // ignore garbage
  return static_cast<int>(v);
}

int resolve_threads_locked() {
  if (g_override_threads >= 1) return g_override_threads;
  const int env = env_threads();
  if (env >= 1) return env;
  return hardware_threads();
}

}  // namespace

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc >= 1 ? static_cast<int>(hc) : 1;
}

void set_num_threads(int n) {
  PERDNN_CHECK_MSG(n >= 0, "set_num_threads: count must be >= 0");
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_override_threads = n;
  g_pool.reset();  // next region rebuilds at the new size
}

int num_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return resolve_threads_locked();
}

int init_threads_from_cli(int argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads requires a value\n");
        std::exit(2);
      }
      value = argv[++i];
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      value = arg + 10;
    } else {
      argv[out++] = argv[i];
      continue;
    }
    char* end = nullptr;
    const long n = std::strtol(value, &end, 10);
    if (end == nullptr || *end != '\0' || n < 1) {
      std::fprintf(stderr, "--threads expects an integer >= 1, got '%s'\n",
                   value);
      std::exit(2);
    }
    set_num_threads(static_cast<int>(n));
  }
  argv[out] = nullptr;
  return out;
}

ThreadPool::ThreadPool(int num_threads) {
  PERDNN_CHECK_MSG(num_threads >= 1, "thread pool needs >= 1 worker");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  obs::set_gauge("par.queue_depth", static_cast<double>(depth));
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs::enabled()) {
      const auto start = std::chrono::steady_clock::now();
      task();
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - start;
      obs::count("par.tasks");
      obs::observe("par.task_latency_s", dt.count());
    } else {
      task();
    }
  }
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    const int n = resolve_threads_locked();
    PERDNN_CHECK_MSG(n >= 2, "global pool built with a serial thread count");
    g_pool = std::make_unique<ThreadPool>(n);
    obs::set_gauge("par.pool_threads", static_cast<double>(n));
  }
  return *g_pool;
}

namespace detail {

void run_chunked(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& chunk) {
  if (n == 0) return;
  const int threads = num_threads();
  // Serial bypass: configured serial, trivial range, or already inside a
  // parallel region (nested regions run inline on the enclosing worker).
  if (threads <= 1 || n < 2 || ThreadPool::on_worker_thread()) {
    chunk(0, n);
    return;
  }

  ThreadPool& pool = ThreadPool::global();
  const std::size_t num_chunks =
      std::min(static_cast<std::size_t>(pool.size()), n);

  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t remaining = num_chunks;
  std::exception_ptr first_error;  // in chunk order: lowest chunk wins
  std::size_t first_error_chunk = n + 1;

  for (std::size_t c = 0; c < num_chunks; ++c) {
    // Static chunking: contiguous, near-equal ranges fixed by (n, pool
    // size) alone — the work assignment is reproducible run to run.
    const std::size_t begin = n * c / num_chunks;
    const std::size_t end = n * (c + 1) / num_chunks;
    pool.submit([&, c, begin, end] {
      std::exception_ptr error;
      try {
        chunk(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (error != nullptr && c < first_error_chunk) {
        first_error = error;
        first_error_chunk = c;
      }
      if (--remaining == 0) done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace perdnn::par
