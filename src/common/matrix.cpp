#include "common/matrix.hpp"

#include <cmath>

#include "common/check.hpp"

namespace perdnn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    PERDNN_CHECK(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  PERDNN_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  PERDNN_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

const double* Matrix::row_data(std::size_t r) const {
  PERDNN_CHECK(r < rows_);
  return data_.data() + r * cols_;
}

double* Matrix::row_data(std::size_t r) {
  PERDNN_CHECK(r < rows_);
  return data_.data() + r * cols_;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::matmul(const Matrix& other) const {
  PERDNN_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* orow = other.row_data(k);
      double* out_row = out.row_data(r);
      for (std::size_t c = 0; c < other.cols_; ++c) out_row[c] += a * orow[c];
    }
  }
  return out;
}

Vector Matrix::matvec(const Vector& v) const {
  PERDNN_CHECK(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Vector Matrix::transposed_matvec(const Vector& v) const {
  PERDNN_CHECK(v.size() == rows_);
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    const double s = v[r];
    if (s == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += row[c] * s;
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  PERDNN_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  PERDNN_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Vector cholesky_solve(const Matrix& a, const Vector& b, double ridge) {
  PERDNN_CHECK(a.rows() == a.cols());
  PERDNN_CHECK(b.size() == a.rows());
  PERDNN_CHECK(ridge >= 0.0);
  const std::size_t n = a.rows();

  // Lower-triangular Cholesky factor of (A + ridge*I).
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j) + (i == j ? ridge : 0.0);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        PERDNN_CHECK_MSG(sum > 0.0, "matrix not positive definite at row " << i);
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }

  // Forward substitution: L y = b.
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Vector vec_add(const Vector& a, const Vector& b) {
  PERDNN_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector vec_sub(const Vector& a, const Vector& b) {
  PERDNN_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector vec_mul(const Vector& a, const Vector& b) {
  PERDNN_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Vector vec_scale(const Vector& a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

double dot(const Vector& a, const Vector& b) {
  PERDNN_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace perdnn
