// ASCII table rendering for the benchmark harness. Each bench reproduces a
// paper table/figure and prints it in the same row/column layout; this
// helper keeps the formatting consistent across benches.
#pragma once

#include <string>
#include <vector>

namespace perdnn {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string num(double value, int precision = 2);
  /// Convenience: integer cell.
  static std::string num(long long value);

  /// Renders with column-aligned padding and +---+ separators.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace perdnn
