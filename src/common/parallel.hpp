// Deterministic parallel runtime: a fixed-size thread pool plus structured
// parallel loops whose results are bit-identical to serial execution
// regardless of thread count.
//
// The determinism contract every caller must uphold:
//
//   * parallel_for(n, body) — body(i) must depend only on `i` and on state
//     that is read-only for the duration of the loop, and must write only to
//     slot(s) owned by `i`. Static chunking assigns contiguous index ranges
//     to workers; the assignment never affects results because iterations
//     are independent.
//   * parallel_map(n, fn) — fn(i) is a pure function of `i`; results land in
//     a pre-sized vector at index `i`, i.e. they merge in *submission
//     order*. Downstream reductions therefore see the same operand order at
//     1, 2 or 64 threads (floating-point sums included).
//   * Randomness inside a parallel region must come from Rng streams forked
//     *serially, in submission order, before the region starts* (one
//     Rng::fork() per task). Never share one Rng across tasks.
//
// Thread count resolution (first match wins): set_num_threads(n) with n >= 1,
// the PERDNN_THREADS environment variable, std::thread::hardware_concurrency.
// A count of 1 bypasses the pool entirely: no threads are created and the
// loop bodies run inline on the caller.
//
// Nested parallel regions run inline on the worker that encounters them
// (no pool re-entry, no deadlock), so library code may use parallel_for
// freely without caring whether its caller already fanned out.
//
// Observability: when the obs registry is collecting, the pool exports
//   par.pool_threads         (gauge)   worker count of the live pool
//   par.tasks                (counter) tasks executed by workers
//   par.queue_depth          (gauge)   queue length sampled at submit
//   par.task_latency_s       (histogram) per-task wall-clock
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace perdnn::par {

/// Number of hardware threads (>= 1).
int hardware_threads();

/// Explicit override for the process-wide pool size. n >= 1 fixes the
/// count; n == 0 reverts to automatic resolution (PERDNN_THREADS env var,
/// else hardware_concurrency). Destroys the current global pool, if any, so
/// the next parallel region rebuilds it at the new size. Must not be called
/// concurrently with running parallel regions.
void set_num_threads(int n);

/// The thread count a parallel region started now would use (>= 1).
int num_threads();

/// Parses a `--threads N` flag out of argv (both `--threads N` and
/// `--threads=N`), applies it via set_num_threads, and compacts argv in
/// place. Returns the new argc. Call first thing in main(); a malformed
/// value exits with status 2.
int init_threads_from_cli(int argc, char** argv);

/// Fixed-size FIFO thread pool. Most code should use parallel_for /
/// parallel_map instead of touching the pool directly.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks must not block on other queued tasks.
  void submit(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers.
  static bool on_worker_thread();

  /// Process-wide pool, built on first use at num_threads() size. Never
  /// constructed while the resolved count is 1.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

namespace detail {

/// Runs body(begin, end) chunks of [0, n) across the pool and waits.
/// Exceptions thrown by any chunk are rethrown on the caller (first one in
/// chunk order wins).
void run_chunked(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& chunk);

}  // namespace detail

/// Parallel loop over [0, n): body(i) for every i, statically chunked into
/// contiguous ranges. Runs inline when the resolved thread count is 1, when
/// n < 2, or when called from inside another parallel region.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  detail::run_chunked(n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

/// Ordered parallel map: returns {fn(0), fn(1), ..., fn(n-1)} with every
/// result in its submission slot, so reductions over the returned vector
/// are bit-identical to a serial loop at any thread count.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<R> out(n);
  detail::run_chunked(n, [&out, &fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace perdnn::par
