#include "common/fastpath.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace perdnn::fastpath {

namespace {

bool initial_state() {
  const char* env = std::getenv("PERDNN_NO_FASTPATH");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0)
    return true;
  return false;
}

std::atomic<bool>& flag() {
  static std::atomic<bool> state{initial_state()};
  return state;
}

}  // namespace

bool enabled() { return flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) { flag().store(on, std::memory_order_relaxed); }

}  // namespace perdnn::fastpath
