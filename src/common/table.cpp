#include "common/table.hpp"

#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace perdnn {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PERDNN_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  PERDNN_CHECK_MSG(row.size() == header_.size(),
                   "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::num(long long value) { return std::to_string(value); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    os << '\n';
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

}  // namespace perdnn
