// Dense row-major matrix/vector math for the from-scratch ML stack
// (ridge regression normal equations, SVR feature algebra, LSTM forward and
// backward passes). Deliberately small: only the operations the ML modules
// need, with invariant checks on every shape.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace perdnn {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Builds from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Row view as a span-like pointer pair (row-major storage).
  const double* row_data(std::size_t r) const;
  double* row_data(std::size_t r);

  Matrix transposed() const;

  /// this * other.
  Matrix matmul(const Matrix& other) const;
  /// this * v.
  Vector matvec(const Vector& v) const;
  /// transpose(this) * v — avoids materialising the transpose.
  Vector transposed_matvec(const Vector& v) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// All entries, row-major.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves (A + ridge*I) x = b for symmetric positive definite A via Cholesky.
/// Used for ridge-regression normal equations. Throws if A is not SPD even
/// after the ridge term.
Vector cholesky_solve(const Matrix& a, const Vector& b, double ridge = 0.0);

/// Elementwise vector helpers used by the LSTM.
Vector vec_add(const Vector& a, const Vector& b);
Vector vec_sub(const Vector& a, const Vector& b);
Vector vec_mul(const Vector& a, const Vector& b);
Vector vec_scale(const Vector& a, double s);
double dot(const Vector& a, const Vector& b);

}  // namespace perdnn
