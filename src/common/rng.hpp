// Deterministic pseudo-random number generation.
//
// Every stochastic component in the reproduction (trace generators, GPU
// contention noise, ML training shuffles, bootstrap sampling) draws from an
// explicitly seeded Rng so experiments are reproducible bit-for-bit. We use
// xoshiro256** seeded via splitmix64, the standard pairing recommended by the
// xoshiro authors; std::mt19937 would also work but is slower and its
// distributions are not portable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace perdnn {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Complete generator state, exposed for checkpointing: the four xoshiro
  /// words plus the Box-Muller spare. restore()ing a captured State resumes
  /// the stream mid-draw-sequence bit-for-bit.
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;

    bool operator==(const State&) const = default;
  };

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  State state() const;
  void restore(const State& state);

  /// Raw 64-bit draw (UniformRandomBitGenerator interface).
  std::uint64_t operator()();
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli draw.
  bool bernoulli(double p);
  /// Exponential with the given mean (not rate).
  double exponential(double mean);
  /// Index into [0, n) — for picking elements.
  std::size_t index(std::size_t n);
  /// Categorical draw from unnormalised non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulation
  /// component its own stream so adding draws in one place does not perturb
  /// another.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace perdnn
