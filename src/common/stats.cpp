#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace perdnn {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double total = 0.0;
  for (double x : xs) total += (x - m) * (x - m);
  return total / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double mean_absolute_error(std::span<const double> predicted,
                           std::span<const double> actual) {
  PERDNN_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    total += std::abs(predicted[i] - actual[i]);
  return total / static_cast<double>(predicted.size());
}

double root_mean_squared_error(std::span<const double> predicted,
                               std::span<const double> actual) {
  PERDNN_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(predicted.size()));
}

double percentile(std::span<const double> xs, double p) {
  PERDNN_CHECK(p >= 0.0 && p <= 100.0);
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double max_value(std::span<const double> xs) {
  double best = -std::numeric_limits<double>::infinity();
  for (double x : xs) best = std::max(best, x);
  return best;
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace perdnn
