// Small statistics helpers used by estimator evaluation (MAE), the
// simulator's metric collection, and the benches' reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace perdnn {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Population variance; 0 for fewer than two samples.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Mean absolute error between predictions and targets (equal length).
double mean_absolute_error(std::span<const double> predicted,
                           std::span<const double> actual);

/// Root mean squared error between predictions and targets (equal length).
double root_mean_squared_error(std::span<const double> predicted,
                               std::span<const double> actual);

/// p-th percentile (0..100) via linear interpolation on a copy of the data.
double percentile(std::span<const double> xs, double p);

/// Maximum; -inf for an empty span.
double max_value(std::span<const double> xs);

/// Streaming mean/variance/min/max (Welford). Used for per-interval traffic
/// accounting where storing every sample would be wasteful.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace perdnn
