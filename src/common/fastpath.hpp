// Process-wide switch for the estimation/partitioning fast path (flattened
// forest inference, estimate memoisation, incremental upload-order DP).
//
// The fast path is a pure performance optimisation: every consumer is
// required to produce byte-identical results with the flag on or off (the
// determinism contract tested by tests/sim/parallel_determinism_test.cpp and
// the flat-forest / upload-order equivalence tests). The flag therefore
// exists only as an escape hatch for debugging and for measuring the win
// (`bench_micro --json`, `bench_fig9_large_scale --no-fastpath`).
//
// Resolution: enabled by default; the PERDNN_NO_FASTPATH environment
// variable (any non-empty value other than "0") disables it at startup;
// set_enabled() overrides either way. Reads are lock-free; toggling while
// parallel regions are running estimator or planner code is not supported.
#pragma once

namespace perdnn::fastpath {

/// True when fast-path implementations should be used.
bool enabled();

/// Explicit override (e.g. from a `--no-fastpath` CLI flag).
void set_enabled(bool on);

}  // namespace perdnn::fastpath
