// Shared little-endian wire framing for PerDNN's binary on-disk formats
// (checkpoint snapshots, event journals). One Writer/Reader pair so every
// format gets the same fixed-width encoding, the same bounds checking, and
// the same magic | version | payload-size | payload | FNV-1a-checksum frame.
#pragma once

#include <bit>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace perdnn::wire {

/// Decode-side failure: truncation, corruption, version or framing
/// mismatch. Format-specific decoders catch this and rethrow their own
/// error type so callers keep a single exception surface per format.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// -- little-endian fixed-width writer ---------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void count(std::size_t n) { u64(static_cast<std::uint64_t>(n)); }

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

// -- bounds-checked reader ---------------------------------------------------

class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(
               data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
               data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw WireError("wire: boolean field out of range");
    return v == 1;
  }
  /// Reads a vector length and sanity-checks it against the bytes left:
  /// each element needs at least `min_elem_bytes`, so a length the payload
  /// cannot possibly hold is rejected before any allocation.
  std::size_t count(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    const std::size_t remaining = size_ - pos_;
    if (min_elem_bytes > 0 && n > remaining / min_elem_bytes)
      throw WireError("wire: length field exceeds payload size");
    return static_cast<std::size_t>(n);
  }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) {
    if (size_ - pos_ < n) throw WireError("wire: truncated payload");
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// -- frame helpers -----------------------------------------------------------

/// Wraps a payload in the shared frame: 8-byte magic | u32 version |
/// u64 payload size | payload | u64 FNV-1a(payload).
inline std::string frame(const char (&magic)[8], std::uint32_t version,
                         const std::string& payload) {
  Writer out;
  for (char c : magic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(version);
  out.u64(payload.size());
  std::string bytes = out.bytes();
  bytes += payload;
  Writer checksum;
  checksum.u64(fnv1a(payload.data(), payload.size()));
  bytes += checksum.bytes();
  return bytes;
}

/// Validates the frame around `bytes` (magic, version, size, checksum) and
/// returns a Reader positioned at the start of the payload. `format` names
/// the format in error messages ("snapshot", "journal", ...).
inline Reader unframe(const std::string& bytes, const char (&magic)[8],
                      std::uint32_t expected_version, const char* format) {
  constexpr std::size_t kHeaderSize = 8 + 4 + 8;  // magic + version + size
  const auto err = [&](const std::string& what) {
    return WireError(std::string(format) + ": " + what);
  };
  if (bytes.size() < kHeaderSize + 8)
    throw err("file too small to hold a header");
  for (std::size_t i = 0; i < 8; ++i)
    if (bytes[i] != magic[i]) throw err("bad magic (wrong file type)");
  Reader header(bytes.data() + 8, kHeaderSize - 8);
  const std::uint32_t version = header.u32();
  if (version != expected_version) {
    std::ostringstream msg;
    msg << "unsupported version " << version << " (expected "
        << expected_version << ")";
    throw err(msg.str());
  }
  const std::uint64_t payload_size = header.u64();
  if (payload_size != bytes.size() - kHeaderSize - 8)
    throw err("payload size mismatch (truncated file?)");
  const char* payload = bytes.data() + kHeaderSize;
  Reader trailer(bytes.data() + kHeaderSize + payload_size, 8);
  if (fnv1a(payload, payload_size) != trailer.u64())
    throw err("checksum mismatch (corrupted payload)");
  return Reader(payload, static_cast<std::size_t>(payload_size));
}

}  // namespace perdnn::wire
