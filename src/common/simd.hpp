// Runtime SIMD dispatch for the batched inference kernels.
//
// Kernels with a vector variant (ml::FlatForest::predict_batch_into) are
// compiled twice: a portable scalar version built unconditionally, and an
// AVX2 version built only when the toolchain supports it and the
// PERDNN_SIMD CMake option is ON (the default). Which one runs is decided
// once per process:
//
//   compiled in (PERDNN_SIMD=ON + compiler support)
//     AND the CPU reports AVX2 at startup
//     AND not disabled by the PERDNN_NO_SIMD environment variable
//     AND not overridden by set_enabled()
//
// Every vector kernel is required to be *bit-identical* to its scalar
// fallback — same comparisons, same per-tree accumulation order, no FMA
// contraction — so the toggle, like the fastpath flag and the thread count,
// is byte-identity-neutral. tests/ml/flat_forest_simd_test.cpp enforces the
// kernel contract and tests/sim/shard_determinism_test.cpp the end-to-end
// one.
//
// Resolution mirrors common/fastpath.hpp: PERDNN_NO_SIMD (any non-empty
// value other than "0") disables the vector paths at startup; set_enabled()
// overrides either way but can never enable what the hardware or build
// lacks. Reads are lock-free; toggling while kernels are running in
// parallel regions is not supported.
#pragma once

namespace perdnn::simd {

/// True when this binary contains the AVX2 kernels (PERDNN_SIMD=ON and the
/// compiler accepted -mavx2). Constant per build.
bool compiled_in();

/// True when the CPU executing this process supports AVX2. Constant per
/// process.
bool cpu_supported();

/// True when vector kernels should be used: compiled in, CPU-supported and
/// not switched off.
bool enabled();

/// Explicit override (tests, `--no-simd` style flags, equivalence benches).
/// Enabling is clamped to compiled_in() && cpu_supported().
void set_enabled(bool on);

/// "avx2" when enabled() is true, "scalar" otherwise — recorded in bench
/// JSON artifacts so regression gates know which kernel produced a number.
const char* active_kernel();

}  // namespace perdnn::simd
