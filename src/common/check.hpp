// Always-on invariant checking. Simulation bugs must fail loudly, not warp
// results silently, so these checks stay enabled in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace perdnn::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PERDNN_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace perdnn::detail

/// Checks a simulation/library invariant; throws std::logic_error on failure.
#define PERDNN_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::perdnn::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
  } while (0)

/// Like PERDNN_CHECK but with a streamed message, e.g.
/// PERDNN_CHECK_MSG(x > 0, "x=" << x).
#define PERDNN_CHECK_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << msg;                                                           \
      ::perdnn::detail::check_failed(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                       \
  } while (0)
