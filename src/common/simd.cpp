#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace perdnn::simd {

namespace {

bool env_allows() {
  const char* env = std::getenv("PERDNN_NO_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0)
    return true;
  return false;
}

bool detect_cpu() {
#if defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports consults cpuid once and caches; it is the
  // runtime half of the dispatch (the compile half is PERDNN_SIMD_AVX2).
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

std::atomic<bool>& flag() {
  static std::atomic<bool> state{compiled_in() && cpu_supported() &&
                                 env_allows()};
  return state;
}

}  // namespace

bool compiled_in() {
#ifdef PERDNN_SIMD_AVX2
  return true;
#else
  return false;
#endif
}

bool cpu_supported() {
  static const bool supported = detect_cpu();
  return supported;
}

bool enabled() { return flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  flag().store(on && compiled_in() && cpu_supported(),
               std::memory_order_relaxed);
}

const char* active_kernel() { return enabled() ? "avx2" : "scalar"; }

}  // namespace perdnn::simd
