#include "mobility/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace perdnn {

std::vector<ServerId> nearest_servers(const ServerMap& servers, Point p,
                                      int k) {
  PERDNN_CHECK(k >= 1);
  // Expanding ring search; each iteration doubles the radius.
  double radius = servers.grid().cell_radius() * 2.0;
  for (int attempt = 0; attempt < 16; ++attempt) {
    std::vector<ServerId> found = servers.servers_within(p, radius);
    if (static_cast<int>(found.size()) >= k ||
        static_cast<int>(found.size()) == servers.num_servers()) {
      std::sort(found.begin(), found.end(), [&](ServerId a, ServerId b) {
        const double da = distance(servers.server_center(a), p);
        const double db = distance(servers.server_center(b), p);
        if (da != db) return da < db;
        return a < b;
      });
      if (static_cast<int>(found.size()) > k)
        found.resize(static_cast<std::size_t>(k));
      return found;
    }
    radius *= 2.0;
  }
  return servers.servers_within(p, radius);
}

MobilityPredictor::MobilityPredictor(int trajectory_length)
    : trajectory_length_(trajectory_length) {
  PERDNN_CHECK(trajectory_length >= 1);
}

std::span<const Point> MobilityPredictor::window(
    std::span<const Point> recent) const {
  const auto n = static_cast<std::size_t>(trajectory_length_);
  PERDNN_CHECK_MSG(recent.size() >= n,
                   "need at least " << n << " recent locations, got "
                                    << recent.size());
  return recent.subspan(recent.size() - n, n);
}

std::vector<ServerId> MobilityPredictor::predict_servers(
    std::span<const Point> recent, int top_k, const ServerMap& servers) const {
  return nearest_servers(servers, predict(recent), top_k);
}

// ---------------------------------------------------------------- Markov

MarkovPredictor::MarkovPredictor(int trajectory_length,
                                 const ServerMap* servers,
                                 ml::MarkovConfig config)
    : MobilityPredictor(trajectory_length), servers_(servers), tree_(config) {
  PERDNN_CHECK(servers != nullptr);
}

MarkovPredictor::MarkovPredictor(int trajectory_length,
                                 std::shared_ptr<const ServerMap> servers,
                                 ml::MarkovConfig config)
    : MobilityPredictor(trajectory_length),
      owned_servers_(std::move(servers)),
      servers_(owned_servers_.get()),
      tree_(config) {
  PERDNN_CHECK(servers_ != nullptr);
}

std::vector<int> MarkovPredictor::discretize(
    std::span<const Point> points) const {
  std::vector<int> symbols;
  symbols.reserve(points.size());
  const double max_radius =
      servers_->grid().cell_radius() * 64.0;  // generous search bound
  for (Point p : points)
    symbols.push_back(servers_->nearest_server(p, max_radius));
  return symbols;
}

void MarkovPredictor::fit(const std::vector<Trajectory>& train, Rng& /*rng*/) {
  PERDNN_CHECK(!train.empty());
  // Discretisation (nearest-server lookups) dominates and is independent per
  // trace; the suffix tree itself is order-sensitive, so sequences are added
  // serially in trace order.
  const auto sequences = par::parallel_map(train.size(), [&](std::size_t i) {
    return discretize(train[i].points);
  });
  for (const auto& symbols : sequences) tree_.add_sequence(symbols);
}

std::vector<ServerId> MarkovPredictor::predict_servers(
    std::span<const Point> recent, int top_k,
    const ServerMap& servers) const {
  const auto symbols = discretize(window(recent));
  std::vector<int> top = tree_.predict_top(symbols, top_k);
  std::vector<ServerId> out(top.begin(), top.end());
  if (out.empty()) {
    // Unseen context: fall back to staying near the current location.
    return nearest_servers(servers, recent.back(), top_k);
  }
  return out;
}

Point MarkovPredictor::predict(std::span<const Point> recent) const {
  const auto top = predict_servers(recent, 1, *servers_);
  if (top.empty() || top[0] == kNoServer) return recent.back();
  return servers_->server_center(top[0]);
}

// ---------------------------------------------------------------- SVR

SvrPredictor::SvrPredictor(int trajectory_length, ml::SvrConfig config)
    : MobilityPredictor(trajectory_length), config_(config) {}

Vector SvrPredictor::encode(std::span<const Point> recent) const {
  PERDNN_CHECK(scaler_.fitted());
  Vector features;
  features.reserve(recent.size() * 2);
  for (Point p : recent) {
    const Vector scaled = scaler_.transform({p.x, p.y});
    features.push_back(scaled[0]);
    features.push_back(scaled[1]);
  }
  return features;
}

void SvrPredictor::fit(const std::vector<Trajectory>& train, Rng& rng) {
  PERDNN_CHECK(!train.empty());
  const auto n = static_cast<std::size_t>(trajectory_length());

  // Standardise coordinates over the whole training corpus (paper: standard
  // scores before SVR training).
  std::vector<Vector> coords;
  for (const auto& traj : train)
    for (Point p : traj.points) coords.push_back({p.x, p.y});
  PERDNN_CHECK(!coords.empty());
  scaler_.fit(coords);

  // Sliding-window encoding is independent per trace: encode in parallel,
  // concatenate in trace order (identical layout to the serial loop).
  struct Windows {
    std::vector<Vector> features;
    std::vector<Vector> targets;
  };
  const auto per_trace = par::parallel_map(train.size(), [&](std::size_t t) {
    Windows w;
    const auto& traj = train[t];
    if (traj.points.size() < n + 1) return w;
    for (std::size_t i = n; i < traj.points.size(); ++i) {
      w.features.push_back(
          encode(std::span<const Point>(traj.points).subspan(i - n, n)));
      w.targets.push_back(
          scaler_.transform({traj.points[i].x, traj.points[i].y}));
    }
    return w;
  });
  std::vector<Vector> features;
  std::vector<Vector> targets;
  for (const Windows& w : per_trace) {
    features.insert(features.end(), w.features.begin(), w.features.end());
    targets.insert(targets.end(), w.targets.begin(), w.targets.end());
  }
  PERDNN_CHECK_MSG(!features.empty(), "no training windows of length n+1");
  model_ = std::make_unique<ml::MultiOutputSvr>(2, config_);
  model_->fit(features, targets, rng);
}

Point SvrPredictor::predict(std::span<const Point> recent) const {
  PERDNN_CHECK_MSG(model_ != nullptr, "predict() before fit()");
  const Vector scaled = model_->predict(encode(window(recent)));
  return {scaler_.inverse_single(0, scaled[0]),
          scaler_.inverse_single(1, scaled[1])};
}

// ---------------------------------------------------------------- RNN

RnnPredictor::RnnPredictor(int trajectory_length, std::size_t hidden_dim,
                           int epochs)
    : MobilityPredictor(trajectory_length),
      hidden_dim_(hidden_dim),
      epochs_(epochs) {
  PERDNN_CHECK(hidden_dim >= 1 && epochs >= 1);
}

std::vector<Vector> RnnPredictor::encode(std::span<const Point> recent) const {
  PERDNN_CHECK(scaler_.fitted());
  std::vector<Vector> sequence;
  sequence.reserve(recent.size());
  for (Point p : recent) sequence.push_back(scaler_.transform({p.x, p.y}));
  return sequence;
}

void RnnPredictor::fit(const std::vector<Trajectory>& train, Rng& rng) {
  PERDNN_CHECK(!train.empty());
  const auto n = static_cast<std::size_t>(trajectory_length());

  std::vector<Vector> coords;
  for (const auto& traj : train)
    for (Point p : traj.points) coords.push_back({p.x, p.y});
  PERDNN_CHECK(!coords.empty());
  scaler_.fit(coords);

  // As in SvrPredictor::fit: per-trace windows in parallel, merged in trace
  // order.
  struct Windows {
    std::vector<std::vector<Vector>> sequences;
    std::vector<Vector> targets;
  };
  const auto per_trace = par::parallel_map(train.size(), [&](std::size_t t) {
    Windows w;
    const auto& traj = train[t];
    if (traj.points.size() < n + 1) return w;
    for (std::size_t i = n; i < traj.points.size(); ++i) {
      w.sequences.push_back(
          encode(std::span<const Point>(traj.points).subspan(i - n, n)));
      w.targets.push_back(
          scaler_.transform({traj.points[i].x, traj.points[i].y}));
    }
    return w;
  });
  std::vector<std::vector<Vector>> sequences;
  std::vector<Vector> targets;
  for (const Windows& w : per_trace) {
    sequences.insert(sequences.end(), w.sequences.begin(), w.sequences.end());
    targets.insert(targets.end(), w.targets.begin(), w.targets.end());
  }
  PERDNN_CHECK_MSG(!sequences.empty(), "no training windows of length n+1");

  ml::LstmConfig config;
  config.input_dim = 2;
  config.hidden_dim = hidden_dim_;
  config.output_dim = 2;
  config.epochs = epochs_;
  model_ = std::make_unique<ml::LstmRegressor>(config, rng);
  model_->fit(sequences, targets, rng);
}

Point RnnPredictor::predict(std::span<const Point> recent) const {
  PERDNN_CHECK_MSG(model_ != nullptr, "predict() before fit()");
  const Vector scaled = model_->predict(encode(window(recent)));
  return {scaler_.inverse_single(0, scaled[0]),
          scaler_.inverse_single(1, scaled[1])};
}

}  // namespace perdnn
