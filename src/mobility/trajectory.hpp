// User trajectories: fixed-interval (x, y) samples on the metric plane.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "geo/point.hpp"

namespace perdnn {

struct Trajectory {
  int user = 0;
  Seconds interval = 30.0;  ///< seconds between consecutive points
  std::vector<Point> points;

  std::size_t size() const { return points.size(); }

  /// Keeps every `stride`-th point, multiplying the interval accordingly —
  /// how the paper derives datasets with different time intervals t from the
  /// densely sampled Geolife traces.
  Trajectory resampled(int stride) const;

  /// Mean speed over the trajectory in m/s (0 for fewer than 2 points).
  double mean_speed() const;
};

/// Mean of per-user mean speeds (the paper quotes ~0.5 m/s for KAIST and
/// ~3.9 m/s for Geolife).
double mean_speed(const std::vector<Trajectory>& trajectories);

/// All points of all trajectories (for edge-server allocation).
std::vector<Point> all_points(const std::vector<Trajectory>& trajectories);

}  // namespace perdnn
