#include "mobility/evaluate.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace perdnn {

double PredictorEvaluation::futile_ratio() const {
  return total_predictions > 0
             ? static_cast<double>(futile_predictions) / total_predictions
             : 0.0;
}

double PredictorEvaluation::top1_accuracy() const {
  return non_futile() > 0 ? static_cast<double>(top1_hits) / non_futile()
                          : 0.0;
}

double PredictorEvaluation::top2_accuracy() const {
  return non_futile() > 0 ? static_cast<double>(top2_hits) / non_futile()
                          : 0.0;
}

PredictorEvaluation evaluate_predictor(const MobilityPredictor& predictor,
                                       const std::vector<Trajectory>& test,
                                       const ServerMap& servers) {
  PERDNN_CHECK(!test.empty());
  const auto n = static_cast<std::size_t>(predictor.trajectory_length());
  const double search_radius = servers.grid().cell_radius() * 64.0;
  const double service_range = servers.grid().cell_radius();

  // Traces are independent: tally each one in parallel, then merge the
  // partial tallies in trace order. The merge order is fixed by the test
  // set alone, so the floating-point error sums are identical at any thread
  // count (the determinism contract of the parallel runtime).
  struct Tally {
    int total = 0;
    int futile = 0;
    int top1 = 0;
    int top2 = 0;
    double err_all = 0.0;
    double err_nonfutile = 0.0;
    int in_range = 0;
  };
  const auto tallies = par::parallel_map(test.size(), [&](std::size_t t) {
    Tally tally;
    const auto& traj = test[t];
    if (traj.points.size() < n + 1) return tally;
    for (std::size_t i = n - 1; i + 1 < traj.points.size(); ++i) {
      const std::span<const Point> recent(traj.points.data(), i + 1);
      const Point actual = traj.points[i + 1];
      const ServerId current =
          servers.nearest_server(traj.points[i], search_radius);
      const ServerId next = servers.nearest_server(actual, search_radius);

      const Point predicted = predictor.predict(recent);
      ++tally.total;
      tally.err_all += distance(predicted, actual);

      if (next == current) {
        ++tally.futile;
        continue;
      }
      tally.err_nonfutile += distance(predicted, actual);
      const auto top2 = predictor.predict_servers(recent, 2, servers);
      if (!top2.empty() && top2[0] == next) ++tally.top1;
      if (std::find(top2.begin(), top2.end(), next) != top2.end())
        ++tally.top2;
      if (next != kNoServer &&
          distance(predicted, servers.server_center(next)) <= service_range)
        ++tally.in_range;
    }
    return tally;
  });

  PredictorEvaluation eval;
  double err_all = 0.0;
  double err_nonfutile = 0.0;
  int in_range = 0;
  for (const Tally& tally : tallies) {
    eval.total_predictions += tally.total;
    eval.futile_predictions += tally.futile;
    eval.top1_hits += tally.top1;
    eval.top2_hits += tally.top2;
    err_all += tally.err_all;
    err_nonfutile += tally.err_nonfutile;
    in_range += tally.in_range;
  }
  if (eval.total_predictions > 0)
    eval.mae_all_m = err_all / eval.total_predictions;
  if (eval.non_futile() > 0) {
    eval.mae_nonfutile_m = err_nonfutile / eval.non_futile();
    eval.in_range_accuracy = static_cast<double>(in_range) / eval.non_futile();
  }
  return eval;
}

double benefit_cost_ratio(const PredictorEvaluation& eval) {
  if (eval.total_predictions == 0) return 0.0;
  const double benefit = eval.in_range_accuracy *
                         static_cast<double>(eval.non_futile());
  return benefit / static_cast<double>(eval.total_predictions);
}

}  // namespace perdnn
