#include "mobility/evaluate.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace perdnn {

double PredictorEvaluation::futile_ratio() const {
  return total_predictions > 0
             ? static_cast<double>(futile_predictions) / total_predictions
             : 0.0;
}

double PredictorEvaluation::top1_accuracy() const {
  return non_futile() > 0 ? static_cast<double>(top1_hits) / non_futile()
                          : 0.0;
}

double PredictorEvaluation::top2_accuracy() const {
  return non_futile() > 0 ? static_cast<double>(top2_hits) / non_futile()
                          : 0.0;
}

PredictorEvaluation evaluate_predictor(const MobilityPredictor& predictor,
                                       const std::vector<Trajectory>& test,
                                       const ServerMap& servers) {
  PERDNN_CHECK(!test.empty());
  const auto n = static_cast<std::size_t>(predictor.trajectory_length());
  const double search_radius = servers.grid().cell_radius() * 64.0;
  const double service_range = servers.grid().cell_radius();

  PredictorEvaluation eval;
  double err_all = 0.0;
  double err_nonfutile = 0.0;
  int in_range = 0;
  for (const auto& traj : test) {
    if (traj.points.size() < n + 1) continue;
    for (std::size_t i = n - 1; i + 1 < traj.points.size(); ++i) {
      const std::span<const Point> recent(traj.points.data(), i + 1);
      const Point actual = traj.points[i + 1];
      const ServerId current =
          servers.nearest_server(traj.points[i], search_radius);
      const ServerId next = servers.nearest_server(actual, search_radius);

      const Point predicted = predictor.predict(recent);
      ++eval.total_predictions;
      err_all += distance(predicted, actual);

      if (next == current) {
        ++eval.futile_predictions;
        continue;
      }
      err_nonfutile += distance(predicted, actual);
      const auto top2 = predictor.predict_servers(recent, 2, servers);
      if (!top2.empty() && top2[0] == next) ++eval.top1_hits;
      if (std::find(top2.begin(), top2.end(), next) != top2.end())
        ++eval.top2_hits;
      if (next != kNoServer &&
          distance(predicted, servers.server_center(next)) <= service_range)
        ++in_range;
    }
  }
  if (eval.total_predictions > 0)
    eval.mae_all_m = err_all / eval.total_predictions;
  if (eval.non_futile() > 0) {
    eval.mae_nonfutile_m = err_nonfutile / eval.non_futile();
    eval.in_range_accuracy = static_cast<double>(in_range) / eval.non_futile();
  }
  return eval;
}

double benefit_cost_ratio(const PredictorEvaluation& eval) {
  if (eval.total_predictions == 0) return 0.0;
  const double benefit = eval.in_range_accuracy *
                         static_cast<double>(eval.non_futile());
  return benefit / static_cast<double>(eval.total_predictions);
}

}  // namespace perdnn
