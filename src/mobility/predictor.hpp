// Mobility predictors (Section 3.D): Markov (prediction suffix tree over
// edge-server ids), linear SVR, and LSTM RNN — each predicting a client's
// location one time interval ahead from its n most recent locations.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geo/server_map.hpp"
#include "ml/dataset.hpp"
#include "ml/lstm.hpp"
#include "ml/markov.hpp"
#include "ml/svr.hpp"
#include "mobility/trajectory.hpp"

namespace perdnn {

/// The k servers nearest to a point (expanding ring search over the grid).
std::vector<ServerId> nearest_servers(const ServerMap& servers, Point p,
                                      int k);

class MobilityPredictor {
 public:
  explicit MobilityPredictor(int trajectory_length);
  virtual ~MobilityPredictor() = default;

  /// Trains on historical trajectories (the datasets' training split).
  virtual void fit(const std::vector<Trajectory>& train, Rng& rng) = 0;

  /// Predicted location one interval after the last of `recent`
  /// (`recent.size() >= trajectory_length()`; only the last n are used).
  virtual Point predict(std::span<const Point> recent) const = 0;

  /// Top-k candidate next edge servers. Default: the k servers closest to
  /// the predicted location (the paper's rule for SVR/RNN).
  virtual std::vector<ServerId> predict_servers(std::span<const Point> recent,
                                                int top_k,
                                                const ServerMap& servers) const;

  virtual std::string name() const = 0;

  int trajectory_length() const { return trajectory_length_; }

 protected:
  /// Last n points of `recent` (checked).
  std::span<const Point> window(std::span<const Point> recent) const;

 private:
  int trajectory_length_;
};

/// Variable-order Markov over discretised edge-server ids.
class MarkovPredictor : public MobilityPredictor {
 public:
  /// Non-owning: `servers` must outlive the predictor.
  MarkovPredictor(int trajectory_length, const ServerMap* servers,
                  ml::MarkovConfig config = {});
  /// Owning: keeps the map alive for the predictor's lifetime (used when
  /// the surrounding world object may move).
  MarkovPredictor(int trajectory_length,
                  std::shared_ptr<const ServerMap> servers,
                  ml::MarkovConfig config = {});

  void fit(const std::vector<Trajectory>& train, Rng& rng) override;
  Point predict(std::span<const Point> recent) const override;
  std::vector<ServerId> predict_servers(std::span<const Point> recent,
                                        int top_k,
                                        const ServerMap& servers) const override;
  std::string name() const override { return "Markov"; }

 private:
  std::vector<int> discretize(std::span<const Point> points) const;

  std::shared_ptr<const ServerMap> owned_servers_;  // may be null
  const ServerMap* servers_;
  ml::PredictionSuffixTree tree_;
};

/// Linear SVR on standardised coordinates (the paper's deployed predictor).
class SvrPredictor : public MobilityPredictor {
 public:
  explicit SvrPredictor(int trajectory_length, ml::SvrConfig config = {});

  void fit(const std::vector<Trajectory>& train, Rng& rng) override;
  Point predict(std::span<const Point> recent) const override;
  std::string name() const override { return "SVR"; }

 private:
  Vector encode(std::span<const Point> recent) const;

  ml::SvrConfig config_;
  ml::StandardScaler scaler_;  // fit on (x, y) pairs
  std::unique_ptr<ml::MultiOutputSvr> model_;
};

/// Single-cell LSTM over standardised coordinate sequences.
class RnnPredictor : public MobilityPredictor {
 public:
  RnnPredictor(int trajectory_length, std::size_t hidden_dim = 16,
               int epochs = 30);

  void fit(const std::vector<Trajectory>& train, Rng& rng) override;
  Point predict(std::span<const Point> recent) const override;
  std::string name() const override { return "RNN"; }

 private:
  std::vector<Vector> encode(std::span<const Point> recent) const;

  std::size_t hidden_dim_;
  int epochs_;
  ml::StandardScaler scaler_;
  std::unique_ptr<ml::LstmRegressor> model_;
};

}  // namespace perdnn
