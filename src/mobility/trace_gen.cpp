#include "mobility/trace_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace perdnn {

std::vector<Trajectory> generate_campus_traces(
    const CampusTraceConfig& config) {
  PERDNN_CHECK(config.num_users >= 1);
  PERDNN_CHECK(config.sample_interval > 0 && config.duration > 0);
  PERDNN_CHECK(config.num_buildings >= 2);
  Rng master(config.seed);

  // Buildings shared by every user: clustered destinations create the
  // repeated corridors that make campus mobility predictable.
  Rng building_rng = master.fork();
  std::vector<Point> buildings;
  buildings.reserve(static_cast<std::size_t>(config.num_buildings));
  for (int b = 0; b < config.num_buildings; ++b) {
    buildings.push_back(
        {building_rng.uniform(config.area.min_x + 50.0,
                              config.area.max_x - 50.0),
         building_rng.uniform(config.area.min_y + 50.0,
                              config.area.max_y - 50.0)});
  }

  const auto steps = static_cast<std::size_t>(config.duration /
                                              config.sample_interval);
  std::vector<Trajectory> out;
  out.reserve(static_cast<std::size_t>(config.num_users));
  for (int u = 0; u < config.num_users; ++u) {
    Rng rng = master.fork();
    Trajectory traj;
    traj.user = u;
    traj.interval = config.sample_interval;
    traj.points.reserve(steps);

    Point pos = buildings[rng.index(buildings.size())];
    Point target = buildings[rng.index(buildings.size())];
    double pause_left = rng.exponential(config.pause_mean);
    double speed =
        std::max(0.4, rng.normal(config.walk_speed_mean, config.walk_speed_std));

    for (std::size_t s = 0; s < steps; ++s) {
      traj.points.push_back(config.area.clamp(
          {pos.x + config.gps_noise_std * rng.normal(),
           pos.y + config.gps_noise_std * rng.normal()}));
      double dt = config.sample_interval;
      while (dt > 0.0) {
        if (pause_left > 0.0) {
          const double wait = std::min(pause_left, dt);
          pause_left -= wait;
          dt -= wait;
          continue;
        }
        const Point to_target = target - pos;
        const double dist = to_target.norm();
        if (dist < 1e-6) {
          // Arrived: dwell, then pick the next building.
          pause_left = rng.exponential(config.pause_mean);
          target = buildings[rng.index(buildings.size())];
          speed = std::max(
              0.4, rng.normal(config.walk_speed_mean, config.walk_speed_std));
          continue;
        }
        const double step_dist = std::min(dist, speed * dt);
        pos = config.area.clamp(pos + to_target * (step_dist / dist));
        dt -= step_dist / speed;
      }
    }
    out.push_back(std::move(traj));
  }
  return out;
}

std::vector<Trajectory> generate_urban_traces(const UrbanTraceConfig& config) {
  PERDNN_CHECK(config.num_users >= 1);
  PERDNN_CHECK(config.sample_interval > 0 && config.duration > 0);
  Rng master(config.seed);

  const auto steps = static_cast<std::size_t>(config.duration /
                                              config.sample_interval);
  const double headings[4] = {0.0, std::numbers::pi / 2, std::numbers::pi,
                              3 * std::numbers::pi / 2};

  std::vector<Trajectory> out;
  out.reserve(static_cast<std::size_t>(config.num_users));
  for (int u = 0; u < config.num_users; ++u) {
    Rng rng = master.fork();
    Trajectory traj;
    traj.user = u;
    traj.interval = config.sample_interval;
    traj.points.reserve(steps);

    Point pos{rng.uniform(config.area.min_x, config.area.max_x),
              rng.uniform(config.area.min_y, config.area.max_y)};
    std::size_t heading = rng.index(4);
    // Mode mix tuned to land the overall mean speed near Geolife's ~3.9 m/s.
    const std::vector<double> mode_weights = {0.30, 0.20, 0.50};
    std::size_t mode = rng.categorical(mode_weights);
    double pause_left = 0.0;

    auto mode_speed = [&](std::size_t m) {
      switch (m) {
        case 0: return config.walk_speed;
        case 1: return config.bike_speed;
        default: return config.vehicle_speed;
      }
    };

    for (std::size_t s = 0; s < steps; ++s) {
      traj.points.push_back(config.area.clamp(
          {pos.x + config.gps_noise_std * rng.normal(),
           pos.y + config.gps_noise_std * rng.normal()}));
      const double dt = config.sample_interval;
      if (pause_left > 0.0) {
        pause_left -= dt;
        continue;
      }
      if (rng.bernoulli(config.pause_probability)) {
        pause_left = rng.exponential(config.pause_mean);
        continue;
      }
      if (rng.bernoulli(config.mode_switch_probability))
        mode = rng.categorical(mode_weights);
      if (rng.bernoulli(config.turn_probability))
        heading = rng.bernoulli(0.5) ? (heading + 1) % 4 : (heading + 3) % 4;

      const double speed = mode_speed(mode) * (1.0 + 0.08 * rng.normal());
      const Point delta{std::cos(headings[heading]) * speed * dt,
                        std::sin(headings[heading]) * speed * dt};
      Point next = pos + delta;
      if (!config.area.contains(next)) {
        // U-turn at the study-area boundary.
        heading = (heading + 2) % 4;
        next = config.area.clamp(pos);
      }
      pos = next;
    }
    out.push_back(std::move(traj));
  }
  return out;
}

}  // namespace perdnn
