#include "mobility/trajectory.hpp"

#include "common/check.hpp"

namespace perdnn {

Trajectory Trajectory::resampled(int stride) const {
  PERDNN_CHECK(stride >= 1);
  Trajectory out;
  out.user = user;
  out.interval = interval * stride;
  out.points.reserve(points.size() / static_cast<std::size_t>(stride) + 1);
  for (std::size_t i = 0; i < points.size();
       i += static_cast<std::size_t>(stride))
    out.points.push_back(points[i]);
  return out;
}

double Trajectory::mean_speed() const {
  if (points.size() < 2) return 0.0;
  double dist = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i)
    dist += distance(points[i - 1], points[i]);
  return dist / (interval * static_cast<double>(points.size() - 1));
}

double mean_speed(const std::vector<Trajectory>& trajectories) {
  if (trajectories.empty()) return 0.0;
  double total = 0.0;
  for (const auto& t : trajectories) total += t.mean_speed();
  return total / static_cast<double>(trajectories.size());
}

std::vector<Point> all_points(const std::vector<Trajectory>& trajectories) {
  std::vector<Point> out;
  for (const auto& t : trajectories)
    out.insert(out.end(), t.points.begin(), t.points.end());
  return out;
}

}  // namespace perdnn
