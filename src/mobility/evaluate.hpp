// Mobility-prediction evaluation: the protocol behind Table III and Fig 6.
//
// Predictions are made at every trajectory step; a prediction is *futile*
// when the user stays at its current edge server for the next step (futile
// predictions burn resources but cannot help proactive migration, so the
// paper excludes them from accuracy and reports their ratio separately).
#pragma once

#include <vector>

#include "geo/server_map.hpp"
#include "mobility/predictor.hpp"
#include "mobility/trajectory.hpp"

namespace perdnn {

struct PredictorEvaluation {
  int total_predictions = 0;
  int futile_predictions = 0;   ///< actual next server == current server
  int top1_hits = 0;            ///< over non-futile predictions
  int top2_hits = 0;
  /// Mean Euclidean error (m) of the predicted location, all predictions.
  double mae_all_m = 0.0;
  /// Mean Euclidean error (m) over non-futile predictions only.
  double mae_nonfutile_m = 0.0;
  /// Fraction of non-futile predictions whose predicted location fell inside
  /// the service range of the actually-visited server (the `a` of the
  /// benefit/cost model used to pick the time interval t).
  double in_range_accuracy = 0.0;

  int non_futile() const { return total_predictions - futile_predictions; }
  double futile_ratio() const;
  double top1_accuracy() const;  ///< over non-futile predictions
  double top2_accuracy() const;
};

/// Runs the predictor over every window of the test trajectories.
PredictorEvaluation evaluate_predictor(const MobilityPredictor& predictor,
                                       const std::vector<Trajectory>& test,
                                       const ServerMap& servers);

/// Benefit-to-cost ratio of proactive migration for a time interval
/// (Equation 1-2): benefit ∝ a * (p - f), cost ∝ p.
double benefit_cost_ratio(const PredictorEvaluation& eval);

}  // namespace perdnn
