// Synthetic mobility trace generators.
//
// The paper replays two real datasets that we cannot redistribute:
//   * KAIST (CRAWDAD ncsu/mobilitymodels): daily pedestrian GPS tracks on a
//     campus, 30 s sampling, 31 users, mean speed ~0.5 m/s;
//   * Geolife: multi-modal urban traces in Beijing, 1-5 s sampling,
//     clipped to a 7.2 km x 5.6 km rectangle, 138 users, mean ~3.9 m/s.
//
// We substitute generators that reproduce the statistics the PerDNN results
// depend on — study-area size, sampling period, user count, speed
// distribution and dwell behaviour — since those are what drive server-
// change frequency, prediction accuracy and hit ratios (see DESIGN.md §2).
//
//   * Campus generator: random-waypoint walks between a fixed set of
//     buildings with long pauses (pauses dominate, so overall mean speed
//     lands near 0.5 m/s while walking speed is a realistic ~1.2 m/s).
//   * Urban generator: street-grid movement with heading persistence and
//     transport-mode switching (walk / bike / vehicle), yielding fast,
//     momentum-heavy trajectories like Geolife's.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geo/point.hpp"
#include "mobility/trajectory.hpp"

namespace perdnn {

struct CampusTraceConfig {
  Rect area{0.0, 0.0, 1500.0, 2000.0};  // the paper's KAIST clip
  int num_users = 31;
  Seconds sample_interval = 30.0;
  Seconds duration = 6.0 * 3600.0;
  int num_buildings = 24;
  double walk_speed_mean = 1.25;  // m/s while moving
  double walk_speed_std = 0.25;
  Seconds pause_mean = 420.0;  // long dwells dominate campus life
  /// GPS measurement noise (std, metres) added to every recorded point.
  double gps_noise_std = 2.5;
  std::uint64_t seed = 1;
};

std::vector<Trajectory> generate_campus_traces(const CampusTraceConfig& config);

struct UrbanTraceConfig {
  Rect area{0.0, 0.0, 7200.0, 5600.0};  // the paper's Geolife clip
  int num_users = 138;
  Seconds sample_interval = 5.0;  // Geolife's dense sampling
  Seconds duration = 2.0 * 3600.0;
  double walk_speed = 1.4;
  double bike_speed = 4.0;
  double vehicle_speed = 9.0;
  double turn_probability = 0.06;        // per step, at street corners
  double mode_switch_probability = 0.004;  // per step
  double pause_probability = 0.01;       // brief stops (lights, stations)
  Seconds pause_mean = 45.0;
  /// GPS measurement noise (std, metres) added to every recorded point.
  double gps_noise_std = 2.0;
  std::uint64_t seed = 2;
};

std::vector<Trajectory> generate_urban_traces(const UrbanTraceConfig& config);

}  // namespace perdnn
