#include "obs/timeseries.hpp"

#include <charconv>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace perdnn::obs {

namespace {
// Integer columns go through std::to_chars (digit-identical to the ostream
// integer inserters write_csv historically used); double columns keep the
// json_number() encoding.
template <typename Int>
void append_int(std::string& out, Int v) {
  char buf[24];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(res.ptr - buf));
}
}  // namespace

void append_timeseries_row_csv(std::string& out, const TimeseriesRow& r,
                               bool with_cache_columns) {
  append_int(out, r.interval);
  out += ',';
  append_int(out, r.server);
  out += ',';
  append_int(out, r.attached);
  out += ',';
  append_int(out, r.hits);
  out += ',';
  append_int(out, r.partials);
  out += ',';
  append_int(out, r.misses);
  out += ',';
  append_int(out, r.cold_window_queries);
  out += ',';
  out += json_number(r.cold_latency_sum_s);
  out += ',';
  append_int(out, r.uplink_bytes);
  out += ',';
  append_int(out, r.downlink_bytes);
  out += ',';
  append_int(out, r.migration_orders);
  out += ',';
  append_int(out, r.predictor_samples);
  out += ',';
  out += json_number(r.predictor_error_sum_m);
  out += ',';
  append_int(out, r.local_queries);
  out += ',';
  out += json_number(r.local_latency_sum_s);
  out += ',';
  append_int(out, r.deferred_bytes);
  out += ',';
  append_int(out, r.degraded);
  if (with_cache_columns) {
    out += ',';
    append_int(out, r.cache_bytes);
    out += ',';
    append_int(out, r.cache_evictions);
    out += ',';
    append_int(out, r.cache_partial_stores);
  }
}

void SimTimeseries::start(int num_servers, double interval_length_s) {
  PERDNN_CHECK(num_servers >= 0);
  std::lock_guard<std::mutex> lock(mu_);
  num_servers_ = num_servers;
  interval_length_s_ = interval_length_s;
  current_interval_ = -1;
  interval_open_ = false;
  current_.clear();
  rows_.clear();
}

void SimTimeseries::restore(int num_servers, double interval_length_s,
                            std::vector<TimeseriesRow> rows,
                            int next_interval) {
  PERDNN_CHECK(num_servers >= 0);
  PERDNN_CHECK(next_interval >= 0);
  PERDNN_CHECK_MSG(
      num_servers == 0 || rows.size() % static_cast<std::size_t>(num_servers) == 0,
      "restored timeseries rows must cover whole intervals");
  std::lock_guard<std::mutex> lock(mu_);
  num_servers_ = num_servers;
  interval_length_s_ = interval_length_s;
  current_interval_ = next_interval - 1;
  interval_open_ = false;
  current_.clear();
  rows_ = std::move(rows);
}

void SimTimeseries::set_model(std::string model_name) {
  std::lock_guard<std::mutex> lock(mu_);
  model_ = std::move(model_name);
}

std::string SimTimeseries::model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_;
}

void SimTimeseries::begin_interval(int interval_index) {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK_MSG(!interval_open_, "previous interval still open");
  PERDNN_CHECK_MSG(interval_index == current_interval_ + 1,
                   "intervals must be recorded in order");
  current_interval_ = interval_index;
  interval_open_ = true;
  current_.assign(static_cast<std::size_t>(num_servers_), TimeseriesRow{});
  for (int s = 0; s < num_servers_; ++s) {
    current_[static_cast<std::size_t>(s)].interval = interval_index;
    current_[static_cast<std::size_t>(s)].server = s;
  }
}

namespace {
TimeseriesRow& row_for(std::vector<TimeseriesRow>& current, int server) {
  PERDNN_CHECK_MSG(
      server >= 0 && server < static_cast<int>(current.size()),
      "timeseries server id " << server << " out of range");
  return current[static_cast<std::size_t>(server)];
}
}  // namespace

void SimTimeseries::record_attach(int server, int hits, int partials,
                                  int misses) {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK(interval_open_);
  TimeseriesRow& row = row_for(current_, server);
  row.hits += hits;
  row.partials += partials;
  row.misses += misses;
}

void SimTimeseries::record_cold_queries(int server, long long queries,
                                        double latency_sum_s) {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK(interval_open_);
  TimeseriesRow& row = row_for(current_, server);
  row.cold_window_queries += queries;
  row.cold_latency_sum_s += latency_sum_s;
}

void SimTimeseries::record_migration(int from, int to, std::int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK(interval_open_);
  PERDNN_CHECK(bytes >= 0);
  row_for(current_, from).migration_orders += 1;
  row_for(current_, from).uplink_bytes += bytes;
  row_for(current_, to).downlink_bytes += bytes;
}

void SimTimeseries::record_predictor_sample(int server, double abs_error_m) {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK(interval_open_);
  TimeseriesRow& row = row_for(current_, server);
  row.predictor_samples += 1;
  row.predictor_error_sum_m += abs_error_m;
}

void SimTimeseries::record_local_queries(int server, long long queries,
                                         double latency_sum_s) {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK(interval_open_);
  TimeseriesRow& row = row_for(current_, server);
  row.local_queries += queries;
  row.local_latency_sum_s += latency_sum_s;
}

void SimTimeseries::record_deferred(int server, std::int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK(interval_open_);
  PERDNN_CHECK(bytes >= 0);
  row_for(current_, server).deferred_bytes += bytes;
}

void SimTimeseries::record_degraded(int server) {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK(interval_open_);
  row_for(current_, server).degraded += 1;
}

void SimTimeseries::record_cache(int server, std::int64_t bytes,
                                 int evictions, int partial_stores) {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK(interval_open_);
  PERDNN_CHECK(bytes >= 0);
  TimeseriesRow& row = row_for(current_, server);
  row.cache_bytes = bytes;
  row.cache_evictions += evictions;
  row.cache_partial_stores += partial_stores;
}

void SimTimeseries::enable_cache_columns() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_columns_ = true;
}

bool SimTimeseries::cache_columns_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_columns_;
}

int SimTimeseries::csv_schema() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_columns_ ? kCsvCacheSchemaVersion : kCsvSchemaVersion;
}

void SimTimeseries::set_attached(const std::vector<int>& attached_per_server) {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK(interval_open_);
  PERDNN_CHECK(attached_per_server.size() ==
               static_cast<std::size_t>(num_servers_));
  for (int s = 0; s < num_servers_; ++s)
    current_[static_cast<std::size_t>(s)].attached =
        attached_per_server[static_cast<std::size_t>(s)];
}

void SimTimeseries::end_interval() {
  std::lock_guard<std::mutex> lock(mu_);
  PERDNN_CHECK(interval_open_);
  interval_open_ = false;
  rows_.insert(rows_.end(), current_.begin(), current_.end());
  current_.clear();
}

int SimTimeseries::num_servers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_servers_;
}

int SimTimeseries::num_intervals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_servers_ > 0
             ? static_cast<int>(rows_.size()) / num_servers_
             : 0;
}

double SimTimeseries::interval_length_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return interval_length_s_;
}

std::vector<TimeseriesRow> SimTimeseries::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

#define PERDNN_TS_SUM(type, name, field)          \
  type SimTimeseries::name() const {              \
    std::lock_guard<std::mutex> lock(mu_);        \
    type total = 0;                               \
    for (const TimeseriesRow& r : rows_) total += r.field; \
    return total;                                 \
  }

PERDNN_TS_SUM(long long, total_hits, hits)
PERDNN_TS_SUM(long long, total_partials, partials)
PERDNN_TS_SUM(long long, total_misses, misses)
PERDNN_TS_SUM(long long, total_cold_window_queries, cold_window_queries)
PERDNN_TS_SUM(std::int64_t, total_uplink_bytes, uplink_bytes)
PERDNN_TS_SUM(std::int64_t, total_downlink_bytes, downlink_bytes)
PERDNN_TS_SUM(long long, total_local_queries, local_queries)
PERDNN_TS_SUM(std::int64_t, total_deferred_bytes, deferred_bytes)
PERDNN_TS_SUM(long long, total_degraded, degraded)
PERDNN_TS_SUM(long long, total_cache_evictions, cache_evictions)
PERDNN_TS_SUM(long long, total_cache_partial_stores, cache_partial_stores)

#undef PERDNN_TS_SUM

const char* SimTimeseries::csv_header(bool with_cache_columns) {
  return with_cache_columns
             ? "interval,server,attached,hits,partials,misses,"
               "cold_window_queries,cold_latency_sum_s,uplink_bytes,"
               "downlink_bytes,migration_orders,predictor_samples,"
               "predictor_error_sum_m,local_queries,local_latency_sum_s,"
               "deferred_bytes,degraded,cache_bytes,cache_evictions,"
               "cache_partial_stores"
             : "interval,server,attached,hits,partials,misses,"
               "cold_window_queries,cold_latency_sum_s,uplink_bytes,"
               "downlink_bytes,migration_orders,predictor_samples,"
               "predictor_error_sum_m,local_queries,local_latency_sum_s,"
               "deferred_bytes,degraded";
}

std::string SimTimeseries::csv_quote(const std::string& value) {
  bool needs_quotes = false;
  for (const char ch : value)
    if (ch == ',' || ch == '"' || ch == '\n' || ch == '\r' || ch == '#')
      needs_quotes = true;
  if (!value.empty() && (value.front() == ' ' || value.back() == ' '))
    needs_quotes = true;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (const char ch : value) {
    if (ch == '"') out.push_back('"');  // RFC 4180: double embedded quotes
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void SimTimeseries::write_csv(std::ostream& out) const {
  std::vector<TimeseriesRow> rows;
  std::string model;
  bool cache_columns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows = rows_;
    model = model_;
    cache_columns = cache_columns_;
  }
  out << "# schema="
      << (cache_columns ? kCsvCacheSchemaVersion : kCsvSchemaVersion) << '\n';
  if (!model.empty()) out << "# model=" << csv_quote(model) << '\n';
  out << csv_header(cache_columns) << '\n';
  std::string line;
  line.reserve(160);
  for (const TimeseriesRow& r : rows) {
    line.clear();
    append_timeseries_row_csv(line, r, cache_columns);
    line.push_back('\n');
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
}

std::string SimTimeseries::to_json() const {
  std::vector<TimeseriesRow> rows;
  std::string model;
  int num_servers;
  double interval_length;
  bool cache_columns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows = rows_;
    model = model_;
    num_servers = num_servers_;
    interval_length = interval_length_s_;
    cache_columns = cache_columns_;
  }
  std::vector<JsonValue> items;
  items.reserve(rows.size());
  for (const TimeseriesRow& r : rows) {
    std::vector<std::pair<std::string, JsonValue>> m;
    m.emplace_back("interval", JsonValue::make_number(r.interval));
    m.emplace_back("server", JsonValue::make_number(r.server));
    m.emplace_back("attached", JsonValue::make_number(r.attached));
    m.emplace_back("hits", JsonValue::make_number(r.hits));
    m.emplace_back("partials", JsonValue::make_number(r.partials));
    m.emplace_back("misses", JsonValue::make_number(r.misses));
    m.emplace_back("cold_window_queries",
                   JsonValue::make_number(
                       static_cast<double>(r.cold_window_queries)));
    m.emplace_back("cold_latency_sum_s",
                   JsonValue::make_number(r.cold_latency_sum_s));
    m.emplace_back("uplink_bytes",
                   JsonValue::make_number(
                       static_cast<double>(r.uplink_bytes)));
    m.emplace_back("downlink_bytes",
                   JsonValue::make_number(
                       static_cast<double>(r.downlink_bytes)));
    m.emplace_back("migration_orders",
                   JsonValue::make_number(r.migration_orders));
    m.emplace_back("predictor_samples",
                   JsonValue::make_number(r.predictor_samples));
    m.emplace_back("predictor_error_sum_m",
                   JsonValue::make_number(r.predictor_error_sum_m));
    m.emplace_back("local_queries",
                   JsonValue::make_number(
                       static_cast<double>(r.local_queries)));
    m.emplace_back("local_latency_sum_s",
                   JsonValue::make_number(r.local_latency_sum_s));
    m.emplace_back("deferred_bytes",
                   JsonValue::make_number(
                       static_cast<double>(r.deferred_bytes)));
    m.emplace_back("degraded", JsonValue::make_number(r.degraded));
    if (cache_columns) {
      m.emplace_back("cache_bytes",
                     JsonValue::make_number(
                         static_cast<double>(r.cache_bytes)));
      m.emplace_back("cache_evictions",
                     JsonValue::make_number(r.cache_evictions));
      m.emplace_back("cache_partial_stores",
                     JsonValue::make_number(r.cache_partial_stores));
    }
    items.push_back(JsonValue::make_object(std::move(m)));
  }
  std::vector<std::pair<std::string, JsonValue>> doc;
  doc.emplace_back("schema",
                   JsonValue::make_number(cache_columns
                                              ? kCsvCacheSchemaVersion
                                              : kCsvSchemaVersion));
  doc.emplace_back("model", JsonValue::make_string(model));
  doc.emplace_back("interval_length_s",
                   JsonValue::make_number(interval_length));
  doc.emplace_back("num_servers", JsonValue::make_number(num_servers));
  doc.emplace_back("num_intervals",
                   JsonValue::make_number(
                       num_servers > 0
                           ? static_cast<double>(rows.size()) / num_servers
                           : 0.0));
  doc.emplace_back("rows", JsonValue::make_array(std::move(items)));
  return JsonValue::make_object(std::move(doc)).serialize();
}

void SimTimeseries::write_json(std::ostream& out) const { out << to_json(); }

}  // namespace perdnn::obs
