// Zero-overhead-when-disabled span tracing.
//
//   void compute() {
//     PERDNN_SPAN("partition.shortest_path");
//     ...work...
//   }
//
// A span measures the wall-clock duration of its scope. While neither the
// tracer nor metric collection is active, constructing a span is two relaxed
// atomic loads and a branch — safe in per-query hot paths. When active, a
// finished span:
//   * records a duration sample into the global registry histogram
//     "span.<name>" (seconds), and
//   * if the Tracer is started, appends a complete ("ph":"X") event for the
//     chrome://tracing / Perfetto JSON export, with per-thread nesting depth.
//
// Thread-safe: spans may open and close concurrently on many threads; each
// thread keeps its own nesting depth.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace perdnn::obs {

/// One completed span, in microseconds since Tracer::start().
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   ///< start timestamp
  double dur_us = 0.0;  ///< duration
  int tid = 0;          ///< dense per-process thread index
  int depth = 0;        ///< nesting depth at the time the span opened (1 = top)
};

class Tracer {
 public:
  /// Process-wide tracer driving PERDNN_SPAN.
  static Tracer& global();

  /// Starts collection; resets the clock origin and drops prior events.
  void start();
  /// Stops collection; recorded events remain readable.
  void stop();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Monotonic microseconds since start() (0 when never started).
  double now_us() const;

  /// Appends one completed event (called by Span's destructor).
  void record(const std::string& name, double ts_us, double dur_us,
              int depth);

  std::vector<TraceEvent> events() const;
  std::size_t num_events() const;
  void clear();

  /// Chrome trace-event JSON: {"traceEvents":[{"name","cat","ph":"X","ts",
  /// "dur","pid","tid","args":{"depth"}}...]}. Events sorted by (ts, name)
  /// so exports diff cleanly across identical runs.
  std::string to_chrome_json() const;

 private:
  int thread_index_locked();

  std::atomic<bool> active_{false};
  std::atomic<std::int64_t> origin_ns_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::uint64_t> thread_hashes_;  // dense tid assignment
};

/// RAII span; see the file comment. Prefer the PERDNN_SPAN macro.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  int depth() const { return depth_; }

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  int depth_ = 0;
  bool armed_ = false;
};

#define PERDNN_SPAN_CONCAT2(a, b) a##b
#define PERDNN_SPAN_CONCAT(a, b) PERDNN_SPAN_CONCAT2(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define PERDNN_SPAN(name) \
  ::perdnn::obs::Span PERDNN_SPAN_CONCAT(perdnn_span_, __LINE__)(name)

}  // namespace perdnn::obs
