// Lightweight metric registry: named counters, gauges and histograms with
// optional labels (server_id, model, policy, ...), designed so that
// instrumented hot paths cost a single relaxed atomic load when collection
// is disabled (the default).
//
// Usage at an instrumentation site:
//
//   obs::count("partition.plans");                       // counter += 1
//   obs::observe("replay.query_latency_s", latency);     // histogram sample
//   obs::count("sim.migration.bytes", bytes, {{"server", "12"}});
//
// Collection is opt-in: nothing is recorded until obs::set_enabled(true)
// (the CLI's --metrics-out flag, the benches' dump modes, and the tests do
// this). Handles returned by Registry::counter()/gauge()/histogram() stay
// valid for the registry's lifetime, so call sites may cache them.
//
// Export is deterministic: metric families sorted by name, series within a
// family sorted by their canonical label string, labels sorted by key —
// two runs with the same seed produce byte-identical JSON.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace perdnn::obs {

/// Global collection switch. Off by default; instrumented code paths are a
/// relaxed atomic load + branch while off.
bool enabled();
void set_enabled(bool on);

/// One metric label. Series are keyed by (metric name, sorted label set).
struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// Monotonically increasing sum. Thread-safe, lock-free.
class Counter {
 public:
  void add(double v = 1.0) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-written value. Thread-safe, lock-free.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of a histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;         ///< inclusive upper bounds per bucket
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (+inf overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Fixed-bucket histogram with exact small-sample quantiles: observations
/// are retained verbatim while they all fit in the sample reservoirs, so
/// quantile() matches perdnn::percentile() bit-for-bit on small streams;
/// past that it falls back to linear interpolation inside the fixed buckets
/// (streaming, bounded memory).
///
/// Thread-safe and sharded: each recording thread hashes to one of a small
/// fixed number of shards (own mutex, counts, sum, min/max, reservoir), so
/// concurrent observe() calls from the parallel runtime's workers do not
/// serialise on a single lock. Readers merge every shard under its lock;
/// with one recording thread the behaviour is identical to the unsharded
/// histogram.
class Histogram {
 public:
  /// Default bounds suit span durations in seconds: 1 us .. ~100 s,
  /// roughly 3 buckets per decade.
  static std::vector<double> default_bounds();

  explicit Histogram(std::vector<double> bounds = default_bounds(),
                     std::size_t max_exact_samples = 4096);

  void observe(double v);

  std::uint64_t count() const;
  double sum() const;
  double mean() const;

  /// q in [0, 1]. Exact while the sample reservoirs hold every observation,
  /// bucket-interpolated afterwards. NaN when the histogram is empty — an
  /// empty distribution has no quantiles, and 0 is a legitimate sample
  /// value (the previous behaviour made the two indistinguishable). Shards
  /// that never recorded are skipped by the merge, so a histogram touched
  /// by only some threads still answers exactly.
  double quantile(double q) const;

  HistogramSnapshot snapshot() const;

 private:
  static constexpr std::size_t kNumShards = 8;

  struct Shard {
    mutable std::mutex mu;
    std::vector<std::uint64_t> counts;  // bounds_.size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> samples;  // cleared once count > max_exact_samples_
  };

  struct Merged {
    HistogramSnapshot snap;
    std::vector<double> samples;  // all retained samples, every shard
    bool exact = false;           // samples covers the full stream
  };

  Shard& local_shard() const;
  Merged merge() const;

  std::vector<double> bounds_;
  std::size_t max_exact_samples_;
  mutable std::array<Shard, kNumShards> shards_;
};

/// Owns every metric series. Series are created on first touch and live as
/// long as the registry; lookups are guarded by a mutex, the returned
/// objects synchronize themselves.
class Registry {
 public:
  /// The process-wide registry used by the obs::count/observe helpers and
  /// the PERDNN_SPAN histograms.
  static Registry& global();

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` applies only on first creation of the series.
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = Histogram::default_bounds());

  /// Deterministic JSON document:
  /// {"counters":[{name,labels,value}...],
  ///  "gauges":[...],
  ///  "histograms":[{name,labels,count,sum,min,max,mean,p50,p90,p99,
  ///                 buckets:[{le,count}...]}...]}
  std::string to_json() const;

  /// Prometheus text exposition format (version 0.0.4): one `# TYPE` line
  /// per family, then one sample line per series. Metric names are mangled
  /// to `perdnn_<name with non-alphanumerics as '_'>`; label values are
  /// escaped per the format rules. Histograms export cumulative
  /// `_bucket{le=...}` series (ending at `le="+Inf"`) plus `_sum` and
  /// `_count`. Deterministic: same ordering contract as to_json().
  std::string to_prometheus() const;

  /// Drops every series (tests; CLI before a run).
  void reset();

 private:
  enum class MetricKind { kCounter, kGauge, kHistogram };
  struct Series {
    std::string name;
    Labels labels;  // sorted by key
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& series(const std::string& name, const Labels& labels,
                 MetricKind kind, std::vector<double>* bounds);

  mutable std::mutex mu_;
  // Key: name + '\0' + canonical label string — ordered, so export order is
  // the iteration order.
  std::map<std::string, Series> series_;
};

/// Canonical "k1=v1,k2=v2" form with keys sorted (stable label order).
std::string label_key(const Labels& labels);

/// Convenience recorders; no-ops while collection is disabled.
void count(const char* name, double v = 1.0);
void count(const char* name, double v, const Labels& labels);
void set_gauge(const char* name, double v, const Labels& labels = {});
void observe(const char* name, double v);
void observe(const char* name, double v, const Labels& labels);

}  // namespace perdnn::obs
