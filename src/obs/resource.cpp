#include "obs/resource.hpp"

#include <cstdio>
#include <cstring>

namespace perdnn::obs {

std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::uint64_t kb = 0;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%llu", reinterpret_cast<unsigned long long*>(&kb));
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace perdnn::obs
