// Incremental on-disk writers for the two large simulation outputs: the
// per-interval timeseries CSV and the event-journal JSONL. The buffered
// exporters (SimTimeseries::write_csv, Journal::write_jsonl) hold every row
// in memory until the run ends, which is O(intervals * servers) resident
// state — untenable for the city-scale sharded runs. These writers append
// each row/event as it is produced, using the exact shared formatters
// (append_timeseries_row_csv, append_journal_event_jsonl), so a streamed
// file is byte-identical to the buffered export of the same run.
//
// Checkpoint/resume contract: both writers count the bytes they have written
// (including the CSV preamble). A checkpoint stores those offsets; a resumed
// run reopens the file with `Resume{offset}`, which truncates it back to the
// checkpoint boundary and appends from there. Rows written after the
// checkpoint by a killed run — including a partial line cut off mid-write by
// kill -9 — are discarded by the truncation, so the resumed file ends up
// byte-identical to an uninterrupted run's.
//
// Not thread-safe: the sharded simulator calls them only from its serial
// apply phase (which is what makes the output deterministic in the first
// place).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "obs/journal.hpp"
#include "obs/timeseries.hpp"

namespace perdnn::obs {

/// Tag selecting the resume-at-offset constructor paths below.
struct Resume {
  std::uint64_t bytes = 0;
};

/// Streams TimeseriesRow lines into a CSV file with the same preamble
/// (`# schema=N`, optional `# model=...`, header line) and row encoding as
/// SimTimeseries::write_csv.
class TimeseriesStreamWriter {
 public:
  /// Fresh run: truncates `path` and writes the preamble.
  /// `cache_columns` selects the schema-3 budgeted-cache layout (must match
  /// the recording engine's budget setting).
  TimeseriesStreamWriter(const std::string& path, const std::string& model,
                         bool cache_columns = false);
  /// Resumed run: truncates `path` back to `resume.bytes` (the preamble and
  /// all pre-checkpoint rows are already on disk) and appends. `rows` is the
  /// checkpointed row count. Throws std::runtime_error if the file is
  /// shorter than the checkpoint offset.
  TimeseriesStreamWriter(const std::string& path, Resume resume,
                         std::uint64_t rows, bool cache_columns = false);

  void append(const TimeseriesRow& row);
  void flush();

  /// Total file bytes written so far (preamble included).
  std::uint64_t bytes_written() const { return bytes_; }
  std::uint64_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::string line_;
  std::uint64_t bytes_ = 0;
  std::uint64_t rows_ = 0;
  bool cache_columns_ = false;
};

/// Streams JournalEvent lines into a JSONL file (the write_jsonl format),
/// maintaining the same chain bookkeeping as obs::Journal: begin_chain()
/// numbers chains from 1 in record order, record() auto-fills a zero chain
/// from the client's current binding. Chain state is exposed so checkpoints
/// can carry it across a resume.
class JournalStreamWriter {
 public:
  /// Fresh run: truncates `path`.
  explicit JournalStreamWriter(const std::string& path);
  /// Resumed run: truncates `path` back to `resume.bytes` and appends,
  /// restoring the chain counter/bindings recorded at the checkpoint.
  JournalStreamWriter(
      const std::string& path, Resume resume, std::uint64_t events,
      std::uint64_t next_chain,
      const std::vector<std::pair<ClientId, std::uint64_t>>& client_chains);

  std::uint64_t begin_chain(ClientId client);
  std::uint64_t chain_of(ClientId client) const;
  void record(JournalEvent event);
  void flush();

  std::uint64_t bytes_written() const { return bytes_; }
  std::uint64_t events_written() const { return events_; }
  std::uint64_t next_chain() const { return next_chain_; }
  /// Client -> current chain bindings, sorted by client (canonical snapshot
  /// encoding, mirroring JournalState::client_chains).
  std::vector<std::pair<ClientId, std::uint64_t>> client_chains() const;

 private:
  std::ofstream out_;
  std::string line_;
  std::uint64_t bytes_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t next_chain_ = 1;
  std::unordered_map<ClientId, std::uint64_t> chains_;
};

}  // namespace perdnn::obs
