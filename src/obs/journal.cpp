#include "obs/journal.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/wire.hpp"
#include "obs/json.hpp"

namespace perdnn::obs {

namespace {

constexpr char kJournalMagic[8] = {'P', 'D', 'N', 'N', 'J', 'N', 'L', '1'};
constexpr std::uint32_t kJournalVersion = 1;

struct KindName {
  JournalEventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {JournalEventKind::kAttach, "attach"},
    {JournalEventKind::kDetach, "detach"},
    {JournalEventKind::kPlan, "plan"},
    {JournalEventKind::kDegradedPlan, "degraded_plan"},
    {JournalEventKind::kColdServe, "cold_serve"},
    {JournalEventKind::kLocalFallback, "local_fallback"},
    {JournalEventKind::kMigrationPlanned, "migration_planned"},
    {JournalEventKind::kMigrationPushed, "migration_pushed"},
    {JournalEventKind::kMigrationDeferred, "migration_deferred"},
    {JournalEventKind::kMigrationRetried, "migration_retried"},
    {JournalEventKind::kMigrationDropped, "migration_dropped"},
    {JournalEventKind::kFaultApplied, "fault_applied"},
    {JournalEventKind::kFaultCleared, "fault_cleared"},
    {JournalEventKind::kCacheStore, "cache_store"},
    {JournalEventKind::kCacheTouch, "cache_touch"},
    {JournalEventKind::kCacheEvict, "cache_evict"},
    {JournalEventKind::kCacheExpire, "cache_expire"},
    {JournalEventKind::kCheckpointSave, "checkpoint_save"},
    {JournalEventKind::kCheckpointResume, "checkpoint_resume"},
    {JournalEventKind::kAttachShed, "attach_shed"},
    {JournalEventKind::kCachePartial, "cache_partial"},
};

// Integer fields go straight through std::to_chars into a stack buffer:
// json_number() allocates a std::string per call, and at ten fields per
// event that dominates the serialization cost of a multi-million-event
// journal. Digits are identical to the json_number() integer path.
template <typename Int>
void append_int(std::string& out, Int v) {
  char buf[24];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(res.ptr - buf));
}

}  // namespace

void append_journal_event_jsonl(std::string& out, const JournalEvent& e) {
  out += "{\"interval\":";
  append_int(out, e.interval);
  out += ",\"kind\":\"";
  out += journal_kind_name(e.kind);
  out += "\",\"chain\":";
  append_int(out, e.chain);
  out += ",\"client\":";
  append_int(out, e.client);
  out += ",\"server\":";
  append_int(out, e.server);
  out += ",\"peer\":";
  append_int(out, e.peer);
  out += ",\"bytes\":";
  append_int(out, e.bytes);
  out += ",\"detail\":";
  append_int(out, e.detail);
  out += ",\"aux\":";
  append_int(out, e.aux);
  out += ",\"value\":";
  // json_number()'s integer branch prints through std::to_string, so this
  // fast path is digit-identical for the dominant value == 0.0 case.
  if (e.value == static_cast<double>(static_cast<std::int64_t>(e.value)) &&
      std::abs(e.value) < 9.0e18) {
    append_int(out, static_cast<std::int64_t>(e.value));
  } else {
    out += json_number(e.value);
  }
  out += "}";
}

namespace {

double require_number(const JsonValue& doc, const char* key,
                      std::size_t line) {
  const JsonValue* value = doc.find(key);
  if (value == nullptr) {
    std::ostringstream msg;
    msg << "journal jsonl line " << line << ": missing field " << key;
    throw JournalError(msg.str());
  }
  return value->as_number();
}

}  // namespace

const char* journal_kind_name(JournalEventKind kind) {
  for (const KindName& entry : kKindNames)
    if (entry.kind == kind) return entry.name;
  return "unknown";
}

bool journal_kind_from_name(const std::string& name, JournalEventKind* out) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

Journal::Journal(std::size_t capacity) : capacity_(capacity) {}

std::uint64_t Journal::begin_chain(ClientId client) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t chain = next_chain_++;
  const auto it = std::lower_bound(
      client_chains_.begin(), client_chains_.end(), client,
      [](const auto& entry, ClientId c) { return entry.first < c; });
  if (it != client_chains_.end() && it->first == client)
    it->second = chain;
  else
    client_chains_.insert(it, {client, chain});
  return chain;
}

std::uint64_t Journal::chain_of(ClientId client) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      client_chains_.begin(), client_chains_.end(), client,
      [](const auto& entry, ClientId c) { return entry.first < c; });
  if (it != client_chains_.end() && it->first == client) return it->second;
  return 0;
}

void Journal::record(JournalEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (event.chain == 0 && event.client >= 0) {
    const auto it = std::lower_bound(
        client_chains_.begin(), client_chains_.end(), event.client,
        [](const auto& entry, ClientId c) { return entry.first < c; });
    if (it != client_chains_.end() && it->first == event.client)
      event.chain = it->second;
  }
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void Journal::record_meta(JournalEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  meta_events_.push_back(event);
}

std::size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t Journal::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<JournalEvent> Journal::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::vector<JournalEvent> Journal::meta_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return meta_events_;
}

JournalState Journal::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JournalState state;
  state.events = events_;
  state.next_chain = next_chain_;
  state.dropped = dropped_;
  state.client_chains = client_chains_;
  return state;
}

void Journal::restore(const JournalState& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_ = state.events;
  next_chain_ = state.next_chain;
  dropped_ = state.dropped;
  client_chains_ = state.client_chains;
  meta_events_.clear();
}

void Journal::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  meta_events_.clear();
  next_chain_ = 1;
  dropped_ = 0;
  client_chains_.clear();
}

void Journal::write_jsonl(std::ostream& out) const {
  const std::string text = journal_to_jsonl(events());
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

std::string Journal::encode() const { return journal_encode(events()); }

std::string journal_to_jsonl(const std::vector<JournalEvent>& events) {
  std::string out;
  out.reserve(events.size() * 144);  // measured mean line is ~134 bytes
  for (const JournalEvent& e : events) {
    append_journal_event_jsonl(out, e);
    out += '\n';
  }
  return out;
}

std::vector<JournalEvent> journal_from_jsonl(const std::string& text) {
  std::vector<JournalEvent> events;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    JsonValue doc;
    try {
      doc = parse_json(line);
    } catch (const std::exception& e) {
      std::ostringstream msg;
      msg << "journal jsonl line " << line_no << ": " << e.what();
      throw JournalError(msg.str());
    }
    if (!doc.is_object()) {
      std::ostringstream msg;
      msg << "journal jsonl line " << line_no << ": not an object";
      throw JournalError(msg.str());
    }
    JournalEvent e;
    e.interval = static_cast<int>(require_number(doc, "interval", line_no));
    const JsonValue* kind = doc.find("kind");
    if (kind == nullptr) {
      std::ostringstream msg;
      msg << "journal jsonl line " << line_no << ": missing field kind";
      throw JournalError(msg.str());
    }
    if (!journal_kind_from_name(kind->as_string(), &e.kind)) {
      std::ostringstream msg;
      msg << "journal jsonl line " << line_no << ": unknown kind '"
          << kind->as_string() << "'";
      throw JournalError(msg.str());
    }
    e.chain =
        static_cast<std::uint64_t>(require_number(doc, "chain", line_no));
    e.client = static_cast<ClientId>(require_number(doc, "client", line_no));
    e.server = static_cast<ServerId>(require_number(doc, "server", line_no));
    e.peer = static_cast<ServerId>(require_number(doc, "peer", line_no));
    e.bytes = static_cast<Bytes>(require_number(doc, "bytes", line_no));
    e.detail =
        static_cast<std::int32_t>(require_number(doc, "detail", line_no));
    e.aux = static_cast<std::int32_t>(require_number(doc, "aux", line_no));
    e.value = require_number(doc, "value", line_no);
    events.push_back(e);
  }
  return events;
}

std::string journal_encode(const std::vector<JournalEvent>& events) {
  wire::Writer payload;
  payload.count(events.size());
  for (const JournalEvent& e : events) {
    payload.i32(e.interval);
    payload.u8(static_cast<std::uint8_t>(e.kind));
    payload.u64(e.chain);
    payload.i32(e.client);
    payload.i32(e.server);
    payload.i32(e.peer);
    payload.i64(e.bytes);
    payload.i32(e.detail);
    payload.i32(e.aux);
    payload.f64(e.value);
  }
  return wire::frame(kJournalMagic, kJournalVersion, payload.bytes());
}

std::vector<JournalEvent> journal_decode(const std::string& bytes) {
  try {
    wire::Reader r =
        wire::unframe(bytes, kJournalMagic, kJournalVersion, "journal");
    // Per-event wire size: 4+1+8+4+4+4+8+4+4+8 bytes.
    std::vector<JournalEvent> events(r.count(49));
    for (JournalEvent& e : events) {
      e.interval = r.i32();
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(JournalEventKind::kCachePartial))
        throw wire::WireError("journal: event kind out of range");
      e.kind = static_cast<JournalEventKind>(kind);
      e.chain = r.u64();
      e.client = r.i32();
      e.server = r.i32();
      e.peer = r.i32();
      e.bytes = r.i64();
      e.detail = r.i32();
      e.aux = r.i32();
      e.value = r.f64();
    }
    if (!r.done())
      throw wire::WireError("journal: trailing bytes after the last event");
    return events;
  } catch (const wire::WireError& e) {
    throw JournalError(e.what());
  }
}

bool journal_is_binary(const std::string& bytes) {
  if (bytes.size() < 8) return false;
  for (std::size_t i = 0; i < 8; ++i)
    if (bytes[i] != kJournalMagic[i]) return false;
  return true;
}

}  // namespace perdnn::obs
