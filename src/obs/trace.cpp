#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace perdnn::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

thread_local int t_span_depth = 0;

}  // namespace

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer;  // leaked: outlives all users
  return *tracer;
}

void Tracer::start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    thread_hashes_.clear();
  }
  origin_ns_.store(steady_ns(), std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_.store(false, std::memory_order_relaxed); }

double Tracer::now_us() const {
  const std::int64_t origin = origin_ns_.load(std::memory_order_relaxed);
  if (origin == 0) return 0.0;
  return static_cast<double>(steady_ns() - origin) / 1e3;
}

int Tracer::thread_index_locked() {
  const std::uint64_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (std::size_t i = 0; i < thread_hashes_.size(); ++i)
    if (thread_hashes_[i] == h) return static_cast<int>(i);
  thread_hashes_.push_back(h);
  return static_cast<int>(thread_hashes_.size() - 1);
}

void Tracer::record(const std::string& name, double ts_us, double dur_us,
                    int depth) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      {name, ts_us, dur_us, thread_index_locked(), depth});
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  thread_hashes_.clear();
}

std::string Tracer::to_chrome_json() const {
  std::vector<TraceEvent> sorted = events();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.name < b.name;
                   });
  std::vector<JsonValue> items;
  items.reserve(sorted.size());
  for (const TraceEvent& e : sorted) {
    std::vector<std::pair<std::string, JsonValue>> m;
    m.emplace_back("name", JsonValue::make_string(e.name));
    m.emplace_back("cat", JsonValue::make_string("perdnn"));
    m.emplace_back("ph", JsonValue::make_string("X"));
    m.emplace_back("ts", JsonValue::make_number(e.ts_us));
    m.emplace_back("dur", JsonValue::make_number(e.dur_us));
    m.emplace_back("pid", JsonValue::make_number(0));
    m.emplace_back("tid", JsonValue::make_number(e.tid));
    std::vector<std::pair<std::string, JsonValue>> args;
    args.emplace_back("depth",
                      JsonValue::make_number(static_cast<double>(e.depth)));
    m.emplace_back("args", JsonValue::make_object(std::move(args)));
    items.push_back(JsonValue::make_object(std::move(m)));
  }
  std::vector<std::pair<std::string, JsonValue>> doc;
  doc.emplace_back("traceEvents", JsonValue::make_array(std::move(items)));
  doc.emplace_back("displayTimeUnit", JsonValue::make_string("ms"));
  return JsonValue::make_object(std::move(doc)).serialize();
}

Span::Span(const char* name) {
  const bool tracing = Tracer::global().active();
  if (!tracing && !enabled()) return;  // fully dark: no clock read
  armed_ = true;
  name_ = name;
  depth_ = ++t_span_depth;
  start_ns_ = steady_ns();
}

Span::~Span() {
  if (!armed_) return;
  const std::int64_t end_ns = steady_ns();
  const double dur_s = static_cast<double>(end_ns - start_ns_) / 1e9;
  --t_span_depth;
  // Duration histogram (metrics enabled) — seconds, default bounds.
  if (enabled())
    Registry::global().histogram(std::string("span.") + name_)
        .observe(dur_s);
  // Chrome trace event (tracer started).
  Tracer& tracer = Tracer::global();
  if (tracer.active()) {
    const double dur_us = dur_s * 1e6;
    const double end_us = tracer.now_us();
    tracer.record(name_, end_us - dur_us, dur_us, depth_);
  }
}

}  // namespace perdnn::obs
