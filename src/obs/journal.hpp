// Bounded, deterministic structured event journal: the explainability layer
// under the simulator. Components on the serial control path record typed
// events — attach/detach, the migration lifecycle, fault apply/clear, cache
// churn, degraded-estimation and local-fallback decisions — each stamped
// with the sim interval (never wall clock) and a causal chain id linking
// one client's attach -> plan -> upload -> serve path end to end.
//
// Determinism contract: every record() call sits on the serial control path
// of the simulation (worker threads never record), so the journal is
// byte-identical across thread counts and the fastpath toggle, and its
// state travels through checkpoints so a resumed run reproduces the
// uninterrupted journal exactly. Checkpoint save/resume markers would break
// that identity (an uninterrupted run has no resume marker), so they live
// in a separate meta-event list excluded from export and snapshots.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace perdnn::obs {

enum class JournalEventKind : std::uint8_t {
  kAttach = 0,         // client attached to server (starts a new chain)
  kDetach,             // detail: DetachReason
  kPlan,               // upload plan computed; detail: PlanClass, aux: #pending
  kDegradedPlan,       // plan computed from stale telemetry; aux: #pending
  kColdServe,          // cold-window queries served; aux: #queries, value: latency_s
  kLocalFallback,      // queries ran on-device; aux: #queries, value: latency_s
  kMigrationPlanned,   // proactive push decided; peer: target, aux: #layers
  kMigrationPushed,    // bytes delivered to peer; aux: #layers delivered
  kMigrationDeferred,  // parked for retry; detail: attempts, aux: next attempt
  kMigrationRetried,   // came up for retry; detail: attempts
  kMigrationDropped,   // abandoned; detail: attempts, aux: DropReason
  kFaultApplied,       // detail: FaultCode, aux: duration, value: severity
  kFaultCleared,       // detail: FaultCode
  kCacheStore,         // layers added on server; aux: #new layers
  kCacheTouch,         // TTL refreshed for a client's entry
  kCacheEvict,         // entry erased (crash wipe); aux: #layers
  kCacheExpire,        // entry aged out of TTL; aux: #layers
  kCheckpointSave,     // meta only: checkpoint captured after this interval
  kCheckpointResume,   // meta only: run resumed at this interval
  // Wire values are positional and frozen; new kinds append here.
  kAttachShed,         // admission control refused the attach; detail: server
                       // queue depth at the decision, aux: cached prefix
  kCachePartial,       // budgeted store admitted only a prefix of the send;
                       // bytes: refused bytes, aux: #layers refused
};

/// Stable lower_snake_case name used in JSONL and by perdnn_obs filters.
const char* journal_kind_name(JournalEventKind kind);

/// Inverse of journal_kind_name; returns false on an unknown name.
bool journal_kind_from_name(const std::string& name, JournalEventKind* out);

/// `detail` codes for kDetach.
enum DetachReason : std::int32_t {
  kDetachMoved = 0,        // handover to another server
  kDetachTraceEnd = 1,     // trajectory ended
  kDetachCrash = 2,        // attached server crashed
  kDetachDisconnect = 3,   // scripted client disconnect
  kDetachUnreachable = 4,  // no server in range
};

/// `detail` codes for kPlan (the cache-outcome class of the attach).
enum PlanClass : std::int32_t {
  kPlanHit = 0,      // every needed layer cached
  kPlanPartial = 1,  // some layers cached
  kPlanMiss = 2,     // nothing cached
};

/// `detail` codes for kFaultApplied / kFaultCleared.
enum FaultCode : std::int32_t {
  kFaultServerCrash = 0,
  kFaultBackhaulDegrade = 1,
  kFaultTelemetryDropout = 2,
  kFaultClientDisconnect = 3,
};

/// `aux` codes for kMigrationDropped.
enum DropReason : std::int32_t {
  kDropRetryBudget = 0,  // outlived max_attempts
  kDropDissolved = 1,    // layers arrived by other means; nothing left to send
  kDropQueueFull = 2,    // source server's retry queue was at capacity
};

/// One journal record. Fixed shape: unused fields keep their defaults so
/// the wire and JSONL encodings stay uniform. `detail`/`aux` are
/// kind-specific discriminants (see the per-kind comments above); `value`
/// carries latencies, severities and link factors.
struct JournalEvent {
  int interval = 0;
  JournalEventKind kind = JournalEventKind::kAttach;
  std::uint64_t chain = 0;  // 0 = not part of any client chain
  ClientId client = -1;
  ServerId server = kNoServer;
  ServerId peer = kNoServer;
  Bytes bytes = 0;
  std::int32_t detail = 0;
  std::int32_t aux = 0;
  double value = 0.0;

  bool operator==(const JournalEvent&) const = default;
};

/// Checkpointable journal state (core events only — meta markers excluded
/// by design; see the header comment).
struct JournalState {
  std::vector<JournalEvent> events;
  std::uint64_t next_chain = 1;
  std::uint64_t dropped = 0;
  /// Client -> chain id of its most recent attach, sorted by client so the
  /// snapshot encoding is canonical.
  std::vector<std::pair<ClientId, std::uint64_t>> client_chains;
};

/// Thrown by the binary decoder and the JSONL parser on malformed input.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Journal {
 public:
  /// Keep-first bound: once `capacity` events are stored, further records
  /// are counted in dropped() but not stored. The early events are the
  /// ones that explain later state, so they win.
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  explicit Journal(std::size_t capacity = kDefaultCapacity);

  /// Starts a new causal chain for `client` (chains are numbered from 1 in
  /// record order) and remembers it as the client's current chain.
  std::uint64_t begin_chain(ClientId client);

  /// Current chain of `client`, or 0 if it never attached. The binding
  /// survives detach so fallback events still link to the last attach.
  std::uint64_t chain_of(ClientId client) const;

  /// Appends a core event. If `event.chain` is 0 and `event.client` is a
  /// real client, the chain is auto-filled from the client's current chain.
  void record(JournalEvent event);

  /// Appends a meta event (checkpoint save/resume markers). Meta events
  /// are excluded from events(), write_jsonl(), encode() and state().
  void record_meta(JournalEvent event);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const;

  std::vector<JournalEvent> events() const;
  std::vector<JournalEvent> meta_events() const;

  JournalState state() const;
  void restore(const JournalState& state);
  void clear();

  /// One JSON object per line, every field always present, kind by name.
  void write_jsonl(std::ostream& out) const;

  /// Compact binary form: PDNNJNL1-framed (common/wire.hpp).
  std::string encode() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<JournalEvent> events_;
  std::vector<JournalEvent> meta_events_;
  std::uint64_t next_chain_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<std::pair<ClientId, std::uint64_t>> client_chains_;
};

/// Appends the JSONL encoding of one event (no trailing newline) to `out`.
/// This is the single formatter behind write_jsonl / journal_to_jsonl and
/// the streaming journal writer, so buffered and streamed exports are
/// byte-identical by construction.
void append_journal_event_jsonl(std::string& out, const JournalEvent& event);

/// Serializes `events` as JSONL (the exact format write_jsonl streams).
std::string journal_to_jsonl(const std::vector<JournalEvent>& events);

/// Parses JSONL produced by write_jsonl / journal_to_jsonl. Blank lines
/// and `#` comment lines are skipped. Throws JournalError with the line
/// number on malformed input.
std::vector<JournalEvent> journal_from_jsonl(const std::string& text);

/// Binary codec over the shared wire framing (magic PDNNJNL1).
std::string journal_encode(const std::vector<JournalEvent>& events);
std::vector<JournalEvent> journal_decode(const std::string& bytes);

/// True when `bytes` starts with the binary journal magic — used by
/// perdnn_obs to auto-detect binary vs JSONL inputs.
bool journal_is_binary(const std::string& bytes);

}  // namespace perdnn::obs
