// Minimal JSON support for the observability exports: a writer with correct
// string escaping and deterministic number formatting, plus a small
// recursive-descent parser used by the self-check tests to round-trip every
// export (metrics registry, span traces, simulation timeseries) and prove
// the emitted text is well-formed.
//
// This is deliberately not a general-purpose JSON library: no comments, no
// NaN/Inf (rejected on write and on parse), objects keep insertion order so
// serialize(parse(s)) is the identity on our own canonical output.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace perdnn::obs {

/// Appends `s` as a JSON string literal (with quotes) to `out`.
void json_escape(std::string& out, const std::string& s);

/// Formats a double deterministically: integral values within int64 range
/// print without a fraction, everything else with shortest round-trip
/// precision. Throws std::invalid_argument on NaN/Inf (JSON has neither).
std::string json_number(double value);

/// Parsed JSON value. Objects preserve key order.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Canonical serialization (no whitespace, members in stored order).
  std::string serialize() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses a complete JSON document. Throws std::runtime_error with a byte
/// offset on malformed input (trailing garbage included).
JsonValue parse_json(const std::string& text);

/// True iff `text` parses as JSON. Convenience for validation-only call
/// sites that do not need the value.
bool is_valid_json(const std::string& text);

}  // namespace perdnn::obs
