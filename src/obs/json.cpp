#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace perdnn::obs {

void json_escape(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double value) {
  if (!std::isfinite(value))
    throw std::invalid_argument("JSON cannot represent NaN/Inf");
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 9.0e18) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  // Shortest representation that round-trips a double.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  double parsed = 0.0;
  for (int precision = 15; precision <= 16; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, value);
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) return candidate;
  }
  return buf;
}

JsonValue JsonValue::make_null() { return {}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {
[[noreturn]] void kind_error(const char* want) {
  throw std::runtime_error(std::string("JSON value is not a ") + want);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) kind_error("array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) kind_error("object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

std::string JsonValue::serialize() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull: out = "null"; break;
    case Kind::kBool: out = bool_ ? "true" : "false"; break;
    case Kind::kNumber: out = json_number(number_); break;
    case Kind::kString: json_escape(out, string_); break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += items_[i].serialize();
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        json_escape(out, members_[i].first);
        out.push_back(':');
        out += members_[i].second.serialize();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape digit");
          }
          // Our exports only escape control characters; encode the code
          // point as UTF-8 (BMP only, surrogates rejected).
          if (code >= 0xd800 && code <= 0xdfff)
            fail("surrogate escapes unsupported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(text_[pos_]))
      fail("bad number");
    while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(text_[pos_]))
        fail("bad fraction");
      while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(text_[pos_]))
        fail("bad exponent");
      while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    }
    double value = 0.0;
    // from_chars takes an explicit end: sscanf/strtod would scan (strlen!)
    // from `start` to the end of the document on every number, turning the
    // whole parse quadratic.
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_)
      fail("unparsable number");
    return JsonValue::make_number(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

bool is_valid_json(const std::string& text) {
  try {
    parse_json(text);
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

}  // namespace perdnn::obs
