#include "obs/stream_writer.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "common/check.hpp"

namespace perdnn::obs {

namespace {

void truncate_to(const std::string& path, std::uint64_t offset) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec)
    throw std::runtime_error("stream writer: cannot stat " + path + ": " +
                             ec.message());
  if (size < offset)
    throw std::runtime_error(
        "stream writer: " + path + " is shorter than the checkpoint offset (" +
        std::to_string(size) + " < " + std::to_string(offset) +
        "); refusing to resume into it");
  std::filesystem::resize_file(path, offset, ec);
  if (ec)
    throw std::runtime_error("stream writer: cannot truncate " + path + ": " +
                             ec.message());
}

std::ofstream open_appending(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out)
    throw std::runtime_error("stream writer: cannot open " + path);
  return out;
}

}  // namespace

TimeseriesStreamWriter::TimeseriesStreamWriter(const std::string& path,
                                               const std::string& model,
                                               bool cache_columns)
    : cache_columns_(cache_columns) {
  out_ = std::ofstream(path, std::ios::binary | std::ios::trunc);
  if (!out_)
    throw std::runtime_error("stream writer: cannot open " + path);
  line_ = "# schema=" +
          std::to_string(cache_columns_
                             ? SimTimeseries::kCsvCacheSchemaVersion
                             : SimTimeseries::kCsvSchemaVersion) +
          "\n";
  if (!model.empty())
    line_ += "# model=" + SimTimeseries::csv_quote(model) + "\n";
  line_ += SimTimeseries::csv_header(cache_columns_);
  line_ += '\n';
  out_.write(line_.data(), static_cast<std::streamsize>(line_.size()));
  bytes_ = line_.size();
}

TimeseriesStreamWriter::TimeseriesStreamWriter(const std::string& path,
                                               Resume resume,
                                               std::uint64_t rows,
                                               bool cache_columns)
    : cache_columns_(cache_columns) {
  truncate_to(path, resume.bytes);
  out_ = open_appending(path);
  bytes_ = resume.bytes;
  rows_ = rows;
}

void TimeseriesStreamWriter::append(const TimeseriesRow& row) {
  line_.clear();
  append_timeseries_row_csv(line_, row, cache_columns_);
  line_.push_back('\n');
  out_.write(line_.data(), static_cast<std::streamsize>(line_.size()));
  bytes_ += line_.size();
  ++rows_;
}

void TimeseriesStreamWriter::flush() {
  out_.flush();
  PERDNN_CHECK_MSG(out_.good(), "timeseries stream write failed");
}

JournalStreamWriter::JournalStreamWriter(const std::string& path) {
  out_ = std::ofstream(path, std::ios::binary | std::ios::trunc);
  if (!out_)
    throw std::runtime_error("stream writer: cannot open " + path);
}

JournalStreamWriter::JournalStreamWriter(
    const std::string& path, Resume resume, std::uint64_t events,
    std::uint64_t next_chain,
    const std::vector<std::pair<ClientId, std::uint64_t>>& client_chains) {
  truncate_to(path, resume.bytes);
  out_ = open_appending(path);
  bytes_ = resume.bytes;
  events_ = events;
  next_chain_ = next_chain;
  for (const auto& [client, chain] : client_chains) chains_[client] = chain;
}

std::uint64_t JournalStreamWriter::begin_chain(ClientId client) {
  const std::uint64_t chain = next_chain_++;
  chains_[client] = chain;
  return chain;
}

std::uint64_t JournalStreamWriter::chain_of(ClientId client) const {
  const auto it = chains_.find(client);
  return it == chains_.end() ? 0 : it->second;
}

void JournalStreamWriter::record(JournalEvent event) {
  if (event.chain == 0 && event.client >= 0)
    event.chain = chain_of(event.client);
  line_.clear();
  append_journal_event_jsonl(line_, event);
  line_.push_back('\n');
  out_.write(line_.data(), static_cast<std::streamsize>(line_.size()));
  bytes_ += line_.size();
  ++events_;
}

void JournalStreamWriter::flush() {
  out_.flush();
  PERDNN_CHECK_MSG(out_.good(), "journal stream write failed");
}

std::vector<std::pair<ClientId, std::uint64_t>>
JournalStreamWriter::client_chains() const {
  std::vector<std::pair<ClientId, std::uint64_t>> out(chains_.begin(),
                                                      chains_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace perdnn::obs
