// Per-interval, per-server simulation timeseries (the data behind the
// paper's Fig 9 / Fig 10 / Table II readings, before it is collapsed into
// the flat SimulationMetrics aggregate).
//
// The simulator drives the recorder through begin_interval()/end_interval()
// and the record_* hooks; after the run, rows() holds exactly
// num_intervals * num_servers rows (including all-zero rows, so consumers
// can reshape into a dense [interval][server] matrix), and the exports
// reconcile with SimulationMetrics:
//
//   sum(hits/partials/misses)        == metrics.hits/partials/misses
//   sum(cold_window_queries)         == metrics.cold_window_queries
//   sum(uplink_bytes)                == metrics.total_migrated_bytes
//   sum(uplink_bytes)                == sum(downlink_bytes)
//
// Export formats:
//   CSV  — `# schema=N` (and `# model=...` when set) comment lines, one
//          header line, one line per (interval, server), rows ordered by
//          interval then server (deterministic across runs). String
//          metadata (model/server names) is RFC-4180-quoted so names with
//          commas or quotes cannot misalign downstream column parsers.
//   JSON — {"schema","model","interval_length_s","num_servers",
//          "num_intervals","rows":[...]} with the same ordering.
//
// Thread-safe: the record hooks take an internal mutex (the simulator is
// single-threaded today, but benches may parallelise policy runs).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace perdnn::obs {

struct TimeseriesRow {
  int interval = 0;
  int server = 0;
  /// Clients attached to this server at the end of the interval.
  int attached = 0;
  // Cold-start classifications of re-attachments to this server during the
  // interval (hit: all plan layers cached; partial: some; miss: none).
  int hits = 0;
  int partials = 0;
  int misses = 0;
  /// Queries completed inside cold-start windows opened at this server.
  long long cold_window_queries = 0;
  /// Summed end-to-end latency of those queries (seconds).
  double cold_latency_sum_s = 0.0;
  /// Backhaul bytes sent from / received by this server (proactive
  /// migration), attributed like TrafficAccountant.
  std::int64_t uplink_bytes = 0;
  std::int64_t downlink_bytes = 0;
  /// Migration orders issued with this server as the source (including
  /// orders fully deduplicated at the receiver, which move no bytes).
  int migration_orders = 0;
  /// Mobility-predictor error meters, attributed to the predicted client's
  /// current server: |predicted - actual next position| in metres.
  int predictor_samples = 0;
  double predictor_error_sum_m = 0.0;
  /// Fault-model columns (all zero for fault-free runs). Local-execution
  /// fallback queries are attributed to the nearest (unreachable) server so
  /// the rows still reconcile with SimulationMetrics.
  long long local_queries = 0;
  double local_latency_sum_s = 0.0;
  /// Migration bytes parked in the retry queue this interval (source side).
  std::int64_t deferred_bytes = 0;
  /// Attaches planned in degraded mode (stale GPU telemetry at this server).
  int degraded = 0;
  /// Budgeted-cache columns (schema 3; exported only when the run enforces
  /// a cache byte budget, so unbudgeted runs keep the schema-2 layout).
  /// Resident cache bytes at the end of the interval, plus budget evictions
  /// and budget-trimmed (partial-residency) stores during it.
  std::int64_t cache_bytes = 0;
  int cache_evictions = 0;
  int cache_partial_stores = 0;
};

/// Appends the CSV encoding of one row (no trailing newline) to `out`,
/// column order exactly as SimTimeseries::csv_header(). The single formatter
/// behind SimTimeseries::write_csv and the streaming timeseries writer, so
/// buffered and streamed exports are byte-identical by construction.
/// `with_cache_columns` appends the three schema-3 budgeted-cache columns.
void append_timeseries_row_csv(std::string& out, const TimeseriesRow& row,
                               bool with_cache_columns = false);

class SimTimeseries {
 public:
  /// Bumped whenever the CSV column set or header layout changes, and
  /// announced by the `# schema=N` comment line so downstream parsers can
  /// refuse rather than silently misalign columns.
  static constexpr int kCsvSchemaVersion = 2;
  /// Schema announced when the budgeted-cache columns are enabled. Runs
  /// without a cache budget keep emitting schema 2 byte-identically.
  static constexpr int kCsvCacheSchemaVersion = 3;

  /// Must be called before the first interval. Resets prior state.
  void start(int num_servers, double interval_length_s);

  /// Optional metadata: the DNN model name the run simulated. Survives
  /// start()/restore() so it can be set once before the run; exported as a
  /// quoted `# model=` comment line and a JSON field.
  void set_model(std::string model_name);
  std::string model() const;

  /// Re-primes the recorder from checkpointed rows so a resumed simulation
  /// can append interval `next_interval` as if the run never stopped.
  /// `rows` must hold complete intervals only (size divisible by
  /// num_servers); pass an empty vector when the original run recorded no
  /// timeseries up to the checkpoint.
  void restore(int num_servers, double interval_length_s,
               std::vector<TimeseriesRow> rows, int next_interval);

  void begin_interval(int interval_index);
  void record_attach(int server, int hits, int partials, int misses);
  void record_cold_queries(int server, long long queries,
                           double latency_sum_s);
  /// One migration order from `from` to `to`; `bytes` may be 0 when the
  /// receiver already held every layer (TTL refresh only).
  void record_migration(int from, int to, std::int64_t bytes);
  void record_predictor_sample(int server, double abs_error_m);
  /// Local-execution fallback queries by a client whose nearest server is
  /// `server` (unreachable this interval).
  void record_local_queries(int server, long long queries,
                            double latency_sum_s);
  /// Migration bytes deferred into the retry queue, attributed to `server`
  /// as the transfer source.
  void record_deferred(int server, std::int64_t bytes);
  /// One attach whose plan was built in degraded (stale-telemetry) mode.
  void record_degraded(int server);
  /// Budgeted-cache state for `server` this interval: resident bytes at the
  /// snapshot point plus eviction / partial-store counts since the previous
  /// interval. Only meaningful after enable_cache_columns().
  void record_cache(int server, std::int64_t bytes, int evictions,
                    int partial_stores);
  /// Attached-client counts at the end of the open interval.
  void set_attached(const std::vector<int>& attached_per_server);
  void end_interval();

  /// Switches exports to the schema-3 layout with the budgeted-cache
  /// columns. Called once by the engine when a cache byte budget is set;
  /// survives restore() so a resumed run keeps its schema. Never called for
  /// unbudgeted runs, whose exports stay byte-identical to schema 2.
  void enable_cache_columns();
  bool cache_columns_enabled() const;
  /// The `# schema=N` value write_csv will announce.
  int csv_schema() const;

  int num_servers() const;
  int num_intervals() const;
  double interval_length_s() const;

  /// All finished rows, ordered by (interval, server); size is always
  /// num_intervals() * num_servers().
  std::vector<TimeseriesRow> rows() const;

  // Whole-run aggregates (for reconciliation checks).
  long long total_hits() const;
  long long total_partials() const;
  long long total_misses() const;
  long long total_cold_window_queries() const;
  std::int64_t total_uplink_bytes() const;
  std::int64_t total_downlink_bytes() const;
  long long total_local_queries() const;
  std::int64_t total_deferred_bytes() const;
  long long total_degraded() const;
  long long total_cache_evictions() const;
  long long total_cache_partial_stores() const;

  /// Column order of write_csv, comma-joined in the header line.
  /// `with_cache_columns` selects the schema-3 layout.
  static const char* csv_header(bool with_cache_columns = false);

  /// RFC-4180 quoting for string fields in CSV output (model and server
  /// names): wraps the value in double quotes and doubles embedded quotes
  /// whenever it contains a comma, quote, newline, '#' or leading/trailing
  /// space — plain identifiers pass through untouched.
  static std::string csv_quote(const std::string& value);

  void write_csv(std::ostream& out) const;
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::string model_;  // optional; not reset by start()/restore()
  bool cache_columns_ = false;  // sticky, like model_
  int num_servers_ = 0;
  double interval_length_s_ = 0.0;
  int current_interval_ = -1;
  bool interval_open_ = false;
  std::vector<TimeseriesRow> current_;  // one per server
  std::vector<TimeseriesRow> rows_;     // finished, (interval, server) order
};

}  // namespace perdnn::obs
