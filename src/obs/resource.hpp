// Process resource probes used by the scale bench and the scenario runner's
// per-shard status files.
#pragma once

#include <cstdint>

namespace perdnn::obs {

/// Peak resident-set size of this process in bytes (Linux: VmHWM from
/// /proc/self/status). Returns 0 on platforms without the proc interface.
std::uint64_t peak_rss_bytes();

}  // namespace perdnn::obs
