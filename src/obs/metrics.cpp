#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "obs/json.hpp"

namespace perdnn::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::vector<double> Histogram::default_bounds() {
  // 1 us .. 100 s, three buckets per decade (1, 2.5, 5 pattern).
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 1e2 * 1.5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.5);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds,
                     std::size_t max_exact_samples)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1, 0),
      max_exact_samples_(max_exact_samples) {
  PERDNN_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bucket bounds must be sorted");
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (samples_.size() < max_exact_samples_) {
    samples_.push_back(v);
  } else if (!samples_.empty() && count_ > max_exact_samples_) {
    // Reservoir no longer covers the stream; exact quantiles are over.
    samples_.clear();
    samples_.shrink_to_fit();
  }
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quantile_locked(q);
}

double Histogram::quantile_locked(double q) const {
  PERDNN_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  if (count_ <= max_exact_samples_ && samples_.size() == count_)
    return percentile(samples_, q * 100.0);

  // Streaming path: linear interpolation inside the bucket holding the
  // target rank, clamped to the observed min/max.
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += counts_[b];
    const double hi_rank = static_cast<double>(seen - 1);
    if (rank > hi_rank) continue;
    const double lo =
        b == 0 ? min_ : std::max(min_, bounds_[b - 1]);
    const double hi =
        b < bounds_.size() ? std::min(max_, bounds_[b]) : max_;
    if (hi_rank <= lo_rank) return std::clamp(lo, min_, max_);
    const double frac = (rank - lo_rank) / (hi_rank - lo_rank);
    return std::clamp(lo + (hi - lo) * frac, min_, max_);
  }
  return max_;
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

Registry& Registry::global() {
  static Registry* registry = new Registry;  // leaked: outlives all users
  return *registry;
}

std::string label_key(const Labels& labels) {
  Labels sorted = labels;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += sorted[i].key;
    out.push_back('=');
    out += sorted[i].value;
  }
  return out;
}

Registry::Series& Registry::series(const std::string& name,
                                   const Labels& labels, MetricKind kind,
                                   std::vector<double>* bounds) {
  std::string key = name;
  key.push_back('\0');
  key += label_key(labels);

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(key);
  if (it != series_.end()) {
    PERDNN_CHECK_MSG(it->second.kind == kind,
                     "metric '" << name << "' re-registered as another kind");
    return it->second;
  }
  Series s;
  s.name = name;
  s.labels = labels;
  std::stable_sort(s.labels.begin(), s.labels.end(),
                   [](const Label& a, const Label& b) { return a.key < b.key; });
  s.kind = kind;
  switch (kind) {
    case MetricKind::kCounter: s.counter = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: s.gauge = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram:
      s.histogram = std::make_unique<Histogram>(
          bounds != nullptr ? std::move(*bounds) : Histogram::default_bounds());
      break;
  }
  return series_.emplace(std::move(key), std::move(s)).first->second;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  return *series(name, labels, MetricKind::kCounter, nullptr).counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  return *series(name, labels, MetricKind::kGauge, nullptr).gauge;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels,
                               std::vector<double> bounds) {
  return *series(name, labels, MetricKind::kHistogram, &bounds).histogram;
}

namespace {

JsonValue labels_json(const Labels& labels) {
  std::vector<std::pair<std::string, JsonValue>> members;
  members.reserve(labels.size());
  for (const Label& l : labels)
    members.emplace_back(l.key, JsonValue::make_string(l.value));
  return JsonValue::make_object(std::move(members));
}

}  // namespace

std::string Registry::to_json() const {
  std::vector<JsonValue> counters, gauges, histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // series_ is an ordered map keyed by (name, labels): iteration order is
    // already the deterministic export order.
    for (const auto& [key, s] : series_) {
      std::vector<std::pair<std::string, JsonValue>> m;
      m.emplace_back("name", JsonValue::make_string(s.name));
      m.emplace_back("labels", labels_json(s.labels));
      switch (s.kind) {
        case MetricKind::kCounter:
          m.emplace_back("value", JsonValue::make_number(s.counter->value()));
          counters.push_back(JsonValue::make_object(std::move(m)));
          break;
        case MetricKind::kGauge:
          m.emplace_back("value", JsonValue::make_number(s.gauge->value()));
          gauges.push_back(JsonValue::make_object(std::move(m)));
          break;
        case MetricKind::kHistogram: {
          const HistogramSnapshot snap = s.histogram->snapshot();
          m.emplace_back("count", JsonValue::make_number(
                                      static_cast<double>(snap.count)));
          m.emplace_back("sum", JsonValue::make_number(snap.sum));
          m.emplace_back("min", JsonValue::make_number(snap.min));
          m.emplace_back("max", JsonValue::make_number(snap.max));
          m.emplace_back("mean",
                         JsonValue::make_number(
                             snap.count ? snap.sum /
                                              static_cast<double>(snap.count)
                                        : 0.0));
          m.emplace_back("p50",
                         JsonValue::make_number(s.histogram->quantile(0.5)));
          m.emplace_back("p90",
                         JsonValue::make_number(s.histogram->quantile(0.9)));
          m.emplace_back("p99",
                         JsonValue::make_number(s.histogram->quantile(0.99)));
          std::vector<JsonValue> buckets;
          for (std::size_t b = 0; b < snap.counts.size(); ++b) {
            if (snap.counts[b] == 0) continue;  // sparse export
            std::vector<std::pair<std::string, JsonValue>> bucket;
            bucket.emplace_back(
                "le", b < snap.bounds.size()
                          ? JsonValue::make_number(snap.bounds[b])
                          : JsonValue::make_string("+inf"));
            bucket.emplace_back("count",
                                JsonValue::make_number(
                                    static_cast<double>(snap.counts[b])));
            buckets.push_back(JsonValue::make_object(std::move(bucket)));
          }
          m.emplace_back("buckets", JsonValue::make_array(std::move(buckets)));
          histograms.push_back(JsonValue::make_object(std::move(m)));
          break;
        }
      }
    }
  }
  std::vector<std::pair<std::string, JsonValue>> doc;
  doc.emplace_back("counters", JsonValue::make_array(std::move(counters)));
  doc.emplace_back("gauges", JsonValue::make_array(std::move(gauges)));
  doc.emplace_back("histograms",
                   JsonValue::make_array(std::move(histograms)));
  return JsonValue::make_object(std::move(doc)).serialize();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
}

void count(const char* name, double v) {
  if (!enabled()) return;
  Registry::global().counter(name).add(v);
}

void count(const char* name, double v, const Labels& labels) {
  if (!enabled()) return;
  Registry::global().counter(name, labels).add(v);
}

void set_gauge(const char* name, double v, const Labels& labels) {
  if (!enabled()) return;
  Registry::global().gauge(name, labels).set(v);
}

void observe(const char* name, double v) {
  if (!enabled()) return;
  Registry::global().histogram(name).observe(v);
}

void observe(const char* name, double v, const Labels& labels) {
  if (!enabled()) return;
  Registry::global().histogram(name, labels).observe(v);
}

}  // namespace perdnn::obs
