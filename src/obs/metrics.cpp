#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <thread>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "obs/json.hpp"

namespace perdnn::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::vector<double> Histogram::default_bounds() {
  // 1 us .. 100 s, three buckets per decade (1, 2.5, 5 pattern).
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 1e2 * 1.5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.5);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds,
                     std::size_t max_exact_samples)
    : bounds_(std::move(bounds)), max_exact_samples_(max_exact_samples) {
  PERDNN_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bucket bounds must be sorted");
  for (Shard& shard : shards_) shard.counts.assign(bounds_.size() + 1, 0);
}

Histogram::Shard& Histogram::local_shard() const {
  // Each thread sticks to one shard, so a lone recording thread sees the
  // exact unsharded behaviour and concurrent recorders rarely contend.
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kNumShards;
  return shards_[shard];
}

void Histogram::observe(double v) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++shard.counts[static_cast<std::size_t>(it - bounds_.begin())];
  if (shard.count == 0) {
    shard.min = shard.max = v;
  } else {
    shard.min = std::min(shard.min, v);
    shard.max = std::max(shard.max, v);
  }
  ++shard.count;
  shard.sum += v;
  if (shard.samples.size() < max_exact_samples_) {
    shard.samples.push_back(v);
  } else if (!shard.samples.empty() && shard.count > max_exact_samples_) {
    // Reservoir no longer covers this shard's stream; exact quantiles are
    // over for the whole histogram (merge() notices the shortfall).
    shard.samples.clear();
    shard.samples.shrink_to_fit();
  }
}

Histogram::Merged Histogram::merge() const {
  Merged m;
  m.snap.bounds = bounds_;
  m.snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.count == 0) continue;
    for (std::size_t b = 0; b < shard.counts.size(); ++b)
      m.snap.counts[b] += shard.counts[b];
    if (m.snap.count == 0) {
      m.snap.min = shard.min;
      m.snap.max = shard.max;
    } else {
      m.snap.min = std::min(m.snap.min, shard.min);
      m.snap.max = std::max(m.snap.max, shard.max);
    }
    m.snap.count += shard.count;
    m.snap.sum += shard.sum;
    m.samples.insert(m.samples.end(), shard.samples.begin(),
                     shard.samples.end());
  }
  m.exact = m.samples.size() == m.snap.count;
  return m;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.count;
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.sum;
  }
  return total;
}

double Histogram::mean() const {
  const Merged m = merge();
  return m.snap.count ? m.snap.sum / static_cast<double>(m.snap.count) : 0.0;
}

double Histogram::quantile(double q) const {
  PERDNN_CHECK(q >= 0.0 && q <= 1.0);
  const Merged m = merge();
  // An empty distribution has no quantiles; 0.0 would be indistinguishable
  // from a real all-zero sample stream.
  if (m.snap.count == 0) return std::numeric_limits<double>::quiet_NaN();
  // percentile() sorts, so the exact path is independent of shard order.
  if (m.exact) return percentile(m.samples, q * 100.0);

  // Streaming path: linear interpolation inside the bucket holding the
  // target rank, clamped to the observed min/max.
  const double rank = q * static_cast<double>(m.snap.count - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < m.snap.counts.size(); ++b) {
    if (m.snap.counts[b] == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += m.snap.counts[b];
    const double hi_rank = static_cast<double>(seen - 1);
    if (rank > hi_rank) continue;
    const double lo =
        b == 0 ? m.snap.min : std::max(m.snap.min, bounds_[b - 1]);
    const double hi =
        b < bounds_.size() ? std::min(m.snap.max, bounds_[b]) : m.snap.max;
    if (hi_rank <= lo_rank) return std::clamp(lo, m.snap.min, m.snap.max);
    const double frac = (rank - lo_rank) / (hi_rank - lo_rank);
    return std::clamp(lo + (hi - lo) * frac, m.snap.min, m.snap.max);
  }
  return m.snap.max;
}

HistogramSnapshot Histogram::snapshot() const { return merge().snap; }

Registry& Registry::global() {
  static Registry* registry = new Registry;  // leaked: outlives all users
  return *registry;
}

std::string label_key(const Labels& labels) {
  Labels sorted = labels;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += sorted[i].key;
    out.push_back('=');
    out += sorted[i].value;
  }
  return out;
}

Registry::Series& Registry::series(const std::string& name,
                                   const Labels& labels, MetricKind kind,
                                   std::vector<double>* bounds) {
  std::string key = name;
  key.push_back('\0');
  key += label_key(labels);

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(key);
  if (it != series_.end()) {
    PERDNN_CHECK_MSG(it->second.kind == kind,
                     "metric '" << name << "' re-registered as another kind");
    return it->second;
  }
  Series s;
  s.name = name;
  s.labels = labels;
  std::stable_sort(s.labels.begin(), s.labels.end(),
                   [](const Label& a, const Label& b) { return a.key < b.key; });
  s.kind = kind;
  switch (kind) {
    case MetricKind::kCounter: s.counter = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: s.gauge = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram:
      s.histogram = std::make_unique<Histogram>(
          bounds != nullptr ? std::move(*bounds) : Histogram::default_bounds());
      break;
  }
  return series_.emplace(std::move(key), std::move(s)).first->second;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  return *series(name, labels, MetricKind::kCounter, nullptr).counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  return *series(name, labels, MetricKind::kGauge, nullptr).gauge;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels,
                               std::vector<double> bounds) {
  return *series(name, labels, MetricKind::kHistogram, &bounds).histogram;
}

namespace {

JsonValue labels_json(const Labels& labels) {
  std::vector<std::pair<std::string, JsonValue>> members;
  members.reserve(labels.size());
  for (const Label& l : labels)
    members.emplace_back(l.key, JsonValue::make_string(l.value));
  return JsonValue::make_object(std::move(members));
}

}  // namespace

std::string Registry::to_json() const {
  std::vector<JsonValue> counters, gauges, histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // series_ is an ordered map keyed by (name, labels): iteration order is
    // already the deterministic export order.
    for (const auto& [key, s] : series_) {
      std::vector<std::pair<std::string, JsonValue>> m;
      m.emplace_back("name", JsonValue::make_string(s.name));
      m.emplace_back("labels", labels_json(s.labels));
      switch (s.kind) {
        case MetricKind::kCounter:
          m.emplace_back("value", JsonValue::make_number(s.counter->value()));
          counters.push_back(JsonValue::make_object(std::move(m)));
          break;
        case MetricKind::kGauge:
          m.emplace_back("value", JsonValue::make_number(s.gauge->value()));
          gauges.push_back(JsonValue::make_object(std::move(m)));
          break;
        case MetricKind::kHistogram: {
          const HistogramSnapshot snap = s.histogram->snapshot();
          m.emplace_back("count", JsonValue::make_number(
                                      static_cast<double>(snap.count)));
          m.emplace_back("sum", JsonValue::make_number(snap.sum));
          m.emplace_back("min", JsonValue::make_number(snap.min));
          m.emplace_back("max", JsonValue::make_number(snap.max));
          m.emplace_back("mean",
                         JsonValue::make_number(
                             snap.count ? snap.sum /
                                              static_cast<double>(snap.count)
                                        : 0.0));
          // JSON has no NaN literal: an empty histogram exports 0.0 for the
          // quantile fields (count==0 already marks them as meaningless).
          m.emplace_back("p50", JsonValue::make_number(
                                    snap.count ? s.histogram->quantile(0.5)
                                               : 0.0));
          m.emplace_back("p90", JsonValue::make_number(
                                    snap.count ? s.histogram->quantile(0.9)
                                               : 0.0));
          m.emplace_back("p99", JsonValue::make_number(
                                    snap.count ? s.histogram->quantile(0.99)
                                               : 0.0));
          std::vector<JsonValue> buckets;
          for (std::size_t b = 0; b < snap.counts.size(); ++b) {
            if (snap.counts[b] == 0) continue;  // sparse export
            std::vector<std::pair<std::string, JsonValue>> bucket;
            bucket.emplace_back(
                "le", b < snap.bounds.size()
                          ? JsonValue::make_number(snap.bounds[b])
                          : JsonValue::make_string("+inf"));
            bucket.emplace_back("count",
                                JsonValue::make_number(
                                    static_cast<double>(snap.counts[b])));
            buckets.push_back(JsonValue::make_object(std::move(bucket)));
          }
          m.emplace_back("buckets", JsonValue::make_array(std::move(buckets)));
          histograms.push_back(JsonValue::make_object(std::move(m)));
          break;
        }
      }
    }
  }
  std::vector<std::pair<std::string, JsonValue>> doc;
  doc.emplace_back("counters", JsonValue::make_array(std::move(counters)));
  doc.emplace_back("gauges", JsonValue::make_array(std::move(gauges)));
  doc.emplace_back("histograms",
                   JsonValue::make_array(std::move(histograms)));
  return JsonValue::make_object(std::move(doc)).serialize();
}

namespace {

/// `perdnn_` + the metric name with every character outside [a-zA-Z0-9_]
/// replaced by '_' (Prometheus metric names cannot contain '.').
std::string prom_name(const std::string& name) {
  std::string out = "perdnn_";
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

/// Label-value escaping per the text exposition format: backslash, double
/// quote and newline.
std::string prom_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char ch : value) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(ch);
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}` (labels already sorted by key), plus an optional
/// trailing `le` label for histogram buckets. Empty when there is nothing
/// to render.
std::string prom_labels(const Labels& labels, const std::string& le = {}) {
  if (labels.empty() && le.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += l.key;
    out += "=\"";
    out += prom_escape(l.value);
    out.push_back('"');
  }
  if (!le.empty()) {
    if (!first) out.push_back(',');
    out += "le=\"";
    out += le;
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string Registry::to_prometheus() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  std::string last_family;  // one # TYPE line per family, series are sorted
  for (const auto& [key, s] : series_) {
    const std::string family = prom_name(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        if (family != last_family)
          out += "# TYPE " + family + " counter\n";
        out += family + prom_labels(s.labels) + " " +
               prom_number(s.counter->value()) + "\n";
        break;
      case MetricKind::kGauge:
        if (family != last_family)
          out += "# TYPE " + family + " gauge\n";
        out += family + prom_labels(s.labels) + " " +
               prom_number(s.gauge->value()) + "\n";
        break;
      case MetricKind::kHistogram: {
        if (family != last_family)
          out += "# TYPE " + family + " histogram\n";
        const HistogramSnapshot snap = s.histogram->snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < snap.counts.size(); ++b) {
          cumulative += snap.counts[b];
          if (snap.counts[b] == 0 && b + 1 < snap.counts.size())
            continue;  // sparse: always emit the +Inf terminator
          const std::string le = b < snap.bounds.size()
                                     ? prom_number(snap.bounds[b])
                                     : std::string("+Inf");
          out += family + "_bucket" + prom_labels(s.labels, le) + " " +
                 prom_number(static_cast<double>(cumulative)) + "\n";
        }
        out += family + "_sum" + prom_labels(s.labels) + " " +
               prom_number(snap.sum) + "\n";
        out += family + "_count" + prom_labels(s.labels) + " " +
               prom_number(static_cast<double>(snap.count)) + "\n";
        break;
      }
    }
    last_family = family;
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
}

void count(const char* name, double v) {
  if (!enabled()) return;
  Registry::global().counter(name).add(v);
}

void count(const char* name, double v, const Labels& labels) {
  if (!enabled()) return;
  Registry::global().counter(name, labels).add(v);
}

void set_gauge(const char* name, double v, const Labels& labels) {
  if (!enabled()) return;
  Registry::global().gauge(name, labels).set(v);
}

void observe(const char* name, double v) {
  if (!enabled()) return;
  Registry::global().histogram(name).observe(v);
}

void observe(const char* name, double v, const Labels& labels) {
  if (!enabled()) return;
  Registry::global().histogram(name, labels).observe(v);
}

}  // namespace perdnn::obs
