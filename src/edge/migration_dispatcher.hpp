// Bounded retry-with-exponential-backoff for proactive-migration pushes.
//
// A migration order that cannot be delivered — the backhaul to the target is
// out, or the target refused the transfer — is *deferred*, not lost: the
// dispatcher parks it with a retry deadline and re-offers it once the
// backoff elapses. Each failed attempt doubles the backoff (capped); after
// `max_attempts` total attempts the order is abandoned and its bytes move
// from the deferred backlog to the abandoned tally, so operators can tell
// "waiting for the link" apart from "gave up".
//
// The dispatcher is deliberately transport-agnostic: callers (the
// large-scale simulator; a MasterServer driving a real fleet) attempt the
// send themselves and report the outcome via succeed()/fail(). All state is
// deterministic — the retry queue is FIFO-stable, so the same fault schedule
// replays to the same byte.
//
// Not thread-safe: migration dispatch is a serial control-plane activity in
// every current consumer.
#pragma once

#include <deque>
#include <vector>

#include "common/types.hpp"

namespace perdnn {

namespace obs {
class Journal;
}  // namespace obs

struct MigrationRetryConfig {
  /// Total delivery attempts per order, the initial send included. 1 means
  /// "never retry"; must be >= 1.
  int max_attempts = 4;
  /// Backoff before the first retry, in intervals; doubles per failure.
  int initial_backoff_intervals = 1;
  /// Backoff ceiling, in intervals.
  int max_backoff_intervals = 16;
};

/// One parked migration order. `attempts` counts deliveries already tried.
struct DeferredMigration {
  ClientId client = -1;
  ServerId source = kNoServer;
  ServerId target = kNoServer;
  std::vector<LayerId> layers;
  Bytes bytes = 0;
  int attempts = 1;
  int next_attempt_interval = 0;
};

class MigrationDispatcher {
 public:
  explicit MigrationDispatcher(MigrationRetryConfig config = {});

  /// Attaches an event journal: defer/retry/abandon decisions are recorded
  /// with their backoff state and byte accounting (obs/journal.hpp).
  /// nullptr (the default) disables recording. The dispatcher runs on the
  /// serial control path, so recording keeps the determinism contract.
  void set_journal(obs::Journal* journal) { journal_ = journal; }

  /// Parks a freshly failed first attempt. The order's bytes enter the
  /// deferred backlog; the first retry is due after the initial backoff.
  void defer(ClientId client, ServerId source, ServerId target,
             std::vector<LayerId> layers, Bytes bytes, int now_interval);

  /// Pops every order whose retry deadline has passed, FIFO-stable. The
  /// caller attempts each and must report the outcome with succeed() or
  /// fail() — orders neither reported nor re-deferred are forgotten.
  std::vector<DeferredMigration> due(int now_interval);

  /// Delivery worked: the order's bytes leave the backlog.
  void succeed(const DeferredMigration& order);

  /// Delivery failed again: re-parks with doubled backoff, or abandons the
  /// order once its attempt budget is spent. Returns true if the order is
  /// still alive (parked), false if it was abandoned.
  bool fail(DeferredMigration order, int now_interval);

  /// Bytes currently parked awaiting retry.
  Bytes backlog_bytes() const { return backlog_bytes_; }
  int backlog_orders() const { return static_cast<int>(queue_.size()); }

  // Whole-run accounting.
  Bytes total_deferred_bytes() const { return total_deferred_bytes_; }
  Bytes abandoned_bytes() const { return abandoned_bytes_; }
  int deferred_orders() const { return deferred_orders_; }
  int abandoned_orders() const { return abandoned_orders_; }
  int retries() const { return retries_; }

  const MigrationRetryConfig& config() const { return config_; }

  /// Complete dispatcher state for checkpointing: the parked queue in FIFO
  /// order plus the whole-run byte/order tallies.
  struct State {
    std::vector<DeferredMigration> queue;
    Bytes backlog_bytes = 0;
    Bytes total_deferred_bytes = 0;
    Bytes abandoned_bytes = 0;
    int deferred_orders = 0;
    int abandoned_orders = 0;
    int retries = 0;
  };

  State state() const;
  void restore(const State& state);

 private:
  int backoff_after(int attempts) const;

  MigrationRetryConfig config_;
  obs::Journal* journal_ = nullptr;
  std::deque<DeferredMigration> queue_;
  Bytes backlog_bytes_ = 0;
  Bytes total_deferred_bytes_ = 0;
  Bytes abandoned_bytes_ = 0;
  int deferred_orders_ = 0;
  int abandoned_orders_ = 0;
  int retries_ = 0;
};

}  // namespace perdnn
