#include "edge/master.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/fastpath.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace perdnn {

MasterServer::MasterServer(std::shared_ptr<const ServerMap> servers,
                           std::shared_ptr<const LayerTimeEstimator> estimator,
                           std::shared_ptr<const MobilityPredictor> predictor,
                           Config config)
    : servers_(std::move(servers)),
      estimator_(std::move(estimator)),
      predictor_(std::move(predictor)),
      config_(config) {
  PERDNN_CHECK(servers_ != nullptr);
  PERDNN_CHECK(estimator_ != nullptr);
  PERDNN_CHECK(predictor_ != nullptr);
  PERDNN_CHECK(config_.migration_radius_m >= 0.0);
}

MasterServer::MasterServer(std::shared_ptr<const ServerMap> servers,
                           std::shared_ptr<const LayerTimeEstimator> estimator,
                           std::shared_ptr<const MobilityPredictor> predictor)
    : MasterServer(std::move(servers), std::move(estimator),
                   std::move(predictor), Config{}) {}

ClientId MasterServer::register_client(DnnModel model, DnnProfile profile) {
  model.validate();
  PERDNN_CHECK_MSG(profile.client_time.size() ==
                       static_cast<std::size_t>(model.num_layers()),
                   "profile layer count does not match the model");
  const auto id = static_cast<ClientId>(clients_.size());
  clients_.push_back({std::move(model), std::move(profile), {}});
  // Growing the table may reallocate every ClientRecord, and the estimate
  // cache keys entries by model address.
  estimate_cache_.invalidate();
  return id;
}

void MasterServer::invalidate_estimates() { estimate_cache_.invalidate(); }

void MasterServer::set_fallback_estimator(
    std::shared_ptr<const LayerTimeEstimator> fallback) {
  fallback_estimator_ = std::move(fallback);
}

const MasterServer::ClientRecord& MasterServer::record(
    ClientId client) const {
  PERDNN_CHECK_MSG(client >= 0 && client < num_clients(),
                   "unknown client " << client);
  return clients_[static_cast<std::size_t>(client)];
}

const DnnModel& MasterServer::client_model(ClientId client) const {
  return record(client).model;
}

void MasterServer::report_location(ClientId client, Point p) {
  PERDNN_CHECK(client >= 0 && client < num_clients());
  clients_[static_cast<std::size_t>(client)].trajectory.push_back(p);
}

std::span<const Point> MasterServer::trajectory(ClientId client) const {
  return record(client).trajectory;
}

PartitionContext MasterServer::context_for(const ClientRecord& rec,
                                           const GpuStats& stats) const {
  // Degraded-mode estimation: stale telemetry means the load-aware features
  // describe a GPU state that no longer exists, so route the plan through
  // the load-free fallback instead of trusting them.
  const bool stale = stats.age_intervals > config_.max_stats_age_intervals;
  const LayerTimeEstimator* estimator = estimator_.get();
  if (stale && fallback_estimator_ != nullptr) {
    estimator = fallback_estimator_.get();
    ++degraded_estimates_;
    obs::count("estimation.degraded");
  }
  PartitionContext context;
  context.model = &rec.model;
  context.client_profile = &rec.profile;
  context.net = config_.wireless;
  if (fastpath::enabled()) {
    // Memoised batch estimate: bit-identical to the serial loop below
    // (estimate() is positional and deterministic), but repeated plans for
    // the same (model, stats) pair skip the estimator entirely.
    context.server_time =
        estimate_cache_.estimates(*estimator, rec.model, stats);
  } else {
    context.server_time.reserve(
        static_cast<std::size_t>(rec.model.num_layers()));
    for (LayerId id = 0; id < rec.model.num_layers(); ++id)
      context.server_time.push_back(estimator->estimate(
          rec.model.layer(id), rec.model.input_bytes(id), stats));
  }
  return context;
}

PartitionPlan MasterServer::current_plan(ClientId client,
                                         const GpuStats& stats) const {
  return compute_best_plan(context_for(record(client), stats));
}

UploadSchedule MasterServer::upload_schedule(ClientId client,
                                             const PartitionPlan& plan,
                                             const GpuStats& stats) const {
  return plan_upload_order(context_for(record(client), stats), plan,
                           {.enumeration = config_.upload_enumeration});
}

std::optional<MasterServer::ServerChoice> MasterServer::select_server(
    ClientId client, std::span<const ServerId> candidates,
    const StatsProvider& stats_of) const {
  PERDNN_SPAN("master.select_server");
  obs::count("master.server_selections");
  PERDNN_CHECK(stats_of != nullptr);
  const ClientRecord& rec = record(client);
  std::optional<ServerChoice> best;
  for (ServerId candidate : candidates) {
    PartitionPlan plan =
        compute_best_plan(context_for(rec, stats_of(candidate)));
    if (!best || plan.latency < best->plan.latency)
      best = ServerChoice{candidate, std::move(plan)};
  }
  return best;
}

std::vector<MasterServer::MigrationOrder> MasterServer::plan_migrations(
    ClientId client, ServerId current_server,
    const std::vector<bool>& source_available, const StatsProvider& stats_of,
    std::optional<Bytes> byte_budget) const {
  PERDNN_SPAN("master.plan_migrations");
  PERDNN_CHECK(stats_of != nullptr);
  const ClientRecord& rec = record(client);
  PERDNN_CHECK(source_available.size() ==
               static_cast<std::size_t>(rec.model.num_layers()));

  const auto n = static_cast<std::size_t>(predictor_->trajectory_length());
  if (rec.trajectory.size() < n) return {};
  const Point predicted = predictor_->predict(rec.trajectory);

  std::vector<MigrationOrder> orders;
  for (ServerId target :
       servers_->servers_within(predicted, config_.migration_radius_m)) {
    if (target == current_server) continue;

    MigrationOrder order;
    order.target = target;
    const GpuStats stats = stats_of(target);
    const PartitionContext context = context_for(rec, stats);
    order.future_plan = compute_best_plan(context);

    // Efficiency-ordered schedule of the future plan, restricted to layers
    // the source actually has ("it sends layers as many as possible").
    const UploadSchedule schedule = plan_upload_order(
        context, order.future_plan, {.enumeration = config_.upload_enumeration});
    for (LayerId id : schedule.order) {
      if (!source_available[static_cast<std::size_t>(id)]) continue;
      const Bytes weight = rec.model.layer(id).weight_bytes;
      if (byte_budget && order.bytes + weight > *byte_budget) break;
      order.layers.push_back(id);
      order.bytes += weight;
    }
    orders.push_back(std::move(order));
  }
  if (obs::enabled() && !orders.empty()) {
    Bytes bytes = 0;
    for (const MigrationOrder& order : orders) bytes += order.bytes;
    obs::count("master.migration_orders", static_cast<double>(orders.size()));
    obs::count("master.migration_bytes", static_cast<double>(bytes));
  }
  return orders;
}

}  // namespace perdnn
