#include "edge/replay.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace perdnn {

int ReplayResult::queries_completed_by(Seconds deadline) const {
  int count = 0;
  for (const auto& q : queries)
    if (q.start + q.latency <= deadline) ++count;
  return count;
}

Seconds ReplayResult::peak_latency() const {
  Seconds peak = 0.0;
  for (const auto& q : queries) peak = std::max(peak, q.latency);
  return peak;
}

ReplayResult replay_queries(const PartitionContext& context,
                            const UploadSchedule& schedule,
                            Bytes initial_bytes, const ReplayConfig& config) {
  PERDNN_SPAN("replay.run");
  PERDNN_CHECK(context.model != nullptr);
  PERDNN_CHECK(config.query_gap >= 0.0);
  PERDNN_CHECK(initial_bytes >= 0);
  PERDNN_CHECK(config.max_queries >= 0);

  const Bytes total = schedule.total_bytes();
  const Bytes missing = std::max<Bytes>(0, total - initial_bytes);

  ReplayResult result;
  result.upload_completed_at =
      static_cast<double>(missing) / context.net.uplink_bytes_per_sec;

  Seconds now = 0.0;
  while (static_cast<int>(result.queries.size()) < config.max_queries &&
         now <= config.max_time) {
    // Bytes present at the server when this query starts.
    const Bytes uploaded =
        initial_bytes +
        static_cast<Bytes>(now * context.net.uplink_bytes_per_sec);
    const std::vector<bool> mask = schedule.uploaded_after(
        *context.model, std::min(uploaded, total));
    const Seconds latency = plan_latency(context, mask);
    obs::observe("replay.query_latency_s", latency);
    result.queries.push_back({now, latency});
    now += latency + config.query_gap;
  }
  obs::count("replay.queries", static_cast<double>(result.queries.size()));
  return result;
}

}  // namespace perdnn
