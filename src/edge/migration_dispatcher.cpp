#include "edge/migration_dispatcher.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace perdnn {

MigrationDispatcher::MigrationDispatcher(MigrationRetryConfig config)
    : config_(config) {
  PERDNN_CHECK_MSG(config_.max_attempts >= 1,
                   "migration max_attempts must be >= 1 (got "
                       << config_.max_attempts << ")");
  PERDNN_CHECK_MSG(config_.initial_backoff_intervals >= 1,
                   "migration initial_backoff_intervals must be >= 1 (got "
                       << config_.initial_backoff_intervals << ")");
  PERDNN_CHECK_MSG(
      config_.max_backoff_intervals >= config_.initial_backoff_intervals,
      "migration max_backoff_intervals must be >= the initial backoff");
}

int MigrationDispatcher::backoff_after(int attempts) const {
  // attempts = deliveries already tried; first retry (attempts == 1) waits
  // the initial backoff, each further failure doubles it up to the cap.
  std::int64_t backoff = config_.initial_backoff_intervals;
  for (int i = 1; i < attempts && backoff < config_.max_backoff_intervals;
       ++i)
    backoff *= 2;
  return static_cast<int>(
      std::min<std::int64_t>(backoff, config_.max_backoff_intervals));
}

void MigrationDispatcher::defer(ClientId client, ServerId source,
                                ServerId target, std::vector<LayerId> layers,
                                Bytes bytes, int now_interval) {
  PERDNN_CHECK(bytes >= 0);
  DeferredMigration order;
  order.client = client;
  order.source = source;
  order.target = target;
  order.layers = std::move(layers);
  order.bytes = bytes;
  order.attempts = 1;
  order.next_attempt_interval = now_interval + backoff_after(1);
  backlog_bytes_ += bytes;
  total_deferred_bytes_ += bytes;
  ++deferred_orders_;
  obs::count("migration.deferred_orders");
  obs::count("migration.deferred_bytes", static_cast<double>(bytes));
  if (order.attempts >= config_.max_attempts) {
    // No retry budget at all: account the order as abandoned immediately.
    backlog_bytes_ -= bytes;
    abandoned_bytes_ += bytes;
    ++abandoned_orders_;
    obs::count("migration.abandoned_orders");
    if (journal_ != nullptr)
      journal_->record({.interval = now_interval,
                        .kind = obs::JournalEventKind::kMigrationDropped,
                        .client = client,
                        .server = source,
                        .peer = target,
                        .bytes = bytes,
                        .detail = order.attempts,
                        .aux = obs::kDropRetryBudget});
    return;
  }
  if (journal_ != nullptr)
    journal_->record({.interval = now_interval,
                      .kind = obs::JournalEventKind::kMigrationDeferred,
                      .client = client,
                      .server = source,
                      .peer = target,
                      .bytes = bytes,
                      .detail = order.attempts,
                      .aux = order.next_attempt_interval});
  queue_.push_back(std::move(order));
}

std::vector<DeferredMigration> MigrationDispatcher::due(int now_interval) {
  std::vector<DeferredMigration> ready;
  std::deque<DeferredMigration> keep;
  for (DeferredMigration& order : queue_) {
    if (order.next_attempt_interval <= now_interval) {
      ready.push_back(std::move(order));
    } else {
      keep.push_back(std::move(order));
    }
  }
  queue_ = std::move(keep);
  for (DeferredMigration& order : ready) {
    backlog_bytes_ -= order.bytes;
    ++retries_;
    ++order.attempts;
    if (journal_ != nullptr)
      journal_->record({.interval = now_interval,
                        .kind = obs::JournalEventKind::kMigrationRetried,
                        .client = order.client,
                        .server = order.source,
                        .peer = order.target,
                        .bytes = order.bytes,
                        .detail = order.attempts});
  }
  if (!ready.empty())
    obs::count("migration.retries", static_cast<double>(ready.size()));
  return ready;
}

MigrationDispatcher::State MigrationDispatcher::state() const {
  State st;
  st.queue.assign(queue_.begin(), queue_.end());
  st.backlog_bytes = backlog_bytes_;
  st.total_deferred_bytes = total_deferred_bytes_;
  st.abandoned_bytes = abandoned_bytes_;
  st.deferred_orders = deferred_orders_;
  st.abandoned_orders = abandoned_orders_;
  st.retries = retries_;
  return st;
}

void MigrationDispatcher::restore(const State& state) {
  queue_.assign(state.queue.begin(), state.queue.end());
  backlog_bytes_ = state.backlog_bytes;
  total_deferred_bytes_ = state.total_deferred_bytes;
  abandoned_bytes_ = state.abandoned_bytes;
  deferred_orders_ = state.deferred_orders;
  abandoned_orders_ = state.abandoned_orders;
  retries_ = state.retries;
}

void MigrationDispatcher::succeed(const DeferredMigration& order) {
  obs::count("migration.retry_success");
  obs::count("migration.retry_success_bytes", static_cast<double>(order.bytes));
}

bool MigrationDispatcher::fail(DeferredMigration order, int now_interval) {
  if (order.attempts >= config_.max_attempts) {
    abandoned_bytes_ += order.bytes;
    ++abandoned_orders_;
    obs::count("migration.abandoned_orders");
    obs::count("migration.abandoned_bytes", static_cast<double>(order.bytes));
    if (journal_ != nullptr)
      journal_->record({.interval = now_interval,
                        .kind = obs::JournalEventKind::kMigrationDropped,
                        .client = order.client,
                        .server = order.source,
                        .peer = order.target,
                        .bytes = order.bytes,
                        .detail = order.attempts,
                        .aux = obs::kDropRetryBudget});
    return false;
  }
  order.next_attempt_interval = now_interval + backoff_after(order.attempts);
  backlog_bytes_ += order.bytes;
  if (journal_ != nullptr)
    journal_->record({.interval = now_interval,
                      .kind = obs::JournalEventKind::kMigrationDeferred,
                      .client = order.client,
                      .server = order.source,
                      .peer = order.target,
                      .bytes = order.bytes,
                      .detail = order.attempts,
                      .aux = order.next_attempt_interval});
  queue_.push_back(std::move(order));
  return true;
}

}  // namespace perdnn
