// Single-client query replay: the engine behind Fig 1, Fig 7 and Table II.
//
// A client attached to one edge server issues a DNN query `query_gap`
// seconds after the previous one completes (the paper's mobile cognitive
// assistance workload, gap = 0.5 s). Meanwhile the missing server-side
// layers upload continuously at the wireless uplink rate, in the
// efficiency-ordered schedule. Each query executes under the best plan the
// currently-available layers allow (shortest-path DP over the availability
// mask) — exactly how IONN's incremental offloading improves latency while
// the upload progresses.
#pragma once

#include <vector>

#include "partition/partition.hpp"
#include "partition/upload_order.hpp"

namespace perdnn {

struct QueryRecord {
  Seconds start = 0.0;    ///< time the query was issued
  Seconds latency = 0.0;  ///< end-to-end execution time
};

struct ReplayConfig {
  Seconds query_gap = 0.5;
  /// Stop after this many queries (whichever of the limits hits first).
  int max_queries = 1 << 20;
  /// ... or when this much time has elapsed.
  Seconds max_time = kInfSeconds;
};

struct ReplayResult {
  std::vector<QueryRecord> queries;
  /// When the last missing byte arrived (0 if nothing needed uploading).
  Seconds upload_completed_at = 0.0;

  int queries_completed_by(Seconds deadline) const;
  Seconds peak_latency() const;
};

/// Replays queries against one server. `initial_bytes` of the schedule are
/// already present at the server (0 = IONN-style cold start; total = hit
/// after full proactive migration; anything between = fractional migration).
ReplayResult replay_queries(const PartitionContext& context,
                            const UploadSchedule& schedule,
                            Bytes initial_bytes, const ReplayConfig& config);

}  // namespace perdnn
