// Per-client DNN layer cache held by each edge server.
//
// Proactively migrated layers are kept for TTL time intervals and discarded
// afterwards; the TTL resets whenever another server attempts to send the
// same client's layers (which also suppresses duplicate transmission —
// Section 3.B.2). The cache stores layer *ids* per client; weight bytes are
// derived from the client's model when needed.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "nn/model.hpp"

namespace perdnn {

namespace obs {
class Journal;
}  // namespace obs

class LayerCache {
 public:
  explicit LayerCache(int ttl_intervals);

  /// Attaches an event journal: store/touch/TTL-expiry decisions are
  /// recorded as this server's cache events (obs/journal.hpp). `self` is
  /// the owning server's id, stamped on every event. nullptr disables
  /// recording. Expiry events are emitted in client-id order (not map
  /// order) so journals stay byte-identical across checkpoint/resume.
  void set_journal(obs::Journal* journal, ServerId self) {
    journal_ = journal;
    self_ = self;
  }

  /// Merges `layers` into the client's entry and resets its TTL.
  /// Returns the ids that were actually new (not already cached) — the
  /// bytes that really crossed the backhaul.
  std::vector<LayerId> store(ClientId client,
                             const std::vector<LayerId>& layers,
                             int now_interval);

  /// Resets the TTL without adding layers (client actively attached, or a
  /// duplicate-suppressed send).
  void touch(ClientId client, int now_interval);

  /// Drops entries whose TTL elapsed before `now_interval`.
  void expire(int now_interval);

  /// Removes a client's entry entirely.
  void erase(ClientId client);

  bool has_entry(ClientId client) const;

  /// Cached layer ids for the client (empty if none).
  std::vector<LayerId> layers(ClientId client) const;

  /// Availability mask sized to the model.
  std::vector<bool> mask(ClientId client, const DnnModel& model) const;

  /// Allocation-free variant for per-interval hot loops: re-assigns `out`
  /// in place (capacity is reused across calls).
  void mask_into(ClientId client, const DnnModel& model,
                 std::vector<bool>& out) const;

  /// Total cached weight bytes for the client under its model.
  Bytes cached_bytes(ClientId client, const DnnModel& model) const;

  std::size_t num_entries() const { return entries_.size(); }

  /// One cache entry in checkpoint form.
  struct EntrySnapshot {
    ClientId client = 0;
    std::vector<LayerId> layers;
    int expires_at = 0;

    bool operator==(const EntrySnapshot&) const = default;
  };

  /// All entries, sorted by client id so snapshots are byte-stable
  /// regardless of hash-map iteration order.
  std::vector<EntrySnapshot> export_entries() const;

  /// Replaces the cache contents with previously exported entries.
  void restore_entries(const std::vector<EntrySnapshot>& entries);

 private:
  struct Entry {
    std::set<LayerId> layers;
    int expires_at = 0;  // interval index at which the entry dies
  };

  int ttl_;
  obs::Journal* journal_ = nullptr;
  ServerId self_ = kNoServer;
  std::unordered_map<ClientId, Entry> entries_;
};

}  // namespace perdnn
