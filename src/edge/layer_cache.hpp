// Per-client DNN layer cache held by each edge server.
//
// Proactively migrated layers are kept for TTL time intervals and discarded
// afterwards; the TTL resets whenever another server attempts to send the
// same client's layers (which also suppresses duplicate transmission —
// Section 3.B.2). The cache stores layer *ids* per client; weight bytes are
// derived from the client's model when needed.
//
// With a byte budget configured (set_budget + set_cost_model), the cache is
// cost-aware: every entry tracks its cached weight bytes, and a store that
// would exceed the budget first evicts whole entries with the lowest
// latency-saved-per-byte (the same efficiency metric the E-IONN upload
// planner ranks runs by), then admits only the longest prefix of the
// incoming layers that fits ("partial residency" — incoming layers arrive
// in upload-schedule order, so a prefix is the highest-efficiency subset).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "nn/model.hpp"

namespace perdnn {

namespace obs {
class Journal;
}  // namespace obs

class LayerCache {
 public:
  explicit LayerCache(int ttl_intervals);

  /// Attaches an event journal: store/touch/evict/TTL-expiry decisions are
  /// recorded as this server's cache events (obs/journal.hpp). `self` is
  /// the owning server's id, stamped on every event. nullptr disables
  /// recording. Expiry events are emitted in client-id order (not map
  /// order) so journals stay byte-identical across checkpoint/resume.
  void set_journal(obs::Journal* journal, ServerId self) {
    journal_ = journal;
    self_ = self;
  }

  /// Byte budget for all entries combined; 0 (the default) disables budget
  /// enforcement entirely, leaving behaviour identical to an unbudgeted
  /// cache. Enforcing a budget requires a cost model (set_cost_model).
  void set_budget(Bytes budget_bytes);
  Bytes budget() const { return budget_; }

  /// Per-layer weight bytes and latency saved when the layer is resident
  /// (the upload schedule's per-layer benefit apportionment). Both vectors
  /// are indexed by LayerId; layers outside the schedule save 0 s.
  void set_cost_model(std::vector<Bytes> layer_bytes,
                      std::vector<double> layer_saved_s);

  /// Merges `layers` into the client's entry and resets its TTL.
  /// Returns the ids that were actually new (not already cached) AND
  /// admitted under the budget — the bytes that really crossed the
  /// backhaul. A fully-duplicate send refreshes the TTL like touch() (and
  /// journals a touch, not a zero-layer store).
  std::vector<LayerId> store(ClientId client,
                             const std::vector<LayerId>& layers,
                             int now_interval);

  /// Resets the TTL without adding layers (client actively attached, or a
  /// duplicate-suppressed send).
  void touch(ClientId client, int now_interval);

  /// Drops entries whose TTL elapsed before `now_interval`.
  void expire(int now_interval);

  /// Removes a client's entry entirely.
  void erase(ClientId client);

  /// Drops every entry (server crash). Journals one kCacheEvict per entry
  /// in client-id order, mirroring the entries a snapshot would list. TTL,
  /// journal binding, budget and cost model survive the wipe.
  void wipe(int now_interval);

  bool has_entry(ClientId client) const;

  /// Cached layer ids for the client (empty if none).
  std::vector<LayerId> layers(ClientId client) const;

  /// Allocation-free variant for hot loops: re-assigns `out` in place
  /// (capacity is reused across calls).
  void layers_into(ClientId client, std::vector<LayerId>& out) const;

  /// Availability mask sized to the model.
  std::vector<bool> mask(ClientId client, const DnnModel& model) const;

  /// Allocation-free variant for per-interval hot loops: re-assigns `out`
  /// in place (capacity is reused across calls).
  void mask_into(ClientId client, const DnnModel& model,
                 std::vector<bool>& out) const;

  /// Total cached weight bytes for the client under its model.
  Bytes cached_bytes(ClientId client, const DnnModel& model) const;

  std::size_t num_entries() const { return entries_.size(); }

  /// Cached weight bytes across all entries under the cost model (0 until
  /// set_cost_model is called).
  Bytes total_bytes() const { return total_bytes_; }

  /// Cumulative budget evictions / budget-trimmed stores since construction
  /// (or the last wipe-free restore; counters are not checkpointed — the
  /// simulator folds deltas into its metrics each interval).
  long long evictions() const { return evictions_; }
  long long partial_stores() const { return partial_stores_; }

  /// One cache entry in checkpoint form.
  struct EntrySnapshot {
    ClientId client = 0;
    std::vector<LayerId> layers;
    int expires_at = 0;
    Bytes bytes = 0;  // cached weight bytes (0 when no cost model is set)

    bool operator==(const EntrySnapshot&) const = default;
  };

  /// All entries, sorted by client id so snapshots are byte-stable
  /// regardless of hash-map iteration order. Layers are ascending.
  std::vector<EntrySnapshot> export_entries() const;

  /// Replaces the cache contents with previously exported entries. Entry
  /// bytes are recomputed from the cost model when one is set (so pre-v5
  /// snapshots, which carry no byte counts, restore correctly); otherwise
  /// the snapshot's byte counts are trusted as-is.
  void restore_entries(const std::vector<EntrySnapshot>& entries);

 private:
  struct Entry {
    std::vector<LayerId> layers;  // sorted ascending, no duplicates
    int expires_at = 0;           // interval index at which the entry dies
    Bytes bytes = 0;              // weight bytes under the cost model
  };

  Bytes bytes_of(const std::vector<LayerId>& layers) const;
  double saved_of(const std::vector<LayerId>& layers) const;
  /// Evicts lowest-efficiency entries (excluding `incoming`) until at least
  /// `need_bytes` fit under the budget or no remaining victim is strictly
  /// less efficient than the incoming store.
  void make_room(ClientId incoming, Bytes need_bytes, double incoming_saved,
                 int now_interval);

  int ttl_;
  obs::Journal* journal_ = nullptr;
  ServerId self_ = kNoServer;
  Bytes budget_ = 0;  // 0 = unlimited
  std::vector<Bytes> layer_bytes_;
  std::vector<double> layer_saved_;
  Bytes total_bytes_ = 0;
  long long evictions_ = 0;
  long long partial_stores_ = 0;
  std::unordered_map<ClientId, Entry> entries_;
};

}  // namespace perdnn
