#include "edge/layer_cache.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/journal.hpp"

namespace perdnn {

LayerCache::LayerCache(int ttl_intervals) : ttl_(ttl_intervals) {
  PERDNN_CHECK(ttl_intervals >= 1);
}

void LayerCache::set_budget(Bytes budget_bytes) {
  PERDNN_CHECK(budget_bytes >= 0);
  budget_ = budget_bytes;
}

void LayerCache::set_cost_model(std::vector<Bytes> layer_bytes,
                                std::vector<double> layer_saved_s) {
  PERDNN_CHECK(layer_bytes.size() == layer_saved_s.size());
  layer_bytes_ = std::move(layer_bytes);
  layer_saved_ = std::move(layer_saved_s);
  // Entries restored before the model arrived carried snapshot byte counts;
  // recompute them so accounting always reflects the current model.
  total_bytes_ = 0;
  for (auto& [client, entry] : entries_) {
    entry.bytes = bytes_of(entry.layers);
    total_bytes_ += entry.bytes;
  }
}

Bytes LayerCache::bytes_of(const std::vector<LayerId>& layers) const {
  if (layer_bytes_.empty()) return 0;
  Bytes total = 0;
  for (LayerId id : layers) {
    PERDNN_CHECK(id >= 0 &&
                 id < static_cast<LayerId>(layer_bytes_.size()));
    total += layer_bytes_[static_cast<std::size_t>(id)];
  }
  return total;
}

double LayerCache::saved_of(const std::vector<LayerId>& layers) const {
  if (layer_saved_.empty()) return 0.0;
  // Entry layers are kept sorted, so this fold has a fixed association
  // order — the sum is bit-identical across resume and replay.
  double total = 0.0;
  for (LayerId id : layers) total += layer_saved_[static_cast<std::size_t>(id)];
  return total;
}

void LayerCache::make_room(ClientId incoming, Bytes need_bytes,
                           double incoming_saved, int now_interval) {
  if (total_bytes_ + need_bytes <= budget_) return;
  // Victims are collected and sorted before any eviction: unordered_map
  // iteration order depends on insertion history, which differs between an
  // uninterrupted run and a checkpoint/resume reload.
  struct Victim {
    ClientId client;
    Bytes bytes;
    double saved;
  };
  std::vector<Victim> victims;
  victims.reserve(entries_.size());
  for (const auto& [client, entry] : entries_)
    if (client != incoming && entry.bytes > 0)
      victims.push_back({client, entry.bytes, saved_of(entry.layers)});
  // Lowest latency-saved-per-byte first; efficiency ratios are compared by
  // cross-multiplication so no division perturbs the ordering. Ties break
  // toward the higher client id so the order is total.
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              const double lhs = a.saved * static_cast<double>(b.bytes);
              const double rhs = b.saved * static_cast<double>(a.bytes);
              if (lhs != rhs) return lhs < rhs;
              return a.client > b.client;
            });
  for (const Victim& v : victims) {
    if (total_bytes_ + need_bytes <= budget_) break;
    // Only displace entries strictly less efficient than the incoming
    // store; if the cache is full of better bytes, the partial-residency
    // trim in store() absorbs the overflow instead.
    if (v.saved * static_cast<double>(need_bytes) >=
        incoming_saved * static_cast<double>(v.bytes))
      break;
    const auto it = entries_.find(v.client);
    total_bytes_ -= it->second.bytes;
    const auto num_layers = static_cast<std::int32_t>(it->second.layers.size());
    entries_.erase(it);
    ++evictions_;
    if (journal_ != nullptr)
      journal_->record({.interval = now_interval,
                        .kind = obs::JournalEventKind::kCacheEvict,
                        .client = v.client,
                        .server = self_,
                        .bytes = v.bytes,
                        .aux = num_layers});
  }
}

std::vector<LayerId> LayerCache::store(ClientId client,
                                       const std::vector<LayerId>& layers,
                                       int now_interval) {
  if (layers.empty()) {
    // An empty (fully-deduplicated) send must not manufacture a zero-layer
    // entry for a client that never received anything — that would make
    // has_entry()/occupancy stats count phantom clients. Existing entries
    // still get their TTL refreshed, matching duplicate-suppression
    // semantics (Section 3.B.2).
    touch(client, now_interval);
    return {};
  }
  const auto it = entries_.find(client);
  const std::vector<LayerId>* cached =
      it != entries_.end() ? &it->second.layers : nullptr;
  std::vector<LayerId> fresh;
  fresh.reserve(layers.size());
  for (LayerId id : layers) {
    if (cached != nullptr &&
        std::binary_search(cached->begin(), cached->end(), id))
      continue;
    if (std::find(fresh.begin(), fresh.end(), id) != fresh.end()) continue;
    fresh.push_back(id);
  }
  if (fresh.empty()) {
    // A non-empty but fully-duplicate send is a duplicate-suppressed send:
    // it refreshes the TTL like any other contact, and journals as a touch
    // rather than a store of zero layers.
    touch(client, now_interval);
    return {};
  }

  std::vector<LayerId> admitted = std::move(fresh);
  if (budget_ > 0) {
    PERDNN_CHECK_MSG(!layer_bytes_.empty(),
                     "budgeted layer cache requires a cost model");
    const Bytes want_bytes = bytes_of(admitted);
    make_room(client, want_bytes, saved_of(admitted), now_interval);
    const Bytes room = budget_ - total_bytes_;
    if (want_bytes > room) {
      // Incoming layers arrive in upload-schedule (efficiency) order, so
      // the longest prefix that fits is the highest-value residency.
      std::size_t keep = 0;
      Bytes keep_bytes = 0;
      while (keep < admitted.size()) {
        const Bytes next =
            layer_bytes_[static_cast<std::size_t>(admitted[keep])];
        if (keep_bytes + next > room) break;
        keep_bytes += next;
        ++keep;
      }
      const auto refused =
          static_cast<std::int32_t>(admitted.size() - keep);
      ++partial_stores_;
      if (journal_ != nullptr)
        journal_->record({.interval = now_interval,
                          .kind = obs::JournalEventKind::kCachePartial,
                          .client = client,
                          .server = self_,
                          .bytes = want_bytes - keep_bytes,
                          .aux = refused});
      admitted.resize(keep);
      if (admitted.empty()) {
        touch(client, now_interval);
        return {};
      }
    }
  }

  Entry& entry = entries_[client];
  entry.expires_at = now_interval + ttl_;
  entry.layers.insert(entry.layers.end(), admitted.begin(), admitted.end());
  std::sort(entry.layers.begin(), entry.layers.end());
  const Bytes admitted_bytes = bytes_of(admitted);
  entry.bytes += admitted_bytes;
  total_bytes_ += admitted_bytes;
  if (journal_ != nullptr)
    journal_->record({.interval = now_interval,
                      .kind = obs::JournalEventKind::kCacheStore,
                      .client = client,
                      .server = self_,
                      .aux = static_cast<std::int32_t>(admitted.size())});
  return admitted;
}

void LayerCache::touch(ClientId client, int now_interval) {
  const auto it = entries_.find(client);
  if (it == entries_.end()) return;
  it->second.expires_at = now_interval + ttl_;
  if (journal_ != nullptr)
    journal_->record({.interval = now_interval,
                      .kind = obs::JournalEventKind::kCacheTouch,
                      .client = client,
                      .server = self_});
}

void LayerCache::expire(int now_interval) {
  // Expired (client, #layers) pairs are collected and journalled in client
  // order: map iteration order depends on insertion history, which differs
  // between an uninterrupted run and a restore_entries() re-load.
  std::vector<std::pair<ClientId, std::int32_t>> expired;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at <= now_interval) {
      if (journal_ != nullptr)
        expired.emplace_back(it->first,
                             static_cast<std::int32_t>(it->second.layers.size()));
      total_bytes_ -= it->second.bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (journal_ != nullptr && !expired.empty()) {
    std::sort(expired.begin(), expired.end());
    for (const auto& [client, num_layers] : expired)
      journal_->record({.interval = now_interval,
                        .kind = obs::JournalEventKind::kCacheExpire,
                        .client = client,
                        .server = self_,
                        .aux = num_layers});
  }
}

void LayerCache::erase(ClientId client) {
  const auto it = entries_.find(client);
  if (it == entries_.end()) return;
  total_bytes_ -= it->second.bytes;
  entries_.erase(it);
}

void LayerCache::wipe(int now_interval) {
  if (journal_ != nullptr && !entries_.empty()) {
    std::vector<std::pair<ClientId, std::int32_t>> wiped;
    wiped.reserve(entries_.size());
    for (const auto& [client, entry] : entries_)
      wiped.emplace_back(client,
                         static_cast<std::int32_t>(entry.layers.size()));
    std::sort(wiped.begin(), wiped.end());
    for (const auto& [client, num_layers] : wiped)
      journal_->record({.interval = now_interval,
                        .kind = obs::JournalEventKind::kCacheEvict,
                        .client = client,
                        .server = self_,
                        .aux = num_layers});
  }
  entries_.clear();
  total_bytes_ = 0;
}

bool LayerCache::has_entry(ClientId client) const {
  return entries_.count(client) > 0;
}

std::vector<LayerId> LayerCache::layers(ClientId client) const {
  std::vector<LayerId> out;
  layers_into(client, out);
  return out;
}

void LayerCache::layers_into(ClientId client,
                             std::vector<LayerId>& out) const {
  out.clear();
  const auto it = entries_.find(client);
  if (it == entries_.end()) return;
  out.assign(it->second.layers.begin(), it->second.layers.end());
}

std::vector<bool> LayerCache::mask(ClientId client,
                                   const DnnModel& model) const {
  std::vector<bool> out;
  mask_into(client, model, out);
  return out;
}

void LayerCache::mask_into(ClientId client, const DnnModel& model,
                           std::vector<bool>& out) const {
  out.assign(static_cast<std::size_t>(model.num_layers()), false);
  const auto it = entries_.find(client);
  if (it == entries_.end()) return;
  for (LayerId id : it->second.layers) {
    PERDNN_CHECK(id >= 0 && id < model.num_layers());
    out[static_cast<std::size_t>(id)] = true;
  }
}

std::vector<LayerCache::EntrySnapshot> LayerCache::export_entries() const {
  std::vector<EntrySnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [client, entry] : entries_) {
    EntrySnapshot snap;
    snap.client = client;
    snap.layers = entry.layers;
    snap.expires_at = entry.expires_at;
    snap.bytes = entry.bytes;
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const EntrySnapshot& a, const EntrySnapshot& b) {
              return a.client < b.client;
            });
  return out;
}

void LayerCache::restore_entries(const std::vector<EntrySnapshot>& entries) {
  entries_.clear();
  total_bytes_ = 0;
  for (const EntrySnapshot& snap : entries) {
    Entry& entry = entries_[snap.client];
    entry.layers = snap.layers;
    std::sort(entry.layers.begin(), entry.layers.end());
    entry.layers.erase(std::unique(entry.layers.begin(), entry.layers.end()),
                       entry.layers.end());
    entry.expires_at = snap.expires_at;
    entry.bytes = layer_bytes_.empty() ? snap.bytes : bytes_of(entry.layers);
    total_bytes_ += entry.bytes;
  }
}

Bytes LayerCache::cached_bytes(ClientId client, const DnnModel& model) const {
  const auto it = entries_.find(client);
  if (it == entries_.end()) return 0;
  Bytes total = 0;
  for (LayerId id : it->second.layers) total += model.layer(id).weight_bytes;
  return total;
}

}  // namespace perdnn
