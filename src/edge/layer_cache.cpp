#include "edge/layer_cache.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/journal.hpp"

namespace perdnn {

LayerCache::LayerCache(int ttl_intervals) : ttl_(ttl_intervals) {
  PERDNN_CHECK(ttl_intervals >= 1);
}

std::vector<LayerId> LayerCache::store(ClientId client,
                                       const std::vector<LayerId>& layers,
                                       int now_interval) {
  if (layers.empty()) {
    // An empty (fully-deduplicated) send must not manufacture a zero-layer
    // entry for a client that never received anything — that would make
    // has_entry()/occupancy stats count phantom clients. Existing entries
    // still get their TTL refreshed, matching duplicate-suppression
    // semantics (Section 3.B.2).
    touch(client, now_interval);
    return {};
  }
  Entry& entry = entries_[client];
  entry.expires_at = now_interval + ttl_;
  std::vector<LayerId> added;
  for (LayerId id : layers)
    if (entry.layers.insert(id).second) added.push_back(id);
  if (journal_ != nullptr)
    journal_->record({.interval = now_interval,
                      .kind = obs::JournalEventKind::kCacheStore,
                      .client = client,
                      .server = self_,
                      .aux = static_cast<std::int32_t>(added.size())});
  return added;
}

void LayerCache::touch(ClientId client, int now_interval) {
  const auto it = entries_.find(client);
  if (it == entries_.end()) return;
  it->second.expires_at = now_interval + ttl_;
  if (journal_ != nullptr)
    journal_->record({.interval = now_interval,
                      .kind = obs::JournalEventKind::kCacheTouch,
                      .client = client,
                      .server = self_});
}

void LayerCache::expire(int now_interval) {
  // Expired (client, #layers) pairs are collected and journalled in client
  // order: map iteration order depends on insertion history, which differs
  // between an uninterrupted run and a restore_entries() re-load.
  std::vector<std::pair<ClientId, std::int32_t>> expired;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at <= now_interval) {
      if (journal_ != nullptr)
        expired.emplace_back(it->first,
                             static_cast<std::int32_t>(it->second.layers.size()));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (journal_ != nullptr && !expired.empty()) {
    std::sort(expired.begin(), expired.end());
    for (const auto& [client, num_layers] : expired)
      journal_->record({.interval = now_interval,
                        .kind = obs::JournalEventKind::kCacheExpire,
                        .client = client,
                        .server = self_,
                        .aux = num_layers});
  }
}

void LayerCache::erase(ClientId client) { entries_.erase(client); }

bool LayerCache::has_entry(ClientId client) const {
  return entries_.count(client) > 0;
}

std::vector<LayerId> LayerCache::layers(ClientId client) const {
  const auto it = entries_.find(client);
  if (it == entries_.end()) return {};
  return {it->second.layers.begin(), it->second.layers.end()};
}

std::vector<bool> LayerCache::mask(ClientId client,
                                   const DnnModel& model) const {
  std::vector<bool> out;
  mask_into(client, model, out);
  return out;
}

void LayerCache::mask_into(ClientId client, const DnnModel& model,
                           std::vector<bool>& out) const {
  out.assign(static_cast<std::size_t>(model.num_layers()), false);
  const auto it = entries_.find(client);
  if (it == entries_.end()) return;
  for (LayerId id : it->second.layers) {
    PERDNN_CHECK(id >= 0 && id < model.num_layers());
    out[static_cast<std::size_t>(id)] = true;
  }
}

std::vector<LayerCache::EntrySnapshot> LayerCache::export_entries() const {
  std::vector<EntrySnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [client, entry] : entries_) {
    EntrySnapshot snap;
    snap.client = client;
    snap.layers.assign(entry.layers.begin(), entry.layers.end());
    snap.expires_at = entry.expires_at;
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const EntrySnapshot& a, const EntrySnapshot& b) {
              return a.client < b.client;
            });
  return out;
}

void LayerCache::restore_entries(const std::vector<EntrySnapshot>& entries) {
  entries_.clear();
  for (const EntrySnapshot& snap : entries) {
    Entry& entry = entries_[snap.client];
    entry.layers.insert(snap.layers.begin(), snap.layers.end());
    entry.expires_at = snap.expires_at;
  }
}

Bytes LayerCache::cached_bytes(ClientId client, const DnnModel& model) const {
  const auto it = entries_.find(client);
  if (it == entries_.end()) return 0;
  Bytes total = 0;
  for (LayerId id : it->second.layers) total += model.layer(id).weight_bytes;
  return total;
}

}  // namespace perdnn
