#include "edge/shard_retry.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace perdnn {

ShardRetryQueue::ShardRetryQueue(const MigrationRetryConfig& config,
                                 int num_servers, int per_server_cap)
    : config_(config), per_server_cap_(per_server_cap) {
  PERDNN_CHECK_MSG(config.max_attempts >= 1, "max_attempts must be >= 1");
  PERDNN_CHECK_MSG(config.initial_backoff_intervals >= 1,
                   "initial_backoff_intervals must be >= 1");
  PERDNN_CHECK_MSG(
      config.max_backoff_intervals >= config.initial_backoff_intervals,
      "max_backoff_intervals must be >= initial_backoff_intervals");
  PERDNN_CHECK_MSG(per_server_cap >= 1, "per_server_cap must be >= 1");
  queues_.resize(static_cast<std::size_t>(num_servers));
}

int ShardRetryQueue::backoff_after(int attempts) const {
  int backoff = config_.initial_backoff_intervals;
  for (int i = 1; i < attempts && backoff < config_.max_backoff_intervals;
       ++i)
    backoff *= 2;
  return std::min(backoff, config_.max_backoff_intervals);
}

bool ShardRetryQueue::full(ServerId server) const {
  return static_cast<int>(
             queues_[static_cast<std::size_t>(server)].size()) >=
         per_server_cap_;
}

void ShardRetryQueue::park(ShardRetryOrder order) {
  backlog_bytes_ += order.bytes;
  ++backlog_orders_;
  queues_[static_cast<std::size_t>(order.source)].push_back(order);
}

std::vector<ShardRetryOrder> ShardRetryQueue::take_due(int now) {
  std::vector<ShardRetryOrder> due;
  for (std::deque<ShardRetryOrder>& queue : queues_) {
    // Stable extraction: deadlines are not monotonic in FIFO order (a
    // re-parked order can come due before an older long-backoff one), so
    // scan the whole deque, keeping relative order of what stays.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      ShardRetryOrder& order = queue[i];
      if (order.next_attempt_interval <= now) {
        backlog_bytes_ -= order.bytes;
        --backlog_orders_;
        ++order.attempts;
        due.push_back(order);
      } else {
        queue[kept++] = order;
      }
    }
    queue.resize(kept);
  }
  return due;
}

std::vector<ShardRetryOrder> ShardRetryQueue::flatten() const {
  std::vector<ShardRetryOrder> out;
  out.reserve(static_cast<std::size_t>(backlog_orders_));
  for (const std::deque<ShardRetryOrder>& queue : queues_)
    out.insert(out.end(), queue.begin(), queue.end());
  return out;
}

void ShardRetryQueue::restore(const std::vector<ShardRetryOrder>& orders) {
  for (std::deque<ShardRetryOrder>& queue : queues_) queue.clear();
  backlog_bytes_ = 0;
  backlog_orders_ = 0;
  for (const ShardRetryOrder& order : orders) {
    PERDNN_CHECK_MSG(order.source >= 0 &&
                         static_cast<std::size_t>(order.source) <
                             queues_.size(),
                     "restored retry order names an unknown source server");
    park(order);
  }
}

}  // namespace perdnn
