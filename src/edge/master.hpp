// The master server (Fig 3): the control-plane component that owns client
// registrations (DNN profile + trajectory), derives current and future
// partitioning plans from live edge-server GPU statistics, performs
// GPU-aware server selection, and issues proactive-migration orders.
//
// The large-scale simulator inlines this logic for speed; MasterServer is
// the library-grade embodiment for downstream users driving real (or mock)
// edge fleets. GPU statistics are supplied through a callback so the caller
// decides how servers are polled ("the master server pings an edge server to
// obtain the current server workload", Section 3.C.1).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "estimation/estimate_cache.hpp"
#include "estimation/estimator.hpp"
#include "geo/server_map.hpp"
#include "mobility/predictor.hpp"
#include "partition/upload_order.hpp"

namespace perdnn {

class MasterServer {
 public:
  struct Config {
    double migration_radius_m = 50.0;  ///< r around the predicted location
    NetworkCondition wireless{};       ///< client <-> edge access link
    UploadEnumeration upload_enumeration = UploadEnumeration::kAnchored;
    /// Degraded-mode estimation: GpuStats older than this many statistics
    /// intervals (GpuStats::age_intervals) are considered stale. When a
    /// fallback estimator is installed (set_fallback_estimator), stale or
    /// missing telemetry routes planning through it — the load-free baseline
    /// — instead of feeding the load-aware model fiction; each degraded plan
    /// bumps the `estimation.degraded` counter. Without a fallback the
    /// primary estimator is used regardless (back-compat).
    int max_stats_age_intervals = 0;
  };

  /// Callback answering "what does server s report right now" (nvml ping).
  using StatsProvider = std::function<GpuStats(ServerId)>;

  MasterServer(std::shared_ptr<const ServerMap> servers,
               std::shared_ptr<const LayerTimeEstimator> estimator,
               std::shared_ptr<const MobilityPredictor> predictor,
               Config config);
  /// Default-configured master server.
  MasterServer(std::shared_ptr<const ServerMap> servers,
               std::shared_ptr<const LayerTimeEstimator> estimator,
               std::shared_ptr<const MobilityPredictor> predictor);

  /// Client registration: uploads the DNN profile (layer metadata and
  /// client-side execution times — never weights). Returns the client's id.
  ClientId register_client(DnnModel model, DnnProfile profile);

  int num_clients() const { return static_cast<int>(clients_.size()); }
  const DnnModel& client_model(ClientId client) const;

  /// Periodic location report; the master keeps the full recent trajectory.
  void report_location(ClientId client, Point p);
  std::span<const Point> trajectory(ClientId client) const;

  /// Current partitioning plan for the client offloading to a server whose
  /// live statistics are `stats` (Section 3.B.1).
  PartitionPlan current_plan(ClientId client, const GpuStats& stats) const;

  /// Efficiency-ordered upload schedule for a plan.
  UploadSchedule upload_schedule(ClientId client, const PartitionPlan& plan,
                                 const GpuStats& stats) const;

  struct ServerChoice {
    ServerId server = kNoServer;
    PartitionPlan plan;
  };

  /// GPU-aware server selection: evaluates the partitioning algorithm
  /// against every candidate and returns the one promising the lowest
  /// latency (Section 3.C.2 — crowded servers quote longer times, so load
  /// balances automatically). nullopt if `candidates` is empty.
  std::optional<ServerChoice> select_server(
      ClientId client, std::span<const ServerId> candidates,
      const StatsProvider& stats_of) const;

  struct MigrationOrder {
    ServerId target = kNoServer;
    PartitionPlan future_plan;
    /// Layers to ship, in efficiency order, already filtered to what the
    /// source actually holds (`source_available`).
    std::vector<LayerId> layers;
    Bytes bytes = 0;
  };

  /// Predicts the client's next location and builds one migration order per
  /// edge server within the configured radius (Section 3.B.2). Empty when
  /// the trajectory is still shorter than the predictor needs, or when the
  /// prediction stays under the current server only.
  std::vector<MigrationOrder> plan_migrations(
      ClientId client, ServerId current_server,
      const std::vector<bool>& source_available,
      const StatsProvider& stats_of,
      std::optional<Bytes> byte_budget = std::nullopt) const;

  /// Installs the load-free estimator used when a server's GPU telemetry is
  /// stale or missing (see Config::max_stats_age_intervals). Pass nullptr to
  /// remove it. Invalidate-free: the estimate cache keys by estimator
  /// identity, so switching routes can never serve a stale vector.
  void set_fallback_estimator(
      std::shared_ptr<const LayerTimeEstimator> fallback);

  /// Number of plans built in degraded mode (stale telemetry routed to the
  /// fallback estimator) since construction.
  std::uint64_t degraded_estimates() const { return degraded_estimates_; }

  /// Drops the memoised layer estimates. Call when a statistics interval
  /// rolls over (stale GpuStats keys would only waste cache space — exact
  /// keying already prevents stale hits) or after retraining the estimator
  /// in place. register_client() invalidates internally because growing the
  /// client table can reallocate the models the cache keys by address.
  void invalidate_estimates();

 private:
  struct ClientRecord {
    DnnModel model;
    DnnProfile profile;
    std::vector<Point> trajectory;
  };

  const ClientRecord& record(ClientId client) const;
  PartitionContext context_for(const ClientRecord& rec,
                               const GpuStats& stats) const;

  std::shared_ptr<const ServerMap> servers_;
  std::shared_ptr<const LayerTimeEstimator> estimator_;
  std::shared_ptr<const LayerTimeEstimator> fallback_estimator_;
  std::shared_ptr<const MobilityPredictor> predictor_;
  Config config_;
  mutable std::uint64_t degraded_estimates_ = 0;
  std::vector<ClientRecord> clients_;
  /// Memoised estimator output, shared by every planning entry point (they
  /// are all const). Co-located candidate servers and repeated pings within
  /// one statistics interval report identical GpuStats, so select_server and
  /// plan_migrations hit instead of re-running the estimator per layer.
  mutable EstimateCache estimate_cache_;
};

}  // namespace perdnn
