// Deterministic per-server retry queues for the sharded engine's deferred
// migration orders.
//
// The classic MigrationDispatcher carries an explicit layer list per order —
// too heavy at city scale, where canonical-prefix uploads describe an order
// with two integers. Here an order is (client, source, target, prefix the
// target should reach, bytes outstanding), parked in its *source* server's
// FIFO deque with the same exponential backoff the dispatcher uses
// (initial_backoff doubling per failed attempt up to max_backoff, abandoned
// after max_attempts). take_due() scans every server's deque in server order
// and each deque stably, so due orders always come back in (source server,
// FIFO position) order — the canonical sequence every shard/thread count
// reproduces, which is what lets retries run on the serial Phase B path
// without breaking the byte-identity matrix.
//
// Backlog is bounded two ways: the per-order attempt budget, and a
// per-server capacity cap on parked orders (a deferral into a full queue is
// refused; the caller abandons the order with kDropQueueFull). flatten() /
// restore() move the whole queue through snapshots in canonical order.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hpp"
#include "edge/migration_dispatcher.hpp"

namespace perdnn {

struct ShardRetryOrder {
  ClientId client = -1;
  ServerId source = kNoServer;
  ServerId target = kNoServer;
  std::uint16_t prefix = 0;  ///< canonical prefix the target should reach
  Bytes bytes = 0;           ///< bytes outstanding when parked
  int attempts = 1;          ///< delivery attempts already made
  int next_attempt_interval = 0;
};

class ShardRetryQueue {
 public:
  ShardRetryQueue() = default;
  ShardRetryQueue(const MigrationRetryConfig& config, int num_servers,
                  int per_server_cap);

  /// Backoff before attempt (attempts + 1): initial_backoff doubled per
  /// prior attempt, capped at max_backoff. Mirrors MigrationDispatcher.
  int backoff_after(int attempts) const;

  /// True when an order with this many attempts has no retry budget left.
  bool budget_spent(int attempts) const {
    return attempts >= config_.max_attempts;
  }
  /// True when `server`'s queue is at the per-server cap.
  bool full(ServerId server) const;

  /// Parks `order` (caller already stamped next_attempt_interval and
  /// checked budget_spent()/full()).
  void park(ShardRetryOrder order);

  /// Removes and returns every order due at `now`, in (source server, FIFO
  /// position) order, with each order's attempt count already incremented
  /// for the retry being handed out.
  std::vector<ShardRetryOrder> take_due(int now);

  Bytes backlog_bytes() const { return backlog_bytes_; }
  int backlog_orders() const { return backlog_orders_; }

  /// Every parked order in (source server, FIFO position) order — the
  /// canonical snapshot encoding.
  std::vector<ShardRetryOrder> flatten() const;
  /// Replaces the queue contents with `orders` (a flatten() result).
  void restore(const std::vector<ShardRetryOrder>& orders);

  const MigrationRetryConfig& config() const { return config_; }

 private:
  MigrationRetryConfig config_{};
  int per_server_cap_ = 0;
  std::vector<std::deque<ShardRetryOrder>> queues_;  // per source server
  Bytes backlog_bytes_ = 0;
  int backlog_orders_ = 0;
};

}  // namespace perdnn
