// City-scale sharded simulation world (the SoA engine behind bench_scale).
//
// The trace-replay simulator (sim/simulator.hpp) carries one heap-heavy
// ClientState per client and re-plans through the estimator on the serial
// path, which caps it at thousands of clients. This world is built for the
// paper's headline scale — a million clients over ten thousand edge
// servers — by moving everything per-client into structure-of-arrays
// storage and everything expensive into tables precomputed once at build:
//
//   * The city is a tiles_x x tiles_y rectangle of pointy-top hex cells
//     (odd-r offset coordinates over geo/hex_grid), one edge server per
//     tile: server id = row * tiles_x + col. Contiguous tile ranges form
//     the shards that run in parallel (sim/shard_sim.hpp).
//   * Clients are synthetic random walkers (heading + speed drawn from the
//     client's counter-based RNG substream) instead of replayed traces —
//     storing a million trajectories would dwarf the simulation state.
//   * Upload sequencing uses one canonical layer order for every client:
//     the server-side layers of the uncontended (load 1) plan, in
//     topological order. A client's upload state is then a single integer —
//     the length of the canonical prefix already at the server — and cache
//     merges become commutative prefix maxima, which is what makes the
//     cross-shard event exchange order-independent.
//   * Per load level (1..max_load_level): GPU statistics drawn from a
//     per-level seeded stream, estimator outputs (through the fastpath
//     estimate cache when enabled — bit-identical either way), and the
//     cold-window latency table latency_by_prefix[p] = plan latency when
//     the first p canonical layers are server-resident. The hot loop never
//     touches the estimator or the partition DP.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "device/device_profile.hpp"
#include "device/gpu_model.hpp"
#include "estimation/estimator.hpp"
#include "geo/hex_grid.hpp"
#include "geo/point.hpp"
#include "nn/model_zoo.hpp"
#include "partition/partition.hpp"
#include "sim/simulator.hpp"

namespace perdnn {

struct ShardWorldConfig {
  ModelName model = ModelName::kInception;
  MigrationPolicy policy = MigrationPolicy::kProactive;
  /// World shape: tiles_x * tiles_y hex tiles, one server each.
  int tiles_x = 8;
  int tiles_y = 8;
  double cell_radius_m = 50.0;
  int num_clients = 1000;
  int num_intervals = 20;
  Seconds interval_s = 20.0;
  Seconds query_gap = 0.5;
  NetworkCondition wireless{};
  /// Proactive pushes go to every tile within this radius of the predicted
  /// position, but only when the prediction crosses a tile boundary.
  double migration_radius_m = 60.0;
  int ttl_intervals = 5;
  /// Load levels precomputed at build; attach loads clamp into [1, this].
  int max_load_level = 12;
  // Random-walk mobility.
  double speed_min_mps = 0.5;
  double speed_max_mps = 2.5;
  double turn_probability = 0.2;
  /// Per-interval chance an online client goes offline for
  /// offline_intervals (scripted-churn analogue; 0 disables).
  double offline_probability = 0.0;
  int offline_intervals = 3;
  std::uint64_t seed = 42;
  /// Scripted fault schedule applied by the sharded engine. An empty plan
  /// is the default and keeps the run byte-identical to a fault-free build.
  FaultPlan fault_plan;
  /// Backoff policy for deferred migration orders (faulted runs only).
  MigrationRetryConfig migration_retry{};
  /// Healthy per-link backhaul capacity; a degraded link delivers
  /// factor * this per interval (factor from the fault plan's severity).
  double backhaul_bytes_per_sec = mbps_to_bytes_per_sec(1000.0);
  /// Per-server cap on parked retry orders: a deferral into a full source
  /// queue is dropped immediately (journal aux kDropQueueFull).
  int retry_queue_cap = 64;
  /// Per-server admission limit: once a server holds this many attached
  /// clients, further attaches this interval are shed to the local
  /// fallback, lowest cached prefix first. 0 disables admission control.
  int admission_max_attached = 0;
  /// Flash-crowd scenario: this many hot tiles (nearest the world centre)
  /// receive flash_crowd_multiplier x the uniform client density at
  /// placement. tiles = 0 or multiplier = 1 disables the knob.
  int flash_crowd_tiles = 0;
  double flash_crowd_multiplier = 1.0;
  /// Per-server byte budget for cached layer weights. 0 (the default) means
  /// unbudgeted — byte-identical to the pre-budget engine. When set, each
  /// tile evicts its lowest-saved-latency-per-byte detached entries to make
  /// room and admits only the prefix of an incoming send that fits.
  Bytes cache_budget_bytes = 0;

  int num_servers() const { return tiles_x * tiles_y; }
  /// Throws std::logic_error naming the offending field.
  void validate() const;
};

/// Precomputed per-load-level planning table.
struct ShardLoadLevel {
  GpuStats stats;
  /// Plan latency when the first p canonical layers are server-resident,
  /// p in [0, canonical_order.size()]. p = 0 is the all-client plan.
  std::vector<Seconds> latency_by_prefix;
  /// Same table planned from the load-free fallback estimator over stale
  /// statistics — the latencies a telemetry-dropout tile serves at. Built
  /// only when the config's fault plan scripts a dropout; empty otherwise.
  std::vector<Seconds> degraded_latency_by_prefix;
};

struct ShardWorld {
  ShardWorldConfig config;
  DnnModel model = DnnModel("unbuilt");
  DnnProfile client_profile;
  std::shared_ptr<GpuContentionModel> gpu;
  std::shared_ptr<RandomForestEstimator> estimator;
  HexGrid grid = HexGrid(50.0);
  /// Tile centres indexed by server id (row-major over odd-r offset coords).
  std::vector<Point> server_centers;
  /// Canonical upload order: the uncontended plan's server-side layers.
  std::vector<LayerId> canonical_order;
  /// prefix_bytes[p] = weight bytes of the first p canonical layers
  /// (size canonical_order.size() + 1, prefix_bytes[0] = 0).
  std::vector<Bytes> prefix_bytes;
  /// levels[L-1] = table for nominal load L.
  std::vector<ShardLoadLevel> levels;
  /// Metric bounding box clients walk inside.
  double width_m = 0.0;
  double height_m = 0.0;
  /// Latency of one query executed entirely on the client (every
  /// server-side time zeroed) — the local-fallback service rate.
  Seconds local_query_latency_s = 0.0;
  /// Flash-crowd hot tiles, nearest the world centre first (ties by id).
  /// Empty unless config.flash_crowd_tiles > 0.
  std::vector<ServerId> flash_crowd_hot_tiles;

  int num_servers() const { return config.num_servers(); }
  /// Tile (= server id) containing p, with out-of-rectangle cells clamped
  /// to the border tile. No wraparound: the east edge is never adjacent to
  /// the west edge.
  ServerId tile_at(Point p) const;
  Point tile_center(ServerId id) const { return server_centers[static_cast<std::size_t>(id)]; }
};

/// Builds the world: trains the estimator on a profiling sweep (the same
/// offline pipeline build_world uses) and fills every per-level table.
/// Deterministic for a given config, including across the fastpath toggle.
ShardWorld build_shard_world(const ShardWorldConfig& config);

/// Hash of every simulation-affecting ShardWorldConfig knob. Stored in
/// SimSnapshot::config_fingerprint by the sharded engine so checkpoints
/// cannot resume against a different scenario. Shard count and thread count
/// are deliberately excluded (byte-identity-neutral, like threads for the
/// trace-replay engine).
std::uint64_t shard_config_fingerprint(const ShardWorldConfig& config);

}  // namespace perdnn
