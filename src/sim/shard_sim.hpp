// Deterministic sharded execution of a ShardWorld.
//
// Every interval runs in two phases:
//
//   Phase A (parallel over shards, via par::parallel_for): each shard walks
//   its owned clients — ownership is the shard of the tile the client stood
//   on at the interval start — strictly in client-id order. The phase is
//   pure with respect to shared state: it reads server-side state (attach
//   counts, cache prefixes) exactly as frozen at the interval start, writes
//   only the client's own SoA slots, and draws randomness from counter-based
//   per-(seed, client, interval) hashes, so what a client does is a function
//   of (frozen state, client id, interval) — never of which shard or thread
//   processed it. Everything that must touch shared state is emitted as a
//   compact event (re-attachment, upload progress, dispatcher push, offline
//   detach) into the shard's buffer, in client-id order.
//
//   Phase B (serial): shard buffers are k-way merged in canonical client-id
//   order — the same merge-in-submission-order trick the trace-replay
//   simulator uses for cold-start windows — and every mutation (cache
//   prefix maxima, TTL wheel, attach counts, metrics, timeseries rows,
//   journal lines) is applied in that canonical order. Cache updates are
//   prefix maxima over the canonical upload order, so they are commutative
//   anyway; double accumulations happen only here, in one fixed order.
//
// Consequence: metrics, the streamed timeseries CSV and the streamed
// journal JSONL are byte-identical across thread counts, shard counts, the
// fastpath toggle, and checkpoint/resume splits — the determinism matrix
// tests/sim/shard_determinism_test.cpp enforces.
//
// Output is streamed: timeseries rows and journal events go to disk as they
// are produced (obs/stream_writer.hpp); nothing O(clients x intervals) is
// ever resident. Checkpoints record the stream byte offsets, and a resumed
// run truncates the files back to the boundary and appends.
#pragma once

#include <string>
#include <vector>

#include "sim/shard_world.hpp"
#include "sim/simulator.hpp"

namespace perdnn {

namespace snapshot {
struct SimSnapshot;
}  // namespace snapshot

struct ShardRunOptions {
  /// Number of tile shards phase A fans out over. Byte-identity-neutral.
  int num_shards = 1;
  /// Streamed timeseries CSV destination; empty disables recording.
  std::string timeseries_path;
  /// Streamed journal JSONL destination; empty disables journaling.
  std::string journal_path;
  /// Resume from this snapshot (must carry a shard section whose
  /// fingerprint matches the world's config); snapshot::SnapshotError
  /// otherwise. Streamed outputs are truncated to the checkpoint offsets.
  const snapshot::SimSnapshot* resume_from = nullptr;
  /// Capture a checkpoint whenever (interval + 1) is a positive multiple of
  /// this. 0 disables periodic checkpoints.
  int checkpoint_every = 0;
  /// Stop after completing this interval (capturing a checkpoint); -1 runs
  /// to the end.
  int stop_after_interval = -1;
  /// Where checkpoints are save()d (atomic tmp + rename). Empty disables
  /// file output — captures still go to capture_out.
  std::string checkpoint_path;
  snapshot::SimSnapshot* capture_out = nullptr;
  /// Bench hook: wall-clock seconds per executed interval (cleared first).
  /// Never feeds back into the simulation.
  std::vector<double>* interval_wall_s = nullptr;
};

/// Runs the sharded simulation to completion (or stop_after_interval) and
/// returns the aggregate metrics. Deterministic per the header contract.
SimulationMetrics run_sharded_simulation(const ShardWorld& world,
                                         const ShardRunOptions& options = {});

}  // namespace perdnn
