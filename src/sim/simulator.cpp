#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.hpp"
#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "device/device_profile.hpp"
#include "estimation/estimate_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace perdnn {

double SimulationMetrics::hit_ratio() const {
  const int denom = hits + misses;
  return denom > 0 ? static_cast<double>(hits) / denom : 0.0;
}

SimulationWorld build_world(const SimulationConfig& config,
                            const std::vector<Trajectory>& train_traces,
                            const std::vector<Trajectory>& test_traces) {
  PERDNN_SPAN("sim.build_world");
  PERDNN_CHECK(!train_traces.empty() && !test_traces.empty());
  Rng rng(config.seed);

  SimulationWorld world{.model = build_model(config.model),
                        .client_profile = {},
                        .gpu = nullptr,
                        .estimator = nullptr,
                        .servers = ServerMap(config.cell_radius_m),
                        .test_traces = test_traces,
                        .predictor_kind = config.predictor,
                        .predictor = nullptr,
                        .canonical_schedule = {},
                        .interval = test_traces.front().interval};
  world.client_profile =
      profile_on_client(world.model, odroid_xu4_profile());
  world.gpu = std::make_shared<GpuContentionModel>(titan_xp_profile());

  // Offline estimator training: concurrency sweep over this model's layers
  // (the paper trains per-server estimators offline with perf_client).
  ConcurrencyProfiler profiler(world.gpu.get(), rng.fork());
  const DnnModel* models[] = {&world.model};
  ProfilerConfig prof_config;
  prof_config.max_clients = 12;
  prof_config.samples_per_level = 4;
  const auto records = profiler.profile_models(models, prof_config);
  world.estimator = std::make_shared<RandomForestEstimator>();
  Rng train_rng = rng.fork();
  world.estimator->train(records, train_rng);

  // Edge servers: one per cell visited by a replayed user.
  world.servers.allocate_for_visits(all_points(test_traces));

  // Mobility predictor trained on the held-out training split. The
  // stationary and oracle baselines need no model — the simulator resolves
  // them inline from the trace itself.
  switch (config.predictor) {
    case PredictorKind::kSvr:
      world.predictor =
          std::make_shared<SvrPredictor>(config.trajectory_length);
      break;
    case PredictorKind::kMarkov:
      // Discretisation needs the server map; give the predictor its own
      // copy since the world object may be moved after build_world returns.
      world.predictor = std::make_shared<MarkovPredictor>(
          config.trajectory_length,
          std::make_shared<const ServerMap>(world.servers));
      break;
    case PredictorKind::kRnn:
      world.predictor = std::make_shared<RnnPredictor>(
          config.trajectory_length, /*hidden_dim=*/16, /*epochs=*/40);
      break;
    case PredictorKind::kStationary:
    case PredictorKind::kOracle:
      world.predictor = nullptr;
      break;
  }
  if (world.predictor != nullptr) {
    Rng predictor_rng = rng.fork();
    world.predictor->fit(train_traces, predictor_rng);
  }

  // Canonical efficiency-ordered schedule (uncontended plan). The simulator
  // sequences uploads and fractional cuts with this structural order; the
  // exact per-plan order differs negligibly under load.
  Rng stats_rng = rng.fork();
  const GpuStats stats = world.gpu->stats_for_load(1, 1.0, stats_rng);
  PartitionContext context;
  context.model = &world.model;
  context.client_profile = &world.client_profile;
  context.net = config.wireless;
  context.server_time = world.estimator->estimate_model(world.model, stats);
  const PartitionPlan plan = compute_best_plan(context);
  world.canonical_schedule = plan_upload_order(
      context, plan, {.enumeration = UploadEnumeration::kAnchored});
  return world;
}

namespace {

struct ClientState {
  const Trajectory* trace = nullptr;
  ServerId current = kNoServer;
  /// Layers still to upload to the current server, in canonical order.
  std::vector<LayerId> pending;
  /// Wireless bytes banked toward pending.front().
  Bytes carry_bytes = 0;
  /// Actual-vs-nominal wireless rate factor for the current attachment.
  double link_factor = 1.0;
};

/// Per-load-level caches. GPU statistics, estimator outputs, plans and true
/// layer times are deterministic per nominal load level, so the simulator
/// computes them once per level instead of per client-interval.
struct LoadLevelCache {
  GpuStats stats;
  std::vector<Seconds> estimated;  // estimator output, drives the plan
  std::vector<Seconds> true_time;  // ground-truth expected latency
  PartitionPlan plan;
  std::vector<LayerId> needed;     // plan's server-side layers
};

class SimulatorImpl {
 public:
  SimulatorImpl(const SimulationConfig& config, const SimulationWorld& world,
                obs::SimTimeseries* timeseries)
      : config_(config),
        world_(world),
        timeseries_(timeseries),
        rng_(config.seed ^ 0x5eedf00dULL),
        link_rng_(config.seed ^ 0x11bb77aaULL),
        traffic_(world.servers.num_servers(), world.interval),
        crowded_(static_cast<std::size_t>(world.servers.num_servers()),
                 false) {
    for (ServerId s : config.crowded_servers) {
      PERDNN_CHECK(s >= 0 && s < world.servers.num_servers());
      crowded_[static_cast<std::size_t>(s)] = true;
    }
    caches_.assign(static_cast<std::size_t>(world.servers.num_servers()),
                   LayerCache(config.ttl_intervals));
    attached_.assign(static_cast<std::size_t>(world.servers.num_servers()),
                     0);
    down_until_.assign(static_cast<std::size_t>(world.servers.num_servers()),
                       -1);
    clients_.reserve(world.test_traces.size());
    for (const auto& trace : world.test_traces)
      clients_.push_back({.trace = &trace,
                          .current = kNoServer,
                          .pending = {},
                          .carry_bytes = 0,
                          .link_factor = 1.0});
    // Pre-size canonical order lookup: position of each layer in the order.
    order_rank_.assign(
        static_cast<std::size_t>(world.model.num_layers()), -1);
    for (std::size_t i = 0; i < world.canonical_schedule.order.size(); ++i)
      order_rank_[static_cast<std::size_t>(
          world.canonical_schedule.order[i])] = static_cast<int>(i);
  }

  SimulationMetrics run();

 private:
  /// One deferred cold-start window: every input is frozen at attach time,
  /// the (expensive, pure) query-loop evaluation runs later in a parallel
  /// region, and its results merge back in attach order.
  struct ColdJob {
    ServerId sid = kNoServer;
    const LoadLevelCache* lvl = nullptr;  // stable: map values never move
    std::vector<bool> initial_mask;
    std::vector<LayerId> pending;
    Seconds routed_latency = kInfSeconds;
    double link_factor = 1.0;
  };
  struct ColdResult {
    long long queries = 0;
    long long routed = 0;
    Seconds latency_sum = 0.0;
  };

  const LoadLevelCache& level(int load);
  void handle_attach(ClientId c, ServerId sid, int interval_index);
  /// Evaluates every ColdJob queued by this interval's attach pass in
  /// parallel and folds the results into metrics_/timeseries_ in submission
  /// (client) order — bit-identical to the serial interleaving.
  void flush_cold_jobs();
  void advance_uploads(int interval_index);
  void proactive_migration(int interval_index);
  void inject_failures(int interval_index);
  bool is_down(ServerId sid, int interval_index) const;
  /// Server the client should use at `pos`, honouring the selection policy
  /// and skipping crashed servers; kNoServer if nothing is reachable.
  /// `current` enables switching hysteresis under kBestVisible.
  ServerId choose_server(Point pos, ServerId current, int interval_index);
  /// Predicted next location per the configured predictor kind.
  std::optional<Point> predict_next(const ClientState& client,
                                    std::size_t history,
                                    std::size_t interval_index) const;
  /// Queries completed inside one cold-start window. Pure given the job
  /// (reads only immutable world/config state), so it is safe to evaluate
  /// from worker threads.
  ColdResult cold_window_queries(const ColdJob& job) const;
  /// Per-query latency of offloading to the previous server through the
  /// backhaul; kInfSeconds when unavailable.
  Seconds routed_path_latency(ClientId c, ServerId previous,
                              int interval_index);
  std::vector<LayerId> order_by_canonical(std::vector<LayerId> layers) const;

  const SimulationConfig& config_;
  const SimulationWorld& world_;
  obs::SimTimeseries* timeseries_;  // may be null (recording disabled)
  Rng rng_;
  Rng link_rng_;  // dedicated stream: jitter draws must not shift the
                  // stats/plan caches of non-jittered runs
  TrafficAccountant traffic_;
  std::vector<bool> crowded_;
  std::vector<LayerCache> caches_;
  std::vector<int> attached_;
  std::vector<int> down_until_;  // interval until which a server is crashed
  std::vector<ClientState> clients_;
  std::vector<int> order_rank_;
  std::unordered_map<int, LoadLevelCache> levels_;
  /// Interval-scoped estimator memo behind levels_: invalidated every
  /// interval, so its counters expose how often one interval re-requests the
  /// same (model, stats) estimate. levels_ persists across intervals, so
  /// misses here are rare once the load levels are warm.
  EstimateCache estimate_cache_;
  std::vector<ColdJob> cold_jobs_;  // this interval's deferred windows
  SimulationMetrics metrics_;
};

const LoadLevelCache& SimulatorImpl::level(int load) {
  load = std::max(1, load);
  const auto it = levels_.find(load);
  if (it != levels_.end()) return it->second;

  LoadLevelCache lvl;
  lvl.stats = world_.gpu->stats_for_load(
      load, static_cast<double>(load), rng_);
  const DnnModel& model = world_.model;
  // Per-layer estimator and ground-truth fills are independent; fan them
  // out. Each index writes only its own slot, so the cache is identical at
  // any thread count.
  const auto n = static_cast<std::size_t>(model.num_layers());
  lvl.estimated.resize(n);
  lvl.true_time.resize(n);
  if (fastpath::enabled()) {
    // Memoised batch estimate (bit-identical to the per-index fill below);
    // the ground-truth fill stays a private parallel loop.
    lvl.estimated =
        estimate_cache_.estimates(*world_.estimator, model, lvl.stats);
    par::parallel_for(n, [&](std::size_t i) {
      const auto id = static_cast<LayerId>(i);
      lvl.true_time[i] = world_.gpu->expected_layer_time(
          model.layer(id), model.input_bytes(id), static_cast<double>(load));
    });
  } else {
    par::parallel_for(n, [&](std::size_t i) {
      const auto id = static_cast<LayerId>(i);
      const Bytes in_bytes = model.input_bytes(id);
      lvl.estimated[i] =
          world_.estimator->estimate(model.layer(id), in_bytes, lvl.stats);
      lvl.true_time[i] = world_.gpu->expected_layer_time(
          model.layer(id), in_bytes, static_cast<double>(load));
    });
  }
  PartitionContext context;
  context.model = &model;
  context.client_profile = &world_.client_profile;
  context.server_time = lvl.estimated;
  context.net = config_.wireless;
  lvl.plan = compute_best_plan(context);
  lvl.needed = lvl.plan.server_layers();
  return levels_.emplace(load, std::move(lvl)).first->second;
}

std::vector<LayerId> SimulatorImpl::order_by_canonical(
    std::vector<LayerId> layers) const {
  std::sort(layers.begin(), layers.end(), [&](LayerId a, LayerId b) {
    const int ra = order_rank_[static_cast<std::size_t>(a)];
    const int rb = order_rank_[static_cast<std::size_t>(b)];
    // Layers outside the canonical order go last, in id order.
    if (ra >= 0 && rb >= 0) return ra < rb;
    if (ra >= 0) return true;
    if (rb >= 0) return false;
    return a < b;
  });
  return layers;
}

Seconds SimulatorImpl::routed_path_latency(ClientId c, ServerId previous,
                                           int interval_index) {
  if (!config_.routing_fallback || previous == kNoServer ||
      is_down(previous, interval_index))
    return kInfSeconds;
  const std::vector<bool> prev_mask =
      caches_[static_cast<std::size_t>(previous)].mask(c, world_.model);
  // The previous server still serves this client remotely, so it keeps the
  // client's unit of load.
  const LoadLevelCache& prev_lvl =
      level(attached_[static_cast<std::size_t>(previous)] + 1);
  PartitionContext routed;
  routed.model = &world_.model;
  routed.client_profile = &world_.client_profile;
  routed.server_time = prev_lvl.true_time;
  routed.net = config_.wireless;
  // Wi-Fi to the new AP, then the backhaul hop: bottleneck bandwidth and
  // summed round-trip time.
  routed.net.uplink_bytes_per_sec = std::min(
      config_.wireless.uplink_bytes_per_sec, config_.backhaul_bytes_per_sec);
  routed.net.downlink_bytes_per_sec =
      std::min(config_.wireless.downlink_bytes_per_sec,
               config_.backhaul_bytes_per_sec);
  routed.net.rtt = config_.wireless.rtt + config_.backhaul_rtt;
  return plan_latency(routed, prev_mask);
}

SimulatorImpl::ColdResult SimulatorImpl::cold_window_queries(
    const ColdJob& job) const {
  const DnnModel& model = world_.model;
  // Execution sees the *actual* wireless rate of this attachment; the
  // master's plan was made against the nominal one.
  PartitionContext context;
  context.model = &model;
  context.client_profile = &world_.client_profile;
  context.server_time = job.lvl->true_time;
  context.net = config_.wireless;
  context.net.uplink_bytes_per_sec *= job.link_factor;
  context.net.downlink_bytes_per_sec *= job.link_factor;
  // Cumulative bytes of the pending upload sequence.
  std::vector<Bytes> cumulative;
  cumulative.reserve(job.pending.size());
  Bytes acc = 0;
  for (LayerId id : job.pending) {
    acc += model.layer(id).weight_bytes;
    cumulative.push_back(acc);
  }

  ColdResult result;
  Seconds now = 0.0;
  std::vector<bool> mask = job.initial_mask;
  std::size_t arrived = 0;
  while (true) {
    const Bytes uploaded = static_cast<Bytes>(
        now * context.net.uplink_bytes_per_sec);
    while (arrived < job.pending.size() && cumulative[arrived] <= uploaded) {
      mask[static_cast<std::size_t>(job.pending[arrived])] = true;
      ++arrived;
    }
    Seconds latency = plan_latency(context, mask);
    // Routing fallback: take the backhaul path to the previous server when
    // it is faster than what the (still warming) new server offers.
    if (job.routed_latency < latency) {
      latency = job.routed_latency;
      if (now + latency <= world_.interval) ++result.routed;
    }
    if (now + latency > world_.interval) break;
    ++result.queries;
    result.latency_sum += latency;
    obs::observe("sim.cold_window.query_latency_s", latency);
    now += latency + config_.query_gap;
  }
  return result;
}

void SimulatorImpl::flush_cold_jobs() {
  if (cold_jobs_.empty()) return;
  const auto results =
      par::parallel_map(cold_jobs_.size(), [&](std::size_t i) {
        return cold_window_queries(cold_jobs_[i]);
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    metrics_.cold_window_queries += results[i].queries;
    metrics_.routed_queries += results[i].routed;
    if (timeseries_ != nullptr)
      timeseries_->record_cold_queries(cold_jobs_[i].sid, results[i].queries,
                                       results[i].latency_sum);
  }
  cold_jobs_.clear();
}

void SimulatorImpl::handle_attach(ClientId c, ServerId sid,
                                  int interval_index) {
  ClientState& client = clients_[static_cast<std::size_t>(c)];
  const ServerId previous = client.current;
  if (client.current != kNoServer)
    --attached_[static_cast<std::size_t>(client.current)];
  client.current = sid;
  ++attached_[static_cast<std::size_t>(sid)];
  client.pending.clear();
  client.carry_bytes = 0;
  client.link_factor =
      config_.bandwidth_jitter_sigma > 0.0
          ? std::clamp(
                std::exp(config_.bandwidth_jitter_sigma * link_rng_.normal()),
                0.3, 2.0)
          : 1.0;
  ++metrics_.server_changes;

  LayerCache& cache = caches_[static_cast<std::size_t>(sid)];
  if (config_.policy == MigrationPolicy::kNone) {
    // IONN baseline: always uploads from scratch.
    cache.erase(c);
  }
  cache.touch(c, interval_index);

  const LoadLevelCache& lvl =
      level(attached_[static_cast<std::size_t>(sid)]);
  const DnnModel& model = world_.model;

  std::vector<bool> available =
      config_.policy == MigrationPolicy::kOptimal
          ? std::vector<bool>(static_cast<std::size_t>(model.num_layers()),
                              true)
          : cache.mask(c, model);

  // Classify the cold start and collect the layers still to upload.
  int present = 0;
  std::vector<LayerId> missing;
  for (LayerId id : lvl.needed) {
    if (available[static_cast<std::size_t>(id)]) {
      ++present;
    } else {
      missing.push_back(id);
    }
  }
  const bool is_hit = missing.empty();
  const bool is_miss = !is_hit && present == 0;
  if (is_hit) {
    ++metrics_.hits;
    obs::count("sim.attach.hits");
  } else if (is_miss) {
    ++metrics_.misses;
    obs::count("sim.attach.misses");
  } else {
    ++metrics_.partials;
    obs::count("sim.attach.partials");
  }
  if (timeseries_ != nullptr)
    timeseries_->record_attach(sid, is_hit ? 1 : 0,
                               (!is_hit && !is_miss) ? 1 : 0,
                               is_miss ? 1 : 0);

  client.pending = order_by_canonical(std::move(missing));
  // Mask the execution sees initially: any cached layer may be used, the
  // plan decides. The routed path (if enabled) competes per query. The
  // query-window evaluation itself is deferred: it is pure given the state
  // frozen here, so flush_cold_jobs() fans it out after the attach pass.
  cold_jobs_.push_back({.sid = sid,
                        .lvl = &lvl,
                        .initial_mask = std::move(available),
                        .pending = client.pending,
                        .routed_latency =
                            routed_path_latency(c, previous, interval_index),
                        .link_factor = client.link_factor});
}

void SimulatorImpl::advance_uploads(int interval_index) {
  for (ClientId c = 0; c < static_cast<ClientId>(clients_.size()); ++c) {
    ClientState& client = clients_[static_cast<std::size_t>(c)];
    if (client.current == kNoServer) continue;
    LayerCache& cache = caches_[static_cast<std::size_t>(client.current)];
    if (!client.pending.empty()) {
      client.carry_bytes += static_cast<Bytes>(
          world_.interval * config_.wireless.uplink_bytes_per_sec *
          client.link_factor);
      std::vector<LayerId> arrived;
      while (!client.pending.empty()) {
        const Bytes need =
            world_.model.layer(client.pending.front()).weight_bytes;
        if (client.carry_bytes < need) break;
        client.carry_bytes -= need;
        arrived.push_back(client.pending.front());
        client.pending.erase(client.pending.begin());
      }
      if (client.pending.empty()) client.carry_bytes = 0;
      if (!arrived.empty()) cache.store(c, arrived, interval_index);
    }
    // The attached client keeps its entry alive.
    cache.touch(c, interval_index);
  }
}

bool SimulatorImpl::is_down(ServerId sid, int interval_index) const {
  return down_until_[static_cast<std::size_t>(sid)] > interval_index;
}

void SimulatorImpl::inject_failures(int interval_index) {
  if (config_.server_failure_rate <= 0.0) return;
  for (ServerId s = 0; s < world_.servers.num_servers(); ++s) {
    if (is_down(s, interval_index)) continue;
    if (!rng_.bernoulli(config_.server_failure_rate)) continue;
    ++metrics_.server_failures;
    down_until_[static_cast<std::size_t>(s)] =
        interval_index + config_.server_downtime_intervals;
    // The crash loses every cached layer on the node...
    caches_[static_cast<std::size_t>(s)] = LayerCache(config_.ttl_intervals);
    // ...and drops its clients, who re-attach (cold) next placement pass.
    for (auto& client : clients_) {
      if (client.current != s) continue;
      client.current = kNoServer;
      client.pending.clear();
      client.carry_bytes = 0;
      --attached_[static_cast<std::size_t>(s)];
      ++metrics_.failure_evictions;
    }
  }
}

ServerId SimulatorImpl::choose_server(Point pos, ServerId current,
                                      int interval_index) {
  const double fallback_radius = world_.servers.grid().cell_radius() * 64.0;
  if (config_.selection == ServerSelection::kCurrentCell) {
    ServerId sid = world_.servers.server_at(pos);
    if (sid == kNoServer)
      sid = world_.servers.nearest_server(pos, fallback_radius);
    if (sid != kNoServer && !is_down(sid, interval_index)) return sid;
    // Cell server down (or missing): any live neighbour within Wi-Fi range.
    for (ServerId candidate :
         world_.servers.servers_within(pos, config_.visibility_radius_m))
      if (!is_down(candidate, interval_index)) return candidate;
    return kNoServer;
  }

  // kBestVisible: minimise the GPU-aware plan latency over visible servers,
  // assuming this client would add one unit of load.
  std::vector<ServerId> candidates =
      world_.servers.servers_within(pos, config_.visibility_radius_m);
  if (candidates.empty()) {
    const ServerId nearest =
        world_.servers.nearest_server(pos, fallback_radius);
    if (nearest != kNoServer) candidates.push_back(nearest);
  }
  ServerId best = kNoServer;
  Seconds best_latency = kInfSeconds;
  Seconds current_latency = kInfSeconds;
  bool current_visible = false;
  for (ServerId candidate : candidates) {
    if (is_down(candidate, interval_index)) continue;
    // For the already-attached server the client's own load is included.
    const int extra = candidate == current ? 0 : 1;
    const Seconds latency =
        level(attached_[static_cast<std::size_t>(candidate)] + extra)
            .plan.latency;
    if (candidate == current) {
      current_visible = true;
      current_latency = latency;
    }
    if (latency < best_latency) {
      best_latency = latency;
      best = candidate;
    }
  }
  // Hysteresis: keep the current server unless a visible alternative is
  // meaningfully better — otherwise load ties cause attachment flapping and
  // spurious cold starts.
  if (current_visible && current_latency <= best_latency * 1.15)
    return current;
  return best;
}

std::optional<Point> SimulatorImpl::predict_next(
    const ClientState& client, std::size_t history,
    std::size_t interval_index) const {
  const auto& points = client.trace->points;
  switch (config_.predictor) {
    case PredictorKind::kStationary:
      return points[history - 1];
    case PredictorKind::kOracle:
      return points[std::min(interval_index + 1, points.size() - 1)];
    default: {
      PERDNN_CHECK_MSG(config_.predictor == world_.predictor_kind &&
                           world_.predictor != nullptr,
                       "model-based predictor kind must match the one the "
                       "world was built with");
      const auto n = static_cast<std::size_t>(config_.trajectory_length);
      if (history < n) return std::nullopt;
      return world_.predictor->predict(
          std::span<const Point>(points.data(), history));
    }
  }
}

void SimulatorImpl::proactive_migration(int interval_index) {
  PERDNN_SPAN("sim.migrate");
  for (ClientId c = 0; c < static_cast<ClientId>(clients_.size()); ++c) {
    ClientState& client = clients_[static_cast<std::size_t>(c)];
    const auto& points = client.trace->points;
    const auto history =
        std::min(points.size(), static_cast<std::size_t>(interval_index) + 1);
    if (history == 0 || client.current == kNoServer) continue;

    const std::optional<Point> predicted = predict_next(
        client, history, static_cast<std::size_t>(interval_index));
    if (!predicted) continue;
    // Predictor error meter: the trace itself knows the actual next
    // position, so every prediction yields one |predicted - actual| sample,
    // attributed to the client's current server.
    if (static_cast<std::size_t>(interval_index) + 1 < points.size()) {
      const double error_m = distance(
          *predicted, points[static_cast<std::size_t>(interval_index) + 1]);
      obs::observe("sim.predictor.abs_error_m", error_m);
      if (timeseries_ != nullptr)
        timeseries_->record_predictor_sample(client.current, error_m);
    }
    const std::vector<ServerId> targets =
        world_.servers.servers_within(*predicted, config_.migration_radius_m);

    LayerCache& source_cache =
        caches_[static_cast<std::size_t>(client.current)];
    const std::vector<bool> source_mask =
        source_cache.mask(c, world_.model);

    for (ServerId target : targets) {
      if (target == client.current) continue;  // futile for migration
      if (is_down(target, interval_index)) continue;
      const LoadLevelCache& lvl =
          level(attached_[static_cast<std::size_t>(target)] + 1);

      // Send what the future plan needs and the source actually has.
      std::vector<LayerId> sendable;
      for (LayerId id : lvl.needed)
        if (source_mask[static_cast<std::size_t>(id)]) sendable.push_back(id);
      sendable = order_by_canonical(std::move(sendable));

      // Fractional migration: crowded endpoints cap the migrated bytes to
      // the highest-efficiency prefix.
      const bool capped =
          config_.crowded_byte_budget > 0 &&
          (crowded_[static_cast<std::size_t>(target)] ||
           crowded_[static_cast<std::size_t>(client.current)]);
      if (capped) {
        Bytes used = 0;
        std::size_t keep = 0;
        while (keep < sendable.size()) {
          const Bytes w = world_.model.layer(sendable[keep]).weight_bytes;
          if (used + w > config_.crowded_byte_budget) break;
          used += w;
          ++keep;
        }
        sendable.resize(keep);
      }

      // Store (deduplicating) and account only the bytes that actually
      // crossed the backhaul. Even an empty effective send refreshes TTL
      // (the paper's duplicate-transmission suppression).
      const std::vector<LayerId> added =
          caches_[static_cast<std::size_t>(target)].store(c, sendable,
                                                          interval_index);
      Bytes bytes = 0;
      for (LayerId id : added) bytes += world_.model.layer(id).weight_bytes;
      if (bytes > 0) {
        traffic_.record_transfer(client.current, target, bytes);
        metrics_.total_migrated_bytes += bytes;
        obs::count("sim.migration.bytes", static_cast<double>(bytes));
      }
      obs::count("sim.migration.orders");
      // Recorded even when fully deduplicated (bytes == 0): the order was
      // still issued, only the transfer was suppressed.
      if (timeseries_ != nullptr)
        timeseries_->record_migration(client.current, target, bytes);
    }
  }
}

SimulationMetrics SimulatorImpl::run() {
  PERDNN_SPAN("sim.run");
  std::size_t num_intervals = 0;
  for (const auto& client : clients_)
    num_intervals = std::max(num_intervals, client.trace->points.size());

  if (timeseries_ != nullptr)
    timeseries_->start(world_.servers.num_servers(), world_.interval);

  for (std::size_t k = 0; k < num_intervals; ++k) {
    PERDNN_SPAN("sim.interval");
    const int interval_index = static_cast<int>(k);
    traffic_.begin_interval();
    if (timeseries_ != nullptr) timeseries_->begin_interval(interval_index);
    // The estimate memo is scoped to one statistics interval; levels_ keeps
    // the long-lived per-load results.
    estimate_cache_.invalidate();

    // 0) Failure injection (crashed servers lose caches and clients).
    inject_failures(interval_index);

    // 1) Movement and (re-)attachment.
    for (ClientId c = 0; c < static_cast<ClientId>(clients_.size()); ++c) {
      ClientState& client = clients_[static_cast<std::size_t>(c)];
      if (k >= client.trace->points.size()) {
        // Trace ended: the client leaves the system.
        if (client.current != kNoServer) {
          --attached_[static_cast<std::size_t>(client.current)];
          client.current = kNoServer;
          client.pending.clear();
        }
        continue;
      }
      const Point pos = client.trace->points[k];
      const ServerId sid = choose_server(pos, client.current, interval_index);
      if (sid == kNoServer) continue;  // nothing reachable (outage)
      if (sid != client.current) handle_attach(c, sid, interval_index);
    }
    // 1b) Evaluate this interval's cold-start windows in parallel; results
    //     merge in attach order.
    flush_cold_jobs();

    // 2) Incremental uploads progress; attached entries stay fresh.
    advance_uploads(interval_index);

    // 3) Prediction + proactive migration.
    if (config_.policy == MigrationPolicy::kProactive)
      proactive_migration(interval_index);

    // 4) TTL expiry.
    for (auto& cache : caches_) cache.expire(interval_index);

    if (timeseries_ != nullptr) {
      timeseries_->set_attached(attached_);
      timeseries_->end_interval();
    }
  }
  traffic_.finish();

  metrics_.peak_uplink_mbps = traffic_.global_peak_uplink_mbps();
  metrics_.peak_downlink_mbps = traffic_.global_peak_downlink_mbps();
  metrics_.fraction_servers_within_100mbps =
      traffic_.fraction_servers_within(100.0);
  metrics_.fraction_servers_within_100mbps_at_peak =
      traffic_.fraction_servers_within_at_peak(100.0);
  metrics_.server_peak_uplink_mbps.resize(
      static_cast<std::size_t>(world_.servers.num_servers()));
  for (ServerId s = 0; s < world_.servers.num_servers(); ++s)
    metrics_.server_peak_uplink_mbps[static_cast<std::size_t>(s)] =
        traffic_.peak_uplink_mbps(s);
  metrics_.num_servers = world_.servers.num_servers();
  metrics_.num_clients = static_cast<int>(clients_.size());
  metrics_.num_intervals = static_cast<int>(num_intervals);
  return metrics_;
}

}  // namespace

SimulationMetrics run_simulation(const SimulationConfig& config,
                                 const SimulationWorld& world) {
  return run_simulation(config, world, nullptr);
}

SimulationMetrics run_simulation(const SimulationConfig& config,
                                 const SimulationWorld& world,
                                 obs::SimTimeseries* timeseries) {
  SimulatorImpl impl(config, world, timeseries);
  return impl.run();
}

}  // namespace perdnn
