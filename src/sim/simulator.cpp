#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "common/check.hpp"
#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "device/device_profile.hpp"
#include "estimation/estimate_cache.hpp"
#include "faults/fault_timeline.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "snapshot/snapshot.hpp"

namespace perdnn {

double SimulationMetrics::hit_ratio() const {
  const int denom = hits + misses;
  return denom > 0 ? static_cast<double>(hits) / denom : 0.0;
}

double SimulationMetrics::availability() const {
  const long long denom =
      attached_client_intervals + unreachable_client_intervals;
  return denom > 0
             ? static_cast<double>(attached_client_intervals) / denom
             : 1.0;
}

double SimulationMetrics::offload_ratio() const {
  const long long denom = cold_window_queries + local_fallback_queries;
  return denom > 0 ? static_cast<double>(cold_window_queries) / denom : 1.0;
}

void SimulationConfig::validate() const {
  PERDNN_CHECK_MSG(ttl_intervals >= 1,
                   "ttl_intervals must be >= 1 (got " << ttl_intervals << ")");
  PERDNN_CHECK_MSG(trajectory_length >= 1,
                   "trajectory_length must be >= 1 (got " << trajectory_length
                                                          << ")");
  PERDNN_CHECK_MSG(query_gap >= 0.0,
                   "query_gap must be >= 0 (got " << query_gap << ")");
  PERDNN_CHECK_MSG(migration_radius_m >= 0.0,
                   "migration_radius_m must be >= 0 (got "
                       << migration_radius_m << ")");
  PERDNN_CHECK_MSG(cell_radius_m > 0.0,
                   "cell_radius_m must be > 0 (got " << cell_radius_m << ")");
  PERDNN_CHECK_MSG(visibility_radius_m >= 0.0,
                   "visibility_radius_m must be >= 0 (got "
                       << visibility_radius_m << ")");
  PERDNN_CHECK_MSG(bandwidth_jitter_sigma >= 0.0,
                   "bandwidth_jitter_sigma must be >= 0 (got "
                       << bandwidth_jitter_sigma << ")");
  PERDNN_CHECK_MSG(wireless.uplink_bytes_per_sec > 0.0 &&
                       wireless.downlink_bytes_per_sec > 0.0,
                   "wireless rates must be > 0");
  PERDNN_CHECK_MSG(wireless.rtt >= 0.0,
                   "wireless.rtt must be >= 0 (got " << wireless.rtt << ")");
  PERDNN_CHECK_MSG(server_failure_rate >= 0.0 && server_failure_rate <= 1.0,
                   "server_failure_rate must be a probability in [0, 1] (got "
                       << server_failure_rate << ")");
  PERDNN_CHECK_MSG(server_downtime_intervals >= 1,
                   "server_downtime_intervals must be >= 1 (got "
                       << server_downtime_intervals << ")");
  PERDNN_CHECK_MSG(backhaul_bytes_per_sec > 0.0,
                   "backhaul_bytes_per_sec must be > 0 (got "
                       << backhaul_bytes_per_sec << ")");
  PERDNN_CHECK_MSG(backhaul_rtt >= 0.0,
                   "backhaul_rtt must be >= 0 (got " << backhaul_rtt << ")");
  PERDNN_CHECK_MSG(crowded_byte_budget >= 0,
                   "crowded_byte_budget must be >= 0 (got "
                       << crowded_byte_budget << ")");
  PERDNN_CHECK_MSG(cache_budget_bytes >= 0,
                   "cache_budget_bytes must be >= 0 (got "
                       << cache_budget_bytes << ")");
  PERDNN_CHECK_MSG(migration_retry.max_attempts >= 1,
                   "migration_retry.max_attempts must be >= 1 (got "
                       << migration_retry.max_attempts << ")");
  PERDNN_CHECK_MSG(
      migration_retry.initial_backoff_intervals >= 1,
      "migration_retry.initial_backoff_intervals must be >= 1 (got "
          << migration_retry.initial_backoff_intervals << ")");
  PERDNN_CHECK_MSG(migration_retry.max_backoff_intervals >=
                       migration_retry.initial_backoff_intervals,
                   "migration_retry.max_backoff_intervals must be >= the "
                   "initial backoff");
  PERDNN_CHECK_MSG(
      fault_plan.empty() || server_failure_rate == 0.0,
      "a scripted fault_plan and the legacy server_failure_rate knob cannot "
      "be combined; script the crashes (or use FaultPlan::legacy_crashes)");
}

SimulationWorld build_world(const SimulationConfig& config,
                            const std::vector<Trajectory>& train_traces,
                            const std::vector<Trajectory>& test_traces) {
  PERDNN_SPAN("sim.build_world");
  config.validate();
  PERDNN_CHECK(!train_traces.empty() && !test_traces.empty());
  Rng rng(config.seed);

  SimulationWorld world{.model = build_model(config.model),
                        .client_profile = {},
                        .gpu = nullptr,
                        .estimator = nullptr,
                        .fallback_estimator = nullptr,
                        .servers = ServerMap(config.cell_radius_m),
                        .test_traces = test_traces,
                        .predictor_kind = config.predictor,
                        .predictor = nullptr,
                        .canonical_schedule = {},
                        .interval = test_traces.front().interval};
  world.client_profile =
      profile_on_client(world.model, odroid_xu4_profile());
  world.gpu = std::make_shared<GpuContentionModel>(titan_xp_profile());

  // Offline estimator training: concurrency sweep over this model's layers
  // (the paper trains per-server estimators offline with perf_client).
  ConcurrencyProfiler profiler(world.gpu.get(), rng.fork());
  const DnnModel* models[] = {&world.model};
  ProfilerConfig prof_config;
  prof_config.max_clients = 12;
  prof_config.samples_per_level = 4;
  const auto records = profiler.profile_models(models, prof_config);
  world.estimator = std::make_shared<RandomForestEstimator>();
  Rng train_rng = rng.fork();
  world.estimator->train(records, train_rng);

  // Edge servers: one per cell visited by a replayed user.
  world.servers.allocate_for_visits(all_points(test_traces));

  // Mobility predictor trained on the held-out training split. The
  // stationary and oracle baselines need no model — the simulator resolves
  // them inline from the trace itself.
  switch (config.predictor) {
    case PredictorKind::kSvr:
      world.predictor =
          std::make_shared<SvrPredictor>(config.trajectory_length);
      break;
    case PredictorKind::kMarkov:
      // Discretisation needs the server map; give the predictor its own
      // copy since the world object may be moved after build_world returns.
      world.predictor = std::make_shared<MarkovPredictor>(
          config.trajectory_length,
          std::make_shared<const ServerMap>(world.servers));
      break;
    case PredictorKind::kRnn:
      world.predictor = std::make_shared<RnnPredictor>(
          config.trajectory_length, /*hidden_dim=*/16, /*epochs=*/40);
      break;
    case PredictorKind::kStationary:
    case PredictorKind::kOracle:
      world.predictor = nullptr;
      break;
  }
  if (world.predictor != nullptr) {
    Rng predictor_rng = rng.fork();
    world.predictor->fit(train_traces, predictor_rng);
  }

  // Canonical efficiency-ordered schedule (uncontended plan). The simulator
  // sequences uploads and fractional cuts with this structural order; the
  // exact per-plan order differs negligibly under load.
  Rng stats_rng = rng.fork();
  const GpuStats stats = world.gpu->stats_for_load(1, 1.0, stats_rng);
  PartitionContext context;
  context.model = &world.model;
  context.client_profile = &world.client_profile;
  context.net = config.wireless;
  context.server_time = world.estimator->estimate_model(world.model, stats);
  const PartitionPlan plan = compute_best_plan(context);
  world.canonical_schedule = plan_upload_order(
      context, plan, {.enumeration = UploadEnumeration::kAnchored});

  // Degraded-mode fallback: the load-free LL baseline, trained on the same
  // sweep. Trained last, with a fresh fork, so every pre-existing stream
  // (profiler, forest, predictor, canonical stats) draws exactly the numbers
  // it always did — fault-free runs stay byte-identical.
  world.fallback_estimator = std::make_shared<NeurosurgeonEstimator>();
  Rng fallback_rng = rng.fork();
  world.fallback_estimator->train(records, fallback_rng);
  return world;
}

namespace {

struct ClientState {
  const Trajectory* trace = nullptr;
  ServerId current = kNoServer;
  /// Layers still to upload to the current server, in canonical order.
  std::vector<LayerId> pending;
  /// Wireless bytes banked toward pending.front().
  Bytes carry_bytes = 0;
  /// Actual-vs-nominal wireless rate factor for the current attachment.
  double link_factor = 1.0;
};

/// Per-load-level caches. GPU statistics, estimator outputs, plans and true
/// layer times are deterministic per nominal load level, so the simulator
/// computes them once per level instead of per client-interval.
struct LoadLevelCache {
  GpuStats stats;
  std::vector<Seconds> estimated;  // estimator output, drives the plan
  std::vector<Seconds> true_time;  // ground-truth expected latency
  PartitionPlan plan;
  std::vector<LayerId> needed;     // plan's server-side layers
};

class SimulatorImpl {
 public:
  SimulatorImpl(const SimulationConfig& config, const SimulationWorld& world,
                obs::SimTimeseries* timeseries, obs::Journal* journal)
      : config_(config),
        world_(world),
        timeseries_(timeseries),
        journal_(journal),
        rng_(config.seed ^ 0x5eedf00dULL),
        link_rng_(config.seed ^ 0x11bb77aaULL),
        traffic_(world.servers.num_servers(), world.interval),
        crowded_(static_cast<std::size_t>(world.servers.num_servers()),
                 false),
        dispatcher_(config.migration_retry) {
    for (ServerId s : config.crowded_servers) {
      PERDNN_CHECK(s >= 0 && s < world.servers.num_servers());
      crowded_[static_cast<std::size_t>(s)] = true;
    }
    caches_.assign(static_cast<std::size_t>(world.servers.num_servers()),
                   LayerCache(config.ttl_intervals));
    if (config.cache_budget_bytes > 0) {
      // Per-layer cost model for budget eviction: weight bytes from the
      // model, latency saved from the canonical schedule's per-layer
      // benefit apportionment (layers outside the schedule save nothing).
      std::vector<Bytes> layer_bytes(
          static_cast<std::size_t>(world.model.num_layers()));
      std::vector<double> layer_saved(
          static_cast<std::size_t>(world.model.num_layers()), 0.0);
      for (LayerId id = 0; id < world.model.num_layers(); ++id)
        layer_bytes[static_cast<std::size_t>(id)] =
            world.model.layer(id).weight_bytes;
      for (std::size_t i = 0; i < world.canonical_schedule.order.size(); ++i)
        layer_saved[static_cast<std::size_t>(
            world.canonical_schedule.order[i])] =
            world.canonical_schedule.latency_reduction[i];
      for (LayerCache& cache : caches_) {
        cache.set_budget(config.cache_budget_bytes);
        cache.set_cost_model(layer_bytes, layer_saved);
      }
    }
    cache_evictions_seen_.assign(
        static_cast<std::size_t>(world.servers.num_servers()), 0);
    cache_partials_seen_.assign(
        static_cast<std::size_t>(world.servers.num_servers()), 0);
    attached_.assign(static_cast<std::size_t>(world.servers.num_servers()),
                     0);
    clients_.reserve(world.test_traces.size());
    for (const auto& trace : world.test_traces)
      clients_.push_back({.trace = &trace,
                          .current = kNoServer,
                          .pending = {},
                          .carry_bytes = 0,
                          .link_factor = 1.0});
    for (const auto& client : clients_)
      num_intervals_ = std::max(
          num_intervals_, static_cast<int>(client.trace->points.size()));
    // One fault source: a scripted plan replays as-is; the legacy failure
    // knobs compile to an equivalent plan (validate() rejects mixing them).
    // Either way the draws come from a dedicated seeded stream, so rng_ sees
    // exactly the sequence it sees in a fault-free run.
    FaultPlan plan = config.fault_plan;
    if (plan.empty() && config.server_failure_rate > 0.0)
      plan = FaultPlan::legacy_crashes(
          config.server_failure_rate, config.server_downtime_intervals,
          world.servers.num_servers(), num_intervals_, config.seed);
    timeline_ = FaultTimeline(plan, world.servers.num_servers(),
                              static_cast<int>(clients_.size()));
    fault_plan_ = std::move(plan);
    if (journal_ != nullptr) {
      dispatcher_.set_journal(journal_);
      for (ServerId s = 0; s < world.servers.num_servers(); ++s)
        caches_[static_cast<std::size_t>(s)].set_journal(journal_, s);
    }
    // Pre-size canonical order lookup: position of each layer in the order.
    order_rank_.assign(
        static_cast<std::size_t>(world.model.num_layers()), -1);
    for (std::size_t i = 0; i < world.canonical_schedule.order.size(); ++i)
      order_rank_[static_cast<std::size_t>(
          world.canonical_schedule.order[i])] = static_cast<int>(i);
  }

  SimulationMetrics run(const SimulationRunOptions& options);

 private:
  /// One deferred cold-start window: every input is frozen at attach time,
  /// the (expensive, pure) query-loop evaluation runs later in a parallel
  /// region, and its results merge back in attach order.
  struct ColdJob {
    ClientId client = -1;
    ServerId sid = kNoServer;
    const LoadLevelCache* lvl = nullptr;  // stable: map values never move
    std::vector<bool> initial_mask;
    std::vector<LayerId> pending;
    Seconds routed_latency = kInfSeconds;
    double link_factor = 1.0;
  };
  struct ColdResult {
    long long queries = 0;
    long long routed = 0;
    Seconds latency_sum = 0.0;
  };

  const LoadLevelCache& level(int load);
  /// Like level(), but planned as the master sees it under a telemetry
  /// dropout: the load-free fallback estimator over the stale snapshot.
  /// Ground truth (true_time) is unaffected — only the *plan* degrades.
  const LoadLevelCache& degraded_level(int load);
  /// Rebuilds one levels_ entry from checkpointed GPU statistics — the same
  /// fill as level() minus the RNG draw (the stats ARE the draw).
  void rebuild_level(int load, const GpuStats& stats);
  /// Re-primes every mutable field from a checkpoint; throws
  /// snapshot::SnapshotError on fingerprint/shape mismatch.
  void restore_from(const snapshot::SimSnapshot& snap);
  /// Captures the complete state at an interval boundary, where
  /// `next_interval` is the first interval still to run.
  snapshot::SimSnapshot capture(int next_interval) const;
  void handle_attach(ClientId c, ServerId sid, int interval_index);
  /// Evaluates every ColdJob queued by this interval's attach pass in
  /// parallel and folds the results into metrics_/timeseries_/journal_ in
  /// submission (client) order — bit-identical to the serial interleaving.
  /// Journal events are emitted here, in the serial fold, never from the
  /// worker threads.
  void flush_cold_jobs(int interval_index);
  void advance_uploads(int interval_index);
  void proactive_migration(int interval_index);
  /// Opens this interval's scripted fault windows: crashes wipe caches and
  /// drop clients, disconnects detach their client.
  void apply_faults(int interval_index);
  bool is_down(ServerId sid, int interval_index) const;
  /// Outcome of one attempted layer push across the (possibly degraded)
  /// backhaul.
  struct PushResult {
    bool delivered = false;  ///< the order reached the target (TTL refreshed)
    Bytes sent_bytes = 0;    ///< bytes that actually crossed (post-dedup)
    std::vector<LayerId> overflow;  ///< layers that could not cross
  };
  /// Ships `layers` from `source` to `target` for client `c`, honouring the
  /// backhaul fault state: an outage delivers nothing (and crucially does
  /// NOT refresh the receiver's TTL), a degraded link ships the prefix that
  /// fits the remaining per-link capacity this interval. Stores + accounts
  /// the delivered part.
  PushResult push_layers(ClientId c, ServerId source, ServerId target,
                         std::vector<LayerId> layers, int interval_index);
  /// Parks `layers` in the retry queue.
  void defer_layers(ClientId c, ServerId source, ServerId target,
                    std::vector<LayerId> layers, int interval_index);
  /// Re-attempts every parked order whose backoff elapsed.
  void retry_deferred_migrations(int interval_index);
  /// Local-execution fallback: the client runs every query on its own
  /// hardware for this interval (no reachable live server).
  void run_local_fallback(ClientId c, Point pos, int interval_index);
  Seconds local_query_latency();
  /// Server the client should use at `pos`, honouring the selection policy
  /// and skipping crashed servers; kNoServer if nothing is reachable.
  /// `current` enables switching hysteresis under kBestVisible.
  ServerId choose_server(Point pos, ServerId current, int interval_index);
  /// Predicted next location per the configured predictor kind.
  std::optional<Point> predict_next(const ClientState& client,
                                    std::size_t history,
                                    std::size_t interval_index) const;
  /// Queries completed inside one cold-start window. Pure given the job
  /// (reads only immutable world/config state), so it is safe to evaluate
  /// from worker threads.
  ColdResult cold_window_queries(const ColdJob& job) const;
  /// Per-query latency of offloading to the previous server through the
  /// backhaul; kInfSeconds when unavailable.
  Seconds routed_path_latency(ClientId c, ServerId previous,
                              int interval_index);
  void sort_canonical(std::vector<LayerId>& layers) const;
  std::vector<LayerId> order_by_canonical(std::vector<LayerId> layers) const;

  const SimulationConfig& config_;
  const SimulationWorld& world_;
  obs::SimTimeseries* timeseries_;  // may be null (recording disabled)
  obs::Journal* journal_;           // may be null (journaling disabled)
  /// The effective fault schedule (scripted plan or compiled legacy
  /// crashes), kept for journaling fault apply/clear events.
  FaultPlan fault_plan_;
  Rng rng_;
  Rng link_rng_;  // dedicated stream: jitter draws must not shift the
                  // stats/plan caches of non-jittered runs
  TrafficAccountant traffic_;
  std::vector<bool> crowded_;
  FaultTimeline timeline_;
  MigrationDispatcher dispatcher_;
  int num_intervals_ = 0;
  std::vector<LayerCache> caches_;
  std::vector<int> attached_;
  std::vector<ClientState> clients_;
  std::vector<int> order_rank_;
  std::unordered_map<int, LoadLevelCache> levels_;
  /// Degraded twins of levels_ (telemetry-dropout planning); same stability
  /// guarantees (ColdJob keeps pointers into the map values).
  std::unordered_map<int, LoadLevelCache> degraded_levels_;
  /// Bytes already shipped per degraded link this interval (capacity caps).
  /// Only populated while a backhaul fault is active; cleared per interval.
  std::unordered_map<std::uint64_t, Bytes> link_used_;
  /// Lazily computed per-query latency of fully local execution (< 0 until
  /// first needed; fault-only path, so clean runs never compute it).
  Seconds local_latency_ = -1.0;
  /// Interval-scoped estimator memo behind levels_: invalidated every
  /// interval, so its counters expose how often one interval re-requests the
  /// same (model, stats) estimate. levels_ persists across intervals, so
  /// misses here are rare once the load levels are warm.
  EstimateCache estimate_cache_;
  // Scratch buffers for the per-interval proactive-migration sweep. The
  // sweep runs for every attached client every interval; growing into these
  // instead of allocating fresh vectors keeps the steady-state path
  // allocation-free (bench_micro --json reports allocations per interval).
  std::vector<HexCoord> cells_scratch_;
  std::vector<ServerId> targets_scratch_;
  std::vector<bool> source_mask_scratch_;
  std::vector<LayerId> sendable_scratch_;
  /// Target-cache mask inside push_layers' degraded-link branch.
  std::vector<bool> push_mask_scratch_;
  /// Source-cache mask in routed_path_latency / retry_deferred_migrations
  /// (never live at the same time as push_mask_scratch_'s use).
  std::vector<bool> lookup_mask_scratch_;
  std::vector<ColdJob> cold_jobs_;  // this interval's deferred windows
  /// Cumulative cache counters already folded into metrics_, per server.
  /// The caches restart their counters at 0 on a resumed process while
  /// metrics_ comes back from the snapshot, so per-interval deltas compose
  /// correctly across checkpoint/resume.
  std::vector<long long> cache_evictions_seen_;
  std::vector<long long> cache_partials_seen_;
  SimulationMetrics metrics_;
  /// First interval run() executes; nonzero only after restore_from().
  int start_interval_ = 0;
};

namespace {
/// Fills estimated/true_time/plan/needed for a level whose `stats` are
/// already set — shared by the normal fill (stats freshly drawn) and the
/// checkpoint-restore rebuild (stats read back from the snapshot). Both
/// paths are bit-identical for equal stats.
struct LevelFiller {
  const SimulationConfig& config;
  const SimulationWorld& world;
  EstimateCache& estimate_cache;

  void fill(LoadLevelCache& lvl, int load) const {
    const DnnModel& model = world.model;
    // Per-layer estimator and ground-truth fills are independent; fan them
    // out. Each index writes only its own slot, so the cache is identical
    // at any thread count.
    const auto n = static_cast<std::size_t>(model.num_layers());
    lvl.estimated.resize(n);
    lvl.true_time.resize(n);
    if (fastpath::enabled()) {
      // Memoised batch estimate (bit-identical to the per-index fill
      // below); the ground-truth fill stays a private parallel loop.
      lvl.estimated =
          estimate_cache.estimates(*world.estimator, model, lvl.stats);
      par::parallel_for(n, [&](std::size_t i) {
        const auto id = static_cast<LayerId>(i);
        lvl.true_time[i] = world.gpu->expected_layer_time(
            model.layer(id), model.input_bytes(id),
            static_cast<double>(load));
      });
    } else {
      par::parallel_for(n, [&](std::size_t i) {
        const auto id = static_cast<LayerId>(i);
        const Bytes in_bytes = model.input_bytes(id);
        lvl.estimated[i] =
            world.estimator->estimate(model.layer(id), in_bytes, lvl.stats);
        lvl.true_time[i] = world.gpu->expected_layer_time(
            model.layer(id), in_bytes, static_cast<double>(load));
      });
    }
    PartitionContext context;
    context.model = &model;
    context.client_profile = &world.client_profile;
    context.server_time = lvl.estimated;
    context.net = config.wireless;
    lvl.plan = compute_best_plan(context);
    lvl.needed = lvl.plan.server_layers();
  }
};
}  // namespace

const LoadLevelCache& SimulatorImpl::level(int load) {
  load = std::max(1, load);
  const auto it = levels_.find(load);
  if (it != levels_.end()) return it->second;

  LoadLevelCache lvl;
  lvl.stats = world_.gpu->stats_for_load(
      load, static_cast<double>(load), rng_);
  LevelFiller{config_, world_, estimate_cache_}.fill(lvl, load);
  return levels_.emplace(load, std::move(lvl)).first->second;
}

void SimulatorImpl::rebuild_level(int load, const GpuStats& stats) {
  LoadLevelCache lvl;
  lvl.stats = stats;
  LevelFiller{config_, world_, estimate_cache_}.fill(lvl, load);
  levels_.emplace(load, std::move(lvl));
}

const LoadLevelCache& SimulatorImpl::degraded_level(int load) {
  load = std::max(1, load);
  const auto it = degraded_levels_.find(load);
  if (it != degraded_levels_.end()) return it->second;

  // Ground truth comes from the ordinary level — execution does not care
  // what the master believed. Building it first also keeps the rng_ draw
  // order identical whether or not the dropout window exists.
  const LoadLevelCache& base = level(load);
  LoadLevelCache lvl;
  lvl.stats = base.stats;
  lvl.stats.age_intervals = 1;  // telemetry stopped arriving: snapshot stale
  lvl.true_time = base.true_time;
  const LayerTimeEstimator& fallback =
      world_.fallback_estimator != nullptr
          ? static_cast<const LayerTimeEstimator&>(*world_.fallback_estimator)
          : static_cast<const LayerTimeEstimator&>(*world_.estimator);
  const DnnModel& model = world_.model;
  if (fastpath::enabled()) {
    lvl.estimated = estimate_cache_.estimates(fallback, model, lvl.stats);
  } else {
    lvl.estimated.reserve(static_cast<std::size_t>(model.num_layers()));
    for (LayerId id = 0; id < model.num_layers(); ++id)
      lvl.estimated.push_back(
          fallback.estimate(model.layer(id), model.input_bytes(id),
                            lvl.stats));
  }
  PartitionContext context;
  context.model = &model;
  context.client_profile = &world_.client_profile;
  context.server_time = lvl.estimated;
  context.net = config_.wireless;
  lvl.plan = compute_best_plan(context);
  lvl.needed = lvl.plan.server_layers();
  return degraded_levels_.emplace(load, std::move(lvl)).first->second;
}

void SimulatorImpl::sort_canonical(std::vector<LayerId>& layers) const {
  std::sort(layers.begin(), layers.end(), [&](LayerId a, LayerId b) {
    const int ra = order_rank_[static_cast<std::size_t>(a)];
    const int rb = order_rank_[static_cast<std::size_t>(b)];
    // Layers outside the canonical order go last, in id order.
    if (ra >= 0 && rb >= 0) return ra < rb;
    if (ra >= 0) return true;
    if (rb >= 0) return false;
    return a < b;
  });
}

std::vector<LayerId> SimulatorImpl::order_by_canonical(
    std::vector<LayerId> layers) const {
  sort_canonical(layers);
  return layers;
}

Seconds SimulatorImpl::routed_path_latency(ClientId c, ServerId previous,
                                           int interval_index) {
  if (!config_.routing_fallback || previous == kNoServer ||
      is_down(previous, interval_index))
    return kInfSeconds;
  caches_[static_cast<std::size_t>(previous)].mask_into(c, world_.model,
                                                        lookup_mask_scratch_);
  const std::vector<bool>& prev_mask = lookup_mask_scratch_;
  // The previous server still serves this client remotely, so it keeps the
  // client's unit of load.
  const LoadLevelCache& prev_lvl =
      level(attached_[static_cast<std::size_t>(previous)] + 1);
  PartitionContext routed;
  routed.model = &world_.model;
  routed.client_profile = &world_.client_profile;
  routed.server_time = prev_lvl.true_time;
  routed.net = config_.wireless;
  // Wi-Fi to the new AP, then the backhaul hop: bottleneck bandwidth and
  // summed round-trip time.
  routed.net.uplink_bytes_per_sec = std::min(
      config_.wireless.uplink_bytes_per_sec, config_.backhaul_bytes_per_sec);
  routed.net.downlink_bytes_per_sec =
      std::min(config_.wireless.downlink_bytes_per_sec,
               config_.backhaul_bytes_per_sec);
  routed.net.rtt = config_.wireless.rtt + config_.backhaul_rtt;
  return plan_latency(routed, prev_mask);
}

SimulatorImpl::ColdResult SimulatorImpl::cold_window_queries(
    const ColdJob& job) const {
  const DnnModel& model = world_.model;
  // Execution sees the *actual* wireless rate of this attachment; the
  // master's plan was made against the nominal one.
  PartitionContext context;
  context.model = &model;
  context.client_profile = &world_.client_profile;
  context.server_time = job.lvl->true_time;
  context.net = config_.wireless;
  context.net.uplink_bytes_per_sec *= job.link_factor;
  context.net.downlink_bytes_per_sec *= job.link_factor;
  // Cumulative bytes of the pending upload sequence.
  std::vector<Bytes> cumulative;
  cumulative.reserve(job.pending.size());
  Bytes acc = 0;
  for (LayerId id : job.pending) {
    acc += model.layer(id).weight_bytes;
    cumulative.push_back(acc);
  }

  ColdResult result;
  Seconds now = 0.0;
  std::vector<bool> mask = job.initial_mask;
  std::size_t arrived = 0;
  while (true) {
    const Bytes uploaded = static_cast<Bytes>(
        now * context.net.uplink_bytes_per_sec);
    while (arrived < job.pending.size() && cumulative[arrived] <= uploaded) {
      mask[static_cast<std::size_t>(job.pending[arrived])] = true;
      ++arrived;
    }
    Seconds latency = plan_latency(context, mask);
    // Routing fallback: take the backhaul path to the previous server when
    // it is faster than what the (still warming) new server offers.
    if (job.routed_latency < latency) {
      latency = job.routed_latency;
      if (now + latency <= world_.interval) ++result.routed;
    }
    if (now + latency > world_.interval) break;
    ++result.queries;
    result.latency_sum += latency;
    obs::observe("sim.cold_window.query_latency_s", latency);
    now += latency + config_.query_gap;
  }
  return result;
}

void SimulatorImpl::flush_cold_jobs(int interval_index) {
  if (cold_jobs_.empty()) return;
  const auto results =
      par::parallel_map(cold_jobs_.size(), [&](std::size_t i) {
        return cold_window_queries(cold_jobs_[i]);
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    metrics_.cold_window_queries += results[i].queries;
    metrics_.routed_queries += results[i].routed;
    if (timeseries_ != nullptr)
      timeseries_->record_cold_queries(cold_jobs_[i].sid, results[i].queries,
                                       results[i].latency_sum);
    if (journal_ != nullptr)
      journal_->record({.interval = interval_index,
                        .kind = obs::JournalEventKind::kColdServe,
                        .client = cold_jobs_[i].client,
                        .server = cold_jobs_[i].sid,
                        .detail = static_cast<std::int32_t>(results[i].routed),
                        .aux = static_cast<std::int32_t>(results[i].queries),
                        .value = results[i].latency_sum});
  }
  cold_jobs_.clear();
}

void SimulatorImpl::handle_attach(ClientId c, ServerId sid,
                                  int interval_index) {
  ClientState& client = clients_[static_cast<std::size_t>(c)];
  const ServerId previous = client.current;
  if (client.current != kNoServer)
    --attached_[static_cast<std::size_t>(client.current)];
  client.current = sid;
  ++attached_[static_cast<std::size_t>(sid)];
  client.pending.clear();
  client.carry_bytes = 0;
  client.link_factor =
      config_.bandwidth_jitter_sigma > 0.0
          ? std::clamp(
                std::exp(config_.bandwidth_jitter_sigma * link_rng_.normal()),
                0.3, 2.0)
          : 1.0;
  ++metrics_.server_changes;
  if (journal_ != nullptr) {
    if (previous != kNoServer)
      journal_->record({.interval = interval_index,
                        .kind = obs::JournalEventKind::kDetach,
                        .client = c,
                        .server = previous,
                        .detail = obs::kDetachMoved});
    // Every attach opens a fresh causal chain; all later events stamped
    // with this client's id join it until the next attach.
    journal_->begin_chain(c);
    journal_->record({.interval = interval_index,
                      .kind = obs::JournalEventKind::kAttach,
                      .client = c,
                      .server = sid,
                      .value = client.link_factor});
  }

  LayerCache& cache = caches_[static_cast<std::size_t>(sid)];
  if (config_.policy == MigrationPolicy::kNone) {
    // IONN baseline: always uploads from scratch.
    cache.erase(c);
  }
  cache.touch(c, interval_index);

  // Telemetry dropout at this server: the master plans blind, through the
  // load-free fallback estimator over the stale snapshot.
  const bool degraded = timeline_.telemetry_down(sid, interval_index);
  const LoadLevelCache& lvl =
      degraded ? degraded_level(attached_[static_cast<std::size_t>(sid)])
               : level(attached_[static_cast<std::size_t>(sid)]);
  if (degraded) {
    ++metrics_.degraded_attaches;
    obs::count("sim.attach.degraded");
    if (timeseries_ != nullptr) timeseries_->record_degraded(sid);
  }
  const DnnModel& model = world_.model;

  std::vector<bool> available =
      config_.policy == MigrationPolicy::kOptimal
          ? std::vector<bool>(static_cast<std::size_t>(model.num_layers()),
                              true)
          : cache.mask(c, model);

  // Classify the cold start and collect the layers still to upload.
  int present = 0;
  std::vector<LayerId> missing;
  for (LayerId id : lvl.needed) {
    if (available[static_cast<std::size_t>(id)]) {
      ++present;
    } else {
      missing.push_back(id);
    }
  }
  const bool is_hit = missing.empty();
  const bool is_miss = !is_hit && present == 0;
  if (is_hit) {
    ++metrics_.hits;
    obs::count("sim.attach.hits");
  } else if (is_miss) {
    ++metrics_.misses;
    obs::count("sim.attach.misses");
  } else {
    ++metrics_.partials;
    obs::count("sim.attach.partials");
  }
  if (timeseries_ != nullptr)
    timeseries_->record_attach(sid, is_hit ? 1 : 0,
                               (!is_hit && !is_miss) ? 1 : 0,
                               is_miss ? 1 : 0);

  client.pending = order_by_canonical(std::move(missing));
  if (journal_ != nullptr) {
    Bytes plan_bytes = 0;
    for (LayerId id : client.pending)
      plan_bytes += model.layer(id).weight_bytes;
    journal_->record({.interval = interval_index,
                      .kind = degraded
                                  ? obs::JournalEventKind::kDegradedPlan
                                  : obs::JournalEventKind::kPlan,
                      .client = c,
                      .server = sid,
                      .bytes = plan_bytes,
                      .detail = is_hit ? obs::kPlanHit
                                       : (is_miss ? obs::kPlanMiss
                                                  : obs::kPlanPartial),
                      .aux = static_cast<std::int32_t>(client.pending.size())});
  }
  // Mask the execution sees initially: any cached layer may be used, the
  // plan decides. The routed path (if enabled) competes per query. The
  // query-window evaluation itself is deferred: it is pure given the state
  // frozen here, so flush_cold_jobs() fans it out after the attach pass.
  cold_jobs_.push_back({.client = c,
                        .sid = sid,
                        .lvl = &lvl,
                        .initial_mask = std::move(available),
                        .pending = client.pending,
                        .routed_latency =
                            routed_path_latency(c, previous, interval_index),
                        .link_factor = client.link_factor});
}

void SimulatorImpl::advance_uploads(int interval_index) {
  for (ClientId c = 0; c < static_cast<ClientId>(clients_.size()); ++c) {
    ClientState& client = clients_[static_cast<std::size_t>(c)];
    if (client.current == kNoServer) continue;
    LayerCache& cache = caches_[static_cast<std::size_t>(client.current)];
    if (!client.pending.empty()) {
      client.carry_bytes += static_cast<Bytes>(
          world_.interval * config_.wireless.uplink_bytes_per_sec *
          client.link_factor);
      std::vector<LayerId> arrived;
      while (!client.pending.empty()) {
        const Bytes need =
            world_.model.layer(client.pending.front()).weight_bytes;
        if (client.carry_bytes < need) break;
        client.carry_bytes -= need;
        arrived.push_back(client.pending.front());
        client.pending.erase(client.pending.begin());
      }
      if (client.pending.empty()) client.carry_bytes = 0;
      if (!arrived.empty()) cache.store(c, arrived, interval_index);
    }
    // The attached client keeps its entry alive.
    cache.touch(c, interval_index);
  }
}

bool SimulatorImpl::is_down(ServerId sid, int interval_index) const {
  return timeline_.server_down(sid, interval_index);
}

void SimulatorImpl::apply_faults(int interval_index) {
  if (timeline_.empty()) return;
  if (journal_ != nullptr) {
    // The plan is sorted by (at_interval, ...); its size is tiny relative
    // to the interval count, so a linear scan per interval is fine.
    for (const FaultEvent& ev : fault_plan_.events()) {
      const auto code = static_cast<std::int32_t>(ev.kind);
      if (ev.at_interval == interval_index)
        journal_->record({.interval = interval_index,
                          .kind = obs::JournalEventKind::kFaultApplied,
                          .client = ev.client,
                          .server = ev.server,
                          .peer = ev.peer,
                          .detail = code,
                          .aux = ev.duration_intervals,
                          .value = ev.severity});
      if (ev.at_interval + ev.duration_intervals == interval_index)
        journal_->record({.interval = interval_index,
                          .kind = obs::JournalEventKind::kFaultCleared,
                          .client = ev.client,
                          .server = ev.server,
                          .peer = ev.peer,
                          .detail = code});
    }
  }
  for (ServerId s : timeline_.crashes_starting_at(interval_index)) {
    ++metrics_.server_failures;
    obs::count("sim.fault.server_crashes");
    // The crash loses every cached layer on the node (journalled per entry
    // in client order; TTL, journal binding and budget survive the wipe)...
    caches_[static_cast<std::size_t>(s)].wipe(interval_index);
    // ...and drops its clients, who re-attach (cold) next placement pass.
    for (ClientId c = 0; c < static_cast<ClientId>(clients_.size()); ++c) {
      ClientState& client = clients_[static_cast<std::size_t>(c)];
      if (client.current != s) continue;
      if (journal_ != nullptr)
        journal_->record({.interval = interval_index,
                          .kind = obs::JournalEventKind::kDetach,
                          .client = c,
                          .server = s,
                          .detail = obs::kDetachCrash});
      client.current = kNoServer;
      client.pending.clear();
      client.carry_bytes = 0;
      --attached_[static_cast<std::size_t>(s)];
      ++metrics_.failure_evictions;
    }
  }
  for (ClientId c : timeline_.disconnects_starting_at(interval_index)) {
    ++metrics_.client_disconnect_events;
    obs::count("sim.fault.client_disconnects");
    ClientState& client = clients_[static_cast<std::size_t>(c)];
    if (client.current == kNoServer) continue;
    if (journal_ != nullptr)
      journal_->record({.interval = interval_index,
                        .kind = obs::JournalEventKind::kDetach,
                        .client = c,
                        .server = client.current,
                        .detail = obs::kDetachDisconnect});
    --attached_[static_cast<std::size_t>(client.current)];
    client.current = kNoServer;
    client.pending.clear();
    client.carry_bytes = 0;
  }
}

namespace {
/// Unordered link id: the capacity of a degraded backhaul link is shared by
/// both directions.
std::uint64_t link_key(ServerId a, ServerId b) {
  const auto lo =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(std::min(a, b)));
  const auto hi =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(std::max(a, b)));
  return (hi << 32) | lo;
}
}  // namespace

SimulatorImpl::PushResult SimulatorImpl::push_layers(
    ClientId c, ServerId source, ServerId target,
    std::vector<LayerId> layers, int interval_index) {
  const DnnModel& model = world_.model;
  LayerCache& target_cache = caches_[static_cast<std::size_t>(target)];
  const double factor =
      timeline_.any_backhaul_fault(interval_index)
          ? timeline_.backhaul_factor(source, target, interval_index)
          : 1.0;
  PushResult result;
  if (factor <= 0.0) {
    // Outage: no packet crosses — not even a TTL-refresh order.
    result.overflow = std::move(layers);
    return result;
  }
  std::vector<LayerId> send;
  if (factor >= 1.0) {
    send = std::move(layers);
  } else {
    // Degraded link: the prefix (canonical efficiency order) that fits the
    // remaining shared per-link capacity this interval. Layers the target
    // already holds cost no capacity (dedup suppresses the transfer).
    target_cache.mask_into(c, model, push_mask_scratch_);
    const std::vector<bool>& present = push_mask_scratch_;
    const Bytes cap = static_cast<Bytes>(
        factor * config_.backhaul_bytes_per_sec * world_.interval);
    Bytes& used = link_used_[link_key(source, target)];
    bool full = false;
    for (LayerId id : layers) {
      const Bytes w = present[static_cast<std::size_t>(id)]
                          ? 0
                          : model.layer(id).weight_bytes;
      if (full || used + w > cap) {
        full = true;
        result.overflow.push_back(id);
        continue;
      }
      used += w;
      send.push_back(id);
    }
    if (send.empty() && !result.overflow.empty()) return result;  // capacity gone
  }
  // Delivered (an empty `send` is a pure TTL-refresh order): store dedups
  // and refreshes the receiver's TTL; only bytes that actually crossed are
  // accounted.
  result.delivered = true;
  const auto num_sent = static_cast<std::int32_t>(send.size());
  const std::vector<LayerId> added =
      target_cache.store(c, send, interval_index);
  for (LayerId id : added) result.sent_bytes += model.layer(id).weight_bytes;
  if (journal_ != nullptr)
    journal_->record({.interval = interval_index,
                      .kind = obs::JournalEventKind::kMigrationPushed,
                      .client = c,
                      .server = source,
                      .peer = target,
                      .bytes = result.sent_bytes,
                      .aux = num_sent});
  if (result.sent_bytes > 0) {
    traffic_.record_transfer(source, target, result.sent_bytes);
    metrics_.total_migrated_bytes += result.sent_bytes;
    obs::count("sim.migration.bytes",
               static_cast<double>(result.sent_bytes));
  }
  return result;
}

void SimulatorImpl::defer_layers(ClientId c, ServerId source, ServerId target,
                                 std::vector<LayerId> layers,
                                 int interval_index) {
  Bytes bytes = 0;
  for (LayerId id : layers) bytes += world_.model.layer(id).weight_bytes;
  if (timeseries_ != nullptr) timeseries_->record_deferred(source, bytes);
  dispatcher_.defer(c, source, target, std::move(layers), bytes,
                    interval_index);
}

void SimulatorImpl::retry_deferred_migrations(int interval_index) {
  for (DeferredMigration& order : dispatcher_.due(interval_index)) {
    // A crashed endpoint can't take part: the target lost its radio, the
    // source lost the cache it was supposed to ship from.
    if (timeline_.server_down(order.source, interval_index) ||
        timeline_.server_down(order.target, interval_index)) {
      dispatcher_.fail(std::move(order), interval_index);
      continue;
    }
    // Only what the source still holds is sendable (TTL expiry or a crash
    // wipe may have eaten the order since it was parked).
    caches_[static_cast<std::size_t>(order.source)].mask_into(
        order.client, world_.model, lookup_mask_scratch_);
    const std::vector<bool>& source_mask = lookup_mask_scratch_;
    std::vector<LayerId> layers;
    for (LayerId id : order.layers)
      if (source_mask[static_cast<std::size_t>(id)]) layers.push_back(id);
    if (layers.empty()) {
      // Nothing left to send: the order dissolves without a transfer.
      if (journal_ != nullptr)
        journal_->record({.interval = interval_index,
                          .kind = obs::JournalEventKind::kMigrationDropped,
                          .client = order.client,
                          .server = order.source,
                          .peer = order.target,
                          .bytes = order.bytes,
                          .detail = order.attempts,
                          .aux = obs::kDropDissolved});
      dispatcher_.succeed(order);
      continue;
    }
    PushResult result = push_layers(order.client, order.source, order.target,
                                    std::move(layers), interval_index);
    if (!result.delivered) {
      dispatcher_.fail(std::move(order), interval_index);
      continue;
    }
    dispatcher_.succeed(order);
    obs::count("sim.migration.orders");
    if (timeseries_ != nullptr)
      timeseries_->record_migration(order.source, order.target,
                                    result.sent_bytes);
    if (!result.overflow.empty())
      defer_layers(order.client, order.source, order.target,
                   std::move(result.overflow), interval_index);
  }
}

Seconds SimulatorImpl::local_query_latency() {
  if (local_latency_ < 0.0) {
    PartitionContext context;
    context.model = &world_.model;
    context.client_profile = &world_.client_profile;
    context.server_time.assign(
        static_cast<std::size_t>(world_.model.num_layers()), 0.0);
    context.net = config_.wireless;
    local_latency_ = local_only_latency(context);
    PERDNN_CHECK_MSG(local_latency_ > 0.0,
                     "local-only execution latency must be positive");
  }
  return local_latency_;
}

void SimulatorImpl::run_local_fallback(ClientId c, Point pos,
                                       int interval_index) {
  const Seconds latency = local_query_latency();
  long long queries = 0;
  Seconds now = 0.0;
  while (now + latency <= world_.interval) {
    ++queries;
    now += latency + config_.query_gap;
  }
  if (queries == 0) return;  // a single local query outlasts the interval
  const Seconds latency_sum = static_cast<double>(queries) * latency;
  metrics_.local_fallback_queries += queries;
  metrics_.local_latency_sum_s += latency_sum;
  obs::count("sim.local.queries", static_cast<double>(queries));
  if (timeseries_ != nullptr || journal_ != nullptr) {
    // Attribute to the nearest server (the one the client *would* use) so
    // the rows keep reconciling with the aggregate metrics.
    ServerId sid = world_.servers.server_at(pos);
    if (sid == kNoServer) {
      sid = world_.servers.nearest_server(
          pos, world_.servers.grid().cell_radius() * 64.0);
    }
    if (sid == kNoServer) sid = 0;
    if (timeseries_ != nullptr)
      timeseries_->record_local_queries(sid, queries, latency_sum);
    if (journal_ != nullptr)
      journal_->record({.interval = interval_index,
                        .kind = obs::JournalEventKind::kLocalFallback,
                        .client = c,
                        .server = sid,
                        .aux = static_cast<std::int32_t>(queries),
                        .value = latency_sum});
  }
}

ServerId SimulatorImpl::choose_server(Point pos, ServerId current,
                                      int interval_index) {
  const double fallback_radius = world_.servers.grid().cell_radius() * 64.0;
  if (config_.selection == ServerSelection::kCurrentCell) {
    ServerId sid = world_.servers.server_at(pos);
    if (sid == kNoServer)
      sid = world_.servers.nearest_server(pos, fallback_radius);
    if (sid != kNoServer && !is_down(sid, interval_index)) return sid;
    // Cell server down (or missing): any live neighbour within Wi-Fi range.
    for (ServerId candidate :
         world_.servers.servers_within(pos, config_.visibility_radius_m))
      if (!is_down(candidate, interval_index)) return candidate;
    return kNoServer;
  }

  // kBestVisible: minimise the GPU-aware plan latency over visible servers,
  // assuming this client would add one unit of load.
  std::vector<ServerId> candidates =
      world_.servers.servers_within(pos, config_.visibility_radius_m);
  if (candidates.empty()) {
    const ServerId nearest =
        world_.servers.nearest_server(pos, fallback_radius);
    if (nearest != kNoServer) candidates.push_back(nearest);
  }
  ServerId best = kNoServer;
  Seconds best_latency = kInfSeconds;
  Seconds current_latency = kInfSeconds;
  bool current_visible = false;
  for (ServerId candidate : candidates) {
    if (is_down(candidate, interval_index)) continue;
    // For the already-attached server the client's own load is included.
    const int extra = candidate == current ? 0 : 1;
    const int load = attached_[static_cast<std::size_t>(candidate)] + extra;
    // The master compares the latencies it can *predict*: a telemetry-dark
    // candidate is judged by its degraded (load-free) plan.
    const Seconds latency =
        (timeline_.telemetry_down(candidate, interval_index)
             ? degraded_level(load)
             : level(load))
            .plan.latency;
    if (candidate == current) {
      current_visible = true;
      current_latency = latency;
    }
    if (latency < best_latency) {
      best_latency = latency;
      best = candidate;
    }
  }
  // Hysteresis: keep the current server unless a visible alternative is
  // meaningfully better — otherwise load ties cause attachment flapping and
  // spurious cold starts.
  if (current_visible && current_latency <= best_latency * 1.15)
    return current;
  return best;
}

std::optional<Point> SimulatorImpl::predict_next(
    const ClientState& client, std::size_t history,
    std::size_t interval_index) const {
  const auto& points = client.trace->points;
  switch (config_.predictor) {
    case PredictorKind::kStationary:
      return points[history - 1];
    case PredictorKind::kOracle:
      return points[std::min(interval_index + 1, points.size() - 1)];
    default: {
      PERDNN_CHECK_MSG(config_.predictor == world_.predictor_kind &&
                           world_.predictor != nullptr,
                       "model-based predictor kind must match the one the "
                       "world was built with");
      const auto n = static_cast<std::size_t>(config_.trajectory_length);
      if (history < n) return std::nullopt;
      return world_.predictor->predict(
          std::span<const Point>(points.data(), history));
    }
  }
}

void SimulatorImpl::proactive_migration(int interval_index) {
  PERDNN_SPAN("sim.migrate");
  for (ClientId c = 0; c < static_cast<ClientId>(clients_.size()); ++c) {
    ClientState& client = clients_[static_cast<std::size_t>(c)];
    const auto& points = client.trace->points;
    const auto history =
        std::min(points.size(), static_cast<std::size_t>(interval_index) + 1);
    if (history == 0 || client.current == kNoServer) continue;

    const std::optional<Point> predicted = predict_next(
        client, history, static_cast<std::size_t>(interval_index));
    if (!predicted) continue;
    // Predictor error meter: the trace itself knows the actual next
    // position, so every prediction yields one |predicted - actual| sample,
    // attributed to the client's current server.
    if (static_cast<std::size_t>(interval_index) + 1 < points.size()) {
      const double error_m = distance(
          *predicted, points[static_cast<std::size_t>(interval_index) + 1]);
      obs::observe("sim.predictor.abs_error_m", error_m);
      if (timeseries_ != nullptr)
        timeseries_->record_predictor_sample(client.current, error_m);
    }
    world_.servers.servers_within_into(*predicted, config_.migration_radius_m,
                                       cells_scratch_, targets_scratch_);

    LayerCache& source_cache =
        caches_[static_cast<std::size_t>(client.current)];
    source_cache.mask_into(c, world_.model, source_mask_scratch_);
    const std::vector<bool>& source_mask = source_mask_scratch_;

    for (ServerId target : targets_scratch_) {
      if (target == client.current) continue;  // futile for migration
      if (is_down(target, interval_index)) continue;
      const int load = attached_[static_cast<std::size_t>(target)] + 1;
      const LoadLevelCache& lvl =
          timeline_.telemetry_down(target, interval_index)
              ? degraded_level(load)
              : level(load);

      // Send what the future plan needs and the source actually has.
      // Candidates accumulate in a scratch vector so the (common) futile
      // and truncated-to-nothing targets cost no allocation; a real vector
      // is only materialized once an order is actually issued.
      sendable_scratch_.clear();
      for (LayerId id : lvl.needed)
        if (source_mask[static_cast<std::size_t>(id)])
          sendable_scratch_.push_back(id);
      // Futile order: the source holds nothing the future plan needs, so no
      // layer could ever ship. Don't issue (or count, or record) an order
      // that cannot move a byte.
      if (sendable_scratch_.empty()) continue;
      sort_canonical(sendable_scratch_);
      if (journal_ != nullptr) {
        Bytes planned_bytes = 0;
        for (LayerId id : sendable_scratch_)
          planned_bytes += world_.model.layer(id).weight_bytes;
        journal_->record(
            {.interval = interval_index,
             .kind = obs::JournalEventKind::kMigrationPlanned,
             .client = c,
             .server = client.current,
             .peer = target,
             .bytes = planned_bytes,
             .aux = static_cast<std::int32_t>(sendable_scratch_.size())});
      }

      // Fractional migration: crowded endpoints cap the migrated bytes to
      // the highest-efficiency prefix.
      const bool capped =
          config_.crowded_byte_budget > 0 &&
          (crowded_[static_cast<std::size_t>(target)] ||
           crowded_[static_cast<std::size_t>(client.current)]);
      if (capped) {
        Bytes used = 0;
        std::size_t keep = 0;
        while (keep < sendable_scratch_.size()) {
          const Bytes w =
              world_.model.layer(sendable_scratch_[keep]).weight_bytes;
          if (used + w > config_.crowded_byte_budget) break;
          used += w;
          ++keep;
        }
        if (keep == 0) {
          // The budget is smaller than every candidate layer: the order
          // would truncate to nothing. Count it instead of silently issuing
          // an empty send.
          ++metrics_.migrations_truncated;
          obs::count("sim.migration.truncated");
          continue;
        }
        sendable_scratch_.resize(keep);
      }
      std::vector<LayerId> sendable(sendable_scratch_.begin(),
                                    sendable_scratch_.end());

      // Fault-aware delivery. On a healthy link this stores (deduplicating)
      // and accounts only the bytes that actually crossed the backhaul; even
      // an empty effective send refreshes TTL (the paper's duplicate-
      // transmission suppression). A backhaul outage defers the whole order
      // into the retry queue — and crucially does NOT refresh the receiver's
      // TTL; a degraded link ships what fits and defers the overflow.
      PushResult result = push_layers(
          c, client.current, target, std::move(sendable), interval_index);
      if (!result.overflow.empty())
        defer_layers(c, client.current, target, std::move(result.overflow),
                     interval_index);
      obs::count("sim.migration.orders");
      // Recorded even when fully deduplicated (bytes == 0): the order was
      // still issued, only the transfer was suppressed.
      if (timeseries_ != nullptr)
        timeseries_->record_migration(client.current, target,
                                      result.sent_bytes);
    }
  }
}

snapshot::SimSnapshot SimulatorImpl::capture(int next_interval) const {
  snapshot::SimSnapshot snap;
  snap.config_fingerprint = snapshot::config_fingerprint(config_, world_);
  snap.next_interval = next_interval;
  snap.num_intervals = num_intervals_;
  snap.rng = rng_.state();
  snap.link_rng = link_rng_.state();
  snap.caches.reserve(caches_.size());
  for (const LayerCache& cache : caches_)
    snap.caches.push_back(cache.export_entries());
  snap.dispatcher = dispatcher_.state();
  snap.traffic = traffic_.state();
  snap.attached = attached_;
  snap.clients.reserve(clients_.size());
  for (const ClientState& client : clients_)
    snap.clients.push_back({.current = client.current,
                            .pending = client.pending,
                            .carry_bytes = client.carry_bytes,
                            .link_factor = client.link_factor});
  // Only the stats survive: they carry the RNG draw, and everything else in
  // a level is a deterministic function of them (rebuilt on restore).
  // Sorted by load so the snapshot bytes don't depend on hash-map order.
  for (const auto& [load, lvl] : levels_)
    snap.levels.push_back({.load = load, .stats = lvl.stats});
  std::sort(snap.levels.begin(), snap.levels.end(),
            [](const auto& a, const auto& b) { return a.load < b.load; });
  for (const auto& [load, lvl] : degraded_levels_)
    snap.degraded_levels.push_back({.load = load, .stats = lvl.stats});
  std::sort(snap.degraded_levels.begin(), snap.degraded_levels.end(),
            [](const auto& a, const auto& b) { return a.load < b.load; });
  snap.estimate_cache_hits = estimate_cache_.hits();
  snap.estimate_cache_misses = estimate_cache_.misses();
  snap.metrics = metrics_;
  if (timeseries_ != nullptr) {
    snap.has_timeseries = true;
    snap.timeseries_rows = timeseries_->rows();
  }
  if (journal_ != nullptr) {
    snap.has_journal = true;
    snap.journal = journal_->state();
  }
  return snap;
}

void SimulatorImpl::restore_from(const snapshot::SimSnapshot& snap) {
  const auto servers = static_cast<std::size_t>(world_.servers.num_servers());
  if (snap.config_fingerprint != snapshot::config_fingerprint(config_, world_))
    throw snapshot::SnapshotError(
        "snapshot: config fingerprint mismatch — this checkpoint belongs to "
        "a different scenario (config, fault plan, traces, or world)");
  if (snap.num_intervals != num_intervals_ ||
      snap.next_interval < 0 || snap.next_interval > num_intervals_ ||
      snap.caches.size() != servers || snap.attached.size() != servers ||
      snap.clients.size() != clients_.size())
    throw snapshot::SnapshotError(
        "snapshot: state shape does not match the world");
  rng_.restore(snap.rng);
  link_rng_.restore(snap.link_rng);
  for (std::size_t s = 0; s < servers; ++s)
    caches_[s].restore_entries(snap.caches[s]);
  dispatcher_.restore(snap.dispatcher);
  traffic_.restore(snap.traffic);
  attached_ = snap.attached;
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    const snapshot::ClientSnapshot& cs = snap.clients[c];
    if (cs.current != kNoServer &&
        (cs.current < 0 || cs.current >= world_.servers.num_servers()))
      throw snapshot::SnapshotError(
          "snapshot: client attached to an out-of-range server");
    clients_[c].current = cs.current;
    clients_[c].pending = cs.pending;
    clients_[c].carry_bytes = cs.carry_bytes;
    clients_[c].link_factor = cs.link_factor;
  }
  // Rebuild the level caches from the checkpointed GPU statistics: base
  // levels first (degraded ones read their ground truth from them). Neither
  // rebuild touches rng_ — the stats are the only draw, and they came from
  // the snapshot. The estimate-cache counters are restored afterwards
  // because the rebuilds go through the cache and would inflate them.
  levels_.clear();
  degraded_levels_.clear();
  for (const snapshot::LoadLevelSnapshot& lvl : snap.levels)
    rebuild_level(lvl.load, lvl.stats);
  for (const snapshot::LoadLevelSnapshot& lvl : snap.degraded_levels) {
    if (levels_.find(std::max(1, lvl.load)) == levels_.end())
      throw snapshot::SnapshotError(
          "snapshot: degraded level without its base level");
    degraded_level(lvl.load);
  }
  estimate_cache_.invalidate();
  estimate_cache_.set_counters(snap.estimate_cache_hits,
                               snap.estimate_cache_misses);
  metrics_ = snap.metrics;
  start_interval_ = snap.next_interval;
  if (journal_ != nullptr && snap.has_journal) journal_->restore(snap.journal);
}

SimulationMetrics SimulatorImpl::run(const SimulationRunOptions& options) {
  PERDNN_SPAN("sim.run");
  if (timeseries_ != nullptr && config_.cache_budget_bytes > 0)
    timeseries_->enable_cache_columns();
  if (options.resume_from != nullptr) {
    restore_from(*options.resume_from);
    if (timeseries_ != nullptr)
      timeseries_->restore(world_.servers.num_servers(), world_.interval,
                           options.resume_from->timeseries_rows,
                           start_interval_);
    // Meta event: excluded from the main stream (and from snapshots), so a
    // resumed journal stays byte-identical to an uninterrupted one.
    if (journal_ != nullptr)
      journal_->record_meta(
          {.interval = start_interval_,
           .kind = obs::JournalEventKind::kCheckpointResume});
  } else if (timeseries_ != nullptr) {
    timeseries_->start(world_.servers.num_servers(), world_.interval);
  }

  const auto num_intervals = static_cast<std::size_t>(num_intervals_);
  for (std::size_t k = static_cast<std::size_t>(start_interval_);
       k < num_intervals; ++k) {
    PERDNN_SPAN("sim.interval");
    const int interval_index = static_cast<int>(k);
    traffic_.begin_interval();
    if (timeseries_ != nullptr) timeseries_->begin_interval(interval_index);
    // The estimate memo is scoped to one statistics interval; levels_ keeps
    // the long-lived per-load results.
    estimate_cache_.invalidate();

    // 0) Scripted fault windows open (crashed servers lose caches and
    //    clients, disconnecting clients detach).
    apply_faults(interval_index);

    // 1) Movement and (re-)attachment.
    for (ClientId c = 0; c < static_cast<ClientId>(clients_.size()); ++c) {
      ClientState& client = clients_[static_cast<std::size_t>(c)];
      if (k >= client.trace->points.size()) {
        // Trace ended: the client leaves the system.
        if (client.current != kNoServer) {
          if (journal_ != nullptr)
            journal_->record({.interval = interval_index,
                              .kind = obs::JournalEventKind::kDetach,
                              .client = c,
                              .server = client.current,
                              .detail = obs::kDetachTraceEnd});
          --attached_[static_cast<std::size_t>(client.current)];
          client.current = kNoServer;
          client.pending.clear();
        }
        continue;
      }
      if (timeline_.client_offline(c, interval_index)) {
        // Scripted disconnect: radio off, nothing happens this interval
        // (apply_faults already detached the client at the window start).
        ++metrics_.offline_client_intervals;
        continue;
      }
      const Point pos = client.trace->points[k];
      const ServerId sid = choose_server(pos, client.current, interval_index);
      if (sid == kNoServer) {
        // No reachable live server (outage): graceful degradation to fully
        // local execution for this interval.
        if (client.current != kNoServer) {
          if (journal_ != nullptr)
            journal_->record({.interval = interval_index,
                              .kind = obs::JournalEventKind::kDetach,
                              .client = c,
                              .server = client.current,
                              .detail = obs::kDetachUnreachable});
          --attached_[static_cast<std::size_t>(client.current)];
          client.current = kNoServer;
          client.pending.clear();
          client.carry_bytes = 0;
        }
        ++metrics_.unreachable_client_intervals;
        run_local_fallback(c, pos, interval_index);
        continue;
      }
      ++metrics_.attached_client_intervals;
      if (sid != client.current) handle_attach(c, sid, interval_index);
    }
    // 1b) Evaluate this interval's cold-start windows in parallel; results
    //     merge in attach order.
    flush_cold_jobs(interval_index);

    // 2) Incremental uploads progress; attached entries stay fresh.
    advance_uploads(interval_index);

    // 3) Parked migration orders retry first (oldest backlog gets freed
    //    capacity), then prediction + proactive migration.
    if (config_.policy == MigrationPolicy::kProactive) {
      link_used_.clear();
      retry_deferred_migrations(interval_index);
      proactive_migration(interval_index);
    }

    // 4) TTL expiry.
    for (auto& cache : caches_) cache.expire(interval_index);

    // 5) Budgeted-cache accounting (skipped entirely for unbudgeted runs,
    //    which stay byte-identical to builds without the knob).
    if (config_.cache_budget_bytes > 0) {
      Bytes resident = 0;
      for (ServerId s = 0; s < world_.servers.num_servers(); ++s) {
        LayerCache& cache = caches_[static_cast<std::size_t>(s)];
        PERDNN_CHECK_MSG(cache.total_bytes() <= config_.cache_budget_bytes,
                         "cache budget invariant violated on server " << s);
        resident += cache.total_bytes();
        const long long dev =
            cache.evictions() - cache_evictions_seen_[static_cast<std::size_t>(s)];
        const long long dps =
            cache.partial_stores() -
            cache_partials_seen_[static_cast<std::size_t>(s)];
        cache_evictions_seen_[static_cast<std::size_t>(s)] = cache.evictions();
        cache_partials_seen_[static_cast<std::size_t>(s)] =
            cache.partial_stores();
        metrics_.cache_evictions += dev;
        metrics_.cache_partial_stores += dps;
        if (dev > 0)
          obs::count("sim.cache.evictions", static_cast<double>(dev));
        if (dps > 0)
          obs::count("sim.cache.partial_stores", static_cast<double>(dps));
        if (timeseries_ != nullptr)
          timeseries_->record_cache(s,
                                    static_cast<std::int64_t>(cache.total_bytes()),
                                    static_cast<int>(dev),
                                    static_cast<int>(dps));
      }
      metrics_.peak_cache_bytes =
          std::max(metrics_.peak_cache_bytes, resident);
    }

    metrics_.peak_deferred_backlog_bytes = std::max(
        metrics_.peak_deferred_backlog_bytes, dispatcher_.backlog_bytes());
    if (timeseries_ != nullptr) {
      timeseries_->set_attached(attached_);
      timeseries_->end_interval();
    }

    // Interval boundary: the checkpoint hook. Everything transient is
    // settled here (cold_jobs_ flushed, the timeseries interval closed), so
    // a snapshot taken now resumes byte-identically.
    const int next_interval = interval_index + 1;
    const bool stop_here = options.stop_after_interval == interval_index;
    const bool periodic = options.checkpoint_every > 0 &&
                          next_interval % options.checkpoint_every == 0 &&
                          next_interval < num_intervals_;
    if (stop_here || periodic) {
      snapshot::SimSnapshot snap = capture(next_interval);
      if (!options.checkpoint_path.empty())
        snapshot::save(snap, options.checkpoint_path);
      if (options.capture_out != nullptr)
        *options.capture_out = std::move(snap);
      obs::count("sim.snapshot.captured");
      if (journal_ != nullptr)
        journal_->record_meta({.interval = interval_index,
                               .kind = obs::JournalEventKind::kCheckpointSave,
                               .aux = next_interval});
    }
    if (stop_here) return metrics_;  // partial: caller resumes later
  }
  traffic_.finish();

  metrics_.migrations_deferred = dispatcher_.deferred_orders();
  metrics_.migration_retries = dispatcher_.retries();
  metrics_.migrations_abandoned = dispatcher_.abandoned_orders();
  metrics_.deferred_migration_bytes = dispatcher_.total_deferred_bytes();
  metrics_.abandoned_migration_bytes = dispatcher_.abandoned_bytes();

  metrics_.peak_uplink_mbps = traffic_.global_peak_uplink_mbps();
  metrics_.peak_downlink_mbps = traffic_.global_peak_downlink_mbps();
  metrics_.fraction_servers_within_100mbps =
      traffic_.fraction_servers_within(100.0);
  metrics_.fraction_servers_within_100mbps_at_peak =
      traffic_.fraction_servers_within_at_peak(100.0);
  metrics_.server_peak_uplink_mbps.resize(
      static_cast<std::size_t>(world_.servers.num_servers()));
  for (ServerId s = 0; s < world_.servers.num_servers(); ++s)
    metrics_.server_peak_uplink_mbps[static_cast<std::size_t>(s)] =
        traffic_.peak_uplink_mbps(s);
  metrics_.num_servers = world_.servers.num_servers();
  metrics_.num_clients = static_cast<int>(clients_.size());
  metrics_.num_intervals = static_cast<int>(num_intervals);
  return metrics_;
}

}  // namespace

SimulationMetrics run_simulation(const SimulationConfig& config,
                                 const SimulationWorld& world) {
  return run_simulation(config, world, nullptr, {});
}

SimulationMetrics run_simulation(const SimulationConfig& config,
                                 const SimulationWorld& world,
                                 obs::SimTimeseries* timeseries) {
  return run_simulation(config, world, timeseries, {});
}

SimulationMetrics run_simulation(const SimulationConfig& config,
                                 const SimulationWorld& world,
                                 obs::SimTimeseries* timeseries,
                                 const SimulationRunOptions& options) {
  config.validate();
  SimulatorImpl impl(config, world, timeseries, options.journal);
  return impl.run(options);
}

}  // namespace perdnn
