#include "sim/shard_world.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/check.hpp"
#include "common/fastpath.hpp"
#include "common/rng.hpp"
#include "common/wire.hpp"
#include "device/profiler.hpp"
#include "estimation/estimate_cache.hpp"

namespace perdnn {

namespace {

constexpr double kSqrt3 = 1.7320508075688772;

[[noreturn]] void bad_field(const std::string& what) {
  throw std::logic_error("ShardWorldConfig: " + what);
}

int floor_mod2(int v) { return ((v % 2) + 2) % 2; }

}  // namespace

void ShardWorldConfig::validate() const {
  if (tiles_x <= 0 || tiles_y <= 0)
    bad_field("tiles_x/tiles_y must be positive");
  if (cell_radius_m <= 0.0) bad_field("cell_radius_m must be positive");
  if (num_clients <= 0) bad_field("num_clients must be positive");
  if (num_intervals <= 0) bad_field("num_intervals must be positive");
  if (interval_s <= 0.0) bad_field("interval_s must be positive");
  if (query_gap < 0.0) bad_field("query_gap must be non-negative");
  if (wireless.uplink_bytes_per_sec <= 0.0 ||
      wireless.downlink_bytes_per_sec <= 0.0)
    bad_field("wireless rates must be positive");
  if (migration_radius_m < 0.0)
    bad_field("migration_radius_m must be non-negative");
  if (ttl_intervals < 1) bad_field("ttl_intervals must be >= 1");
  if (max_load_level < 1) bad_field("max_load_level must be >= 1");
  if (speed_min_mps < 0.0 || speed_max_mps < speed_min_mps)
    bad_field("speeds must satisfy 0 <= speed_min_mps <= speed_max_mps");
  if (turn_probability < 0.0 || turn_probability > 1.0)
    bad_field("turn_probability must be in [0, 1]");
  if (offline_probability < 0.0 || offline_probability > 1.0)
    bad_field("offline_probability must be in [0, 1]");
  if (offline_intervals < 1) bad_field("offline_intervals must be >= 1");
  if (backhaul_bytes_per_sec <= 0.0)
    bad_field("backhaul_bytes_per_sec must be positive");
  if (retry_queue_cap < 1) bad_field("retry_queue_cap must be >= 1");
  if (migration_retry.max_attempts < 1 ||
      migration_retry.initial_backoff_intervals < 1 ||
      migration_retry.max_backoff_intervals <
          migration_retry.initial_backoff_intervals)
    bad_field("migration_retry must satisfy max_attempts >= 1 and "
              "1 <= initial_backoff <= max_backoff");
  if (admission_max_attached < 0)
    bad_field("admission_max_attached must be non-negative");
  if (flash_crowd_tiles < 0 || flash_crowd_tiles > num_servers())
    bad_field("flash_crowd_tiles must be in [0, num_servers]");
  if (flash_crowd_multiplier < 1.0)
    bad_field("flash_crowd_multiplier must be >= 1");
  if (cache_budget_bytes < 0)
    bad_field("cache_budget_bytes must be non-negative");
  fault_plan.check_bounds(num_servers(), num_clients);
}

ServerId ShardWorld::tile_at(Point p) const {
  const HexCoord axial = grid.cell_at(p);
  int row = axial.r;
  int col = axial.q + (axial.r - floor_mod2(axial.r)) / 2;
  row = std::clamp(row, 0, config.tiles_y - 1);
  col = std::clamp(col, 0, config.tiles_x - 1);
  return static_cast<ServerId>(row) * config.tiles_x + col;
}

ShardWorld build_shard_world(const ShardWorldConfig& config) {
  config.validate();
  ShardWorld w;
  w.config = config;
  w.model = build_model(config.model);
  w.client_profile = profile_on_client(w.model, odroid_xu4_profile());
  w.gpu = std::make_shared<GpuContentionModel>(titan_xp_profile());

  // Offline estimator training, same pipeline as build_world(): a
  // concurrency sweep over this model's layers, then the random forest.
  Rng rng(config.seed);
  ConcurrencyProfiler profiler(w.gpu.get(), rng.fork());
  const DnnModel* models[] = {&w.model};
  ProfilerConfig prof_config;
  prof_config.max_clients = std::max(12, config.max_load_level);
  prof_config.samples_per_level = 4;
  const auto records = profiler.profile_models(models, prof_config);
  w.estimator = std::make_shared<RandomForestEstimator>();
  Rng train_rng = rng.fork();
  w.estimator->train(records, train_rng);

  // Tile grid: odd-r offset rectangle, one server per tile, row-major ids.
  w.grid = HexGrid(config.cell_radius_m);
  w.server_centers.reserve(static_cast<std::size_t>(config.num_servers()));
  for (int row = 0; row < config.tiles_y; ++row) {
    for (int col = 0; col < config.tiles_x; ++col) {
      const HexCoord axial{col - (row - (row & 1)) / 2, row};
      w.server_centers.push_back(w.grid.center(axial));
    }
  }
  w.width_m = kSqrt3 * config.cell_radius_m * config.tiles_x;
  w.height_m = 1.5 * config.cell_radius_m * config.tiles_y;

  // Per-level planning tables. Each level's GPU statistics come from a
  // dedicated seeded stream (never from a shared sequential RNG), so the
  // table is identical no matter what was built before it. The estimator
  // fill goes through the fastpath estimate cache when enabled — required
  // to be bit-identical to the direct loop, so the fastpath toggle cannot
  // change the tables.
  EstimateCache estimate_cache;
  const auto n = static_cast<std::size_t>(w.model.num_layers());
  w.levels.resize(static_cast<std::size_t>(config.max_load_level));
  // Every level's GPU statistics first, then one batched cache probe for
  // the whole block — the misses run through the estimators' batched
  // predict path. Hit/miss sequence and values match per-level estimates()
  // calls exactly, so the tables stay bit-identical.
  for (int load = 1; load <= config.max_load_level; ++load) {
    std::uint64_t state =
        config.seed ^ (0x1e7e1ed5ULL * static_cast<std::uint64_t>(load + 1));
    Rng level_rng(splitmix64(state));
    w.levels[static_cast<std::size_t>(load - 1)].stats =
        w.gpu->stats_for_load(load, static_cast<double>(load), level_rng);
  }
  std::vector<const std::vector<Seconds>*> level_estimates;
  if (fastpath::enabled()) {
    std::vector<GpuStats> level_stats;
    level_stats.reserve(w.levels.size());
    for (const ShardLoadLevel& lvl : w.levels) level_stats.push_back(lvl.stats);
    estimate_cache.estimates_batch(*w.estimator, w.model, level_stats,
                                   level_estimates);
  }
  for (int load = 1; load <= config.max_load_level; ++load) {
    ShardLoadLevel& lvl = w.levels[static_cast<std::size_t>(load - 1)];
    std::vector<Seconds> estimated;
    if (fastpath::enabled()) {
      estimated = *level_estimates[static_cast<std::size_t>(load - 1)];
    } else {
      estimated.reserve(n);
      for (LayerId id = 0; id < w.model.num_layers(); ++id)
        estimated.push_back(w.estimator->estimate(
            w.model.layer(id), w.model.input_bytes(id), lvl.stats));
    }
    PartitionContext context;
    context.model = &w.model;
    context.client_profile = &w.client_profile;
    context.server_time = std::move(estimated);
    context.net = config.wireless;
    if (load == 1) {
      // The canonical upload order every client follows: the uncontended
      // plan's server layers in topological order.
      const PartitionPlan plan = compute_best_plan(context);
      w.canonical_order = plan.server_layers();
      w.prefix_bytes.assign(1, 0);
      w.prefix_bytes.reserve(w.canonical_order.size() + 1);
      for (LayerId id : w.canonical_order)
        w.prefix_bytes.push_back(w.prefix_bytes.back() +
                                 w.model.layer(id).weight_bytes);
    }
    lvl.latency_by_prefix.resize(w.canonical_order.size() + 1);
    std::vector<bool> uploadable(n, false);
    for (std::size_t p = 0; p <= w.canonical_order.size(); ++p) {
      lvl.latency_by_prefix[p] = plan_latency(context, uploadable);
      if (p < w.canonical_order.size())
        uploadable[static_cast<std::size_t>(w.canonical_order[p])] = true;
    }
  }

  // Local-fallback service rate: the all-client plan with every server-side
  // time zeroed, mirroring SimulatorImpl::local_query_latency(). Pure
  // function of the model — no RNG.
  {
    PartitionContext context;
    context.model = &w.model;
    context.client_profile = &w.client_profile;
    context.server_time.assign(n, 0.0);
    context.net = config.wireless;
    w.local_query_latency_s = local_only_latency(context);
    PERDNN_CHECK_MSG(w.local_query_latency_s > 0.0,
                     "local-only execution latency must be positive");
  }

  // Flash-crowd hot tiles: the ones nearest the world centre, ties broken
  // by id so the ranking is total.
  if (config.flash_crowd_tiles > 0) {
    const Point centre{w.width_m * 0.5, w.height_m * 0.5};
    std::vector<std::pair<double, ServerId>> ranked;
    ranked.reserve(w.server_centers.size());
    for (std::size_t s = 0; s < w.server_centers.size(); ++s) {
      const double dx = w.server_centers[s].x - centre.x;
      const double dy = w.server_centers[s].y - centre.y;
      ranked.emplace_back(dx * dx + dy * dy, static_cast<ServerId>(s));
    }
    std::sort(ranked.begin(), ranked.end());
    for (int i = 0; i < config.flash_crowd_tiles; ++i)
      w.flash_crowd_hot_tiles.push_back(ranked[static_cast<std::size_t>(i)].second);
  }

  // Telemetry-dropout fallback tables: the load-free (LL) estimator over
  // stale statistics, mirroring degraded_level() of the trace-replay engine.
  // Trained last with a fresh fork — every pre-existing stream draws exactly
  // what it always did — and only when the plan actually scripts a dropout,
  // so fault-free builds do no extra work at all. The estimates are filled
  // with a direct loop on both fastpath settings: the table must not depend
  // on a toggle the fingerprint ignores.
  bool has_dropout = false;
  for (const FaultEvent& e : config.fault_plan.events())
    if (e.kind == FaultKind::kTelemetryDropout) has_dropout = true;
  if (has_dropout) {
    NeurosurgeonEstimator fallback;
    Rng fallback_rng = rng.fork();
    fallback.train(records, fallback_rng);
    for (ShardLoadLevel& lvl : w.levels) {
      GpuStats stale = lvl.stats;
      stale.age_intervals = 1;  // telemetry stopped arriving: snapshot stale
      std::vector<Seconds> estimated;
      estimated.reserve(n);
      for (LayerId id = 0; id < w.model.num_layers(); ++id)
        estimated.push_back(
            fallback.estimate(w.model.layer(id), w.model.input_bytes(id),
                              stale));
      PartitionContext context;
      context.model = &w.model;
      context.client_profile = &w.client_profile;
      context.server_time = std::move(estimated);
      context.net = config.wireless;
      lvl.degraded_latency_by_prefix.resize(w.canonical_order.size() + 1);
      std::vector<bool> uploadable(n, false);
      for (std::size_t p = 0; p <= w.canonical_order.size(); ++p) {
        lvl.degraded_latency_by_prefix[p] = plan_latency(context, uploadable);
        if (p < w.canonical_order.size())
          uploadable[static_cast<std::size_t>(w.canonical_order[p])] = true;
      }
    }
  }
  return w;
}

std::uint64_t shard_config_fingerprint(const ShardWorldConfig& c) {
  // Chained splitmix64 over every simulation-affecting knob, mirroring
  // snapshot::config_fingerprint for the trace-replay engine. Shard and
  // thread counts are excluded: both are byte-identity-neutral.
  std::uint64_t state = 0x5ead5ca1eULL;
  std::uint64_t digest = 0;
  const auto mix = [&](std::uint64_t v) {
    state ^= v;
    digest ^= splitmix64(state);
  };
  const auto mix_double = [&](double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(c.model));
  mix(static_cast<std::uint64_t>(c.policy));
  mix(static_cast<std::uint64_t>(c.tiles_x));
  mix(static_cast<std::uint64_t>(c.tiles_y));
  mix_double(c.cell_radius_m);
  mix(static_cast<std::uint64_t>(c.num_clients));
  mix(static_cast<std::uint64_t>(c.num_intervals));
  mix_double(c.interval_s);
  mix_double(c.query_gap);
  mix_double(c.wireless.uplink_bytes_per_sec);
  mix_double(c.wireless.downlink_bytes_per_sec);
  mix_double(c.wireless.rtt);
  mix_double(c.migration_radius_m);
  mix(static_cast<std::uint64_t>(c.ttl_intervals));
  mix(static_cast<std::uint64_t>(c.max_load_level));
  mix_double(c.speed_min_mps);
  mix_double(c.speed_max_mps);
  mix_double(c.turn_probability);
  mix_double(c.offline_probability);
  mix(static_cast<std::uint64_t>(c.offline_intervals));
  mix(c.seed);
  // Fault/robustness knobs, appended so fault-free fingerprints keep their
  // original mixing order (and value stability is irrelevant — any change
  // to the digest only tightens the resume check).
  {
    const std::string plan_json = c.fault_plan.to_json();
    mix(plan_json.size());
    mix(wire::fnv1a(plan_json.data(), plan_json.size()));
  }
  mix(static_cast<std::uint64_t>(c.migration_retry.max_attempts));
  mix(static_cast<std::uint64_t>(c.migration_retry.initial_backoff_intervals));
  mix(static_cast<std::uint64_t>(c.migration_retry.max_backoff_intervals));
  mix_double(c.backhaul_bytes_per_sec);
  mix(static_cast<std::uint64_t>(c.retry_queue_cap));
  mix(static_cast<std::uint64_t>(c.admission_max_attached));
  mix(static_cast<std::uint64_t>(c.flash_crowd_tiles));
  mix_double(c.flash_crowd_multiplier);
  mix(static_cast<std::uint64_t>(c.cache_budget_bytes));
  return digest;
}

}  // namespace perdnn
