#include "sim/shard_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/flat_map.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "edge/shard_retry.hpp"
#include "faults/fault_timeline.hpp"
#include "geo/point.hpp"
#include "obs/stream_writer.hpp"
#include "snapshot/snapshot.hpp"

namespace perdnn {

namespace {

constexpr double kSqrt3 = 1.7320508075688772;
constexpr double kTwoPi = 6.283185307179586;
/// Hard bound on queries simulated inside one cold-start window; only
/// reachable with a pathological (near-zero latency, zero gap) config.
constexpr long long kMaxColdQueries = 100000;

int floor_mod2(int v) { return ((v % 2) + 2) % 2; }

/// Stateless counter-based draw: one 64-bit hash per (client substream,
/// purpose tag, interval counter). Phase A randomness must not depend on
/// evaluation order, so no sequential generator ever appears there.
std::uint64_t hash3(std::uint64_t sub, std::uint64_t tag,
                    std::uint64_t counter) {
  std::uint64_t state = sub ^ (tag * 0x9e3779b97f4a7c15ULL) ^
                        (counter * 0xbf58476d1ce4e5b9ULL);
  return splitmix64(state);
}

/// Uniform double in [0, 1) from a hash value.
double u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Purpose tags for hash3 draws.
enum : std::uint64_t {
  kTagInitX = 1,
  kTagInitY = 2,
  kTagInitHeading = 3,
  kTagInitSpeed = 4,
  kTagCrowd = 5,
  kTagCrowdTile = 6,
  kTagOffline = 10,
  kTagTurn = 11,
  kTagHeading = 12,
};

enum EventKind : std::uint8_t {
  kEvOffline = 0,  ///< online->offline transition of an attached client
  kEvAttach = 1,   ///< re-attachment (cold-start window evaluated)
  kEvUpload = 2,   ///< steady-state upload progressed
  kEvPush = 3,     ///< proactive dispatcher push toward a predicted tile
  kEvLocal = 4,    ///< tile server down: the interval ran on the local fallback
};

/// Event flag bits.
enum : std::uint8_t {
  kFlagDegraded = 1,  ///< attach planned from stale telemetry (dropout tile)
};

/// One cross-shard exchange record. Phase A emits these in client-id order
/// per shard; phase B applies the k-way merge in canonical order.
struct Event {
  ClientId client = -1;
  std::uint8_t kind = kEvAttach;
  std::uint8_t cls = 0;        // attach classification: 0 hit/1 partial/2 miss
  std::uint8_t flags = 0;      // kFlag* bits
  std::uint16_t p0 = 0;        // cache prefix found at attach
  std::uint16_t p_end = 0;     // prefix after this interval / pushed prefix
  ServerId server = kNoServer; // attach target / upload server / push source
  ServerId peer = kNoServer;   // previous server / push target
  long long queries = 0;
  double latency_sum = 0.0;
};

/// Client disposition after the mobility stage of a Phase A block.
enum Disp : std::uint8_t {
  kDispNone = 0,     ///< offline (continuing, or went offline unattached)
  kDispOffline = 1,  ///< went offline while attached: emit kEvOffline
  kDispAttach = 2,   ///< tile changed: attach path
  kDispStay = 3,     ///< same server: steady upload / pushes
  kDispLocal = 4,    ///< tile server down: emit kEvLocal
};

/// Per-shard phase A output buffer (reused across intervals).
struct ShardBuf {
  std::vector<Event> events;
  long long offline = 0;        // client-intervals spent offline
  int disconnects = 0;          // offline windows opened
  // Block-stage scratch: one entry per client of the current block.
  std::vector<std::uint8_t> disp;
  std::vector<ServerId> prev;        // pre-offline server (kDispOffline only)
  std::vector<std::uint16_t> p0;     // cache probe result (kDispAttach only)
  std::vector<std::uint32_t> attach_idx;  // block indices with kDispAttach
};

struct CacheEntry {
  std::uint16_t prefix = 0;
  std::int32_t expire = 0;  ///< meaningful only while the owner is detached
};

/// Per-server per-interval accumulator behind the timeseries row.
struct RowAcc {
  int hits = 0, partials = 0, misses = 0;
  long long cold_queries = 0;
  double cold_latency = 0.0;
  std::int64_t uplink = 0, downlink = 0;
  int orders = 0;
  long long local_queries = 0;
  double local_latency = 0.0;
  std::int64_t deferred = 0;
  int degraded = 0;
  int cache_evictions = 0;
  int cache_partial_stores = 0;
};

/// Unordered link id: a degraded backhaul link's capacity is shared by both
/// directions (same keying as the trace-replay engine).
std::uint64_t link_key(ServerId a, ServerId b) {
  const auto lo =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(std::min(a, b)));
  const auto hi =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(std::max(a, b)));
  return (hi << 32) | lo;
}

class ShardEngine {
 public:
  ShardEngine(const ShardWorld& world, const ShardRunOptions& options)
      : w_(world), cfg_(world.config), opt_(options) {
    const auto n = static_cast<std::size_t>(cfg_.num_clients);
    const auto s = static_cast<std::size_t>(cfg_.num_servers());
    K_ = static_cast<int>(w_.canonical_order.size());
    x_.resize(n);
    y_.resize(n);
    heading_.resize(n);
    dirx_.resize(n);
    diry_.resize(n);
    speed_.resize(n);
    stream_.resize(n);
    server_.assign(n, kNoServer);
    prefix_.assign(n, 0);
    carry_.assign(n, 0);
    offline_until_.assign(n, 0);
    tile_.assign(n, 0);
    cache_.resize(s);
    attached_.assign(s, 0);
    acc_.resize(s);
    peak_up_.assign(s, 0.0);
    peak_down_.assign(s, 0.0);
    wheel_.resize(static_cast<std::size_t>(cfg_.ttl_intervals) + 2);
    budget_ = cfg_.cache_budget_bytes;
    cache_bytes_.assign(s, 0);

    // Flash-crowd placement: with the knob on, a share of clients starts
    // packed into the hot tiles so that each hot tile holds ~multiplier×
    // the uniform per-tile population. Membership and tile choice use
    // dedicated hash tags, so a disabled knob reproduces the uniform layout
    // bit for bit.
    const auto& hot = w_.flash_crowd_hot_tiles;
    const bool crowd = !hot.empty() && cfg_.flash_crowd_multiplier > 1.0;
    const double crowd_share =
        crowd ? ((cfg_.flash_crowd_multiplier - 1.0) *
                 static_cast<double>(hot.size())) /
                    (static_cast<double>(cfg_.num_servers()) +
                     (cfg_.flash_crowd_multiplier - 1.0) *
                         static_cast<double>(hot.size()))
              : 0.0;

    for (std::size_t c = 0; c < n; ++c) {
      std::uint64_t seed_state =
          cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(c) + 1));
      stream_[c] = splitmix64(seed_state);
      const std::uint64_t sub = stream_[c];
      if (crowd && u01(hash3(sub, kTagCrowd, 0)) < crowd_share) {
        const auto pick = hash3(sub, kTagCrowdTile, 0) %
                          static_cast<std::uint64_t>(hot.size());
        const Point centre =
            w_.server_centers[static_cast<std::size_t>(
                hot[static_cast<std::size_t>(pick)])];
        const double half = 0.6 * cfg_.cell_radius_m;  // inside the hex
        x_[c] = std::clamp(
            centre.x + (u01(hash3(sub, kTagInitX, 0)) * 2.0 - 1.0) * half,
            0.0, w_.width_m);
        y_[c] = std::clamp(
            centre.y + (u01(hash3(sub, kTagInitY, 0)) * 2.0 - 1.0) * half,
            0.0, w_.height_m);
      } else {
        x_[c] = u01(hash3(sub, kTagInitX, 0)) * w_.width_m;
        y_[c] = u01(hash3(sub, kTagInitY, 0)) * w_.height_m;
      }
      set_heading(static_cast<ClientId>(c),
                  u01(hash3(sub, kTagInitHeading, 0)) * kTwoPi);
      speed_[c] = cfg_.speed_min_mps +
                  u01(hash3(sub, kTagInitSpeed, 0)) *
                      (cfg_.speed_max_mps - cfg_.speed_min_mps);
      tile_[c] = w_.tile_at({x_[c], y_[c]});
    }

    num_shards_ = std::clamp(options.num_shards, 1, cfg_.num_servers());
    const int tiles = cfg_.num_servers();
    tile_shard_.assign(static_cast<std::size_t>(tiles), 0);
    for (int sh = 0; sh < num_shards_; ++sh) {
      const int lo = static_cast<int>(
          static_cast<std::int64_t>(sh) * tiles / num_shards_);
      const int hi = static_cast<int>(
          static_cast<std::int64_t>(sh + 1) * tiles / num_shards_);
      for (int tile = lo; tile < hi; ++tile)
        tile_shard_[static_cast<std::size_t>(tile)] = sh;
    }
    bufs_.resize(static_cast<std::size_t>(num_shards_));
    buckets_.resize(static_cast<std::size_t>(num_shards_));

    retry_ = ShardRetryQueue(cfg_.migration_retry, cfg_.num_servers(),
                             cfg_.retry_queue_cap);
    faults_ = !cfg_.fault_plan.empty();
    if (faults_) {
      ft_ = FaultTimeline(cfg_.fault_plan, cfg_.num_servers(),
                          cfg_.num_clients);
      down_count_.assign(s, 0);
      tele_count_.assign(s, 0);
      down_.assign(s, 0);
      tele_.assign(s, 0);
      off_count_.assign(n, 0);
      scripted_off_.assign(n, 0);
    }
    // Local-fallback outcome of one full interval, evaluated once: the
    // local-only latency is level-independent, so every client that falls
    // back sees the same query count and latency sum.
    {
      const Seconds lat = w_.local_query_latency_s;
      Seconds clock = 0.0;
      while (clock + lat <= cfg_.interval_s &&
             local_queries_ < kMaxColdQueries) {
        ++local_queries_;
        clock += lat + cfg_.query_gap;
      }
      local_latency_sum_ = static_cast<double>(local_queries_) * lat;
    }

    build_attach_tables();
  }

  SimulationMetrics run();

 private:
  void set_heading(ClientId c, double heading) {
    heading_[static_cast<std::size_t>(c)] = heading;
    dirx_[static_cast<std::size_t>(c)] = std::cos(heading);
    diry_[static_cast<std::size_t>(c)] = std::sin(heading);
  }

  // -- phase A (parallel, pure w.r.t. shared state) --------------------------
  void build_attach_tables();
  void run_shard(std::size_t sh, int t);
  std::uint8_t stage_move(ClientId c, int t, ShardBuf& buf, ServerId& prev);
  void finish_client(ClientId c, std::uint8_t disp, ServerId offline_prev,
                     int probed_p0, int t, ShardBuf& buf);
  void emit_pushes(ClientId c, ServerId sid, int t, ShardBuf& buf);

  // -- phase B (serial, canonical client-id order) ---------------------------
  void apply_events(int t);
  void apply_event(const Event& e, int t);
  void detach_from(ClientId c, ServerId sid, int t, std::int32_t reason);
  void cache_store(ServerId sid, ClientId c, int new_prefix, int t);
  int admit(ServerId sid, ClientId c, int old_prefix, int want, int t);
  void schedule_expiry(ServerId sid, ClientId c, int expire);
  void expire_entries(int t);
  void finish_interval(int t);

  // -- fault machinery (serial; all no-ops on a fault-free run) --------------
  void fault_step(int t);
  void replay_fault_edges(int upto);
  void compute_shed();
  void apply_shed(const Event& e, int t);
  void push_faulted(const Event& e, int t);
  void deliver_push(ClientId c, ServerId source, ServerId target,
                    int old_prefix, int new_prefix, int t);
  void defer_push(ClientId c, ServerId source, ServerId target, int want,
                  Bytes bytes, int t);
  bool park_or_drop(ShardRetryOrder order, int t);
  void drop_order(const ShardRetryOrder& order, int t, std::int32_t reason);
  void retry_deferred(int t);

  // -- checkpoint / resume ---------------------------------------------------
  void restore_from(const snapshot::SimSnapshot& snap);
  snapshot::SimSnapshot capture(int next_interval);
  void checkpoint(int t);

  void open_writers_fresh();
  void journal(obs::JournalEvent e) {
    if (jr_ != nullptr) jr_->record(e);
  }

  const ShardWorld& w_;
  const ShardWorldConfig& cfg_;
  const ShardRunOptions& opt_;
  int K_ = 0;  // canonical-order length; prefixes live in [0, K_]

  // SoA client store.
  std::vector<double> x_, y_, heading_, dirx_, diry_, speed_;
  std::vector<std::uint64_t> stream_;
  std::vector<ServerId> server_;
  std::vector<std::uint16_t> prefix_;
  std::vector<Bytes> carry_;
  std::vector<std::int32_t> offline_until_;
  std::vector<ServerId> tile_;

  // Server-side state (phase B only; phase A reads the frozen tables).
  std::vector<FlatMap32<CacheEntry>> cache_;
  std::vector<int> attached_;
  long long total_attached_ = 0;
  std::vector<std::vector<std::pair<ServerId, ClientId>>> wheel_;
  // Budgeted-cache state; inert when cfg_.cache_budget_bytes == 0. Resident
  // bytes per tile are maintained incrementally by every Phase B mutation,
  // so budget_ > 0 never touches Phase A.
  Bytes budget_ = 0;
  std::vector<Bytes> cache_bytes_;
  std::vector<std::pair<std::uint16_t, ClientId>> evict_scratch_;

  // Attach-time lookup tables, filled once at construction: the cold-start
  // window outcome is a pure function of (load level, cached prefix p0) and
  // the first-interval upload advance of p0 alone — every input (latency
  // tables, prefix byte sums, interval length, uplink rate) is fixed at
  // world build. The fills run the exact loops the per-client path used to
  // run, so each cell is bit-identical to computing it at attach time.
  std::vector<long long> cold_queries_;   // (load-1) * (K_+1) + p0
  std::vector<double> cold_latency_;
  std::vector<std::uint16_t> attach_pe_;  // indexed by p0
  std::vector<Bytes> attach_carry_;

  // Sharding.
  int num_shards_ = 1;
  std::vector<int> tile_shard_;
  std::vector<std::vector<ClientId>> buckets_;
  std::vector<ShardBuf> bufs_;

  // Fault machinery (inert unless the config scripts a plan). The byte
  // flags are what Phase A reads; the counts behind them advance by one
  // interval's slice of the precompiled FaultTimeline edge lists per tick.
  bool faults_ = false;
  FaultTimeline ft_;
  std::vector<std::int32_t> down_count_, tele_count_, off_count_;
  std::vector<std::uint8_t> down_, tele_, scripted_off_;
  int backhaul_count_ = 0;
  bool backhaul_now_ = false;
  std::unordered_map<std::uint64_t, Bytes> link_used_;  // per-interval caps
  ShardRetryQueue retry_;
  // Degraded (stale-telemetry) cold tables, parallel to cold_queries_;
  // filled only when the plan scripts a telemetry dropout.
  std::vector<long long> dcold_queries_;
  std::vector<double> dcold_latency_;
  // Local-fallback outcome of one interval (identical for every client).
  long long local_queries_ = 0;
  double local_latency_sum_ = 0.0;
  // Clients refused by admission control this interval (sorted by id).
  std::vector<ClientId> shed_;

  // Per-interval accounting.
  std::vector<RowAcc> acc_;
  std::vector<double> peak_up_, peak_down_;
  std::int64_t best_interval_bytes_ = -1;
  double best_interval_fraction_ = 1.0;
  SimulationMetrics metrics_;

  std::unique_ptr<obs::TimeseriesStreamWriter> ts_;
  std::unique_ptr<obs::JournalStreamWriter> jr_;
  int start_interval_ = 0;
};

void ShardEngine::build_attach_tables() {
  const double up_rate = cfg_.wireless.uplink_bytes_per_sec;
  const auto uploaded = static_cast<Bytes>(cfg_.interval_s * up_rate);
  attach_pe_.resize(static_cast<std::size_t>(K_) + 1);
  attach_carry_.resize(static_cast<std::size_t>(K_) + 1);
  for (int p0 = 0; p0 <= K_; ++p0) {
    int pe = p0;
    while (pe < K_ &&
           w_.prefix_bytes[static_cast<std::size_t>(pe + 1)] -
                   w_.prefix_bytes[static_cast<std::size_t>(p0)] <=
               uploaded)
      ++pe;
    attach_pe_[static_cast<std::size_t>(p0)] = static_cast<std::uint16_t>(pe);
    attach_carry_[static_cast<std::size_t>(p0)] =
        pe < K_ ? uploaded - (w_.prefix_bytes[static_cast<std::size_t>(pe)] -
                              w_.prefix_bytes[static_cast<std::size_t>(p0)])
                : 0;
  }

  const auto num_levels = w_.levels.size();
  const auto fill_cold = [this, up_rate](const std::vector<Seconds>& latency,
                                         std::size_t level,
                                         std::vector<long long>& out_queries,
                                         std::vector<double>& out_latency) {
    for (int p0 = 0; p0 <= K_; ++p0) {
      double now = 0.0;
      long long queries = 0;
      double latency_sum = 0.0;
      int p = p0;
      while (queries < kMaxColdQueries) {
        while (p < K_ &&
               static_cast<double>(
                   w_.prefix_bytes[static_cast<std::size_t>(p + 1)] -
                   w_.prefix_bytes[static_cast<std::size_t>(p0)]) <=
                   now * up_rate)
          ++p;
        const Seconds lat = latency[static_cast<std::size_t>(p)];
        if (now + lat > cfg_.interval_s) break;
        ++queries;
        latency_sum += lat;
        now += lat + cfg_.query_gap;
      }
      const std::size_t cell =
          level * (static_cast<std::size_t>(K_) + 1) +
          static_cast<std::size_t>(p0);
      out_queries[cell] = queries;
      out_latency[cell] = latency_sum;
    }
  };
  cold_queries_.resize(num_levels * (static_cast<std::size_t>(K_) + 1));
  cold_latency_.resize(cold_queries_.size());
  for (std::size_t level = 0; level < num_levels; ++level)
    fill_cold(w_.levels[level].latency_by_prefix, level, cold_queries_,
              cold_latency_);
  if (num_levels > 0 && !w_.levels[0].degraded_latency_by_prefix.empty()) {
    dcold_queries_.resize(cold_queries_.size());
    dcold_latency_.resize(cold_latency_.size());
    for (std::size_t level = 0; level < num_levels; ++level)
      fill_cold(w_.levels[level].degraded_latency_by_prefix, level,
                dcold_queries_, dcold_latency_);
  }
}

std::uint8_t ShardEngine::stage_move(ClientId c, int t, ShardBuf& buf,
                                     ServerId& prev) {
  const auto ci = static_cast<std::size_t>(c);
  if (offline_until_[ci] > t) {
    ++buf.offline;
    return kDispNone;
  }
  if (faults_ && scripted_off_[ci] != 0) {
    // Scripted disconnect window: the detach and the disconnect count were
    // handled by fault_step when the window opened. No churn/movement draws
    // are consumed, but the counter-based streams resume unshifted when the
    // window closes.
    ++buf.offline;
    return kDispNone;
  }
  const std::uint64_t sub = stream_[ci];
  const auto tick = static_cast<std::uint64_t>(t) + 1;
  if (cfg_.offline_probability > 0.0 &&
      u01(hash3(sub, kTagOffline, tick)) < cfg_.offline_probability) {
    ++buf.offline;
    ++buf.disconnects;
    offline_until_[ci] = t + cfg_.offline_intervals;
    prev = server_[ci];
    server_[ci] = kNoServer;
    prefix_[ci] = 0;
    carry_[ci] = 0;
    return prev != kNoServer ? kDispOffline : kDispNone;
  }

  // Random-walk move, reflecting off the world border.
  if (u01(hash3(sub, kTagTurn, tick)) < cfg_.turn_probability)
    set_heading(c, u01(hash3(sub, kTagHeading, tick)) * kTwoPi);
  const double step = speed_[ci] * cfg_.interval_s;
  double nx = x_[ci] + dirx_[ci] * step;
  double ny = y_[ci] + diry_[ci] * step;
  if (nx < 0.0 || nx > w_.width_m) {
    nx = std::clamp(nx, 0.0, w_.width_m);
    set_heading(c, std::atan2(diry_[ci], -dirx_[ci]));
  }
  if (ny < 0.0 || ny > w_.height_m) {
    ny = std::clamp(ny, 0.0, w_.height_m);
    set_heading(c, std::atan2(-diry_[ci], dirx_[ci]));
  }
  x_[ci] = nx;
  y_[ci] = ny;
  const ServerId sid = w_.tile_at({nx, ny});
  tile_[ci] = sid;
  if (faults_ && down_[static_cast<std::size_t>(sid)] != 0) {
    // The tile's server is down: the interval runs on the local fallback.
    prev = server_[ci];
    server_[ci] = kNoServer;
    prefix_[ci] = 0;
    carry_[ci] = 0;
    return kDispLocal;
  }
  return sid != server_[ci] ? kDispAttach : kDispStay;
}

void ShardEngine::finish_client(ClientId c, std::uint8_t disp,
                                ServerId offline_prev, int probed_p0, int t,
                                ShardBuf& buf) {
  const auto ci = static_cast<std::size_t>(c);
  if (disp == kDispOffline) {
    buf.events.push_back({.client = c,
                          .kind = kEvOffline,
                          .server = offline_prev});
    return;
  }
  const ServerId sid = tile_[ci];
  if (disp == kDispLocal) {
    buf.events.push_back({.client = c,
                          .kind = kEvLocal,
                          .server = sid,
                          .peer = offline_prev,
                          .queries = local_queries_,
                          .latency_sum = local_latency_sum_});
    return;
  }
  if (disp == kDispAttach) {
    // Re-attachment: the cold-start window and the first-interval upload
    // advance come straight from the precomputed (load, p0) tables.
    const int load = std::clamp(
        attached_[static_cast<std::size_t>(sid)] + 1, 1, cfg_.max_load_level);
    int p0 = 0;
    if (cfg_.policy == MigrationPolicy::kOptimal) {
      p0 = K_;
    } else if (cfg_.policy == MigrationPolicy::kProactive) {
      p0 = probed_p0;
    }
    const std::uint8_t cls = p0 >= K_ ? 0 : (p0 == 0 ? 2 : 1);
    const bool degraded =
        faults_ && tele_[static_cast<std::size_t>(sid)] != 0;
    const std::size_t cell =
        static_cast<std::size_t>(load - 1) *
            (static_cast<std::size_t>(K_) + 1) +
        static_cast<std::size_t>(p0);
    const int pe = attach_pe_[static_cast<std::size_t>(p0)];
    carry_[ci] = attach_carry_[static_cast<std::size_t>(p0)];
    const ServerId prev = server_[ci];
    server_[ci] = sid;
    prefix_[ci] = static_cast<std::uint16_t>(pe);
    buf.events.push_back({.client = c,
                          .kind = kEvAttach,
                          .cls = cls,
                          .flags = static_cast<std::uint8_t>(
                              degraded ? kFlagDegraded : 0),
                          .p0 = static_cast<std::uint16_t>(p0),
                          .p_end = static_cast<std::uint16_t>(pe),
                          .server = sid,
                          .peer = prev,
                          .queries = degraded ? dcold_queries_[cell]
                                              : cold_queries_[cell],
                          .latency_sum = degraded ? dcold_latency_[cell]
                                                  : cold_latency_[cell]});
  } else if (prefix_[ci] < K_) {
    // Steady state at the same server: the incremental upload continues at
    // the wireless uplink rate.
    carry_[ci] += static_cast<Bytes>(cfg_.interval_s *
                                     cfg_.wireless.uplink_bytes_per_sec);
    int pe = prefix_[ci];
    while (pe < K_ &&
           carry_[ci] >= w_.prefix_bytes[static_cast<std::size_t>(pe + 1)] -
                             w_.prefix_bytes[static_cast<std::size_t>(pe)]) {
      carry_[ci] -= w_.prefix_bytes[static_cast<std::size_t>(pe + 1)] -
                    w_.prefix_bytes[static_cast<std::size_t>(pe)];
      ++pe;
    }
    if (pe > prefix_[ci]) {
      buf.events.push_back({.client = c,
                            .kind = kEvUpload,
                            .p0 = prefix_[ci],
                            .p_end = static_cast<std::uint16_t>(pe),
                            .server = sid});
      prefix_[ci] = static_cast<std::uint16_t>(pe);
      if (pe >= K_) carry_[ci] = 0;
    }
  }

  if (cfg_.policy == MigrationPolicy::kProactive && prefix_[ci] > 0)
    emit_pushes(c, sid, t, buf);
}

void ShardEngine::run_shard(std::size_t sh, int t) {
  // Cache-blocked Phase A: each block runs three stages — mobility for
  // every client, then the cache probes for the attach candidates (with the
  // flat-map home slots prefetched a few probes ahead), then an in-order
  // finish pass that emits events. Events still leave the buffer in strict
  // client-id order with each client's events contiguous, which the Phase B
  // k-way merge depends on; only the work between event emissions is
  // re-grouped.
  constexpr std::size_t kBlock = 256;
  constexpr std::size_t kLookahead = 8;
  ShardBuf& buf = bufs_[sh];
  const std::vector<ClientId>& bucket = buckets_[sh];
  for (std::size_t start = 0; start < bucket.size(); start += kBlock) {
    const std::size_t m = std::min(kBlock, bucket.size() - start);
    buf.disp.resize(m);
    buf.prev.assign(m, kNoServer);
    buf.p0.assign(m, 0);

    for (std::size_t i = 0; i < m; ++i)
      buf.disp[i] = stage_move(bucket[start + i], t, buf, buf.prev[i]);

    if (cfg_.policy == MigrationPolicy::kProactive) {
      buf.attach_idx.clear();
      for (std::size_t i = 0; i < m; ++i)
        if (buf.disp[i] == kDispAttach)
          buf.attach_idx.push_back(static_cast<std::uint32_t>(i));
      for (std::size_t j = 0; j < buf.attach_idx.size(); ++j) {
        if (j + kLookahead < buf.attach_idx.size()) {
          const ClientId pc = bucket[start + buf.attach_idx[j + kLookahead]];
          cache_[static_cast<std::size_t>(
                     tile_[static_cast<std::size_t>(pc)])]
              .prefetch(pc);
        }
        const std::size_t i = buf.attach_idx[j];
        const ClientId c = bucket[start + i];
        const CacheEntry* entry =
            cache_[static_cast<std::size_t>(
                       tile_[static_cast<std::size_t>(c)])]
                .find(c);
        if (entry != nullptr)
          buf.p0[i] =
              static_cast<std::uint16_t>(std::min<int>(entry->prefix, K_));
      }
    }

    for (std::size_t i = 0; i < m; ++i) {
      if (buf.disp[i] == kDispNone) continue;
      finish_client(bucket[start + i], buf.disp[i], buf.prev[i], buf.p0[i],
                    t, buf);
    }
  }
}

void ShardEngine::emit_pushes(ClientId c, ServerId sid, int /*t*/,
                              ShardBuf& buf) {
  const auto ci = static_cast<std::size_t>(c);
  // Linear dead-reckoning prediction one interval ahead. Pushes only fire
  // when the prediction crosses a tile boundary — staying put means the
  // current server already holds the layers.
  const double step = speed_[ci] * cfg_.interval_s;
  const Point predicted{std::clamp(x_[ci] + dirx_[ci] * step, 0.0, w_.width_m),
                        std::clamp(y_[ci] + diry_[ci] * step, 0.0,
                                   w_.height_m)};
  if (w_.tile_at(predicted) == sid) return;
  // Allocation-free equivalent of grid.cells_within(predicted, radius),
  // restricted to in-rectangle tiles (no wraparound) and excluding the
  // current server.
  const HexCoord origin = w_.grid.cell_at(predicted);
  const int steps = static_cast<int>(std::ceil(
                        cfg_.migration_radius_m /
                        (kSqrt3 * cfg_.cell_radius_m))) +
                    1;
  for (int dq = -steps; dq <= steps; ++dq) {
    for (int dr = -steps; dr <= steps; ++dr) {
      if (std::abs(dq + dr) > steps) continue;
      const HexCoord cell{origin.q + dq, origin.r + dr};
      if (distance(w_.grid.center(cell), predicted) > cfg_.migration_radius_m)
        continue;
      const int row = cell.r;
      const int col = cell.q + (cell.r - floor_mod2(cell.r)) / 2;
      if (row < 0 || row >= cfg_.tiles_y || col < 0 || col >= cfg_.tiles_x)
        continue;
      const ServerId target = static_cast<ServerId>(row) * cfg_.tiles_x + col;
      if (target == sid) continue;
      buf.events.push_back({.client = c,
                            .kind = kEvPush,
                            .p_end = prefix_[ci],
                            .server = sid,
                            .peer = target});
    }
  }
}

void ShardEngine::detach_from(ClientId c, ServerId sid, int t,
                              std::int32_t reason) {
  --attached_[static_cast<std::size_t>(sid)];
  --total_attached_;
  if (cfg_.policy == MigrationPolicy::kProactive) {
    if (cache_[static_cast<std::size_t>(sid)].find(c) != nullptr)
      schedule_expiry(sid, c, t + cfg_.ttl_intervals);
  }
  journal({.interval = t,
           .kind = obs::JournalEventKind::kDetach,
           .client = c,
           .server = sid,
           .detail = reason});
}

void ShardEngine::schedule_expiry(ServerId sid, ClientId c, int expire) {
  auto& entry = cache_[static_cast<std::size_t>(sid)][c];
  if (expire > entry.expire) {
    entry.expire = expire;
    wheel_[static_cast<std::size_t>(expire) % wheel_.size()].push_back(
        {sid, c});
  }
}

void ShardEngine::cache_store(ServerId sid, ClientId c, int new_prefix,
                              int t) {
  if (cfg_.policy != MigrationPolicy::kProactive) return;
  const auto si = static_cast<std::size_t>(sid);
  int p = new_prefix;
  if (budget_ > 0) {
    const CacheEntry* cur = cache_[si].find(c);
    const int old_prefix = cur != nullptr ? cur->prefix : 0;
    if (new_prefix > old_prefix) {
      p = admit(sid, c, old_prefix, new_prefix, t);
      if (p < new_prefix &&
          server_[static_cast<std::size_t>(c)] == sid) {
        // The owner's own store was trimmed: sync the SoA upload state back
        // down so the client keeps re-offering the refused suffix instead of
        // believing it is resident.
        prefix_[static_cast<std::size_t>(c)] = static_cast<std::uint16_t>(p);
        carry_[static_cast<std::size_t>(c)] = 0;
      }
    }
  }
  auto& entry = cache_[si][c];
  if (p > entry.prefix) {
    const Bytes added = w_.prefix_bytes[static_cast<std::size_t>(p)] -
                        w_.prefix_bytes[entry.prefix];
    journal({.interval = t,
             .kind = obs::JournalEventKind::kCacheStore,
             .client = c,
             .server = sid,
             .bytes = added,
             .aux = p - entry.prefix});
    entry.prefix = static_cast<std::uint16_t>(p);
    if (budget_ > 0) cache_bytes_[si] += added;
  }
}

int ShardEngine::admit(ServerId sid, ClientId c, int old_prefix, int want,
                       int t) {
  // Budget admission for one tile cache, Phase B only. Evicts detached
  // entries — largest resident prefix first (the lowest marginal
  // latency-saved-per-byte on the shared concave latency-by-prefix curve),
  // ties to the highest client id — until the incoming delta fits, then
  // trims the admission to the longest prefix the remaining room allows.
  // Pure function of serial Phase B state, so identical across every
  // shard/thread count.
  const auto si = static_cast<std::size_t>(sid);
  const Bytes need = w_.prefix_bytes[static_cast<std::size_t>(want)] -
                     w_.prefix_bytes[static_cast<std::size_t>(old_prefix)];
  if (cache_bytes_[si] + need > budget_) {
    evict_scratch_.clear();
    cache_[si].for_each([&](ClientId vc, const CacheEntry& entry) {
      if (vc == c || entry.prefix == 0) return;
      if (server_[static_cast<std::size_t>(vc)] == sid) return;  // attached
      evict_scratch_.emplace_back(entry.prefix, vc);
    });
    std::sort(evict_scratch_.begin(), evict_scratch_.end(),
              [](const auto& a, const auto& b) { return b < a; });
    for (const auto& [vprefix, vc] : evict_scratch_) {
      if (cache_bytes_[si] + need <= budget_) break;
      const Bytes vbytes = w_.prefix_bytes[static_cast<std::size_t>(vprefix)];
      cache_[si].erase(vc);
      cache_bytes_[si] -= vbytes;
      ++metrics_.cache_evictions;
      ++acc_[si].cache_evictions;
      journal({.interval = t,
               .kind = obs::JournalEventKind::kCacheEvict,
               .client = vc,
               .server = sid,
               .bytes = vbytes,
               .aux = vprefix});
    }
  }
  int p = want;
  while (p > old_prefix &&
         cache_bytes_[si] + w_.prefix_bytes[static_cast<std::size_t>(p)] -
                 w_.prefix_bytes[static_cast<std::size_t>(old_prefix)] >
             budget_)
    --p;
  if (p < want) {
    ++metrics_.cache_partial_stores;
    ++acc_[si].cache_partial_stores;
    journal({.interval = t,
             .kind = obs::JournalEventKind::kCachePartial,
             .client = c,
             .server = sid,
             .bytes = w_.prefix_bytes[static_cast<std::size_t>(want)] -
                      w_.prefix_bytes[static_cast<std::size_t>(p)],
             .aux = want - p});
  }
  return p;
}

void ShardEngine::apply_event(const Event& e, int t) {
  switch (e.kind) {
    case kEvOffline:
      detach_from(e.client, e.server, t, obs::kDetachDisconnect);
      break;
    case kEvAttach: {
      if (e.peer != kNoServer) detach_from(e.client, e.peer, t,
                                           obs::kDetachMoved);
      ++attached_[static_cast<std::size_t>(e.server)];
      ++total_attached_;
      ++metrics_.server_changes;
      RowAcc& row = acc_[static_cast<std::size_t>(e.server)];
      if (e.cls == 0) {
        ++metrics_.hits;
        ++row.hits;
      } else if (e.cls == 1) {
        ++metrics_.partials;
        ++row.partials;
      } else {
        ++metrics_.misses;
        ++row.misses;
      }
      metrics_.cold_window_queries += e.queries;
      row.cold_queries += e.queries;
      row.cold_latency += e.latency_sum;
      const bool degraded = (e.flags & kFlagDegraded) != 0;
      if (degraded) {
        ++metrics_.degraded_attaches;
        ++row.degraded;
      }
      if (jr_ != nullptr) {
        const std::uint64_t chain = jr_->begin_chain(e.client);
        jr_->record({.interval = t,
                     .kind = obs::JournalEventKind::kAttach,
                     .chain = chain,
                     .client = e.client,
                     .server = e.server,
                     .peer = e.peer});
        jr_->record({.interval = t,
                     .kind = degraded ? obs::JournalEventKind::kDegradedPlan
                                      : obs::JournalEventKind::kPlan,
                     .chain = chain,
                     .client = e.client,
                     .server = e.server,
                     .detail = e.cls == 0   ? obs::kPlanHit
                               : e.cls == 1 ? obs::kPlanPartial
                                            : obs::kPlanMiss,
                     .aux = K_ - e.p0});
        if (e.queries > 0)
          jr_->record({.interval = t,
                       .kind = obs::JournalEventKind::kColdServe,
                       .chain = chain,
                       .client = e.client,
                       .server = e.server,
                       .aux = static_cast<std::int32_t>(e.queries),
                       .value = e.latency_sum});
      }
      cache_store(e.server, e.client, e.p_end, t);
      break;
    }
    case kEvUpload:
      cache_store(e.server, e.client, e.p_end, t);
      break;
    case kEvLocal: {
      if (e.peer != kNoServer)
        detach_from(e.client, e.peer, t, obs::kDetachUnreachable);
      ++metrics_.unreachable_client_intervals;
      metrics_.local_fallback_queries += e.queries;
      metrics_.local_latency_sum_s += e.latency_sum;
      RowAcc& row = acc_[static_cast<std::size_t>(e.server)];
      row.local_queries += e.queries;
      row.local_latency += e.latency_sum;
      if (e.queries > 0)
        journal({.interval = t,
                 .kind = obs::JournalEventKind::kLocalFallback,
                 .client = e.client,
                 .server = e.server,
                 .aux = static_cast<std::int32_t>(e.queries),
                 .value = e.latency_sum});
      break;
    }
    case kEvPush: {
      if (faults_ &&
          (backhaul_now_ || down_[static_cast<std::size_t>(e.peer)] != 0)) {
        push_faulted(e, t);
        break;
      }
      const CacheEntry* cur =
          cache_[static_cast<std::size_t>(e.peer)].find(e.client);
      const int old_prefix = cur != nullptr ? cur->prefix : 0;
      int p = e.p_end;
      if (budget_ > 0 && p > old_prefix)
        p = admit(e.peer, e.client, old_prefix, p, t);
      auto& entry = cache_[static_cast<std::size_t>(e.peer)][e.client];
      const Bytes bytes =
          p > old_prefix
              ? w_.prefix_bytes[static_cast<std::size_t>(p)] -
                    w_.prefix_bytes[static_cast<std::size_t>(old_prefix)]
              : 0;
      if (p > entry.prefix) {
        entry.prefix = static_cast<std::uint16_t>(p);
        if (budget_ > 0)
          cache_bytes_[static_cast<std::size_t>(e.peer)] += bytes;
      }
      schedule_expiry(e.peer, e.client, t + cfg_.ttl_intervals);
      acc_[static_cast<std::size_t>(e.server)].uplink += bytes;
      acc_[static_cast<std::size_t>(e.server)].orders += 1;
      acc_[static_cast<std::size_t>(e.peer)].downlink += bytes;
      metrics_.total_migrated_bytes += bytes;
      journal({.interval = t,
               .kind = obs::JournalEventKind::kMigrationPushed,
               .client = e.client,
               .server = e.server,
               .peer = e.peer,
               .bytes = bytes,
               .aux = std::max(0, p - old_prefix)});
      break;
    }
    default:
      PERDNN_CHECK_MSG(false, "unknown shard event kind");
  }
}

void ShardEngine::apply_events(int t) {
  // K-way merge of the per-shard buffers in client-id order. Each client's
  // events live contiguously in exactly one shard's buffer (its owner), so
  // picking the shard with the smallest head client id and draining that
  // client reconstructs the canonical global order regardless of how tiles
  // were sharded.
  const bool shedding = !shed_.empty();
  std::vector<std::size_t> head(bufs_.size(), 0);
  while (true) {
    int best = -1;
    ClientId best_client = std::numeric_limits<ClientId>::max();
    for (std::size_t s = 0; s < bufs_.size(); ++s) {
      if (head[s] >= bufs_[s].events.size()) continue;
      const ClientId client = bufs_[s].events[head[s]].client;
      if (client < best_client) {
        best_client = client;
        best = static_cast<int>(s);
      }
    }
    if (best < 0) break;
    auto& events = bufs_[static_cast<std::size_t>(best)].events;
    auto& h = head[static_cast<std::size_t>(best)];
    while (h < events.size() && events[h].client == best_client) {
      // Warm the cache-table slot the following event will touch while this
      // one applies; push events hit the peer's table, the rest the
      // attach/upload server's.
      if (h + 1 < events.size()) {
        const Event& next = events[h + 1];
        if (next.kind == kEvPush) {
          cache_[static_cast<std::size_t>(next.peer)].prefetch(next.client);
        } else if (next.server != kNoServer) {
          cache_[static_cast<std::size_t>(next.server)].prefetch(next.client);
        }
      }
      const Event& e = events[h];
      if (shedding &&
          std::binary_search(shed_.begin(), shed_.end(), e.client)) {
        // Admission control refused this client's attach. Its pushes were
        // planned against an attach that never happened, so they drop with
        // it.
        if (e.kind == kEvAttach) apply_shed(e, t);
      } else {
        apply_event(e, t);
      }
      ++h;
    }
  }
}

void ShardEngine::fault_step(int t) {
  if (!faults_) return;
  // Scripted fault boundaries, journalled exactly like the trace-replay
  // engine's apply_faults: one kFaultApplied at the window's first interval
  // and one kFaultCleared at its exclusive end.
  if (jr_ != nullptr) {
    for (const FaultEvent& ev : cfg_.fault_plan.events()) {
      const auto code = static_cast<std::int32_t>(ev.kind);
      if (ev.at_interval == t)
        jr_->record({.interval = t,
                     .kind = obs::JournalEventKind::kFaultApplied,
                     .client = ev.client,
                     .server = ev.server,
                     .peer = ev.peer,
                     .detail = code,
                     .aux = ev.duration_intervals,
                     .value = ev.severity});
      if (ev.at_interval + ev.duration_intervals == t)
        jr_->record({.interval = t,
                     .kind = obs::JournalEventKind::kFaultCleared,
                     .client = ev.client,
                     .server = ev.server,
                     .peer = ev.peer,
                     .detail = code});
    }
  }

  // Crash starts: the server's cache is lost and every attached client
  // drops. One SoA pass buckets the dropped clients per crashed server so
  // the work below runs in (server, client-id) order.
  const std::vector<ServerId> crashes = ft_.crashes_starting_at(t);
  if (!crashes.empty()) {
    std::vector<std::vector<ClientId>> dropped(crashes.size());
    for (std::size_t c = 0; c < server_.size(); ++c) {
      const ServerId sv = server_[c];
      if (sv == kNoServer) continue;
      const auto it = std::lower_bound(crashes.begin(), crashes.end(), sv);
      if (it != crashes.end() && *it == sv)
        dropped[static_cast<std::size_t>(it - crashes.begin())].push_back(
            static_cast<ClientId>(c));
    }
    std::vector<std::pair<ClientId, std::uint16_t>> evicted;
    for (std::size_t i = 0; i < crashes.size(); ++i) {
      const ServerId sid = crashes[i];
      ++metrics_.server_failures;
      auto& entries = cache_[static_cast<std::size_t>(sid)];
      if (jr_ != nullptr && entries.size() > 0) {
        evicted.clear();
        entries.for_each([&evicted](ClientId c, const CacheEntry& entry) {
          evicted.emplace_back(c, entry.prefix);
        });
        std::sort(evicted.begin(), evicted.end());
        for (const auto& [c, prefix] : evicted)
          jr_->record({.interval = t,
                       .kind = obs::JournalEventKind::kCacheEvict,
                       .client = c,
                       .server = sid,
                       .aux = prefix});
      }
      entries.clear();
      if (budget_ > 0) cache_bytes_[static_cast<std::size_t>(sid)] = 0;
      for (const ClientId c : dropped[i]) {
        detach_from(c, sid, t, obs::kDetachCrash);
        ++metrics_.failure_evictions;
        const auto ci = static_cast<std::size_t>(c);
        server_[ci] = kNoServer;
        prefix_[ci] = 0;
        carry_[ci] = 0;
      }
    }
  }

  // Disconnect starts: the client's own outage; detach if attached.
  for (const ClientId c : ft_.disconnects_starting_at(t)) {
    ++metrics_.client_disconnect_events;
    const auto ci = static_cast<std::size_t>(c);
    if (server_[ci] != kNoServer) {
      detach_from(c, server_[ci], t, obs::kDetachDisconnect);
      server_[ci] = kNoServer;
      prefix_[ci] = 0;
      carry_[ci] = 0;
    }
  }

  // Advance the window counters with this interval's slice of the
  // precompiled edge lists, then refresh the flags Phase A reads.
  const auto apply = [](const std::vector<FaultEdge>& edges, int interval,
                        auto&& fn) {
    const auto [first, last] = FaultTimeline::edges_at(edges, interval);
    for (const FaultEdge* e = first; e != last; ++e) fn(*e);
  };
  apply(ft_.server_down_edges(), t, [this](const FaultEdge& e) {
    auto& count = down_count_[static_cast<std::size_t>(e.id)];
    count += e.begins ? 1 : -1;
    down_[static_cast<std::size_t>(e.id)] = count > 0 ? 1 : 0;
  });
  apply(ft_.telemetry_edges(), t, [this](const FaultEdge& e) {
    auto& count = tele_count_[static_cast<std::size_t>(e.id)];
    count += e.begins ? 1 : -1;
    tele_[static_cast<std::size_t>(e.id)] = count > 0 ? 1 : 0;
  });
  apply(ft_.client_offline_edges(), t, [this](const FaultEdge& e) {
    auto& count = off_count_[static_cast<std::size_t>(e.id)];
    count += e.begins ? 1 : -1;
    scripted_off_[static_cast<std::size_t>(e.id)] = count > 0 ? 1 : 0;
  });
  apply(ft_.backhaul_edges(), t, [this](const FaultEdge& e) {
    backhaul_count_ += e.begins ? 1 : -1;
  });
  backhaul_now_ = backhaul_count_ > 0;
  link_used_.clear();
}

void ShardEngine::replay_fault_edges(int upto) {
  // Rebuilds the window counters a checkpointed run had entering interval
  // `upto`: every edge strictly before it applied once. fault_step(upto)
  // then applies the resumed interval's own edges, exactly as the
  // uninterrupted run did.
  if (!faults_) return;
  std::fill(down_count_.begin(), down_count_.end(), 0);
  std::fill(tele_count_.begin(), tele_count_.end(), 0);
  std::fill(off_count_.begin(), off_count_.end(), 0);
  backhaul_count_ = 0;
  const auto replay = [upto](const std::vector<FaultEdge>& edges, auto&& fn) {
    for (const FaultEdge& e : edges) {
      if (e.interval >= upto) break;
      fn(e);
    }
  };
  replay(ft_.server_down_edges(), [this](const FaultEdge& e) {
    down_count_[static_cast<std::size_t>(e.id)] += e.begins ? 1 : -1;
  });
  replay(ft_.telemetry_edges(), [this](const FaultEdge& e) {
    tele_count_[static_cast<std::size_t>(e.id)] += e.begins ? 1 : -1;
  });
  replay(ft_.client_offline_edges(), [this](const FaultEdge& e) {
    off_count_[static_cast<std::size_t>(e.id)] += e.begins ? 1 : -1;
  });
  replay(ft_.backhaul_edges(), [this](const FaultEdge& e) {
    backhaul_count_ += e.begins ? 1 : -1;
  });
  for (std::size_t s = 0; s < down_.size(); ++s)
    down_[s] = down_count_[s] > 0 ? 1 : 0;
  for (std::size_t s = 0; s < tele_.size(); ++s)
    tele_[s] = tele_count_[s] > 0 ? 1 : 0;
  for (std::size_t c = 0; c < scripted_off_.size(); ++c)
    scripted_off_[c] = off_count_[c] > 0 ? 1 : 0;
  backhaul_now_ = backhaul_count_ > 0;
}

void ShardEngine::compute_shed() {
  shed_.clear();
  if (cfg_.admission_max_attached <= 0) return;
  // Admission control: each server accepts at most admission_max_attached
  // clients, measured against its interval-start occupancy. The most
  // efficient attaches (highest cached prefix, ties to the lowest client
  // id) are kept; the rest shed to the local fallback.
  struct Cand {
    ServerId server;
    std::uint16_t p0;
    ClientId client;
  };
  std::vector<Cand> cand;
  for (const ShardBuf& buf : bufs_)
    for (const Event& e : buf.events)
      if (e.kind == kEvAttach) cand.push_back({e.server, e.p0, e.client});
  if (cand.empty()) return;
  std::sort(cand.begin(), cand.end(), [](const Cand& a, const Cand& b) {
    if (a.server != b.server) return a.server < b.server;
    if (a.p0 != b.p0) return a.p0 > b.p0;
    return a.client < b.client;
  });
  std::size_t i = 0;
  while (i < cand.size()) {
    std::size_t j = i;
    while (j < cand.size() && cand[j].server == cand[i].server) ++j;
    const auto capacity = static_cast<std::size_t>(std::max(
        0, cfg_.admission_max_attached -
               attached_[static_cast<std::size_t>(cand[i].server)]));
    for (std::size_t k = i + capacity; k < j; ++k)
      shed_.push_back(cand[k].client);
    i = j;
  }
  std::sort(shed_.begin(), shed_.end());
}

void ShardEngine::apply_shed(const Event& e, int t) {
  // Admission control refused this attach: undo Phase A's speculative SoA
  // write and run the interval on the local fallback instead.
  const auto ci = static_cast<std::size_t>(e.client);
  server_[ci] = kNoServer;
  prefix_[ci] = 0;
  carry_[ci] = 0;
  if (e.peer != kNoServer) detach_from(e.client, e.peer, t, obs::kDetachMoved);
  ++metrics_.attaches_shed;
  ++metrics_.unreachable_client_intervals;
  metrics_.local_fallback_queries += local_queries_;
  metrics_.local_latency_sum_s += local_latency_sum_;
  RowAcc& row = acc_[static_cast<std::size_t>(e.server)];
  row.local_queries += local_queries_;
  row.local_latency += local_latency_sum_;
  if (jr_ != nullptr) {
    const std::uint64_t chain = jr_->begin_chain(e.client);
    jr_->record({.interval = t,
                 .kind = obs::JournalEventKind::kAttachShed,
                 .chain = chain,
                 .client = e.client,
                 .server = e.server,
                 .peer = e.peer,
                 .detail = attached_[static_cast<std::size_t>(e.server)],
                 .aux = e.p0});
    if (local_queries_ > 0)
      jr_->record({.interval = t,
                   .kind = obs::JournalEventKind::kLocalFallback,
                   .chain = chain,
                   .client = e.client,
                   .server = e.server,
                   .aux = static_cast<std::int32_t>(local_queries_),
                   .value = local_latency_sum_});
  }
}

void ShardEngine::push_faulted(const Event& e, int t) {
  // Fault-path push: the target may be down, or a backhaul event may cap or
  // sever the link. Mirrors the trace-replay engine's push_layers: already
  // present layers cost nothing, a capacity too small for even one layer
  // defers the whole order (and skips the TTL refresh — nothing crossed),
  // a partial fit delivers the prefix that fits and parks the remainder as
  // a fresh order.
  const CacheEntry* cur =
      cache_[static_cast<std::size_t>(e.peer)].find(e.client);
  const int old_prefix = cur != nullptr ? cur->prefix : 0;
  const int want = e.p_end;
  const Bytes bytes_needed =
      want > old_prefix
          ? w_.prefix_bytes[static_cast<std::size_t>(want)] -
                w_.prefix_bytes[static_cast<std::size_t>(old_prefix)]
          : 0;
  if (down_[static_cast<std::size_t>(e.peer)] != 0) {
    if (bytes_needed > 0)
      defer_push(e.client, e.server, e.peer, want, bytes_needed, t);
    return;
  }
  const double factor =
      backhaul_now_ ? ft_.backhaul_factor(e.server, e.peer, t) : 1.0;
  if (factor <= 0.0) {
    if (bytes_needed > 0)
      defer_push(e.client, e.server, e.peer, want, bytes_needed, t);
    return;
  }
  int p = want;
  if (factor < 1.0 && bytes_needed > 0) {
    const auto cap = static_cast<Bytes>(factor * cfg_.backhaul_bytes_per_sec *
                                        cfg_.interval_s);
    Bytes& used = link_used_[link_key(e.server, e.peer)];
    p = old_prefix;
    while (p < want &&
           used + (w_.prefix_bytes[static_cast<std::size_t>(p + 1)] -
                   w_.prefix_bytes[static_cast<std::size_t>(old_prefix)]) <=
               cap)
      ++p;
    if (p == old_prefix) {
      ++metrics_.migrations_truncated;
      defer_push(e.client, e.server, e.peer, want, bytes_needed, t);
      return;
    }
    used += w_.prefix_bytes[static_cast<std::size_t>(p)] -
            w_.prefix_bytes[static_cast<std::size_t>(old_prefix)];
  }
  deliver_push(e.client, e.server, e.peer, old_prefix, p, t);
  if (p < want)
    defer_push(e.client, e.server, e.peer, want,
               w_.prefix_bytes[static_cast<std::size_t>(want)] -
                   w_.prefix_bytes[static_cast<std::size_t>(p)],
               t);
}

void ShardEngine::deliver_push(ClientId c, ServerId source, ServerId target,
                               int old_prefix, int new_prefix, int t) {
  int p = new_prefix;
  if (budget_ > 0 && p > old_prefix) p = admit(target, c, old_prefix, p, t);
  auto& entry = cache_[static_cast<std::size_t>(target)][c];
  const Bytes bytes =
      p > old_prefix
          ? w_.prefix_bytes[static_cast<std::size_t>(p)] -
                w_.prefix_bytes[static_cast<std::size_t>(old_prefix)]
          : 0;
  if (p > entry.prefix) {
    entry.prefix = static_cast<std::uint16_t>(p);
    if (budget_ > 0) cache_bytes_[static_cast<std::size_t>(target)] += bytes;
  }
  schedule_expiry(target, c, t + cfg_.ttl_intervals);
  acc_[static_cast<std::size_t>(source)].uplink += bytes;
  acc_[static_cast<std::size_t>(source)].orders += 1;
  acc_[static_cast<std::size_t>(target)].downlink += bytes;
  metrics_.total_migrated_bytes += bytes;
  journal({.interval = t,
           .kind = obs::JournalEventKind::kMigrationPushed,
           .client = c,
           .server = source,
           .peer = target,
           .bytes = bytes,
           .aux = std::max(0, p - old_prefix)});
}

void ShardEngine::defer_push(ClientId c, ServerId source, ServerId target,
                             int want, Bytes bytes, int t) {
  const ShardRetryOrder order{.client = c,
                              .source = source,
                              .target = target,
                              .prefix = static_cast<std::uint16_t>(want),
                              .bytes = bytes,
                              .attempts = 1};
  if (park_or_drop(order, t)) {
    ++metrics_.migrations_deferred;
    metrics_.deferred_migration_bytes += bytes;
    acc_[static_cast<std::size_t>(source)].deferred += bytes;
  }
}

bool ShardEngine::park_or_drop(ShardRetryOrder order, int t) {
  if (retry_.budget_spent(order.attempts)) {
    drop_order(order, t, obs::kDropRetryBudget);
    return false;
  }
  if (retry_.full(order.source)) {
    drop_order(order, t, obs::kDropQueueFull);
    return false;
  }
  order.next_attempt_interval = t + retry_.backoff_after(order.attempts);
  journal({.interval = t,
           .kind = obs::JournalEventKind::kMigrationDeferred,
           .client = order.client,
           .server = order.source,
           .peer = order.target,
           .bytes = order.bytes,
           .detail = order.attempts,
           .aux = order.next_attempt_interval});
  retry_.park(order);
  return true;
}

void ShardEngine::drop_order(const ShardRetryOrder& order, int t,
                             std::int32_t reason) {
  ++metrics_.migrations_abandoned;
  metrics_.abandoned_migration_bytes += order.bytes;
  journal({.interval = t,
           .kind = obs::JournalEventKind::kMigrationDropped,
           .client = order.client,
           .server = order.source,
           .peer = order.target,
           .bytes = order.bytes,
           .detail = order.attempts,
           .aux = reason});
}

void ShardEngine::retry_deferred(int t) {
  if (retry_.backlog_orders() == 0) return;
  for (const ShardRetryOrder& order : retry_.take_due(t)) {
    ++metrics_.migration_retries;
    journal({.interval = t,
             .kind = obs::JournalEventKind::kMigrationRetried,
             .client = order.client,
             .server = order.source,
             .peer = order.target,
             .bytes = order.bytes,
             .detail = order.attempts});
    if (down_[static_cast<std::size_t>(order.source)] != 0 ||
        down_[static_cast<std::size_t>(order.target)] != 0) {
      park_or_drop(order, t);
      continue;
    }
    const CacheEntry* cur =
        cache_[static_cast<std::size_t>(order.target)].find(order.client);
    const int old_prefix = cur != nullptr ? cur->prefix : 0;
    const int want = order.prefix;
    if (want <= old_prefix) {
      // The layers arrived by other means while the order was parked.
      journal({.interval = t,
               .kind = obs::JournalEventKind::kMigrationDropped,
               .client = order.client,
               .server = order.source,
               .peer = order.target,
               .bytes = order.bytes,
               .detail = order.attempts,
               .aux = obs::kDropDissolved});
      continue;
    }
    const double factor =
        backhaul_now_ ? ft_.backhaul_factor(order.source, order.target, t)
                      : 1.0;
    if (factor <= 0.0) {
      park_or_drop(order, t);
      continue;
    }
    int p = want;
    if (factor < 1.0) {
      const auto cap = static_cast<Bytes>(
          factor * cfg_.backhaul_bytes_per_sec * cfg_.interval_s);
      Bytes& used = link_used_[link_key(order.source, order.target)];
      p = old_prefix;
      while (p < want &&
             used + (w_.prefix_bytes[static_cast<std::size_t>(p + 1)] -
                     w_.prefix_bytes[static_cast<std::size_t>(old_prefix)]) <=
                 cap)
        ++p;
      if (p == old_prefix) {
        park_or_drop(order, t);
        continue;
      }
      used += w_.prefix_bytes[static_cast<std::size_t>(p)] -
              w_.prefix_bytes[static_cast<std::size_t>(old_prefix)];
    }
    deliver_push(order.client, order.source, order.target, old_prefix, p, t);
    if (p < want)
      defer_push(order.client, order.source, order.target, want,
                 w_.prefix_bytes[static_cast<std::size_t>(want)] -
                     w_.prefix_bytes[static_cast<std::size_t>(p)],
                 t);
  }
}

void ShardEngine::expire_entries(int t) {
  auto& slot = wheel_[static_cast<std::size_t>(t) % wheel_.size()];
  // Canonical (server, client) order regardless of insertion history — a
  // resumed run rebuilds the wheel from sorted snapshot entries, so the
  // processing order must not depend on how entries were queued.
  std::sort(slot.begin(), slot.end());
  slot.erase(std::unique(slot.begin(), slot.end()), slot.end());
  for (const auto& [sid, c] : slot) {
    auto& entries = cache_[static_cast<std::size_t>(sid)];
    const CacheEntry* entry = entries.find(c);
    if (entry == nullptr) continue;
    if (server_[static_cast<std::size_t>(c)] == sid) continue;  // kept alive
    if (entry->expire > t) continue;  // refreshed since queued
    journal({.interval = t,
             .kind = obs::JournalEventKind::kCacheExpire,
             .client = c,
             .server = sid,
             .aux = entry->prefix});
    if (budget_ > 0)
      cache_bytes_[static_cast<std::size_t>(sid)] -=
          w_.prefix_bytes[entry->prefix];
    entries.erase(c);
  }
  slot.clear();
}

void ShardEngine::finish_interval(int t) {
  expire_entries(t);

  for (const ShardBuf& buf : bufs_) {
    metrics_.offline_client_intervals += buf.offline;
  }
  metrics_.attached_client_intervals += total_attached_;

  const int num_servers = cfg_.num_servers();
  std::int64_t interval_total = 0;
  int under_100 = 0;
  Bytes resident_total = 0;
  for (int s = 0; s < num_servers; ++s) {
    const RowAcc& acc = acc_[static_cast<std::size_t>(s)];
    if (budget_ > 0) {
      PERDNN_CHECK_MSG(cache_bytes_[static_cast<std::size_t>(s)] <= budget_,
                       "cache budget invariant violated on server " << s);
      resident_total += cache_bytes_[static_cast<std::size_t>(s)];
    }
    const double up_mbps = bytes_to_mbps(static_cast<double>(acc.uplink),
                                         cfg_.interval_s);
    const double down_mbps = bytes_to_mbps(static_cast<double>(acc.downlink),
                                           cfg_.interval_s);
    peak_up_[static_cast<std::size_t>(s)] =
        std::max(peak_up_[static_cast<std::size_t>(s)], up_mbps);
    peak_down_[static_cast<std::size_t>(s)] =
        std::max(peak_down_[static_cast<std::size_t>(s)], down_mbps);
    interval_total += acc.uplink;
    if (up_mbps <= 100.0) ++under_100;
    if (ts_ != nullptr) {
      obs::TimeseriesRow row;
      row.interval = t;
      row.server = s;
      row.attached = attached_[static_cast<std::size_t>(s)];
      row.hits = acc.hits;
      row.partials = acc.partials;
      row.misses = acc.misses;
      row.cold_window_queries = acc.cold_queries;
      row.cold_latency_sum_s = acc.cold_latency;
      row.uplink_bytes = acc.uplink;
      row.downlink_bytes = acc.downlink;
      row.migration_orders = acc.orders;
      row.local_queries = acc.local_queries;
      row.local_latency_sum_s = acc.local_latency;
      row.deferred_bytes = acc.deferred;
      row.degraded = acc.degraded;
      if (budget_ > 0) {
        row.cache_bytes = cache_bytes_[static_cast<std::size_t>(s)];
        row.cache_evictions = acc.cache_evictions;
        row.cache_partial_stores = acc.cache_partial_stores;
      }
      ts_->append(row);
    }
  }
  if (budget_ > 0)
    metrics_.peak_cache_bytes =
        std::max(metrics_.peak_cache_bytes, resident_total);
  if (faults_)
    metrics_.peak_deferred_backlog_bytes = std::max(
        metrics_.peak_deferred_backlog_bytes, retry_.backlog_bytes());
  if (interval_total > best_interval_bytes_) {
    best_interval_bytes_ = interval_total;
    best_interval_fraction_ =
        static_cast<double>(under_100) / static_cast<double>(num_servers);
  }
}

void ShardEngine::open_writers_fresh() {
  if (!opt_.timeseries_path.empty())
    ts_ = std::make_unique<obs::TimeseriesStreamWriter>(
        opt_.timeseries_path, w_.model.name(), budget_ > 0);
  if (!opt_.journal_path.empty())
    jr_ = std::make_unique<obs::JournalStreamWriter>(opt_.journal_path);
}

void ShardEngine::restore_from(const snapshot::SimSnapshot& snap) {
  if (!snap.has_shard)
    throw snapshot::SnapshotError(
        "snapshot: not a sharded-world checkpoint");
  if (snap.config_fingerprint != shard_config_fingerprint(cfg_))
    throw snapshot::SnapshotError(
        "snapshot: config fingerprint mismatch (different scenario)");
  if (snap.num_intervals != cfg_.num_intervals)
    throw snapshot::SnapshotError("snapshot: interval count mismatch");
  const auto n = static_cast<std::size_t>(cfg_.num_clients);
  const snapshot::ShardSimState& s = snap.shard;
  if (s.x.size() != n || s.y.size() != n || s.heading.size() != n ||
      s.server.size() != n || s.prefix.size() != n || s.carry.size() != n ||
      s.offline_until.size() != n)
    throw snapshot::SnapshotError("snapshot: client array size mismatch");
  if (s.entry_server.size() != s.entry_client.size() ||
      s.entry_server.size() != s.entry_expire.size() ||
      s.entry_server.size() != s.entry_prefix.size())
    throw snapshot::SnapshotError("snapshot: cache entry arrays misaligned");
  if (s.peak_uplink_mbps.size() !=
          static_cast<std::size_t>(cfg_.num_servers()) ||
      s.peak_downlink_mbps.size() !=
          static_cast<std::size_t>(cfg_.num_servers()))
    throw snapshot::SnapshotError("snapshot: server array size mismatch");
  if (!opt_.timeseries_path.empty() != snap.has_timeseries)
    throw snapshot::SnapshotError(
        "snapshot: timeseries recording mismatch between checkpointed and "
        "resumed run");
  if (!opt_.journal_path.empty() != snap.has_journal)
    throw snapshot::SnapshotError(
        "snapshot: journal recording mismatch between checkpointed and "
        "resumed run");

  x_ = s.x;
  y_ = s.y;
  for (std::size_t c = 0; c < n; ++c) set_heading(static_cast<ClientId>(c),
                                                  s.heading[c]);
  server_ = s.server;
  for (std::size_t c = 0; c < n; ++c)
    prefix_[c] = static_cast<std::uint16_t>(s.prefix[c]);
  carry_ = s.carry;
  offline_until_ = s.offline_until;

  std::fill(attached_.begin(), attached_.end(), 0);
  total_attached_ = 0;
  for (std::size_t c = 0; c < n; ++c) {
    tile_[c] = w_.tile_at({x_[c], y_[c]});
    if (server_[c] != kNoServer) {
      const auto sid = static_cast<std::size_t>(server_[c]);
      if (sid >= attached_.size())
        throw snapshot::SnapshotError("snapshot: server id out of range");
      ++attached_[sid];
      ++total_attached_;
    }
  }

  for (auto& entries : cache_) entries.clear();
  for (auto& slot : wheel_) slot.clear();
  const int start = snap.next_interval;
  for (std::size_t i = 0; i < s.entry_server.size(); ++i) {
    const auto sid = s.entry_server[i];
    const auto c = s.entry_client[i];
    if (sid < 0 || sid >= cfg_.num_servers() || c < 0 ||
        c >= cfg_.num_clients)
      throw snapshot::SnapshotError("snapshot: cache entry out of range");
    CacheEntry entry;
    entry.prefix = static_cast<std::uint16_t>(s.entry_prefix[i]);
    entry.expire = s.entry_expire[i];
    if (entry.prefix > K_)
      throw snapshot::SnapshotError("snapshot: cache prefix out of range");
    cache_[static_cast<std::size_t>(sid)][c] = entry;
    if (server_[static_cast<std::size_t>(c)] != sid && entry.expire >= start)
      wheel_[static_cast<std::size_t>(entry.expire) % wheel_.size()]
          .push_back({sid, c});
  }
  // Resident bytes are a pure function of the restored prefixes — recomputed
  // rather than stored, so pre-v5 checkpoints restore exactly too.
  std::fill(cache_bytes_.begin(), cache_bytes_.end(), 0);
  if (budget_ > 0)
    for (std::size_t i = 0; i < s.entry_server.size(); ++i)
      cache_bytes_[static_cast<std::size_t>(s.entry_server[i])] +=
          w_.prefix_bytes[static_cast<std::size_t>(s.entry_prefix[i])];

  peak_up_ = s.peak_uplink_mbps;
  peak_down_ = s.peak_downlink_mbps;
  best_interval_bytes_ = s.best_interval_bytes;
  best_interval_fraction_ = s.best_interval_fraction;
  metrics_ = snap.metrics;
  start_interval_ = snap.next_interval;

  const std::size_t nr = s.retry_client.size();
  if (s.retry_source.size() != nr || s.retry_target.size() != nr ||
      s.retry_prefix.size() != nr || s.retry_bytes.size() != nr ||
      s.retry_attempts.size() != nr || s.retry_next_attempt.size() != nr)
    throw snapshot::SnapshotError(
        "snapshot: retry-queue arrays misaligned");
  std::vector<ShardRetryOrder> orders;
  orders.reserve(nr);
  for (std::size_t i = 0; i < nr; ++i) {
    if (s.retry_source[i] < 0 || s.retry_source[i] >= cfg_.num_servers() ||
        s.retry_target[i] < 0 || s.retry_target[i] >= cfg_.num_servers() ||
        s.retry_client[i] < 0 || s.retry_client[i] >= cfg_.num_clients)
      throw snapshot::SnapshotError("snapshot: retry order out of range");
    orders.push_back({.client = s.retry_client[i],
                      .source = s.retry_source[i],
                      .target = s.retry_target[i],
                      .prefix = static_cast<std::uint16_t>(s.retry_prefix[i]),
                      .bytes = s.retry_bytes[i],
                      .attempts = s.retry_attempts[i],
                      .next_attempt_interval = s.retry_next_attempt[i]});
  }
  retry_.restore(orders);
  replay_fault_edges(start);

  if (!opt_.timeseries_path.empty())
    ts_ = std::make_unique<obs::TimeseriesStreamWriter>(
        opt_.timeseries_path, obs::Resume{s.timeseries_bytes},
        s.timeseries_rows, budget_ > 0);
  if (!opt_.journal_path.empty()) {
    std::vector<std::pair<ClientId, std::uint64_t>> chains;
    chains.reserve(s.client_chains.size());
    for (const auto& [client, chain] : s.client_chains)
      chains.emplace_back(client, chain);
    jr_ = std::make_unique<obs::JournalStreamWriter>(
        opt_.journal_path, obs::Resume{s.journal_bytes}, s.journal_events,
        s.journal_next_chain, chains);
  }
}

snapshot::SimSnapshot ShardEngine::capture(int next_interval) {
  if (ts_ != nullptr) ts_->flush();
  if (jr_ != nullptr) jr_->flush();
  snapshot::SimSnapshot snap;
  snap.config_fingerprint = shard_config_fingerprint(cfg_);
  snap.next_interval = next_interval;
  snap.num_intervals = cfg_.num_intervals;
  snap.metrics = metrics_;
  snap.has_timeseries = ts_ != nullptr;
  snap.has_journal = jr_ != nullptr;
  snap.has_shard = true;
  snapshot::ShardSimState& s = snap.shard;
  s.x = x_;
  s.y = y_;
  s.heading = heading_;
  s.server = server_;
  s.prefix.assign(prefix_.begin(), prefix_.end());
  s.carry = carry_;
  s.offline_until = offline_until_;
  std::size_t total_entries = 0;
  for (const auto& entries : cache_) total_entries += entries.size();
  s.entry_server.reserve(total_entries);
  s.entry_client.reserve(total_entries);
  s.entry_expire.reserve(total_entries);
  s.entry_prefix.reserve(total_entries);
  std::vector<std::pair<ClientId, CacheEntry>> sorted;
  for (int sid = 0; sid < cfg_.num_servers(); ++sid) {
    const auto& entries = cache_[static_cast<std::size_t>(sid)];
    sorted.clear();
    sorted.reserve(entries.size());
    entries.for_each([&sorted](ClientId c, const CacheEntry& entry) {
      sorted.emplace_back(c, entry);
    });
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [c, entry] : sorted) {
      s.entry_server.push_back(sid);
      s.entry_client.push_back(c);
      s.entry_expire.push_back(entry.expire);
      s.entry_prefix.push_back(entry.prefix);
    }
  }
  s.peak_uplink_mbps = peak_up_;
  s.peak_downlink_mbps = peak_down_;
  s.best_interval_bytes = best_interval_bytes_;
  s.best_interval_fraction = best_interval_fraction_;
  for (const ShardRetryOrder& order : retry_.flatten()) {
    s.retry_client.push_back(order.client);
    s.retry_source.push_back(order.source);
    s.retry_target.push_back(order.target);
    s.retry_prefix.push_back(order.prefix);
    s.retry_bytes.push_back(order.bytes);
    s.retry_attempts.push_back(order.attempts);
    s.retry_next_attempt.push_back(order.next_attempt_interval);
  }
  if (ts_ != nullptr) {
    s.timeseries_bytes = ts_->bytes_written();
    s.timeseries_rows = ts_->rows_written();
  }
  if (jr_ != nullptr) {
    s.journal_bytes = jr_->bytes_written();
    s.journal_events = jr_->events_written();
    s.journal_next_chain = jr_->next_chain();
    for (const auto& [client, chain] : jr_->client_chains())
      s.client_chains.emplace_back(client, chain);
  }
  return snap;
}

void ShardEngine::checkpoint(int t) {
  snapshot::SimSnapshot snap = capture(t + 1);
  if (!opt_.checkpoint_path.empty())
    snapshot::save(snap, opt_.checkpoint_path);
  if (opt_.capture_out != nullptr) *opt_.capture_out = std::move(snap);
}

SimulationMetrics ShardEngine::run() {
  if (opt_.resume_from != nullptr) {
    restore_from(*opt_.resume_from);  // opens the writers at the offsets
  } else {
    open_writers_fresh();
  }
  if (opt_.interval_wall_s != nullptr) opt_.interval_wall_s->clear();

  double tm_bucket = 0, tm_phase_a = 0, tm_apply = 0, tm_finish = 0;
  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto secs = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };
  const auto n = static_cast<std::size_t>(cfg_.num_clients);
  for (int t = start_interval_; t < cfg_.num_intervals; ++t) {
    const auto wall_start = std::chrono::steady_clock::now();

    // Scripted fault boundaries first: crashes wipe caches and drop
    // clients, and the window flags Phase A reads advance to this interval.
    fault_step(t);

    // Ownership: the shard of the tile each client stood on at the
    // interval start. Buckets stay sorted by client id by construction.
    auto t0 = now();
    for (auto& bucket : buckets_) bucket.clear();
    for (std::size_t c = 0; c < n; ++c)
      buckets_[static_cast<std::size_t>(
                   tile_shard_[static_cast<std::size_t>(tile_[c])])]
          .push_back(static_cast<ClientId>(c));

    // Phase A: pure per-shard walks against frozen shared state.
    for (auto& buf : bufs_) {
      buf.events.clear();
      buf.offline = 0;
      buf.disconnects = 0;
    }
    auto t1 = now();
    tm_bucket += secs(t0, t1);
    par::parallel_for(bufs_.size(), [&](std::size_t sh) { run_shard(sh, t); });
    auto t2 = now();
    tm_phase_a += secs(t1, t2);

    // Phase B: canonical-order exchange and every shared-state mutation.
    for (auto& acc : acc_) acc = RowAcc{};
    for (const ShardBuf& buf : bufs_)
      metrics_.client_disconnect_events += buf.disconnects;
    compute_shed();
    apply_events(t);
    if (faults_) retry_deferred(t);
    auto t3 = now();
    tm_apply += secs(t2, t3);
    finish_interval(t);
    tm_finish += secs(t3, now());

    if (opt_.interval_wall_s != nullptr) {
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - wall_start;
      opt_.interval_wall_s->push_back(wall.count());
    }

    const bool periodic =
        opt_.checkpoint_every > 0 && (t + 1) % opt_.checkpoint_every == 0;
    const bool stopping = opt_.stop_after_interval == t;
    if (periodic || stopping) checkpoint(t);
    if (stopping) break;
  }

  if (std::getenv("PERDNN_PHASE_TIMING") != nullptr)
    std::fprintf(stderr,
                 "phase timing: bucket=%.2fs phase_a=%.2fs apply=%.2fs "
                 "finish=%.2fs\n",
                 tm_bucket, tm_phase_a, tm_apply, tm_finish);

  metrics_.peak_uplink_mbps =
      peak_up_.empty() ? 0.0 : *std::max_element(peak_up_.begin(),
                                                 peak_up_.end());
  metrics_.peak_downlink_mbps =
      peak_down_.empty() ? 0.0
                         : *std::max_element(peak_down_.begin(),
                                             peak_down_.end());
  int under_100 = 0;
  for (double v : peak_up_)
    if (v <= 100.0) ++under_100;
  metrics_.fraction_servers_within_100mbps =
      peak_up_.empty() ? 0.0
                       : static_cast<double>(under_100) /
                             static_cast<double>(peak_up_.size());
  metrics_.fraction_servers_within_100mbps_at_peak =
      best_interval_bytes_ >= 0 ? best_interval_fraction_ : 1.0;
  metrics_.server_peak_uplink_mbps = peak_up_;
  metrics_.num_servers = cfg_.num_servers();
  metrics_.num_clients = cfg_.num_clients;
  metrics_.num_intervals = cfg_.num_intervals;

  if (ts_ != nullptr) ts_->flush();
  if (jr_ != nullptr) jr_->flush();
  return metrics_;
}

}  // namespace

SimulationMetrics run_sharded_simulation(const ShardWorld& world,
                                         const ShardRunOptions& options) {
  PERDNN_CHECK(!world.levels.empty());
  ShardEngine engine(world, options);
  return engine.run();
}

}  // namespace perdnn
