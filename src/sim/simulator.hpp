// Large-scale smart-city simulation (Section 4.B).
//
// Mobile users replay their trajectories over a hexagonal grid of edge
// servers (one per visited cell). Every time interval:
//
//   1. clients move; a client whose cell's server changed re-attaches and
//      suffers a *cold start*: the master derives a fresh partitioning plan
//      from the new server's GPU statistics, and the client offloads
//      whatever cached layers exist, uploading the rest incrementally —
//      queries completed during this first interval are the Fig 9 metric;
//   2. the master predicts every client's next location (linear SVR over the
//      n most recent points) and proactively migrates the server-side layers
//      of speculative plans to all servers within radius r of the predicted
//      location, de-duplicated and TTL-refreshed at the receivers, with
//      backhaul traffic accounted per server per interval;
//   3. caches expire (TTL intervals), attached clients keep theirs alive.
//
// Time inside a cold-start window advances continuously (query latency +
// 0.5 s gap, upload progressing at the wireless uplink rate), matching the
// paper's workload.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "device/gpu_model.hpp"
#include "device/profiler.hpp"
#include "edge/layer_cache.hpp"
#include "edge/migration_dispatcher.hpp"
#include "estimation/estimator.hpp"
#include "faults/fault_plan.hpp"
#include "geo/server_map.hpp"
#include "mobility/predictor.hpp"
#include "net/network.hpp"
#include "nn/model_zoo.hpp"
#include "partition/upload_order.hpp"

namespace perdnn {

namespace obs {
class Journal;
class SimTimeseries;
}  // namespace obs

namespace snapshot {
struct SimSnapshot;
}  // namespace snapshot

enum class MigrationPolicy {
  kNone,       ///< IONN baseline: never migrate; every re-attach is a miss
  kProactive,  ///< PerDNN: predict + migrate within radius r
  kOptimal,    ///< oracle: every layer available everywhere (hit ratio 100%)
};

/// How a client picks its offloading server when it moves (Section 3.C.2:
/// "applying the algorithm to all edge servers visible to the client, the
/// master server can find the best edge server").
enum class ServerSelection {
  /// Attach to the current cell's server (one AP in range).
  kCurrentCell,
  /// Evaluate every server within Wi-Fi range and pick the one whose
  /// GPU-aware plan promises the lowest latency — crowded servers quote
  /// longer times, so load balances automatically.
  kBestVisible,
};

/// Which mobility predictor drives proactive migration.
enum class PredictorKind {
  kSvr,         ///< the paper's deployed predictor
  kMarkov,      ///< prediction-suffix-tree baseline
  kRnn,         ///< LSTM baseline
  kStationary,  ///< predicts "stays where it is" (lower bound)
  kOracle,      ///< reads the trace one step ahead (upper bound)
};

struct SimulationConfig {
  ModelName model = ModelName::kInception;
  MigrationPolicy policy = MigrationPolicy::kProactive;
  double migration_radius_m = 50.0;  ///< the paper's r
  int ttl_intervals = 5;
  int trajectory_length = 5;  ///< n recent locations for prediction
  Seconds query_gap = 0.5;
  double cell_radius_m = 50.0;
  NetworkCondition wireless{};  // defaults to lab Wi-Fi values

  /// Wireless variability: each client's access link is scaled by a
  /// lognormal factor exp(sigma * N(0,1)) drawn at every re-attachment
  /// (clamped to [0.3, 2.0]). The master still *plans* with the nominal
  /// rates — the realistic mismatch between assumed and actual bandwidth —
  /// while execution and uploads run at the drawn rate. 0 disables.
  double bandwidth_jitter_sigma = 0.0;

  ServerSelection selection = ServerSelection::kCurrentCell;
  /// Wi-Fi visibility range for kBestVisible (servers whose cell centre is
  /// within this distance are candidates).
  double visibility_radius_m = 100.0;

  PredictorKind predictor = PredictorKind::kSvr;

  /// Legacy failure injection: per-interval probability that any given edge
  /// server crashes (loses its layer cache and drops its clients) and the
  /// number of intervals it stays down. 0 disables failures. Internally
  /// mapped onto FaultPlan::legacy_crashes(); mutually exclusive with a
  /// non-empty `fault_plan` (validate() rejects the combination).
  double server_failure_rate = 0.0;
  int server_downtime_intervals = 3;

  /// Scripted fault schedule (crashes, backhaul degradation, telemetry
  /// dropouts, client churn); see src/faults/fault_plan.hpp. Empty = no
  /// faults (unless the legacy knobs above are set).
  FaultPlan fault_plan;

  /// Retry-with-backoff policy for migration pushes that could not be
  /// delivered (backhaul outage / capacity exhausted / target down).
  MigrationRetryConfig migration_retry{};

  /// The paper's "alternative (2)", implemented as an option: during a cold
  /// start a client may keep offloading to its *previous* server, with the
  /// query routed through the new AP over the backhaul (extra RTT, capped
  /// bandwidth), while the new server warms up. Each query picks whichever
  /// path is faster at that moment.
  bool routing_fallback = false;
  double backhaul_bytes_per_sec = mbps_to_bytes_per_sec(1000.0);
  Seconds backhaul_rtt = 10e-3;

  /// Fractional migration (Fig 10): servers in `crowded_servers` send and
  /// receive at most `crowded_byte_budget` bytes of any client's model
  /// (highest-efficiency prefix). Empty set disables the mechanism.
  std::vector<ServerId> crowded_servers;
  Bytes crowded_byte_budget = 0;

  /// Per-server layer-cache byte budget. 0 (the default) leaves caches
  /// unbounded and the simulation byte-identical to builds without the
  /// knob. A positive budget makes every server's cache cost-aware: stores
  /// that would exceed it evict the lowest latency-saved-per-byte entries
  /// first, then admit only the highest-efficiency prefix of the incoming
  /// layers that fits (partial residency).
  Bytes cache_budget_bytes = 0;

  std::uint64_t seed = 42;

  /// Structural validation of every knob: rates/probabilities inside their
  /// domains, durations and TTLs positive, retry budgets sane, and the
  /// scripted-plan/legacy-knob exclusivity. Throws std::logic_error naming
  /// the offending field. build_world() and run_simulation() call this up
  /// front so misconfigurations fail loudly instead of skewing results.
  void validate() const;
};

struct SimulationMetrics {
  /// Queries completed inside cold-start windows (the Fig 9 bar height).
  long long cold_window_queries = 0;
  int server_changes = 0;
  int hits = 0;     ///< all server-side layers were already cached
  int partials = 0; ///< some but not all
  int misses = 0;   ///< nothing cached
  int server_failures = 0;    ///< injected crash events
  int failure_evictions = 0;  ///< clients dropped by a crashing server
  /// Cold-window queries served through the routed-to-previous-server path
  /// (only with routing_fallback).
  long long routed_queries = 0;

  // Fault model / graceful degradation (all zero on fault-free runs).
  int client_disconnect_events = 0;  ///< scripted disconnect windows opened
  /// Queries executed fully on the client because no live server was
  /// reachable, and their summed latency (the local-fallback path).
  long long local_fallback_queries = 0;
  double local_latency_sum_s = 0.0;
  /// Client-interval occupancy: intervals spent attached to a live server /
  /// active but with no reachable server (local fallback) / scripted
  /// offline. attached + unreachable + offline == active client-intervals.
  long long attached_client_intervals = 0;
  long long unreachable_client_intervals = 0;
  long long offline_client_intervals = 0;
  /// Re-attachments whose partitioning plan was built in degraded mode
  /// (stale GPU telemetry at the chosen server).
  int degraded_attaches = 0;
  /// Attach attempts refused by per-server admission control (sharded
  /// engine's overload shedding); the client spent the interval on the
  /// local fallback instead.
  int attaches_shed = 0;
  // Migration retry/backoff accounting (mirrors MigrationDispatcher).
  int migrations_deferred = 0;   ///< orders parked at least once
  int migration_retries = 0;     ///< delivery re-attempts popped from the queue
  int migrations_abandoned = 0;  ///< orders dropped after the attempt budget
  /// Fractional-cap truncations to nothing: a crowded endpoint's byte budget
  /// was smaller than every candidate layer, so an otherwise-sendable order
  /// shipped zero layers and was dropped instead of silently issued.
  int migrations_truncated = 0;
  Bytes deferred_migration_bytes = 0;   ///< bytes ever parked in the queue
  Bytes abandoned_migration_bytes = 0;  ///< bytes of abandoned orders
  Bytes peak_deferred_backlog_bytes = 0;  ///< max parked bytes at interval end

  // Budgeted layer caches (all zero when cache_budget_bytes is unset).
  long long cache_evictions = 0;       ///< entries displaced by the budget
  long long cache_partial_stores = 0;  ///< stores trimmed to a prefix
  /// Max over intervals of the cache bytes resident across all servers.
  Bytes peak_cache_bytes = 0;

  /// Share of active, online client-intervals spent attached to a live
  /// server: attached / (attached + unreachable). Scripted client
  /// disconnects are the client's own outage, so they do not count against
  /// the system. 1.0 when no client was ever active.
  double availability() const;
  /// Share of simulated queries that ran offloaded rather than through the
  /// local fallback: cold_window / (cold_window + local_fallback). 1.0 when
  /// no query was simulated.
  double offload_ratio() const;
  /// hit / (hit + miss), the paper's hit-ratio definition. When no cold
  /// start was ever classified (hits + misses == 0 — e.g. a run with no
  /// server changes, or a pure-partial run), the ratio is defined as 0.0
  /// rather than 0/0.
  double hit_ratio() const;

  // Backhaul traffic (proactive policies only).
  double peak_uplink_mbps = 0.0;
  double peak_downlink_mbps = 0.0;
  /// Share of servers whose all-time peaks stay under 100 Mbps.
  double fraction_servers_within_100mbps = 0.0;
  /// Share of servers under 100 Mbps during the single busiest interval.
  double fraction_servers_within_100mbps_at_peak = 0.0;
  Bytes total_migrated_bytes = 0;
  /// Per-server peak uplink Mbps, for picking crowded servers.
  std::vector<double> server_peak_uplink_mbps;

  int num_servers = 0;
  int num_clients = 0;
  int num_intervals = 0;
};

/// Shared, expensive-to-build inputs reused across policy runs so that the
/// IONN / PerDNN / Optimal bars of one figure see identical worlds.
struct SimulationWorld {
  DnnModel model;
  DnnProfile client_profile;
  std::shared_ptr<GpuContentionModel> gpu;
  std::shared_ptr<RandomForestEstimator> estimator;
  /// Load-free baseline estimator (LL) used when a server's GPU telemetry is
  /// stale or missing: the load-aware forest would otherwise be fed a GPU
  /// state that no longer exists. Trained on the same profiling sweep.
  std::shared_ptr<NeurosurgeonEstimator> fallback_estimator;
  ServerMap servers;
  std::vector<Trajectory> test_traces;
  /// Trained predictor for the kind the world was built with (null for the
  /// model-free kStationary/kOracle kinds). run_simulation may switch to
  /// kStationary/kOracle freely, but a model-based kind must match the one
  /// the world was built for.
  PredictorKind predictor_kind = PredictorKind::kSvr;
  std::shared_ptr<MobilityPredictor> predictor;
  /// Canonical efficiency order for the full model (uncontended plan); the
  /// simulator uses it for upload sequencing and fractional cuts.
  UploadSchedule canonical_schedule;
  Seconds interval = 20.0;
};

/// Builds a world: trains the estimator on a profiling sweep, trains the SVR
/// predictor on `train_traces`, allocates servers for cells visited by
/// `test_traces`.
SimulationWorld build_world(const SimulationConfig& config,
                            const std::vector<Trajectory>& train_traces,
                            const std::vector<Trajectory>& test_traces);

/// Runs one policy over a prebuilt world.
SimulationMetrics run_simulation(const SimulationConfig& config,
                                 const SimulationWorld& world);

/// Same, additionally streaming per-interval, per-server rows (cold-start
/// classifications, cold-window query counts and latencies, backhaul bytes,
/// migration orders, predictor error meters) into `timeseries` — the data
/// behind the Fig 9/10 curves. Pass nullptr to disable recording; the
/// simulation itself is identical either way.
SimulationMetrics run_simulation(const SimulationConfig& config,
                                 const SimulationWorld& world,
                                 obs::SimTimeseries* timeseries);

/// Checkpoint/resume controls for run_simulation. Snapshots are captured at
/// interval boundaries (after interval k fully finishes, before k+1 starts)
/// and a resumed run is byte-identical — metrics, timeseries, traffic — to
/// the uninterrupted one, at any thread count and fastpath setting.
struct SimulationRunOptions {
  /// Resume from this snapshot instead of interval 0. The snapshot's config
  /// fingerprint must match (config, world); snapshot::SnapshotError
  /// otherwise. When resuming with a timeseries recorder, the recorder is
  /// re-primed from the snapshot's rows so exports cover the whole run.
  const snapshot::SimSnapshot* resume_from = nullptr;
  /// Capture a checkpoint whenever (interval_index + 1) is a positive
  /// multiple of this. 0 disables periodic checkpoints.
  int checkpoint_every = 0;
  /// Stop after completing this interval index (capturing a checkpoint),
  /// returning the partial metrics accumulated so far. -1 runs to the end.
  int stop_after_interval = -1;
  /// Where periodic / stop checkpoints are save()d (atomic tmp + rename).
  /// Empty disables file output — captures still go to capture_out.
  std::string checkpoint_path;
  /// In-memory destination for the most recent capture (tests, embedding).
  snapshot::SimSnapshot* capture_out = nullptr;
  /// Structured event journal (obs/journal.hpp). Every event is recorded on
  /// the serial control path, so the journal is byte-identical across
  /// thread counts, the fastpath toggle, and a checkpoint/resume split
  /// (journal state travels through snapshots). nullptr disables journaling
  /// and is byte-identical to a build without it.
  obs::Journal* journal = nullptr;
};

/// Full-control variant: recording plus checkpoint/resume.
SimulationMetrics run_simulation(const SimulationConfig& config,
                                 const SimulationWorld& world,
                                 obs::SimTimeseries* timeseries,
                                 const SimulationRunOptions& options);

}  // namespace perdnn
