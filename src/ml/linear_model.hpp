// Ridge-regularised linear regression, solved by normal equations.
//
// This is the building block for the NeuroSurgeon-style "LL" estimators:
// the paper's baseline fits linear *and logarithmic* regression models on
// layer hyperparameters; we expose an optional log1p feature expansion that
// appends log-transformed copies of the inputs so a single linear solve
// covers both regimes.
#pragma once

#include "common/matrix.hpp"
#include "ml/dataset.hpp"

namespace perdnn::ml {

struct RidgeConfig {
  double ridge = 1e-6;
  /// Append log1p(|x|) copies of every feature (the "logarithmic" half of
  /// NeuroSurgeon's LL family).
  bool log_features = false;
};

class RidgeRegression {
 public:
  explicit RidgeRegression(RidgeConfig config = {});

  void fit(const Dataset& data);
  double predict(const Vector& features) const;
  bool trained() const { return !weights_.empty(); }

  /// Learned weights (expanded-feature space), last entry is the intercept.
  const Vector& weights() const { return weights_; }

 private:
  Vector expand(const Vector& features) const;

  RidgeConfig config_;
  Vector weights_;
  std::size_t raw_features_ = 0;
};

}  // namespace perdnn::ml
