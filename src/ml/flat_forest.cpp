#include "ml/flat_forest.hpp"

#include "common/check.hpp"
#include "common/simd.hpp"

namespace perdnn::ml {

void FlatForest::append_tree(const RegressionTree& tree) {
  PERDNN_CHECK_MSG(tree.trained(), "cannot compile an unfitted tree");
  const auto offset = static_cast<std::int32_t>(feature_.size());
  roots_.push_back(offset);
  const auto& nodes = tree.nodes();
  // BFS re-layout with sibling pairs adjacent: every inner node's children
  // land at consecutive indices, so right_[i] == left_[i] + 1 throughout
  // and the AVX2 kernel derives the right child instead of gathering it.
  // Only node numbering changes — each traversal makes the same comparisons
  // and reaches the same leaf value, so predictions are unaffected.
  std::vector<std::int32_t> remap(nodes.size(), -1);
  std::vector<std::int32_t> order;  // source indices in BFS visit order
  order.reserve(nodes.size());
  order.push_back(0);
  remap[0] = offset;
  std::int32_t next = offset + 1;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const RegressionTree::Node& node = nodes[order[i]];
    if (node.feature < 0) continue;
    remap[node.left] = next++;
    remap[node.right] = next++;
    order.push_back(node.left);
    order.push_back(node.right);
  }
  feature_.reserve(feature_.size() + nodes.size());
  threshold_.reserve(threshold_.size() + nodes.size());
  left_.reserve(left_.size() + nodes.size());
  right_.reserve(right_.size() + nodes.size());
  for (const std::int32_t src : order) {
    const RegressionTree::Node& node = nodes[src];
    feature_.push_back(node.feature);
    // Leaves carry their prediction in the threshold slot; inner nodes keep
    // the split threshold.
    threshold_.push_back(node.feature < 0 ? node.value : node.threshold);
    left_.push_back(node.feature < 0 ? -1 : remap[node.left]);
    right_.push_back(node.feature < 0 ? -1 : remap[node.right]);
  }
}

FlatForest FlatForest::compile(const RegressionTree& tree) {
  FlatForest flat;
  flat.combine_ = Combine::kSingle;
  flat.num_features_ = tree.num_features();
  flat.append_tree(tree);
  return flat;
}

FlatForest FlatForest::compile(const RandomForest& forest) {
  PERDNN_CHECK_MSG(forest.trained(), "cannot compile an unfitted forest");
  FlatForest flat;
  flat.combine_ = Combine::kAverage;
  flat.num_features_ = forest.trees().front().num_features();
  for (const RegressionTree& tree : forest.trees()) flat.append_tree(tree);
  return flat;
}

FlatForest FlatForest::compile(const GradientBoostedTrees& gbt) {
  PERDNN_CHECK_MSG(gbt.trained(), "cannot compile an unfitted GBT");
  FlatForest flat;
  flat.combine_ = Combine::kBoosted;
  flat.base_ = gbt.base();
  flat.shrinkage_ = gbt.learning_rate();
  flat.num_features_ = gbt.trees().front().num_features();
  for (const RegressionTree& tree : gbt.trees()) flat.append_tree(tree);
  return flat;
}

double FlatForest::predict_row(const double* features) const {
  // Per-tree accumulation mirrors the source ensembles exactly:
  //   RandomForest: total += tree.predict(); total / num_trees
  //   GBT:          out = base; out += lr * tree.predict() per round
  // so the result is bit-identical, not merely close.
  double sum = combine_ == Combine::kBoosted ? base_ : 0.0;
  const std::int32_t* feat = feature_.data();
  const double* thr = threshold_.data();
  const std::int32_t* lt = left_.data();
  const std::int32_t* rt = right_.data();
  for (std::int32_t root : roots_) {
    std::int32_t node = root;
    std::int32_t f = feat[node];
    while (f >= 0) {
      node = features[f] <= thr[node] ? lt[node] : rt[node];
      f = feat[node];
    }
    if (combine_ == Combine::kBoosted) {
      sum += shrinkage_ * thr[node];
    } else {
      sum += thr[node];
    }
  }
  if (combine_ == Combine::kAverage)
    return sum / static_cast<double>(roots_.size());
  return sum;
}

double FlatForest::predict(const Vector& features) const {
  PERDNN_CHECK_MSG(!empty(), "predict() on an empty FlatForest");
  PERDNN_CHECK(features.size() == num_features_);
  return predict_row(features.data());
}

detail::ForestKernelView FlatForest::kernel_view() const {
  detail::ForestKernelView view;
  view.feature = feature_.data();
  view.threshold = threshold_.data();
  view.left = left_.data();
  view.roots = roots_.data();
  view.num_trees = roots_.size();
  view.combine = static_cast<int>(combine_);
  view.base = base_;
  view.shrinkage = shrinkage_;
  return view;
}

void FlatForest::predict_batch_into(const double* rows, std::size_t stride,
                                    std::size_t n, double* out) const {
  PERDNN_CHECK_MSG(!empty(), "predict_batch_into() on an empty FlatForest");
  PERDNN_CHECK(stride >= num_features_);
  std::size_t r = 0;
#ifdef PERDNN_SIMD_AVX2
  if (simd::enabled() && n >= kSimdWidth) {
    const std::size_t vec = n - n % kSimdWidth;
    detail::predict_batch_avx2(kernel_view(), rows, stride, vec, out);
    r = vec;
  }
#endif
  for (; r < n; ++r) out[r] = predict_row(rows + r * stride);
}

Vector FlatForest::predict_batch(const Matrix& rows) const {
  PERDNN_CHECK_MSG(!empty(), "predict_batch() on an empty FlatForest");
  PERDNN_CHECK(rows.cols() == num_features_);
  Vector out(rows.rows());
  if (rows.rows() > 0)
    predict_batch_into(rows.row_data(0), rows.cols(), rows.rows(), out.data());
  return out;
}

}  // namespace perdnn::ml
