#include "ml/flat_forest.hpp"

#include "common/check.hpp"

namespace perdnn::ml {

void FlatForest::append_tree(const RegressionTree& tree) {
  PERDNN_CHECK_MSG(tree.trained(), "cannot compile an unfitted tree");
  const auto offset = static_cast<std::int32_t>(feature_.size());
  roots_.push_back(offset);
  const auto& nodes = tree.nodes();
  feature_.reserve(feature_.size() + nodes.size());
  threshold_.reserve(threshold_.size() + nodes.size());
  left_.reserve(left_.size() + nodes.size());
  right_.reserve(right_.size() + nodes.size());
  for (const RegressionTree::Node& node : nodes) {
    feature_.push_back(node.feature);
    // Leaves carry their prediction in the threshold slot; inner nodes keep
    // the split threshold.
    threshold_.push_back(node.feature < 0 ? node.value : node.threshold);
    left_.push_back(node.left < 0 ? -1 : node.left + offset);
    right_.push_back(node.right < 0 ? -1 : node.right + offset);
  }
}

FlatForest FlatForest::compile(const RegressionTree& tree) {
  FlatForest flat;
  flat.combine_ = Combine::kSingle;
  flat.num_features_ = tree.num_features();
  flat.append_tree(tree);
  return flat;
}

FlatForest FlatForest::compile(const RandomForest& forest) {
  PERDNN_CHECK_MSG(forest.trained(), "cannot compile an unfitted forest");
  FlatForest flat;
  flat.combine_ = Combine::kAverage;
  flat.num_features_ = forest.trees().front().num_features();
  for (const RegressionTree& tree : forest.trees()) flat.append_tree(tree);
  return flat;
}

FlatForest FlatForest::compile(const GradientBoostedTrees& gbt) {
  PERDNN_CHECK_MSG(gbt.trained(), "cannot compile an unfitted GBT");
  FlatForest flat;
  flat.combine_ = Combine::kBoosted;
  flat.base_ = gbt.base();
  flat.shrinkage_ = gbt.learning_rate();
  flat.num_features_ = gbt.trees().front().num_features();
  for (const RegressionTree& tree : gbt.trees()) flat.append_tree(tree);
  return flat;
}

double FlatForest::predict_row(const double* features) const {
  // Per-tree accumulation mirrors the source ensembles exactly:
  //   RandomForest: total += tree.predict(); total / num_trees
  //   GBT:          out = base; out += lr * tree.predict() per round
  // so the result is bit-identical, not merely close.
  double sum = combine_ == Combine::kBoosted ? base_ : 0.0;
  const std::int32_t* feat = feature_.data();
  const double* thr = threshold_.data();
  const std::int32_t* lt = left_.data();
  const std::int32_t* rt = right_.data();
  for (std::int32_t root : roots_) {
    std::int32_t node = root;
    std::int32_t f = feat[node];
    while (f >= 0) {
      node = features[f] <= thr[node] ? lt[node] : rt[node];
      f = feat[node];
    }
    if (combine_ == Combine::kBoosted) {
      sum += shrinkage_ * thr[node];
    } else {
      sum += thr[node];
    }
  }
  if (combine_ == Combine::kAverage)
    return sum / static_cast<double>(roots_.size());
  return sum;
}

double FlatForest::predict(const Vector& features) const {
  PERDNN_CHECK_MSG(!empty(), "predict() on an empty FlatForest");
  PERDNN_CHECK(features.size() == num_features_);
  return predict_row(features.data());
}

Vector FlatForest::predict_batch(const Matrix& rows) const {
  PERDNN_CHECK_MSG(!empty(), "predict_batch() on an empty FlatForest");
  PERDNN_CHECK(rows.cols() == num_features_);
  Vector out(rows.rows());
  for (std::size_t r = 0; r < rows.rows(); ++r)
    out[r] = predict_row(rows.row_data(r));
  return out;
}

}  // namespace perdnn::ml
