// Width-8 AVX2 batch traversal for FlatForest. This translation unit is the
// only one compiled with -mavx2 (plus -ffp-contract=off; see below) and is
// only in the build when the PERDNN_SIMD CMake option is ON — everything
// else links against the scalar fallback in flat_forest.cpp.
//
// Bit-identity with FlatForest::predict_row rests on three properties:
//   1. Child selection uses _CMP_LE_OQ, which is exactly the scalar
//      `features[f] <= thr[node]` — ordered, quiet, false on NaN.
//   2. Each lane accumulates its trees in the same order with the same
//      arithmetic (separate mul and add for the GBT shrinkage step;
//      -ffp-contract=off keeps the compiler from fusing them into an FMA,
//      which would round differently from the scalar build).
//   3. The kAverage division by the tree count happens once at the end,
//      as in the scalar path.
#ifdef PERDNN_SIMD_AVX2

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "ml/flat_forest.hpp"

namespace perdnn::ml::detail {

namespace {

// Compress two 4x64-bit compare masks into one 8x32-bit mask, lane i of the
// result mirroring double-lane i of (lo | hi).
inline __m256i compress_masks(__m256d lo, __m256d hi) {
  const __m256i take_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m128i lo32 = _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(lo), take_even));
  const __m128i hi32 = _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(hi), take_even));
  return _mm256_set_m128i(hi32, lo32);
}

}  // namespace

void predict_batch_avx2(const ForestKernelView& view, const double* rows,
                        std::size_t stride, std::size_t n, double* out) {
  const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i row_offsets = _mm256_mullo_epi32(
      lane_ids, _mm256_set1_epi32(static_cast<int>(stride)));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i minus_one = _mm256_set1_epi32(-1);
  const __m256i one = _mm256_set1_epi32(1);
  const bool boosted = view.combine == 2;  // Combine::kBoosted
  const __m256d init = _mm256_set1_pd(boosted ? view.base : 0.0);
  const __m256d shrinkage = _mm256_set1_pd(view.shrinkage);

  // Trees are walked six at a time over each 8-row block. A single
  // walker's step is a loop-carried dependency chain of gathers
  // (node -> threshold/feature gather -> compare -> next node), so one
  // chain leaves the gather units mostly idle; six independent walkers
  // overlap their latencies and bound the throughput by gather bandwidth
  // instead. The leaf values are accumulated strictly in tree order after
  // the group finishes, so the FP accumulation order — and therefore the
  // result — is exactly the scalar path's.
  constexpr std::size_t kTreeGroup = 6;
  for (std::size_t r0 = 0; r0 < n; r0 += 8) {
    const double* block = rows + r0 * stride;
    __m256d acc_lo = init;
    __m256d acc_hi = init;
    for (std::size_t t0 = 0; t0 < view.num_trees; t0 += kTreeGroup) {
      const std::size_t g = view.num_trees - t0 < kTreeGroup
                                ? view.num_trees - t0
                                : kTreeGroup;
      __m256i node[kTreeGroup];
      __m256i feat[kTreeGroup];
      unsigned live = (1u << g) - 1u;
      for (std::size_t k = 0; k < g; ++k) {
        node[k] = _mm256_set1_epi32(view.roots[t0 + k]);
        feat[k] = _mm256_i32gather_epi32(view.feature, node[k], 4);
      }
      while (live != 0) {
        for (std::size_t k = 0; k < g; ++k) {
          if ((live & (1u << k)) == 0) continue;
          // A lane parks on its leaf (feat < 0) while the others keep
          // stepping; the blend below freezes parked lanes in place.
          const __m256i active = _mm256_cmpgt_epi32(feat[k], minus_one);
          if (_mm256_testz_si256(active, active)) {
            live &= ~(1u << k);
            continue;
          }
          const __m128i node_lo = _mm256_castsi256_si128(node[k]);
          const __m128i node_hi = _mm256_extracti128_si256(node[k], 1);
          const __m256d thr_lo =
              _mm256_i32gather_pd(view.threshold, node_lo, 8);
          const __m256d thr_hi =
              _mm256_i32gather_pd(view.threshold, node_hi, 8);
          // Parked lanes have feat == -1; clamp to 0 so their (discarded)
          // feature gather stays in bounds.
          const __m256i fidx =
              _mm256_add_epi32(row_offsets, _mm256_max_epi32(feat[k], zero));
          const __m256d val_lo =
              _mm256_i32gather_pd(block, _mm256_castsi256_si128(fidx), 8);
          const __m256d val_hi =
              _mm256_i32gather_pd(block, _mm256_extracti128_si256(fidx, 1), 8);
          const __m256d le_lo = _mm256_cmp_pd(val_lo, thr_lo, _CMP_LE_OQ);
          const __m256d le_hi = _mm256_cmp_pd(val_hi, thr_hi, _CMP_LE_OQ);
          // BFS layout puts the right child at left + 1, so go-right is
          // just left + !(value <= threshold) — no second child gather.
          const __m256i left = _mm256_i32gather_epi32(view.left, node[k], 4);
          const __m256i le32 = compress_masks(le_lo, le_hi);
          const __m256i next =
              _mm256_add_epi32(left, _mm256_andnot_si256(le32, one));
          node[k] = _mm256_blendv_epi8(node[k], next, active);
          feat[k] = _mm256_i32gather_epi32(view.feature, node[k], 4);
        }
      }
      for (std::size_t k = 0; k < g; ++k) {
        const __m256d leaf_lo = _mm256_i32gather_pd(
            view.threshold, _mm256_castsi256_si128(node[k]), 8);
        const __m256d leaf_hi = _mm256_i32gather_pd(
            view.threshold, _mm256_extracti128_si256(node[k], 1), 8);
        if (boosted) {
          acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(shrinkage, leaf_lo));
          acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(shrinkage, leaf_hi));
        } else {
          acc_lo = _mm256_add_pd(acc_lo, leaf_lo);
          acc_hi = _mm256_add_pd(acc_hi, leaf_hi);
        }
      }
    }
    if (view.combine == 1) {  // Combine::kAverage
      const __m256d count =
          _mm256_set1_pd(static_cast<double>(view.num_trees));
      acc_lo = _mm256_div_pd(acc_lo, count);
      acc_hi = _mm256_div_pd(acc_hi, count);
    }
    _mm256_storeu_pd(out + r0, acc_lo);
    _mm256_storeu_pd(out + r0 + 4, acc_hi);
  }
}

}  // namespace perdnn::ml::detail

#endif  // PERDNN_SIMD_AVX2
