#include "ml/dataset.hpp"

#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace perdnn::ml {

void Dataset::add(Vector features, double target) {
  PERDNN_CHECK_MSG(rows.empty() || features.size() == num_features(),
                   "feature arity changed mid-dataset");
  rows.push_back(std::move(features));
  y.push_back(target);
}

void Dataset::check() const {
  PERDNN_CHECK(rows.size() == y.size());
  for (const auto& r : rows) PERDNN_CHECK(r.size() == num_features());
}

Matrix Dataset::to_matrix() const {
  Matrix m(rows.size(), num_features());
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (std::size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
  return m;
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& data,
                                             double test_fraction, Rng& rng) {
  data.check();
  PERDNN_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  PERDNN_CHECK(data.size() >= 2);
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  const auto n_test = static_cast<std::size_t>(std::max(
      1.0, std::round(test_fraction * static_cast<double>(idx.size()))));
  PERDNN_CHECK(n_test < idx.size());

  Dataset train, test;
  for (std::size_t pos = 0; pos < idx.size(); ++pos) {
    const std::size_t i = idx[pos];
    (pos < n_test ? test : train).add(data.rows[i], data.y[i]);
  }
  return {std::move(train), std::move(test)};
}

void StandardScaler::fit(const std::vector<Vector>& rows) {
  PERDNN_CHECK(!rows.empty());
  const std::size_t f = rows[0].size();
  mean_.assign(f, 0.0);
  scale_.assign(f, 0.0);
  for (const auto& row : rows) {
    PERDNN_CHECK(row.size() == f);
    for (std::size_t c = 0; c < f; ++c) mean_[c] += row[c];
  }
  for (double& m : mean_) m /= static_cast<double>(rows.size());
  for (const auto& row : rows)
    for (std::size_t c = 0; c < f; ++c) {
      const double d = row[c] - mean_[c];
      scale_[c] += d * d;
    }
  for (double& s : scale_) {
    s = std::sqrt(s / static_cast<double>(rows.size()));
    if (s < 1e-12) s = 1.0;  // constant feature
  }
}

Vector StandardScaler::transform(const Vector& features) const {
  PERDNN_CHECK(fitted() && features.size() == mean_.size());
  Vector out(features.size());
  for (std::size_t c = 0; c < features.size(); ++c)
    out[c] = (features[c] - mean_[c]) / scale_[c];
  return out;
}

std::vector<Vector> StandardScaler::transform(
    const std::vector<Vector>& rows) const {
  std::vector<Vector> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(transform(row));
  return out;
}

double StandardScaler::inverse_single(std::size_t feature,
                                      double value) const {
  PERDNN_CHECK(fitted() && feature < mean_.size());
  return value * scale_[feature] + mean_[feature];
}

}  // namespace perdnn::ml
