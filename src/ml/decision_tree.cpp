#include "ml/decision_tree.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace perdnn::ml {

RegressionTree::RegressionTree(TreeConfig config) : config_(config) {
  PERDNN_CHECK(config_.max_depth >= 1);
  PERDNN_CHECK(config_.min_samples_leaf >= 1);
  PERDNN_CHECK(config_.min_samples_split >= 2 * config_.min_samples_leaf);
}

void RegressionTree::fit(const Dataset& data, Rng& rng) {
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  fit(data, idx, rng);
}

void RegressionTree::fit(const Dataset& data,
                         const std::vector<std::size_t>& sample_indices,
                         Rng& rng) {
  data.check();
  PERDNN_CHECK(!sample_indices.empty());
  nodes_.clear();
  depth_ = 0;
  num_features_ = data.num_features();
  importance_.assign(num_features_, 0.0);
  std::vector<std::size_t> idx = sample_indices;
  build(data, idx, 0, idx.size(), 0, rng);
}

namespace {

/// Mean and sum-of-squared-deviation of y over idx[begin, end).
struct Moments {
  double mean = 0.0;
  double sse = 0.0;  // sum (y - mean)^2
};

Moments moments(const Vector& y, const std::vector<std::size_t>& idx,
                std::size_t begin, std::size_t end) {
  Moments m;
  const double n = static_cast<double>(end - begin);
  for (std::size_t i = begin; i < end; ++i) m.mean += y[idx[i]];
  m.mean /= n;
  for (std::size_t i = begin; i < end; ++i) {
    const double d = y[idx[i]] - m.mean;
    m.sse += d * d;
  }
  return m;
}

}  // namespace

int RegressionTree::build(const Dataset& data, std::vector<std::size_t>& idx,
                          std::size_t begin, std::size_t end, int depth,
                          Rng& rng) {
  const std::size_t n = end - begin;
  depth_ = std::max(depth_, depth);
  const Moments parent = moments(data.y, idx, begin, end);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].value = parent.mean;

  const bool can_split = depth < config_.max_depth &&
                         n >= config_.min_samples_split && parent.sse > 1e-24;
  if (!can_split) return node_id;

  // Candidate features (optionally subsampled, for forests).
  std::vector<std::size_t> features(num_features_);
  std::iota(features.begin(), features.end(), 0);
  if (config_.max_features > 0 && config_.max_features < num_features_) {
    rng.shuffle(features);
    features.resize(config_.max_features);
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;
  std::vector<std::size_t> sorted(idx.begin() + static_cast<long>(begin),
                                  idx.begin() + static_cast<long>(end));
  for (std::size_t f : features) {
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return data.rows[a][f] < data.rows[b][f];
    });
    // Prefix scan of sums / sums of squares to evaluate every split in O(n).
    double left_sum = 0.0, left_sq = 0.0;
    double total_sum = 0.0, total_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = data.y[sorted[i]];
      total_sum += v;
      total_sq += v * v;
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double v = data.y[sorted[i]];
      left_sum += v;
      left_sq += v * v;
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < config_.min_samples_leaf || nr < config_.min_samples_leaf)
        continue;
      // Skip ties: can't split between equal feature values.
      if (data.rows[sorted[i]][f] >= data.rows[sorted[i + 1]][f]) continue;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse_left = left_sq - left_sum * left_sum / nl;
      const double sse_right = right_sq - right_sum * right_sum / nr;
      const double gain = parent.sse - sse_left - sse_right;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold =
            0.5 * (data.rows[sorted[i]][f] + data.rows[sorted[i + 1]][f]);
      }
    }
  }
  if (best_feature < 0) return node_id;  // no usable split -> leaf

  importance_[static_cast<std::size_t>(best_feature)] += best_gain;

  // Partition idx[begin, end) by the chosen split.
  const auto mid_it = std::partition(
      idx.begin() + static_cast<long>(begin),
      idx.begin() + static_cast<long>(end), [&](std::size_t i) {
        return data.rows[i][static_cast<std::size_t>(best_feature)] <=
               best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  PERDNN_CHECK(mid > begin && mid < end);

  const int left = build(data, idx, begin, mid, depth + 1, rng);
  const int right = build(data, idx, mid, end, depth + 1, rng);
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double RegressionTree::predict(const Vector& features) const {
  PERDNN_CHECK_MSG(trained(), "predict() before fit()");
  PERDNN_CHECK(features.size() == num_features_);
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = features[static_cast<std::size_t>(n.feature)] <= n.threshold
               ? n.left
               : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

}  // namespace perdnn::ml
