#include "ml/svr.hpp"

#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace perdnn::ml {

LinearSvr::LinearSvr(SvrConfig config) : config_(config) {
  PERDNN_CHECK(config_.epsilon >= 0.0);
  PERDNN_CHECK(config_.lambda >= 0.0);
  PERDNN_CHECK(config_.epochs >= 1);
  PERDNN_CHECK(config_.learning_rate > 0.0);
}

void LinearSvr::fit(const Dataset& data, Rng& rng) {
  data.check();
  PERDNN_CHECK(data.size() >= 2);
  const std::size_t d = data.num_features();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  // Polyak averaging over the second half of training stabilises SGD.
  Vector avg_w(d, 0.0);
  double avg_b = 0.0;
  std::size_t avg_count = 0;
  const std::size_t avg_start =
      static_cast<std::size_t>(config_.epochs) * data.size() / 2;

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::size_t step = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t i : order) {
      ++step;
      const double lr =
          config_.learning_rate / (1.0 + 0.01 * static_cast<double>(step));
      const Vector& x = data.rows[i];
      const double residual = dot(weights_, x) + bias_ - data.y[i];
      // Subgradient of the epsilon-insensitive loss.
      double g = 0.0;
      if (residual > config_.epsilon) g = 1.0;
      else if (residual < -config_.epsilon) g = -1.0;
      for (std::size_t f = 0; f < d; ++f)
        weights_[f] -= lr * (config_.lambda * weights_[f] + g * x[f]);
      bias_ -= lr * g;
      if (step >= avg_start) {
        for (std::size_t f = 0; f < d; ++f) avg_w[f] += weights_[f];
        avg_b += bias_;
        ++avg_count;
      }
    }
  }
  if (avg_count > 0) {
    for (std::size_t f = 0; f < d; ++f)
      weights_[f] = avg_w[f] / static_cast<double>(avg_count);
    bias_ = avg_b / static_cast<double>(avg_count);
  }
}

double LinearSvr::predict(const Vector& features) const {
  PERDNN_CHECK_MSG(trained(), "predict() before fit()");
  PERDNN_CHECK(features.size() == weights_.size());
  return dot(weights_, features) + bias_;
}

MultiOutputSvr::MultiOutputSvr(std::size_t outputs, SvrConfig config) {
  PERDNN_CHECK(outputs >= 1);
  models_.assign(outputs, LinearSvr(config));
}

void MultiOutputSvr::fit(const std::vector<Vector>& features,
                         const std::vector<Vector>& targets, Rng& rng) {
  PERDNN_CHECK(features.size() == targets.size());
  PERDNN_CHECK(!features.empty());
  for (const Vector& t : targets) PERDNN_CHECK(t.size() == models_.size());
  // One forked stream per output head, in output order, so the heads can
  // train concurrently with reproducible shuffles.
  std::vector<Rng> head_rngs;
  head_rngs.reserve(models_.size());
  for (std::size_t out = 0; out < models_.size(); ++out)
    head_rngs.push_back(rng.fork());
  par::parallel_for(models_.size(), [&](std::size_t out) {
    Dataset data;
    for (std::size_t i = 0; i < features.size(); ++i)
      data.add(features[i], targets[i][out]);
    models_[out].fit(data, head_rngs[out]);
  });
}

Vector MultiOutputSvr::predict(const Vector& features) const {
  Vector out;
  out.reserve(models_.size());
  for (const auto& model : models_) out.push_back(model.predict(features));
  return out;
}

bool MultiOutputSvr::trained() const {
  for (const auto& model : models_)
    if (!model.trained()) return false;
  return true;
}

}  // namespace perdnn::ml
