#include "ml/linear_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace perdnn::ml {

RidgeRegression::RidgeRegression(RidgeConfig config) : config_(config) {
  PERDNN_CHECK(config_.ridge >= 0.0);
}

Vector RidgeRegression::expand(const Vector& features) const {
  Vector out = features;
  if (config_.log_features) {
    out.reserve(features.size() * 2 + 1);
    for (double f : features) out.push_back(std::log1p(std::abs(f)));
  }
  out.push_back(1.0);  // intercept
  return out;
}

void RidgeRegression::fit(const Dataset& data) {
  data.check();
  PERDNN_CHECK(data.size() >= 2);
  raw_features_ = data.num_features();

  // Build the expanded design matrix implicitly: accumulate X^T X and X^T y.
  const std::size_t d = expand(data.rows[0]).size();
  Matrix xtx(d, d);
  Vector xty(d, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Vector row = expand(data.rows[i]);
    for (std::size_t a = 0; a < d; ++a) {
      xty[a] += row[a] * data.y[i];
      for (std::size_t b = a; b < d; ++b) xtx(a, b) += row[a] * row[b];
    }
  }
  for (std::size_t a = 0; a < d; ++a)
    for (std::size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);

  // A tiny ridge floor keeps the solve well-posed with collinear features.
  weights_ = cholesky_solve(xtx, xty, std::max(config_.ridge, 1e-9));
}

double RidgeRegression::predict(const Vector& features) const {
  PERDNN_CHECK_MSG(trained(), "predict() before fit()");
  PERDNN_CHECK(features.size() == raw_features_);
  return dot(expand(features), weights_);
}

}  // namespace perdnn::ml
