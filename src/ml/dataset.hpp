// Tabular regression dataset plus the feature scaling the paper applies
// before SVR/RNN training (standard scores).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace perdnn::ml {

/// Rows of features with a scalar target each. Row-of-vectors storage keeps
/// appends O(row); convert with to_matrix() where dense algebra is needed.
struct Dataset {
  std::vector<Vector> rows;
  Vector y;

  std::size_t size() const { return y.size(); }
  std::size_t num_features() const { return rows.empty() ? 0 : rows[0].size(); }

  void add(Vector features, double target);
  /// Validates shape consistency; throws on mismatch.
  void check() const;
  /// Dense copy of the feature rows.
  Matrix to_matrix() const;
};

/// Splits into train/test by shuffled indices; `test_fraction` in (0, 1).
std::pair<Dataset, Dataset> train_test_split(const Dataset& data,
                                             double test_fraction, Rng& rng);

/// Per-feature standardisation to zero mean / unit variance. Constant
/// features get scale 1 so transform stays finite.
class StandardScaler {
 public:
  void fit(const std::vector<Vector>& rows);
  Vector transform(const Vector& features) const;
  std::vector<Vector> transform(const std::vector<Vector>& rows) const;
  /// Undoes standardisation for one feature dimension.
  double inverse_single(std::size_t feature, double value) const;
  bool fitted() const { return !mean_.empty(); }
  const Vector& mean() const { return mean_; }
  const Vector& scale() const { return scale_; }

 private:
  Vector mean_;
  Vector scale_;
};

}  // namespace perdnn::ml
