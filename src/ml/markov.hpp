// Variable-order Markov predictor implemented as a prediction suffix tree
// (Ron, Singer & Tishby), matching the paper's Markov mobility baseline:
// locations are discretised to edge-server identifiers, the tree stores
// next-symbol counts per context, and prediction looks up the longest
// matching suffix of the recent trajectory, shortened by the subsequence
// ratio `a` (0.7 in the paper, after Jacquet et al.).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace perdnn::ml {

struct MarkovConfig {
  int max_order = 5;
  double subsequence_ratio = 0.7;  ///< the paper's `a`
};

class PredictionSuffixTree {
 public:
  explicit PredictionSuffixTree(MarkovConfig config = {});

  /// Folds one symbol sequence (e.g. a user's server-id trajectory) into the
  /// context statistics.
  void add_sequence(const std::vector<int>& symbols);

  /// (symbol, probability) pairs sorted by descending probability for the
  /// longest usable context of `recent`; empty if nothing matches.
  std::vector<std::pair<int, double>> predict_distribution(
      const std::vector<int>& recent) const;

  /// Top-n most probable next symbols (may return fewer).
  std::vector<int> predict_top(const std::vector<int>& recent, int n) const;

  std::size_t num_contexts() const { return contexts_.size(); }

 private:
  struct VectorHash {
    std::size_t operator()(const std::vector<int>& v) const;
  };

  MarkovConfig config_;
  /// context (most recent symbol last) -> next-symbol counts.
  std::unordered_map<std::vector<int>, std::unordered_map<int, std::int64_t>,
                     VectorHash>
      contexts_;
};

}  // namespace perdnn::ml
