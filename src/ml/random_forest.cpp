#include "ml/random_forest.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace perdnn::ml {

RandomForest::RandomForest(ForestConfig config) : config_(config) {
  PERDNN_CHECK(config_.num_trees >= 1);
  PERDNN_CHECK(config_.bootstrap_fraction > 0.0 &&
               config_.bootstrap_fraction <= 1.0);
}

void RandomForest::fit(const Dataset& data, Rng& rng) {
  data.check();
  PERDNN_CHECK(data.size() >= 4);
  num_features_ = data.num_features();

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    // sklearn-style default for regression forests: all features; we use
    // ceil(sqrt) x 2 as a compromise that decorrelates trees while keeping
    // the strong load features in play often enough.
    tree_config.max_features = std::min(
        num_features_,
        static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(num_features_)))) *
            2);
  }

  const auto bootstrap_n = static_cast<std::size_t>(std::max(
      1.0, std::round(config_.bootstrap_fraction *
                      static_cast<double>(data.size()))));
  // Bootstrap samples and per-tree Rng streams are drawn serially, in tree
  // order, from the caller's generator; the tree fits themselves are then
  // independent, so the forest is identical at any thread count.
  const auto num_trees = static_cast<std::size_t>(config_.num_trees);
  std::vector<std::vector<std::size_t>> samples(num_trees);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    samples[t].resize(bootstrap_n);
    for (auto& s : samples[t]) s = rng.index(data.size());
    tree_rngs.push_back(rng.fork());
  }
  trees_ = par::parallel_map(num_trees, [&](std::size_t t) {
    RegressionTree tree(tree_config);
    tree.fit(data, samples[t], tree_rngs[t]);
    return tree;
  });
}

double RandomForest::predict(const Vector& features) const {
  PERDNN_CHECK_MSG(trained(), "predict() before fit()");
  double total = 0.0;
  for (const auto& tree : trees_) total += tree.predict(features);
  return total / static_cast<double>(trees_.size());
}

Vector RandomForest::feature_importance() const {
  PERDNN_CHECK(trained());
  Vector importance(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const Vector& imp = tree.impurity_importance();
    for (std::size_t f = 0; f < num_features_; ++f) importance[f] += imp[f];
  }
  double total = 0.0;
  for (double v : importance) total += v;
  if (total > 0.0)
    for (double& v : importance) v /= total;
  return importance;
}

}  // namespace perdnn::ml
