#include "ml/random_forest.hpp"

#include <cmath>

#include "common/check.hpp"

namespace perdnn::ml {

RandomForest::RandomForest(ForestConfig config) : config_(config) {
  PERDNN_CHECK(config_.num_trees >= 1);
  PERDNN_CHECK(config_.bootstrap_fraction > 0.0 &&
               config_.bootstrap_fraction <= 1.0);
}

void RandomForest::fit(const Dataset& data, Rng& rng) {
  data.check();
  PERDNN_CHECK(data.size() >= 4);
  num_features_ = data.num_features();
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(config_.num_trees));

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    // sklearn-style default for regression forests: all features; we use
    // ceil(sqrt) x 2 as a compromise that decorrelates trees while keeping
    // the strong load features in play often enough.
    tree_config.max_features = std::min(
        num_features_,
        static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(num_features_)))) *
            2);
  }

  const auto bootstrap_n = static_cast<std::size_t>(std::max(
      1.0, std::round(config_.bootstrap_fraction *
                      static_cast<double>(data.size()))));
  for (int t = 0; t < config_.num_trees; ++t) {
    std::vector<std::size_t> sample(bootstrap_n);
    for (auto& s : sample) s = rng.index(data.size());
    RegressionTree tree(tree_config);
    tree.fit(data, sample, rng);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::predict(const Vector& features) const {
  PERDNN_CHECK_MSG(trained(), "predict() before fit()");
  double total = 0.0;
  for (const auto& tree : trees_) total += tree.predict(features);
  return total / static_cast<double>(trees_.size());
}

Vector RandomForest::feature_importance() const {
  PERDNN_CHECK(trained());
  Vector importance(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const Vector& imp = tree.impurity_importance();
    for (std::size_t f = 0; f < num_features_; ++f) importance[f] += imp[f];
  }
  double total = 0.0;
  for (double v : importance) total += v;
  if (total > 0.0)
    for (double& v : importance) v /= total;
  return importance;
}

}  // namespace perdnn::ml
