// Single-cell LSTM sequence regressor with a linear output head, trained
// with Adam on MAE loss via full backpropagation-through-time — matching the
// paper's RNN mobility predictor (one LSTM cell, latent size 16–32, fc head
// with no activation, MAE loss, Adam @ lr 0.001).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace perdnn::ml {

struct LstmConfig {
  std::size_t input_dim = 2;
  std::size_t hidden_dim = 16;
  std::size_t output_dim = 2;
  int epochs = 40;
  std::size_t batch_size = 16;
  double learning_rate = 1e-3;
  double grad_clip = 5.0;  ///< elementwise gradient clipping
};

class LstmRegressor {
 public:
  explicit LstmRegressor(LstmConfig config, Rng& rng);

  /// Trains on (sequence of input vectors) -> (target vector) pairs. All
  /// sequences may have different lengths; every step must be input_dim wide.
  void fit(const std::vector<std::vector<Vector>>& sequences,
           const std::vector<Vector>& targets, Rng& rng);

  Vector predict(const std::vector<Vector>& sequence) const;

  /// Mean absolute error over a dataset (per-output average).
  double evaluate_mae(const std::vector<std::vector<Vector>>& sequences,
                      const std::vector<Vector>& targets) const;

  const LstmConfig& config() const { return config_; }

 private:
  struct StepCache;

  /// Runs the cell over a sequence; fills caches when requested.
  Vector forward(const std::vector<Vector>& sequence,
                 std::vector<StepCache>* caches) const;

  LstmConfig config_;
  // Gate weights, stacked [i; f; g; o]: each block hidden_dim rows over
  // (input_dim + hidden_dim) columns.
  Matrix w_gates_;
  Vector b_gates_;
  Matrix w_out_;   // output_dim x hidden_dim
  Vector b_out_;

  // Adam state (same shapes as the parameters, flattened).
  struct AdamState {
    Vector m;
    Vector v;
  };
  AdamState adam_w_gates_, adam_b_gates_, adam_w_out_, adam_b_out_;
  long adam_t_ = 0;
};

}  // namespace perdnn::ml
