// Random forest regressor: bagged CART trees with per-split feature
// subsampling, plus aggregated impurity feature importances (Fig 4 right).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "ml/decision_tree.hpp"

namespace perdnn::ml {

struct ForestConfig {
  int num_trees = 24;
  TreeConfig tree;
  /// Bootstrap sample size as a fraction of the dataset.
  double bootstrap_fraction = 1.0;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {});

  void fit(const Dataset& data, Rng& rng);
  double predict(const Vector& features) const;
  bool trained() const { return !trees_.empty(); }

  /// Mean impurity importance across trees, normalised to sum to 1.
  Vector feature_importance() const;

  int num_trees() const { return static_cast<int>(trees_.size()); }

  /// Fitted trees, in the order predict() averages them (for FlatForest).
  const std::vector<RegressionTree>& trees() const { return trees_; }

 private:
  ForestConfig config_;
  std::vector<RegressionTree> trees_;
  std::size_t num_features_ = 0;
};

}  // namespace perdnn::ml
