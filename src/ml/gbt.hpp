// Gradient-boosted regression trees (squared loss, shrinkage, optional row
// subsampling). An extension beyond the paper's random forest — boosting
// often edges out bagging on smooth latency surfaces, and the ablation bench
// compares the two as execution-time estimators.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "ml/decision_tree.hpp"

namespace perdnn::ml {

struct GbtConfig {
  int num_rounds = 80;
  double learning_rate = 0.1;
  /// Fraction of rows sampled (without replacement) per round.
  double subsample = 0.8;
  TreeConfig tree{.max_depth = 4,
                  .min_samples_leaf = 3,
                  .min_samples_split = 6,
                  .max_features = 0};
};

class GradientBoostedTrees {
 public:
  explicit GradientBoostedTrees(GbtConfig config = {});

  void fit(const Dataset& data, Rng& rng);
  double predict(const Vector& features) const;
  bool trained() const { return trained_; }

  int num_trees() const { return static_cast<int>(trees_.size()); }

  /// Fitted rounds in boosting order, plus the quantities predict() combines
  /// them with (for FlatForest compilation).
  const std::vector<RegressionTree>& trees() const { return trees_; }
  double base() const { return base_; }
  double learning_rate() const { return config_.learning_rate; }

 private:
  GbtConfig config_;
  double base_ = 0.0;  // initial prediction (target mean)
  std::vector<RegressionTree> trees_;
  bool trained_ = false;
};

}  // namespace perdnn::ml
