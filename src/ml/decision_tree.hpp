// CART regression tree: variance-reduction splits, depth and leaf-size
// stopping rules, optional per-split feature subsampling (for forests), and
// impurity-decrease feature importances (the quantity Fig 4 reports).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace perdnn::ml {

struct TreeConfig {
  int max_depth = 12;
  std::size_t min_samples_leaf = 3;
  std::size_t min_samples_split = 6;
  /// Features considered per split; 0 means all features.
  std::size_t max_features = 0;
};

class RegressionTree {
 public:
  /// One node of the fitted tree. Exposed (read-only) so FlatForest can
  /// compile trees into its contiguous SoA layout.
  struct Node {
    // Leaf iff feature < 0.
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;  // leaf prediction (mean of samples)
    int left = -1;
    int right = -1;
  };

  explicit RegressionTree(TreeConfig config = {});

  /// Fits on the subset of `data` given by `sample_indices` (bootstrap
  /// support); pass all indices for a plain fit.
  void fit(const Dataset& data, const std::vector<std::size_t>& sample_indices,
           Rng& rng);
  /// Convenience: fit on the full dataset.
  void fit(const Dataset& data, Rng& rng);

  double predict(const Vector& features) const;
  bool trained() const { return !nodes_.empty(); }

  /// Total impurity decrease attributed to each feature (unnormalised).
  const Vector& impurity_importance() const { return importance_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  int depth() const { return depth_; }
  std::size_t num_features() const { return num_features_; }

  /// Fitted nodes in build (preorder) layout; nodes()[0] is the root.
  const std::vector<Node>& nodes() const { return nodes_; }

 private:
  int build(const Dataset& data, std::vector<std::size_t>& idx,
            std::size_t begin, std::size_t end, int depth, Rng& rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
  Vector importance_;
  int depth_ = 0;
  std::size_t num_features_ = 0;
};

}  // namespace perdnn::ml
