#include "ml/markov.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace perdnn::ml {

std::size_t PredictionSuffixTree::VectorHash::operator()(
    const std::vector<int>& v) const {
  std::size_t h = 1469598103934665603ULL;
  for (int x : v) {
    h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(x));
    h *= 1099511628211ULL;
  }
  return h;
}

PredictionSuffixTree::PredictionSuffixTree(MarkovConfig config)
    : config_(config) {
  PERDNN_CHECK(config_.max_order >= 1);
  PERDNN_CHECK(config_.subsequence_ratio > 0.0 &&
               config_.subsequence_ratio <= 1.0);
}

void PredictionSuffixTree::add_sequence(const std::vector<int>& symbols) {
  // Every position contributes counts for contexts of order 1..max_order.
  for (std::size_t pos = 1; pos < symbols.size(); ++pos) {
    const int next = symbols[pos];
    const auto max_len = std::min<std::size_t>(
        pos, static_cast<std::size_t>(config_.max_order));
    for (std::size_t len = 1; len <= max_len; ++len) {
      std::vector<int> context(symbols.begin() + static_cast<long>(pos - len),
                               symbols.begin() + static_cast<long>(pos));
      ++contexts_[std::move(context)][next];
    }
  }
}

std::vector<std::pair<int, double>> PredictionSuffixTree::predict_distribution(
    const std::vector<int>& recent) const {
  if (recent.empty() || contexts_.empty()) return {};

  // Longest suffix of `recent` that exists as a context.
  const auto cap = std::min<std::size_t>(
      recent.size(), static_cast<std::size_t>(config_.max_order));
  std::size_t longest = 0;
  for (std::size_t len = cap; len >= 1; --len) {
    std::vector<int> context(recent.end() - static_cast<long>(len),
                             recent.end());
    if (contexts_.count(context)) {
      longest = len;
      break;
    }
  }
  if (longest == 0) return {};

  // Shorten by the subsequence ratio (Jacquet et al.'s sampled pattern
  // matching); at least order 1.
  const auto use_len = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(
             config_.subsequence_ratio * static_cast<double>(longest))));
  std::vector<int> context(recent.end() - static_cast<long>(use_len),
                           recent.end());
  const auto it = contexts_.find(context);
  if (it == contexts_.end()) return {};

  std::int64_t total = 0;
  for (const auto& [symbol, count] : it->second) total += count;
  std::vector<std::pair<int, double>> dist;
  dist.reserve(it->second.size());
  for (const auto& [symbol, count] : it->second)
    dist.emplace_back(symbol,
                      static_cast<double>(count) / static_cast<double>(total));
  std::sort(dist.begin(), dist.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  return dist;
}

std::vector<int> PredictionSuffixTree::predict_top(
    const std::vector<int>& recent, int n) const {
  PERDNN_CHECK(n >= 1);
  const auto dist = predict_distribution(recent);
  std::vector<int> out;
  for (const auto& [symbol, prob] : dist) {
    out.push_back(symbol);
    if (static_cast<int>(out.size()) == n) break;
  }
  return out;
}

}  // namespace perdnn::ml
