#include "ml/lstm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace perdnn::ml {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

void adam_update(Vector& param, const Vector& grad, Vector& m, Vector& v,
                 long t, double lr, double clip) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  if (m.size() != param.size()) {
    m.assign(param.size(), 0.0);
    v.assign(param.size(), 0.0);
  }
  const double bias1 = 1.0 - std::pow(kBeta1, static_cast<double>(t));
  const double bias2 = 1.0 - std::pow(kBeta2, static_cast<double>(t));
  for (std::size_t i = 0; i < param.size(); ++i) {
    const double g = std::clamp(grad[i], -clip, clip);
    m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * g;
    v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * g * g;
    param[i] -= lr * (m[i] / bias1) / (std::sqrt(v[i] / bias2) + kEps);
  }
}

}  // namespace

/// Per-timestep values cached by the forward pass for BPTT.
struct LstmRegressor::StepCache {
  Vector concat;  // [x_t ; h_{t-1}]
  Vector i, f, g, o;
  Vector c;       // cell state after this step
  Vector c_prev;
  Vector h;       // hidden state after this step
};

LstmRegressor::LstmRegressor(LstmConfig config, Rng& rng) : config_(config) {
  PERDNN_CHECK(config_.input_dim >= 1 && config_.hidden_dim >= 1 &&
               config_.output_dim >= 1);
  const std::size_t h = config_.hidden_dim;
  const std::size_t z = config_.input_dim + h;
  // Xavier-style initialisation.
  const double gate_scale = 1.0 / std::sqrt(static_cast<double>(z));
  w_gates_ = Matrix(4 * h, z);
  for (double& w : w_gates_.data()) w = gate_scale * rng.normal();
  b_gates_.assign(4 * h, 0.0);
  // Forget-gate bias of 1 is the standard trick for gradient flow.
  for (std::size_t i = h; i < 2 * h; ++i) b_gates_[i] = 1.0;
  const double out_scale = 1.0 / std::sqrt(static_cast<double>(h));
  w_out_ = Matrix(config_.output_dim, h);
  for (double& w : w_out_.data()) w = out_scale * rng.normal();
  b_out_.assign(config_.output_dim, 0.0);
}

Vector LstmRegressor::forward(const std::vector<Vector>& sequence,
                              std::vector<StepCache>* caches) const {
  PERDNN_CHECK(!sequence.empty());
  const std::size_t h = config_.hidden_dim;
  Vector h_state(h, 0.0);
  Vector c_state(h, 0.0);
  if (caches) caches->clear();
  for (const Vector& x : sequence) {
    PERDNN_CHECK(x.size() == config_.input_dim);
    Vector concat;
    concat.reserve(config_.input_dim + h);
    concat.insert(concat.end(), x.begin(), x.end());
    concat.insert(concat.end(), h_state.begin(), h_state.end());
    const Vector pre = vec_add(w_gates_.matvec(concat), b_gates_);

    StepCache cache;
    cache.concat = std::move(concat);
    cache.c_prev = c_state;
    cache.i.resize(h);
    cache.f.resize(h);
    cache.g.resize(h);
    cache.o.resize(h);
    for (std::size_t k = 0; k < h; ++k) {
      cache.i[k] = sigmoid(pre[k]);
      cache.f[k] = sigmoid(pre[h + k]);
      cache.g[k] = std::tanh(pre[2 * h + k]);
      cache.o[k] = sigmoid(pre[3 * h + k]);
    }
    for (std::size_t k = 0; k < h; ++k)
      c_state[k] = cache.f[k] * cache.c_prev[k] + cache.i[k] * cache.g[k];
    for (std::size_t k = 0; k < h; ++k)
      h_state[k] = cache.o[k] * std::tanh(c_state[k]);
    cache.c = c_state;
    cache.h = h_state;
    if (caches) caches->push_back(std::move(cache));
  }
  return vec_add(w_out_.matvec(h_state), b_out_);
}

Vector LstmRegressor::predict(const std::vector<Vector>& sequence) const {
  return forward(sequence, nullptr);
}

double LstmRegressor::evaluate_mae(
    const std::vector<std::vector<Vector>>& sequences,
    const std::vector<Vector>& targets) const {
  PERDNN_CHECK(sequences.size() == targets.size());
  PERDNN_CHECK(!sequences.empty());
  double total = 0.0;
  std::size_t terms = 0;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const Vector pred = predict(sequences[i]);
    for (std::size_t d = 0; d < pred.size(); ++d) {
      total += std::abs(pred[d] - targets[i][d]);
      ++terms;
    }
  }
  return total / static_cast<double>(terms);
}

void LstmRegressor::fit(const std::vector<std::vector<Vector>>& sequences,
                        const std::vector<Vector>& targets, Rng& rng) {
  PERDNN_CHECK(sequences.size() == targets.size());
  PERDNN_CHECK(!sequences.empty());
  const std::size_t h = config_.hidden_dim;
  const std::size_t z = config_.input_dim + h;

  std::vector<std::size_t> order(sequences.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config_.batch_size);

      Vector grad_w_gates(w_gates_.data().size(), 0.0);
      Vector grad_b_gates(b_gates_.size(), 0.0);
      Vector grad_w_out(w_out_.data().size(), 0.0);
      Vector grad_b_out(b_out_.size(), 0.0);

      for (std::size_t bi = start; bi < end; ++bi) {
        const auto& seq = sequences[order[bi]];
        const auto& target = targets[order[bi]];
        PERDNN_CHECK(target.size() == config_.output_dim);
        std::vector<StepCache> caches;
        const Vector pred = forward(seq, &caches);

        // MAE loss: dL/dpred = sign(pred - target) / output_dim.
        Vector d_pred(config_.output_dim);
        for (std::size_t d = 0; d < config_.output_dim; ++d) {
          const double diff = pred[d] - target[d];
          d_pred[d] = (diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0)) /
                      static_cast<double>(config_.output_dim);
        }

        // Output head gradients.
        const Vector& h_last = caches.back().h;
        for (std::size_t r = 0; r < config_.output_dim; ++r) {
          grad_b_out[r] += d_pred[r];
          for (std::size_t cidx = 0; cidx < h; ++cidx)
            grad_w_out[r * h + cidx] += d_pred[r] * h_last[cidx];
        }
        Vector dh = w_out_.transposed_matvec(d_pred);
        Vector dc(h, 0.0);

        // BPTT over the sequence.
        for (std::size_t t = caches.size(); t-- > 0;) {
          const StepCache& cache = caches[t];
          Vector d_pre(4 * h, 0.0);
          for (std::size_t k = 0; k < h; ++k) {
            const double tanh_c = std::tanh(cache.c[k]);
            const double do_ = dh[k] * tanh_c;
            double dc_k = dc[k] + dh[k] * cache.o[k] * (1.0 - tanh_c * tanh_c);
            const double di = dc_k * cache.g[k];
            const double df = dc_k * cache.c_prev[k];
            const double dg = dc_k * cache.i[k];
            dc[k] = dc_k * cache.f[k];  // carried to t-1
            d_pre[k] = di * cache.i[k] * (1.0 - cache.i[k]);
            d_pre[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
            d_pre[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
            d_pre[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
          }
          // Accumulate gate parameter gradients and propagate to h_{t-1}.
          Vector d_concat(z, 0.0);
          for (std::size_t r = 0; r < 4 * h; ++r) {
            const double dp = d_pre[r];
            if (dp == 0.0) continue;
            grad_b_gates[r] += dp;
            const double* wrow = w_gates_.row_data(r);
            for (std::size_t cidx = 0; cidx < z; ++cidx) {
              grad_w_gates[r * z + cidx] += dp * cache.concat[cidx];
              d_concat[cidx] += dp * wrow[cidx];
            }
          }
          for (std::size_t k = 0; k < h; ++k)
            dh[k] = d_concat[config_.input_dim + k];
        }
      }

      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (double& g : grad_w_gates) g *= inv_batch;
      for (double& g : grad_b_gates) g *= inv_batch;
      for (double& g : grad_w_out) g *= inv_batch;
      for (double& g : grad_b_out) g *= inv_batch;

      ++adam_t_;
      adam_update(w_gates_.data(), grad_w_gates, adam_w_gates_.m,
                  adam_w_gates_.v, adam_t_, config_.learning_rate,
                  config_.grad_clip);
      adam_update(b_gates_, grad_b_gates, adam_b_gates_.m, adam_b_gates_.v,
                  adam_t_, config_.learning_rate, config_.grad_clip);
      adam_update(w_out_.data(), grad_w_out, adam_w_out_.m, adam_w_out_.v,
                  adam_t_, config_.learning_rate, config_.grad_clip);
      adam_update(b_out_, grad_b_out, adam_b_out_.m, adam_b_out_.v, adam_t_,
                  config_.learning_rate, config_.grad_clip);
    }
  }
}

}  // namespace perdnn::ml
