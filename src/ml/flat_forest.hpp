// Flattened tree-ensemble inference: RegressionTree / RandomForest /
// GradientBoostedTrees compiled into one contiguous structure-of-arrays node
// pool. The pointer-walking originals chase std::vector<Node> allocations
// per tree; the flat layout keeps every field of every node of every tree in
// five dense arrays, which is what the estimator's per-query hot loop wants.
//
// Nodes are laid out in BFS order per tree with each inner node's children
// allocated adjacently (right child == left child + 1). The batched AVX2
// kernel (flat_forest_avx2.cpp, dispatched through common/simd.hpp)
// exploits the adjacency to derive the right child instead of gathering it.
//
// Determinism contract: predict() reproduces the source ensemble's output
// *bit for bit* — same traversal comparisons, same per-tree accumulation
// order, same combine arithmetic (mean for forests, base + lr * value per
// round for GBT). predict_batch()/predict_batch_into() are positionally
// bit-identical to calling predict() per row, with the SIMD kernel on or
// off. Verified by tests/ml/flat_forest_test.cpp and
// tests/ml/flat_forest_simd_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"

namespace perdnn::ml {

namespace detail {

/// POD view over a FlatForest's node pool for out-of-line kernels (the AVX2
/// translation unit must not see the class internals change shape under it).
/// `combine` mirrors FlatForest::Combine's underlying values.
struct ForestKernelView {
  const std::int32_t* feature = nullptr;
  const double* threshold = nullptr;
  const std::int32_t* left = nullptr;
  const std::int32_t* roots = nullptr;
  std::size_t num_trees = 0;
  int combine = 0;
  double base = 0.0;
  double shrinkage = 1.0;
};

#ifdef PERDNN_SIMD_AVX2
/// Width-8 AVX2 traversal over `n` row-major rows (`n` must be a multiple
/// of 8). Bit-identical to FlatForest::predict_row per row.
void predict_batch_avx2(const ForestKernelView& view, const double* rows,
                        std::size_t stride, std::size_t n, double* out);
#endif

}  // namespace detail

class FlatForest {
 public:
  /// Lanes the AVX2 batch kernel processes per step; predict_batch_into
  /// falls back to scalar rows for any tail shorter than this.
  static constexpr std::size_t kSimdWidth = 8;

  FlatForest() = default;

  static FlatForest compile(const RegressionTree& tree);
  static FlatForest compile(const RandomForest& forest);
  static FlatForest compile(const GradientBoostedTrees& gbt);

  bool empty() const { return roots_.empty(); }
  std::size_t num_trees() const { return roots_.size(); }
  std::size_t num_nodes() const { return feature_.size(); }
  std::size_t num_features() const { return num_features_; }

  /// Ensemble prediction; bit-identical to the source model's predict().
  double predict(const Vector& features) const;

  /// One prediction per row of `rows` (rows.cols() must equal the feature
  /// count); entry i is bit-identical to predict(row i).
  Vector predict_batch(const Matrix& rows) const;

  /// Batched prediction over `n` feature rows laid out row-major `stride`
  /// doubles apart (stride >= num_features()). Dispatches to the AVX2
  /// kernel when simd::enabled(); out[i] is bit-identical to predict(row i)
  /// either way. n == 0 is a no-op.
  void predict_batch_into(const double* rows, std::size_t stride,
                          std::size_t n, double* out) const;

 private:
  /// How per-tree leaf values combine into the ensemble output.
  enum class Combine : std::uint8_t {
    kSingle,   ///< one tree, its value verbatim
    kAverage,  ///< running sum in tree order, divided by the tree count
    kBoosted,  ///< base + learning_rate * value, accumulated in round order
  };

  void append_tree(const RegressionTree& tree);
  double predict_row(const double* features) const;
  detail::ForestKernelView kernel_view() const;

  // SoA node pool: all trees concatenated in BFS order with sibling pairs
  // adjacent (right_[i] == left_[i] + 1 for inner nodes); roots_[t] is tree
  // t's root index. Leaves have feature_ < 0 and keep their prediction in
  // threshold_.
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<std::int32_t> roots_;
  Combine combine_ = Combine::kSingle;
  double base_ = 0.0;       // kBoosted initial prediction
  double shrinkage_ = 1.0;  // kBoosted learning rate
  std::size_t num_features_ = 0;
};

}  // namespace perdnn::ml
