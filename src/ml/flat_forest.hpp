// Flattened tree-ensemble inference: RegressionTree / RandomForest /
// GradientBoostedTrees compiled into one contiguous structure-of-arrays node
// pool. The pointer-walking originals chase std::vector<Node> allocations
// per tree; the flat layout keeps every field of every node of every tree in
// five dense arrays, which is what the estimator's per-query hot loop wants.
//
// Determinism contract: predict() reproduces the source ensemble's output
// *bit for bit* — same traversal comparisons, same per-tree accumulation
// order, same combine arithmetic (mean for forests, base + lr * value per
// round for GBT). predict_batch() is positionally bit-identical to calling
// predict() per row. Verified by tests/ml/flat_forest_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"

namespace perdnn::ml {

class FlatForest {
 public:
  FlatForest() = default;

  static FlatForest compile(const RegressionTree& tree);
  static FlatForest compile(const RandomForest& forest);
  static FlatForest compile(const GradientBoostedTrees& gbt);

  bool empty() const { return roots_.empty(); }
  std::size_t num_trees() const { return roots_.size(); }
  std::size_t num_nodes() const { return feature_.size(); }
  std::size_t num_features() const { return num_features_; }

  /// Ensemble prediction; bit-identical to the source model's predict().
  double predict(const Vector& features) const;

  /// One prediction per row of `rows` (rows.cols() must equal the feature
  /// count); entry i is bit-identical to predict(row i).
  Vector predict_batch(const Matrix& rows) const;

 private:
  /// How per-tree leaf values combine into the ensemble output.
  enum class Combine : std::uint8_t {
    kSingle,   ///< one tree, its value verbatim
    kAverage,  ///< running sum in tree order, divided by the tree count
    kBoosted,  ///< base + learning_rate * value, accumulated in round order
  };

  void append_tree(const RegressionTree& tree);
  double predict_row(const double* features) const;

  // SoA node pool: all trees concatenated; roots_[t] is tree t's root index.
  // Leaves have feature_ < 0 and keep their prediction in threshold_.
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<std::int32_t> roots_;
  Combine combine_ = Combine::kSingle;
  double base_ = 0.0;       // kBoosted initial prediction
  double shrinkage_ = 1.0;  // kBoosted learning rate
  std::size_t num_features_ = 0;
};

}  // namespace perdnn::ml
