// Linear support vector regression with epsilon-insensitive loss, trained by
// averaged stochastic subgradient descent. This is the paper's mobility
// predictor of choice (linear-kernel SVR was both accurate and fast).
#pragma once

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace perdnn::ml {

struct SvrConfig {
  double epsilon = 0.01;   ///< insensitivity tube half-width (scaled targets)
  double lambda = 1e-4;    ///< L2 regularisation strength
  int epochs = 40;
  double learning_rate = 0.05;
};

class LinearSvr {
 public:
  explicit LinearSvr(SvrConfig config = {});

  void fit(const Dataset& data, Rng& rng);
  double predict(const Vector& features) const;
  bool trained() const { return !weights_.empty(); }

  const Vector& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  SvrConfig config_;
  Vector weights_;
  double bias_ = 0.0;
};

/// Independent LinearSvrs per output dimension — the paper's SVR outputs
/// (x, y) coordinates of the next location.
class MultiOutputSvr {
 public:
  MultiOutputSvr(std::size_t outputs, SvrConfig config = {});

  /// targets[i] must have `outputs` entries for every row of features.
  void fit(const std::vector<Vector>& features,
           const std::vector<Vector>& targets, Rng& rng);
  Vector predict(const Vector& features) const;
  bool trained() const;

 private:
  std::vector<LinearSvr> models_;
};

}  // namespace perdnn::ml
