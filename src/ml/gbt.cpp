#include "ml/gbt.hpp"

#include <numeric>

#include "common/check.hpp"

namespace perdnn::ml {

GradientBoostedTrees::GradientBoostedTrees(GbtConfig config)
    : config_(config) {
  PERDNN_CHECK(config_.num_rounds >= 1);
  PERDNN_CHECK(config_.learning_rate > 0.0 && config_.learning_rate <= 1.0);
  PERDNN_CHECK(config_.subsample > 0.0 && config_.subsample <= 1.0);
}

void GradientBoostedTrees::fit(const Dataset& data, Rng& rng) {
  data.check();
  PERDNN_CHECK(data.size() >= 4);
  trees_.clear();

  base_ = 0.0;
  for (double y : data.y) base_ += y;
  base_ /= static_cast<double>(data.y.size());

  // Squared loss: the negative gradient is simply the residual, so each
  // round fits a small tree to the current residuals.
  Dataset residuals = data;
  for (std::size_t i = 0; i < residuals.y.size(); ++i)
    residuals.y[i] -= base_;

  std::vector<std::size_t> all(data.size());
  std::iota(all.begin(), all.end(), 0);
  const auto sample_n = static_cast<std::size_t>(std::max(
      2.0, config_.subsample * static_cast<double>(data.size())));

  for (int round = 0; round < config_.num_rounds; ++round) {
    std::vector<std::size_t> sample = all;
    if (sample_n < sample.size()) {
      rng.shuffle(sample);
      sample.resize(sample_n);
    }
    RegressionTree tree(config_.tree);
    tree.fit(residuals, sample, rng);
    for (std::size_t i = 0; i < residuals.y.size(); ++i)
      residuals.y[i] -=
          config_.learning_rate * tree.predict(residuals.rows[i]);
    trees_.push_back(std::move(tree));
  }
  trained_ = true;
}

double GradientBoostedTrees::predict(const Vector& features) const {
  PERDNN_CHECK_MSG(trained_, "predict() before fit()");
  double out = base_;
  for (const auto& tree : trees_)
    out += config_.learning_rate * tree.predict(features);
  return out;
}

}  // namespace perdnn::ml
