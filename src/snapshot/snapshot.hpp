// Versioned binary checkpoints of the complete large-scale-simulation state.
//
// A SimSnapshot captures everything the simulator needs to continue a run
// from an interval boundary and still produce byte-identical metrics,
// timeseries, and traffic output: the interval index, every salted RNG
// stream (including the Box-Muller spare), per-server LayerCache entries
// and TTLs, the MigrationDispatcher retry queue and backoff deadlines,
// client attachment/upload state, the TrafficAccountant histories, the
// per-load GPU statistics behind the level caches (the only RNG-derived
// planning state — estimates and plans are rebuilt deterministically on
// resume), the EstimateCache hit/miss tallies, the accumulated
// SimulationMetrics, and (optionally) the finished SimTimeseries rows.
//
// Wire format (little-endian, fixed-width):
//
//   magic "PDNNSNP1" (8 bytes)
//   version        u32   (kSnapshotVersion)
//   payload_size   u64
//   payload        payload_size bytes (field layout in snapshot.cpp)
//   checksum       u64   FNV-1a over the payload
//
// Readers validate magic, version, size, and checksum before touching the
// payload, bound every vector length against the remaining bytes, and throw
// SnapshotError on any mismatch — a corrupted or truncated file is rejected,
// never crashed on. save() writes atomically (tmp file + rename) so a kill
// mid-checkpoint leaves the previous checkpoint intact.
//
// A config fingerprint (hash of the SimulationConfig knobs that affect the
// simulation plus the world's shape) is embedded so a snapshot cannot be
// resumed against a different scenario. Thread count and the fastpath toggle
// are deliberately excluded: both are byte-identity-neutral, so a checkpoint
// taken at 8 threads resumes fine at 1 (and vice versa).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "device/gpu_model.hpp"
#include "edge/layer_cache.hpp"
#include "edge/migration_dispatcher.hpp"
#include "net/network.hpp"
#include "obs/journal.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace perdnn::snapshot {

/// Version 2 appended the event-journal state (has_journal + JournalState)
/// so a resumed run's journal is byte-identical to the uninterrupted one.
/// Version 3 appended the sharded-world section (has_shard + ShardSimState)
/// for the SoA city-scale simulator; decode still accepts version-2 files
/// (their shard section is simply absent).
/// Version 4 (the "v3.1" field additions) appended the sharded engine's
/// deferred-migration retry queue to ShardSimState and the attaches_shed
/// counter to the metrics block; decode still accepts version-2 and
/// version-3 files (their retry queue is simply empty).
/// Version 5 appended the budgeted-cache state: per-cache-entry resident
/// byte counts (classic engine), the cache_evictions / cache_partial_stores
/// / peak_cache_bytes metrics fields, and the three budgeted-cache
/// timeseries-row columns; decode still accepts versions 2–4 (their byte
/// counts are recomputed from the cost model on restore and the new
/// metrics/row fields default to zero).
inline constexpr std::uint32_t kSnapshotVersion = 5;

/// Thrown for every malformed-snapshot condition: bad magic, unknown
/// version, truncation, checksum mismatch, out-of-range lengths, fingerprint
/// mismatch, or I/O failure. CLI consumers map it to exit code 2.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One client's attachment/upload state.
struct ClientSnapshot {
  ServerId current = kNoServer;
  std::vector<LayerId> pending;
  Bytes carry_bytes = 0;
  double link_factor = 1.0;
};

/// One per-load level-cache entry. Only the GPU statistics are stored: they
/// are the one RNG draw in the level fill, and everything downstream
/// (estimates, plan, needed set) is a deterministic function of them.
struct LoadLevelSnapshot {
  int load = 0;
  GpuStats stats;
};

/// Complete mutable state of the sharded (SoA) city-scale simulator at an
/// interval boundary. Per-client arrays are indexed by client id; cache
/// entries are flattened in (server, client) order — the canonical encoding
/// every shard/thread count produces identically. RNG substreams, per-client
/// speeds and the tile index are deterministic functions of (seed, client)
/// or of the stored position, so they are recomputed on resume rather than
/// stored. Stream offsets let a resumed run truncate its timeseries CSV /
/// journal JSONL back to the checkpoint boundary and append from there.
struct ShardSimState {
  // SoA client store.
  std::vector<double> x, y, heading;
  std::vector<std::int32_t> server;         // kNoServer when detached/offline
  std::vector<std::uint32_t> prefix;        // uploaded canonical-prefix length
  std::vector<std::int64_t> carry;          // bytes banked toward next layer
  std::vector<std::int32_t> offline_until;  // offline while interval < this
  // Layer-cache entries, flattened and sorted by (server, client).
  std::vector<std::int32_t> entry_server, entry_client, entry_expire;
  std::vector<std::uint32_t> entry_prefix;
  // Backhaul peaks (per-server all-time) and the busiest-interval record.
  std::vector<double> peak_uplink_mbps, peak_downlink_mbps;
  std::int64_t best_interval_bytes = -1;
  double best_interval_fraction = 1.0;
  // Streamed-output positions at the checkpoint.
  std::uint64_t timeseries_bytes = 0, timeseries_rows = 0;
  std::uint64_t journal_bytes = 0, journal_events = 0;
  std::uint64_t journal_next_chain = 1;
  std::vector<std::pair<std::int32_t, std::uint64_t>> client_chains;
  // v3.1 (wire version 4): the deferred-migration retry queue, flattened in
  // (source server, FIFO position) order — the canonical order every
  // shard/thread count produces identically. All seven arrays share one
  // length; version-3 files decode with all of them empty.
  std::vector<std::int32_t> retry_client, retry_source, retry_target;
  std::vector<std::uint32_t> retry_prefix;
  std::vector<std::int64_t> retry_bytes;
  std::vector<std::int32_t> retry_attempts, retry_next_attempt;
};

struct SimSnapshot {
  std::uint64_t config_fingerprint = 0;
  /// First interval the resumed run executes (the checkpointed run finished
  /// intervals [0, next_interval)).
  int next_interval = 0;
  int num_intervals = 0;
  Rng::State rng;
  Rng::State link_rng;
  /// Per-server cache entries, indexed by server id, entries sorted by
  /// client id.
  std::vector<std::vector<LayerCache::EntrySnapshot>> caches;
  MigrationDispatcher::State dispatcher;
  TrafficAccountant::State traffic;
  std::vector<int> attached;
  std::vector<ClientSnapshot> clients;
  std::vector<LoadLevelSnapshot> levels;           // sorted by load
  std::vector<LoadLevelSnapshot> degraded_levels;  // sorted by load
  std::uint64_t estimate_cache_hits = 0;
  std::uint64_t estimate_cache_misses = 0;
  SimulationMetrics metrics;
  /// Timeseries rows finished before the checkpoint. has_timeseries marks
  /// whether the checkpointed run recorded at all — resuming a recorded run
  /// without these rows could not reproduce the full CSV.
  bool has_timeseries = false;
  std::vector<obs::TimeseriesRow> timeseries_rows;
  /// Event-journal state at the checkpoint (core events, chain counter,
  /// client->chain bindings). has_journal marks whether the checkpointed
  /// run journaled at all; checkpoint markers themselves are meta events
  /// and deliberately never stored (journal.hpp explains why).
  bool has_journal = false;
  obs::JournalState journal;
  /// Sharded-world section (version 3). When has_shard is set the legacy
  /// per-client/per-server vectors above stay empty: the two engines never
  /// share a snapshot.
  bool has_shard = false;
  ShardSimState shard;
};

/// Hash of every simulation-affecting config knob plus the world's shape
/// (server/client/interval counts, model size). Resuming a snapshot whose
/// fingerprint differs is rejected.
std::uint64_t config_fingerprint(const SimulationConfig& config,
                                 const SimulationWorld& world);

/// Serialises to the wire format described above.
std::string encode(const SimSnapshot& snap);

/// Parses and validates a wire-format snapshot; throws SnapshotError.
SimSnapshot decode(const std::string& bytes);

/// encode() + atomic write (tmp file in the same directory, then rename).
void save(const SimSnapshot& snap, const std::string& path);

/// Reads and decode()s a snapshot file; throws SnapshotError on I/O or
/// format problems.
SimSnapshot load(const std::string& path);

/// Flat JSON object of every SimulationMetrics field (shard outputs the
/// scenario runner merges; parseable back via metrics_from_json).
std::string metrics_to_json(const SimulationMetrics& metrics);
SimulationMetrics metrics_from_json(const std::string& json);

}  // namespace perdnn::snapshot
